// Line protocol for the fleet service, as a pure state machine.
//
// One Connection wraps one client.  feed() consumes an arbitrary slice
// of bytes — a whole session, one keystroke, a partial line split at any
// boundary — and appends whatever responses became due.  There is no
// socket in sight, which is the point: the robustness properties the
// serve layer promises (oversized lines, partial writes, abrupt
// disconnects, garbage) are tested on this class directly, and the TCP
// server is a dumb byte pump around it.
//
// Commands (one per line; responses are single `OK ...`/`ERR ...` lines
// unless noted):
//
//   OPEN <tenant> <machine>     open a tenant for "tsubame-2"/"tsubame-3"
//   EVENT <tenant> <csv-row>    ingest one canonical CSV row; silent on
//                               success so bulk replay is not chatty,
//                               ERR on a bad row (pipeline unharmed)
//   SEAL <tenant>               merge pending records -> "OK epoch <n>"
//   QUERY <tenant> <key>        framed: "OK query ... bytes <n>" + n bytes
//   STATS <tenant>              framed key/value block
//   ALERTS <tenant>             framed recent alert transitions
//   TENANTS                     framed open-tenant list
//   KEYS                        framed query-key vocabulary
//   METRICS                     framed Prometheus exposition
//   SLO                         framed objective table (render_slo_text)
//   PING                        "OK pong"
//   QUIT                        "OK bye", connection closes
//
// Framing: a header line ending in "bytes <n>" is followed by exactly n
// payload bytes (fragments end in '\n' themselves, so netcat output
// stays readable).
//
// A connection whose first line starts with "GET " switches to minimal
// HTTP/1.0: /metrics, /slo, /healthz, /tenants, /stats/<tenant>,
// /query/<tenant>/<key> answer one request with Content-Length and
// close (/healthz answers 503 while any objective is burning).
//
// A line longer than max_line_bytes earns one ERR and is discarded up to
// the next '\n'; the connection (and every tenant) keeps working.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/service.h"

namespace tsufail::serve {

struct ProtocolConfig {
  /// Longest accepted command line (bytes, excluding the newline).
  std::size_t max_line_bytes = 1 << 20;
};

class Connection {
 public:
  explicit Connection(FleetService& service, ProtocolConfig config = {})
      : service_(&service), config_(config) {}

  /// Consumes `bytes`, appending any responses to `out`.  Returns false
  /// once the connection should close (QUIT, or an HTTP exchange
  /// completed); further feeds are no-ops.
  bool feed(std::string_view bytes, std::string& out);

  bool wants_close() const noexcept { return close_; }

 private:
  void handle_line(std::string_view line, std::string& out);
  void handle_command(std::string_view line, std::string& out);
  void handle_http_request(std::string_view path, std::string& out);

  FleetService* service_;
  ProtocolConfig config_;
  std::string buffer_;       ///< bytes of the current (incomplete) line
  bool discarding_ = false;  ///< inside an oversized line, eating to '\n'
  bool http_ = false;        ///< HTTP mode: consuming headers
  std::string http_path_;
  bool saw_input_ = false;   ///< first line decides line-protocol vs HTTP
  bool close_ = false;
};

}  // namespace tsufail::serve
