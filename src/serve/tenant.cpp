#include "serve/tenant.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <system_error>
#include <utility>

#include "data/columnar.h"
#include "data/log_io.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace tsufail::serve {
namespace {

// Global aggregates across every tenant (the per-tenant series are
// registered dynamically per Tenant when enabled).
obs::Counter& ingest_events() {
  static obs::Counter c = obs::counter("serve.ingest.events");
  return c;
}
obs::Counter& ingest_quarantined() {
  static obs::Counter c = obs::counter("serve.ingest.quarantined");
  return c;
}
obs::Counter& ingest_bad_rows() {
  static obs::Counter c = obs::counter("serve.ingest.bad_rows");
  return c;
}
obs::Counter& epoch_merges() {
  static obs::Counter c = obs::counter("serve.epoch.merges");
  return c;
}
obs::Counter& epoch_merged_records() {
  static obs::Counter c = obs::counter("serve.epoch.merged_records");
  return c;
}
obs::Histogram& epoch_merge_seconds() {
  static obs::Histogram h =
      obs::histogram("serve.epoch.merge_seconds", obs::time_buckets_seconds());
  return h;
}
obs::Counter& alerts_fired_total() {
  static obs::Counter c = obs::counter("serve.alerts.fired");
  return c;
}
obs::Counter& alerts_cleared_total() {
  static obs::Counter c = obs::counter("serve.alerts.cleared");
  return c;
}
obs::Counter& segments_written() {
  static obs::Counter c = obs::counter("serve.segments.written");
  return c;
}
obs::Counter& segments_mounted() {
  static obs::Counter c = obs::counter("serve.segments.mounted");
  return c;
}

}  // namespace

std::optional<std::uint64_t> segment_epoch(const std::string& filename) {
  constexpr std::string_view kPrefix = "epoch-";
  constexpr std::string_view kSuffix = ".tsnap";
  if (filename.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (filename.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  if (filename.substr(filename.size() - kSuffix.size()) != kSuffix) return std::nullopt;
  const std::string digits =
      filename.substr(kPrefix.size(), filename.size() - kPrefix.size() - kSuffix.size());
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

Tenant::Tenant(std::string name, data::MachineSpec spec, const TenantConfig& config)
    : name_(std::move(name)), spec_(std::move(spec)), config_(config) {
  if (config_.per_tenant_metrics) {
    const std::string prefix = "serve.tenant." + name_ + ".";
    ingested_counter_ = obs::counter(prefix + "ingested");
    quarantined_counter_ = obs::counter(prefix + "quarantined");
    fired_counter_ = obs::counter(prefix + "alerts.fired");
    cleared_counter_ = obs::counter(prefix + "alerts.cleared");
    epoch_gauge_ = obs::gauge(prefix + "epoch");
    records_gauge_ = obs::gauge(prefix + "records");
    staleness_gauge_ = obs::gauge(prefix + "staleness");
  }
}

Result<std::unique_ptr<Tenant>> Tenant::open(std::string name, const data::MachineSpec& spec,
                                             const TenantConfig& config) {
  // '/' and '\\' are rejected because the name doubles as the segment
  // directory name under data_dir.
  if (name.empty() || name.find_first_of(" \t\r\n\x1f/\\") != std::string::npos)
    return Error(ErrorKind::kValidation,
                 "tenant name must be non-empty and contain no whitespace or path separators");
  auto events = stream::EventStream::create(spec, config.stream);
  if (!events.ok()) return events.error().with_context("tenant '" + name + "'");

  std::unique_ptr<Tenant> tenant(new Tenant(std::move(name), spec, config));
  tenant->events_.emplace(std::move(events).value());

  if (config.alerts) {
    auto monitor = stream::HealthMonitor::create(spec);
    if (!monitor.ok()) return monitor.error().with_context("tenant monitor");
    const std::size_t expected = config.expected_failures > 0
                                     ? config.expected_failures
                                     : stream::paper_expected_failures(spec);
    auto engine = stream::AlertEngine::create(
        stream::default_rules(spec, {expected, config.burst_threshold}));
    if (!engine.ok()) return engine.error().with_context("tenant alert engine");
    tenant->monitor_.emplace(std::move(monitor).value());
    tenant->engine_.emplace(std::move(engine).value());
  }

  auto empty = data::FailureLog::create(spec, {});
  if (!empty.ok()) return empty.error().with_context("tenant epoch 0");
  auto snapshot = data::LogSnapshot::build(std::move(empty).value());
  if (!snapshot.ok()) return snapshot.error();
  tenant->snapshot_ = std::move(snapshot).value();

  if (!config.data_dir.empty()) {
    auto restored = tenant->remount_segments();
    if (!restored.ok())
      return restored.error().with_context("remount tenant '" + tenant->name_ + "'");
  }
  const auto& current = tenant->snapshot_;
  if (tenant->epoch_gauge_.has_value())
    tenant->epoch_gauge_->set(static_cast<double>(current->epoch()));
  if (tenant->records_gauge_.has_value())
    tenant->records_gauge_->set(static_cast<double>(current->size()));
  return tenant;
}

Result<std::uint64_t> Tenant::remount_segments() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(config_.data_dir) / name_;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    return Error(ErrorKind::kIo, "cannot create segment directory " + dir.string() + ": " +
                                     ec.message());

  std::vector<std::pair<std::uint64_t, fs::path>> segments;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (auto epoch = segment_epoch(entry.path().filename().string()); epoch.has_value())
      segments.emplace_back(*epoch, entry.path());
  }
  if (ec)
    return Error(ErrorKind::kIo, "cannot list segment directory " + dir.string() + ": " +
                                     ec.message());
  if (segments.empty()) return 0;
  std::sort(segments.begin(), segments.end());

  // Segments are sealed-epoch suffixes: each is internally time-sorted
  // and starts at or after the previous epoch's last record, so the
  // ascending concatenation is the full sorted log.
  std::vector<data::FailureRecord> records;
  for (const auto& [epoch, path] : segments) {
    auto segment = data::ColumnarSnapshot::open(path.string());
    if (!segment.ok()) return segment.error().with_context("segment epoch " + std::to_string(epoch));
    const auto& snap = *segment.value();
    if (snap.spec().machine != spec_.machine || snap.spec().node_count != spec_.node_count)
      return Error(ErrorKind::kValidation,
                   "segment " + path.string() + " was packed for machine '" +
                       std::string(data::to_string(snap.spec().machine)) +
                       "' (" + std::to_string(snap.spec().node_count) +
                       " nodes); tenant expects '" +
                       std::string(data::to_string(spec_.machine)) + "' (" +
                       std::to_string(spec_.node_count) + " nodes)");
    records.reserve(records.size() + snap.size());
    for (std::uint32_t i = 0; i < snap.size(); ++i) records.push_back(snap.record_at(i));
    segments_mounted().add();
  }

  const double slack = std::max(config_.slack_hours, config_.stream.slack_hours);
  auto log = data::FailureLog::create(spec_, std::move(records), slack);
  if (!log.ok()) return log.error();
  auto mounted = data::LogSnapshot::build(std::move(log).value(), segments.back().first);
  if (!mounted.ok()) return mounted.error();
  snapshot_ = std::move(mounted).value();
  return snapshot_->epoch();
}

Result<void> Tenant::persist_segment(std::uint64_t epoch,
                                     std::span<const data::FailureRecord> suffix) const {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(config_.data_dir) / name_;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    return Error(ErrorKind::kIo, "cannot create segment directory " + dir.string() + ": " +
                                     ec.message());
  const fs::path path = dir / ("epoch-" + std::to_string(epoch) + ".tsnap");
  // Records-only segments: small, and remount rebuilds the index once
  // over the concatenation anyway.
  const std::string bytes = data::pack_columnar(spec_, suffix, nullptr);
  auto written = data::write_columnar_file(path.string(), bytes);
  if (!written.ok()) return written.error();
  segments_written().add();
  return {};
}

Result<stream::IngestOutcome> Tenant::ingest_row(std::string_view row) {
  auto parsed = data::parse_record_row(row);
  if (!parsed.ok()) {
    std::lock_guard lock(ingest_mutex_);
    ++bad_rows_;
    ingest_bad_rows().add();
    if (quarantined_counter_.has_value()) quarantined_counter_->add();
    return parsed.error().with_context("ingest row");
  }
  if (parsed.value().first != spec_.machine) {
    std::lock_guard lock(ingest_mutex_);
    ++bad_rows_;
    ingest_bad_rows().add();
    if (quarantined_counter_.has_value()) quarantined_counter_->add();
    return Error(ErrorKind::kValidation,
                 "row machine '" + std::string(data::to_string(parsed.value().first)) +
                     "' does not match tenant machine '" +
                     std::string(data::to_string(spec_.machine)) + "'");
  }
  return ingest(parsed.value().second);
}

Result<stream::IngestOutcome> Tenant::ingest(const data::FailureRecord& record) {
  bool want_seal = false;
  Result<stream::IngestOutcome> outcome = [&]() -> Result<stream::IngestOutcome> {
    std::lock_guard lock(ingest_mutex_);
    auto offered = events_->offer(record);
    if (!offered.ok()) return offered;
    ingest_events().add();
    if (offered.value() == stream::IngestOutcome::kAccepted) {
      if (ingested_counter_.has_value()) ingested_counter_->add();
    } else {
      ingest_quarantined().add();
      if (quarantined_counter_.has_value()) quarantined_counter_->add();
    }
    consume_released();
    want_seal = config_.auto_epoch_events > 0 &&
                sealed_pending_.size() >= config_.auto_epoch_events;
    return offered;
  }();
  if (outcome.ok() && want_seal) {
    if (auto sealed = seal(); !sealed.ok()) return sealed.error();
  }
  return outcome;
}

void Tenant::consume_released() {
  while (auto record = events_->poll()) {
    if (monitor_.has_value()) {
      monitor_->observe(*record);
      for (auto& alert : engine_->evaluate(monitor_->snapshot())) {
        if (alert.raised) {
          ++alerts_fired_;
          alerts_fired_total().add();
          if (fired_counter_.has_value()) fired_counter_->add();
        } else {
          ++alerts_cleared_;
          alerts_cleared_total().add();
          if (cleared_counter_.has_value()) cleared_counter_->add();
        }
        alert_history_.push_back(std::move(alert));
        while (alert_history_.size() > config_.alert_history) alert_history_.pop_front();
      }
    }
    if (sealed_pending_.empty()) pending_since_ns_ = obs::now_ns();
    sealed_pending_.push_back(std::move(*record));
  }
}

Result<std::uint64_t> Tenant::seal() {
  std::lock_guard seal_lock(seal_mutex_);
  std::vector<data::FailureRecord> pending;
  {
    std::lock_guard lock(ingest_mutex_);
    pending.swap(sealed_pending_);
    pending_since_ns_ = 0;
  }
  data::SnapshotPtr base = snapshot();
  if (pending.empty()) return base->epoch();

  OBS_SPAN("serve.epoch.merge");
  obs::Stopwatch timer;
  const double slack = std::max(config_.slack_hours, config_.stream.slack_hours);
  auto merged = data::LogSnapshot::extend(*base, std::move(pending), slack);
  if (!merged.ok()) {
    // Released records always re-validate cleanly in practice; if the
    // merge ever refuses, the records are dropped and the error surfaces
    // to the caller rather than wedging the pipeline.
    return merged.error().with_context("seal tenant '" + name_ + "'");
  }
  const auto& snapshot = merged.value();
  if (!config_.data_dir.empty()) {
    // Persist before the swap so a crash can only lose the newest epoch,
    // never publish one that is missing from disk.
    auto persisted = persist_segment(
        snapshot->epoch(), snapshot->log().records().subspan(base->size()));
    if (!persisted.ok()) return persisted.error().with_context("persist epoch segment");
  }
  epoch_merges().add();
  epoch_merged_records().add(snapshot->size() - base->size());
  epoch_merge_seconds().observe(static_cast<double>(timer.elapsed_ns()) * 1e-9);
  {
    std::lock_guard lock(snapshot_mutex_);
    snapshot_ = snapshot;
  }
  if (epoch_gauge_.has_value()) epoch_gauge_->set(static_cast<double>(snapshot->epoch()));
  if (records_gauge_.has_value()) records_gauge_->set(static_cast<double>(snapshot->size()));
  if (epoch_callback_) epoch_callback_(name_, snapshot->epoch());
  return snapshot->epoch();
}

data::SnapshotPtr Tenant::snapshot() const {
  std::lock_guard lock(snapshot_mutex_);
  return snapshot_;
}

TenantStats Tenant::stats() const {
  TenantStats out;
  {
    std::lock_guard lock(ingest_mutex_);
    out.stream = events_->stats();
    out.sealed_pending = sealed_pending_.size();
    out.bad_rows = bad_rows_;
    out.alerts_fired = alerts_fired_;
    out.alerts_cleared = alerts_cleared_;
    if (!sealed_pending_.empty() && pending_since_ns_ != 0)
      out.staleness_seconds =
          static_cast<double>(obs::now_ns() - pending_since_ns_) * 1e-9;
  }
  if (staleness_gauge_.has_value()) staleness_gauge_->set(out.staleness_seconds);
  data::SnapshotPtr current = snapshot();
  out.epoch = current->epoch();
  out.records = current->size();
  return out;
}

std::vector<stream::Alert> Tenant::recent_alerts() const {
  std::lock_guard lock(ingest_mutex_);
  return {alert_history_.begin(), alert_history_.end()};
}

}  // namespace tsufail::serve
