#include "serve/tenant.h"

#include <algorithm>
#include <utility>

#include "data/log_io.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace tsufail::serve {
namespace {

// Global aggregates across every tenant (the per-tenant series are
// registered dynamically per Tenant when enabled).
obs::Counter& ingest_events() {
  static obs::Counter c = obs::counter("serve.ingest.events");
  return c;
}
obs::Counter& ingest_quarantined() {
  static obs::Counter c = obs::counter("serve.ingest.quarantined");
  return c;
}
obs::Counter& ingest_bad_rows() {
  static obs::Counter c = obs::counter("serve.ingest.bad_rows");
  return c;
}
obs::Counter& epoch_merges() {
  static obs::Counter c = obs::counter("serve.epoch.merges");
  return c;
}
obs::Counter& epoch_merged_records() {
  static obs::Counter c = obs::counter("serve.epoch.merged_records");
  return c;
}
obs::Histogram& epoch_merge_seconds() {
  static obs::Histogram h =
      obs::histogram("serve.epoch.merge_seconds", obs::time_buckets_seconds());
  return h;
}
obs::Counter& alerts_fired_total() {
  static obs::Counter c = obs::counter("serve.alerts.fired");
  return c;
}
obs::Counter& alerts_cleared_total() {
  static obs::Counter c = obs::counter("serve.alerts.cleared");
  return c;
}

}  // namespace

Tenant::Tenant(std::string name, data::MachineSpec spec, const TenantConfig& config)
    : name_(std::move(name)), spec_(std::move(spec)), config_(config) {
  if (config_.per_tenant_metrics) {
    const std::string prefix = "serve.tenant." + name_ + ".";
    ingested_counter_ = obs::counter(prefix + "ingested");
    quarantined_counter_ = obs::counter(prefix + "quarantined");
    fired_counter_ = obs::counter(prefix + "alerts.fired");
    cleared_counter_ = obs::counter(prefix + "alerts.cleared");
    epoch_gauge_ = obs::gauge(prefix + "epoch");
    records_gauge_ = obs::gauge(prefix + "records");
  }
}

Result<std::unique_ptr<Tenant>> Tenant::open(std::string name, const data::MachineSpec& spec,
                                             const TenantConfig& config) {
  if (name.empty() || name.find_first_of(" \t\r\n\x1f") != std::string::npos)
    return Error(ErrorKind::kValidation,
                 "tenant name must be non-empty and contain no whitespace");
  auto events = stream::EventStream::create(spec, config.stream);
  if (!events.ok()) return events.error().with_context("tenant '" + name + "'");

  std::unique_ptr<Tenant> tenant(new Tenant(std::move(name), spec, config));
  tenant->events_.emplace(std::move(events).value());

  if (config.alerts) {
    auto monitor = stream::HealthMonitor::create(spec);
    if (!monitor.ok()) return monitor.error().with_context("tenant monitor");
    const std::size_t expected = config.expected_failures > 0
                                     ? config.expected_failures
                                     : stream::paper_expected_failures(spec);
    auto engine = stream::AlertEngine::create(
        stream::default_rules(spec, {expected, config.burst_threshold}));
    if (!engine.ok()) return engine.error().with_context("tenant alert engine");
    tenant->monitor_.emplace(std::move(monitor).value());
    tenant->engine_.emplace(std::move(engine).value());
  }

  auto empty = data::FailureLog::create(spec, {});
  if (!empty.ok()) return empty.error().with_context("tenant epoch 0");
  auto snapshot = data::LogSnapshot::build(std::move(empty).value());
  if (!snapshot.ok()) return snapshot.error();
  tenant->snapshot_ = std::move(snapshot).value();
  if (tenant->epoch_gauge_.has_value()) tenant->epoch_gauge_->set(0.0);
  if (tenant->records_gauge_.has_value()) tenant->records_gauge_->set(0.0);
  return tenant;
}

Result<stream::IngestOutcome> Tenant::ingest_row(std::string_view row) {
  auto parsed = data::parse_record_row(row);
  if (!parsed.ok()) {
    std::lock_guard lock(ingest_mutex_);
    ++bad_rows_;
    ingest_bad_rows().add();
    if (quarantined_counter_.has_value()) quarantined_counter_->add();
    return parsed.error().with_context("ingest row");
  }
  if (parsed.value().first != spec_.machine) {
    std::lock_guard lock(ingest_mutex_);
    ++bad_rows_;
    ingest_bad_rows().add();
    if (quarantined_counter_.has_value()) quarantined_counter_->add();
    return Error(ErrorKind::kValidation,
                 "row machine '" + std::string(data::to_string(parsed.value().first)) +
                     "' does not match tenant machine '" +
                     std::string(data::to_string(spec_.machine)) + "'");
  }
  return ingest(parsed.value().second);
}

Result<stream::IngestOutcome> Tenant::ingest(const data::FailureRecord& record) {
  bool want_seal = false;
  Result<stream::IngestOutcome> outcome = [&]() -> Result<stream::IngestOutcome> {
    std::lock_guard lock(ingest_mutex_);
    auto offered = events_->offer(record);
    if (!offered.ok()) return offered;
    ingest_events().add();
    if (offered.value() == stream::IngestOutcome::kAccepted) {
      if (ingested_counter_.has_value()) ingested_counter_->add();
    } else {
      ingest_quarantined().add();
      if (quarantined_counter_.has_value()) quarantined_counter_->add();
    }
    consume_released();
    want_seal = config_.auto_epoch_events > 0 &&
                sealed_pending_.size() >= config_.auto_epoch_events;
    return offered;
  }();
  if (outcome.ok() && want_seal) {
    if (auto sealed = seal(); !sealed.ok()) return sealed.error();
  }
  return outcome;
}

void Tenant::consume_released() {
  while (auto record = events_->poll()) {
    if (monitor_.has_value()) {
      monitor_->observe(*record);
      for (auto& alert : engine_->evaluate(monitor_->snapshot())) {
        if (alert.raised) {
          ++alerts_fired_;
          alerts_fired_total().add();
          if (fired_counter_.has_value()) fired_counter_->add();
        } else {
          ++alerts_cleared_;
          alerts_cleared_total().add();
          if (cleared_counter_.has_value()) cleared_counter_->add();
        }
        alert_history_.push_back(std::move(alert));
        while (alert_history_.size() > config_.alert_history) alert_history_.pop_front();
      }
    }
    sealed_pending_.push_back(std::move(*record));
  }
}

Result<std::uint64_t> Tenant::seal() {
  std::lock_guard seal_lock(seal_mutex_);
  std::vector<data::FailureRecord> pending;
  {
    std::lock_guard lock(ingest_mutex_);
    pending.swap(sealed_pending_);
  }
  data::SnapshotPtr base = snapshot();
  if (pending.empty()) return base->epoch();

  OBS_SPAN("serve.epoch.merge");
  obs::Stopwatch timer;
  const double slack = std::max(config_.slack_hours, config_.stream.slack_hours);
  auto merged = data::LogSnapshot::extend(*base, std::move(pending), slack);
  if (!merged.ok()) {
    // Released records always re-validate cleanly in practice; if the
    // merge ever refuses, the records are dropped and the error surfaces
    // to the caller rather than wedging the pipeline.
    return merged.error().with_context("seal tenant '" + name_ + "'");
  }
  const auto& snapshot = merged.value();
  epoch_merges().add();
  epoch_merged_records().add(snapshot->size() - base->size());
  epoch_merge_seconds().observe(static_cast<double>(timer.elapsed_ns()) * 1e-9);
  {
    std::lock_guard lock(snapshot_mutex_);
    snapshot_ = snapshot;
  }
  if (epoch_gauge_.has_value()) epoch_gauge_->set(static_cast<double>(snapshot->epoch()));
  if (records_gauge_.has_value()) records_gauge_->set(static_cast<double>(snapshot->size()));
  if (epoch_callback_) epoch_callback_(name_, snapshot->epoch());
  return snapshot->epoch();
}

data::SnapshotPtr Tenant::snapshot() const {
  std::lock_guard lock(snapshot_mutex_);
  return snapshot_;
}

TenantStats Tenant::stats() const {
  TenantStats out;
  {
    std::lock_guard lock(ingest_mutex_);
    out.stream = events_->stats();
    out.sealed_pending = sealed_pending_.size();
    out.bad_rows = bad_rows_;
    out.alerts_fired = alerts_fired_;
    out.alerts_cleared = alerts_cleared_;
  }
  data::SnapshotPtr current = snapshot();
  out.epoch = current->epoch();
  out.records = current->size();
  return out;
}

std::vector<stream::Alert> Tenant::recent_alerts() const {
  std::lock_guard lock(ingest_mutex_);
  return {alert_history_.begin(), alert_history_.end()};
}

}  // namespace tsufail::serve
