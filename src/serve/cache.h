// QueryCache: a bounded, thread-safe result cache keyed by
// (tenant, epoch, query key).
//
// Correctness leans entirely on the key shape: a query result is a pure
// function of the snapshot it was computed from, and the snapshot is
// named by (tenant, epoch).  An epoch bump therefore *is* the
// invalidation — new lookups carry the new epoch and can never see a
// stale entry.  invalidate_before() additionally reclaims dead entries
// eagerly (the serve layer calls it on every seal) so one noisy tenant
// cannot hold the whole capacity hostage until LRU eviction catches up.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tsufail::serve {

class QueryCache {
 public:
  /// `capacity` = maximum resident entries; the least recently used
  /// entry is evicted on overflow.  Capacity 0 disables caching (every
  /// get misses, puts are dropped).
  explicit QueryCache(std::size_t capacity) : capacity_(capacity) {}

  /// The cached fragment, refreshing its LRU position; nullopt on miss.
  std::optional<std::string> get(std::string_view tenant, std::uint64_t epoch,
                                 std::string_view key);

  /// Inserts (or refreshes) one fragment.
  void put(std::string_view tenant, std::uint64_t epoch, std::string_view key,
           std::string value);

  /// Drops every entry of `tenant` with an epoch below `epoch`; returns
  /// how many were dropped.
  std::size_t invalidate_before(std::string_view tenant, std::uint64_t epoch);

  /// Lifetime counters (monotone) plus the current entry count.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidated = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::string tenant;
    std::uint64_t epoch = 0;
    std::string value;
    std::list<std::string>::iterator lru;  ///< position in lru_ (MRU front)
  };

  static std::string make_key(std::string_view tenant, std::uint64_t epoch,
                              std::string_view key);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< cache keys, most recently used first
  Stats stats_;
};

}  // namespace tsufail::serve
