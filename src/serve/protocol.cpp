#include "serve/protocol.h"

#include <sstream>
#include <utility>

#include "data/log_io.h"
#include "stream/alerts.h"
#include "util/simd.h"

namespace tsufail::serve {
namespace {

/// First whitespace-delimited token; `rest` gets everything after the
/// separating spaces (empty if none).
std::string_view take_token(std::string_view& rest) {
  std::size_t start = rest.find_first_not_of(' ');
  if (start == std::string_view::npos) {
    rest = {};
    return {};
  }
  std::size_t end = rest.find(' ', start);
  std::string_view token = rest.substr(start, end == std::string_view::npos ? end : end - start);
  rest = end == std::string_view::npos ? std::string_view{} : rest.substr(end + 1);
  std::size_t next = rest.find_first_not_of(' ');
  rest = next == std::string_view::npos ? std::string_view{} : rest.substr(next);
  return token;
}

void err(std::string& out, const Error& error) {
  std::string message = error.to_string();
  for (char& c : message)
    if (c == '\n' || c == '\r') c = ' ';
  out += "ERR ";
  out += message;
  out += '\n';
}

void err(std::string& out, std::string_view message) {
  err(out, Error(ErrorKind::kValidation, std::string(message)));
}

/// "OK <header> bytes <n>\n" followed by exactly n payload bytes.
void frame(std::string& out, std::string_view header, std::string_view payload) {
  out += "OK ";
  out += header;
  out += " bytes ";
  out += std::to_string(payload.size());
  out += '\n';
  out += payload;
}

std::string render_stats(const std::string& tenant, const TenantStats& stats) {
  std::ostringstream os;
  os << "tenant: " << tenant << '\n'
     << "epoch: " << stats.epoch << '\n'
     << "records: " << stats.records << '\n'
     << "sealed_pending: " << stats.sealed_pending << '\n'
     << "offered: " << stats.stream.offered << '\n'
     << "accepted: " << stats.stream.accepted << '\n'
     << "released: " << stats.stream.released << '\n'
     << "quarantined_invalid: " << stats.stream.quarantined_invalid << '\n'
     << "quarantined_late: " << stats.stream.quarantined_late << '\n'
     << "rejected_duplicates: " << stats.stream.rejected_duplicates << '\n'
     << "quarantine_dropped: " << stats.stream.quarantine_dropped << '\n'
     << "bad_rows: " << stats.bad_rows << '\n'
     << "alerts_fired: " << stats.alerts_fired << '\n'
     << "alerts_cleared: " << stats.alerts_cleared << '\n'
     << "staleness_seconds: " << stats.staleness_seconds << '\n';
  return std::move(os).str();
}

std::string render_keys() {
  std::ostringstream os;
  for (const auto& key : FleetService::keys())
    os << key.key << " - " << key.summary << '\n';
  return std::move(os).str();
}

std::string render_tenants(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    out += name;
    out += '\n';
  }
  return out;
}

std::string render_alerts(const std::vector<stream::Alert>& alerts) {
  std::string out;
  for (const auto& alert : alerts) {
    out += stream::format_alert(alert);
    out += '\n';
  }
  return out;
}

void http_response(std::string& out, int status, std::string_view reason,
                   std::string_view body) {
  out += "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
}

}  // namespace

bool Connection::feed(std::string_view bytes, std::string& out) {
  if (close_) return false;
  std::size_t pos = 0;
  while (pos < bytes.size() && !close_) {
    // SIMD block scan (32 bytes per probe on AVX2); same npos semantics
    // as string_view::find.
    std::size_t newline = simd::find_byte(bytes, '\n', pos);
    std::string_view chunk =
        bytes.substr(pos, newline == std::string_view::npos ? newline : newline - pos);
    const bool complete = newline != std::string_view::npos;
    pos = complete ? newline + 1 : bytes.size();

    if (discarding_) {
      if (complete) discarding_ = false;  // oversized line finally ended
      continue;
    }
    if (buffer_.size() + chunk.size() > config_.max_line_bytes) {
      err(out, "line exceeds " + std::to_string(config_.max_line_bytes) +
                   " bytes; discarded");
      buffer_.clear();
      discarding_ = !complete;
      continue;
    }
    if (!complete) {
      buffer_.append(chunk);  // partial write: wait for the rest
      continue;
    }
    if (buffer_.empty()) {
      handle_line(chunk, out);
    } else {
      buffer_.append(chunk);
      std::string line = std::move(buffer_);
      buffer_.clear();
      handle_line(line, out);
    }
  }
  return !close_;
}

void Connection::handle_line(std::string_view line, std::string& out) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  if (!saw_input_) {
    saw_input_ = true;
    if (line.substr(0, 4) == "GET ") {
      http_ = true;
      std::string_view rest = line.substr(4);
      std::size_t space = rest.find(' ');
      http_path_ = std::string(rest.substr(0, space));
      return;  // headers follow; the blank line triggers the response
    }
  }
  if (http_) {
    if (line.empty()) {
      handle_http_request(http_path_, out);
      close_ = true;
    }
    return;  // ignore request headers
  }
  if (line.empty()) return;
  handle_command(line, out);
}

void Connection::handle_command(std::string_view line, std::string& out) {
  std::string_view rest = line;
  std::string_view command = take_token(rest);

  if (command == "PING") {
    out += "OK pong\n";
  } else if (command == "QUIT") {
    out += "OK bye\n";
    close_ = true;
  } else if (command == "OPEN") {
    std::string tenant(take_token(rest));
    std::string_view machine_name = take_token(rest);
    if (tenant.empty() || machine_name.empty()) {
      err(out, "usage: OPEN <tenant> <machine>");
      return;
    }
    auto machine = data::parse_machine(machine_name);
    if (!machine.ok()) {
      err(out, machine.error());
      return;
    }
    const data::MachineSpec& spec = data::spec_for(machine.value());
    if (auto opened = service_->open_tenant(tenant, spec); !opened.ok()) {
      err(out, opened.error());
      return;
    }
    out += "OK tenant " + tenant + " machine " + std::string(data::to_string(spec.machine)) +
           "\n";
  } else if (command == "EVENT") {
    std::string tenant(take_token(rest));
    if (tenant.empty() || rest.empty()) {
      err(out, "usage: EVENT <tenant> <csv-row>");
      return;
    }
    auto outcome = service_->ingest_row(tenant, rest);
    if (!outcome.ok()) err(out, outcome.error());
    // Accepted/quarantined rows are silent: replay is not chatty, and
    // stream-level quarantines are visible through STATS.
  } else if (command == "SEAL") {
    std::string tenant(take_token(rest));
    if (tenant.empty()) {
      err(out, "usage: SEAL <tenant>");
      return;
    }
    auto epoch = service_->seal(tenant);
    if (!epoch.ok()) {
      err(out, epoch.error());
      return;
    }
    out += "OK epoch " + std::to_string(epoch.value()) + "\n";
  } else if (command == "QUERY") {
    std::string tenant(take_token(rest));
    std::string key(take_token(rest));
    if (tenant.empty() || key.empty()) {
      err(out, "usage: QUERY <tenant> <key>");
      return;
    }
    auto response = service_->query(tenant, key);
    if (!response.ok()) {
      err(out, response.error());
      return;
    }
    frame(out,
          "query " + tenant + " " + key + " epoch " + std::to_string(response.value().epoch) +
              " cached " + (response.value().cached ? "1" : "0"),
          response.value().text);
  } else if (command == "STATS") {
    std::string tenant(take_token(rest));
    if (tenant.empty()) {
      err(out, "usage: STATS <tenant>");
      return;
    }
    auto stats = service_->tenant_stats(tenant);
    if (!stats.ok()) {
      err(out, stats.error());
      return;
    }
    frame(out, "stats " + tenant, render_stats(tenant, stats.value()));
  } else if (command == "ALERTS") {
    std::string tenant(take_token(rest));
    if (tenant.empty()) {
      err(out, "usage: ALERTS <tenant>");
      return;
    }
    auto alerts = service_->recent_alerts(tenant);
    if (!alerts.ok()) {
      err(out, alerts.error());
      return;
    }
    frame(out, "alerts " + tenant, render_alerts(alerts.value()));
  } else if (command == "TENANTS") {
    frame(out, "tenants", render_tenants(service_->tenant_names()));
  } else if (command == "KEYS") {
    frame(out, "keys", render_keys());
  } else if (command == "METRICS") {
    frame(out, "metrics", FleetService::metrics_text());
  } else if (command == "SLO") {
    if (!rest.empty()) {
      err(out, "usage: SLO (no arguments)");
      return;
    }
    frame(out, "slo", service_->slo_text());
  } else {
    err(out, "unknown command '" + std::string(command) + "'");
  }
}

void Connection::handle_http_request(std::string_view path, std::string& out) {
  auto segment = [&](std::string_view prefix) -> std::string_view {
    return path.substr(prefix.size());
  };
  if (path == "/metrics") {
    http_response(out, 200, "OK", FleetService::metrics_text());
    return;
  }
  if (path == "/tenants") {
    http_response(out, 200, "OK", render_tenants(service_->tenant_names()));
    return;
  }
  if (path == "/slo") {
    http_response(out, 200, "OK", service_->slo_text());
    return;
  }
  if (path == "/healthz") {
    // Burning objectives flip the status code so dumb probes (curl -f,
    // load balancers) see unhealthy without parsing the body.
    const bool burning = service_->health_state() == obs::SloState::kBurning;
    http_response(out, burning ? 503 : 200, burning ? "Service Unavailable" : "OK",
                  service_->healthz_text());
    return;
  }
  if (path.rfind("/stats/", 0) == 0) {
    std::string tenant(segment("/stats/"));
    auto stats = service_->tenant_stats(tenant);
    if (!stats.ok()) {
      http_response(out, 404, "Not Found", stats.error().to_string() + "\n");
      return;
    }
    http_response(out, 200, "OK", render_stats(tenant, stats.value()));
    return;
  }
  if (path.rfind("/query/", 0) == 0) {
    std::string_view rest = segment("/query/");
    std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) {
      http_response(out, 404, "Not Found", "expected /query/<tenant>/<key>\n");
      return;
    }
    std::string tenant(rest.substr(0, slash));
    std::string key(rest.substr(slash + 1));
    auto response = service_->query(tenant, key);
    if (!response.ok()) {
      http_response(out, 404, "Not Found", response.error().to_string() + "\n");
      return;
    }
    http_response(out, 200, "OK", response.value().text);
    return;
  }
  http_response(out, 404, "Not Found",
                "routes: /metrics /slo /healthz /tenants /stats/<tenant> "
                "/query/<tenant>/<key>\n");
}

}  // namespace tsufail::serve
