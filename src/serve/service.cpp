#include "serve/service.h"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <utility>

#include "analysis/study.h"
#include "data/columnar.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "report/study_text.h"

namespace tsufail::serve {
namespace {

obs::Counter& query_requests() {
  static obs::Counter c = obs::counter("serve.query.requests");
  return c;
}
obs::Counter& query_cache_hits() {
  static obs::Counter c = obs::counter("serve.query.cache_hits");
  return c;
}
obs::Counter& query_cache_misses() {
  static obs::Counter c = obs::counter("serve.query.cache_misses");
  return c;
}
obs::Counter& query_errors() {
  static obs::Counter c = obs::counter("serve.query.errors");
  return c;
}
obs::Histogram& query_seconds() {
  // Exemplars on: every bucket remembers its slowest query's trace id,
  // so a burning latency SLO links straight into the Chrome trace.
  static obs::Histogram h = obs::histogram("serve.query.seconds", obs::time_buckets_seconds(),
                                           obs::ExemplarMode::kMaxPerBucket);
  return h;
}
obs::Gauge& tenants_gauge() {
  static obs::Gauge g = obs::gauge("serve.tenants");
  return g;
}
obs::Counter& dropped_series() {
  static obs::Counter c = obs::counter("obs.dropped_series");
  return c;
}

/// Series registered per tenant when per-tenant metrics are on (keep in
/// sync with Tenant's constructor).
constexpr std::size_t kSeriesPerTenant = 7;

constexpr std::string_view kStudyKey = "study";
constexpr std::string_view kStudySummary =
    "full analyze report (byte-identical to `tsufail analyze`)";

}  // namespace

FleetService::FleetService(ServiceConfig config)
    : config_(config), cache_(config.cache_capacity), slo_(config.slo.windows) {
  query_seconds();  // register eagerly so the first SLO ticks see the histogram
  const SloTargets& targets = config_.slo;
  if (targets.query_p99_seconds > 0.0) {
    obs::SloObjective objective;
    objective.name = "serve.query.p99";
    objective.kind = obs::SloKind::kLatencyQuantile;
    objective.metric = "serve.query.seconds";
    objective.threshold = targets.query_p99_seconds;
    objective.quantile = 0.99;
    objective.budget = targets.query_budget;
    slo_.add_objective(std::move(objective));
  }
  if (targets.cache_miss_budget > 0.0) {
    obs::SloObjective objective;
    objective.name = "serve.query.cache_miss_ratio";
    objective.kind = obs::SloKind::kErrorRatio;
    objective.metric = "serve.query.cache_misses";
    objective.denominator = "serve.query.requests";
    objective.budget = targets.cache_miss_budget;
    slo_.add_objective(std::move(objective));
  }
  if (targets.min_ingest_per_s > 0.0) {
    obs::SloObjective objective;
    objective.name = "serve.ingest.throughput";
    objective.kind = obs::SloKind::kThroughputMin;
    objective.metric = "serve.ingest.events";
    objective.threshold = targets.min_ingest_per_s;
    objective.budget = 0.1;
    slo_.add_objective(std::move(objective));
  }
}

Result<void> FleetService::open_tenant(const std::string& name, const data::MachineSpec& spec) {
  return open_tenant(name, spec, config_.tenant);
}

Result<void> FleetService::open_tenant(const std::string& name, const data::MachineSpec& spec,
                                       const TenantConfig& config) {
  TenantConfig effective = config;
  bool metered = effective.per_tenant_metrics;
  {
    // Cardinality cap: past max_tenant_series tenants, per-tenant series
    // are suppressed (counted into obs.dropped_series) so a tenant flood
    // cannot grow the registry without bound.
    std::unique_lock lock(tenants_mutex_);
    if (metered && metered_tenants_ >= config_.max_tenant_series) {
      effective.per_tenant_metrics = false;
      metered = false;
      dropped_series().add(kSeriesPerTenant);
    }
  }
  auto tenant = Tenant::open(name, spec, effective);
  if (!tenant.ok()) return tenant.error().with_context("open tenant");
  // The callback outlives nothing: tenants are owned by (and die with)
  // this service, and QueryCache is internally synchronized.
  tenant.value()->set_epoch_callback([this](const std::string& who, std::uint64_t epoch) {
    cache_.invalidate_before(who, epoch);
  });
  std::unique_lock lock(tenants_mutex_);
  auto [it, inserted] = tenants_.emplace(name, std::move(tenant).value());
  if (!inserted)
    return Error(ErrorKind::kValidation, "tenant '" + name + "' is already open");
  if (metered) {
    ++metered_tenants_;
    // Watermark-staleness objective over the tenant's staleness gauge
    // (refreshed by slo_tick): released records must become queryable
    // within the ceiling.
    if (config_.slo.staleness_ceiling_s > 0.0) {
      obs::SloObjective objective;
      objective.name = "serve.tenant." + name + ".staleness";
      objective.kind = obs::SloKind::kStalenessMax;
      objective.metric = "serve.tenant." + name + ".staleness";
      objective.threshold = config_.slo.staleness_ceiling_s;
      objective.budget = config_.slo.staleness_budget;
      slo_.add_objective(std::move(objective));
    }
  }
  tenants_gauge().set(static_cast<double>(tenants_.size()));
  return {};
}

Result<std::size_t> FleetService::restore_tenants() {
  namespace fs = std::filesystem;
  if (config_.tenant.data_dir.empty()) return std::size_t{0};
  const fs::path root(config_.tenant.data_dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return std::size_t{0};

  // Collect candidate tenant names first so restores happen in a
  // deterministic (ascending) order regardless of directory iteration.
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory()) names.push_back(entry.path().filename().string());
  }
  if (ec)
    return Error(ErrorKind::kIo,
                 "cannot list data directory " + root.string() + ": " + ec.message());
  std::sort(names.begin(), names.end());

  std::size_t restored = 0;
  for (const auto& name : names) {
    if (find(name) != nullptr) continue;
    // The newest segment carries the tenant's machine spec; directories
    // with no segments are not tenants and are skipped.
    fs::path newest;
    std::uint64_t newest_epoch = 0;
    for (const auto& entry : fs::directory_iterator(root / name, ec)) {
      if (!entry.is_regular_file()) continue;
      const auto epoch = segment_epoch(entry.path().filename().string());
      if (!epoch.has_value()) continue;
      if (newest.empty() || *epoch > newest_epoch) {
        newest = entry.path();
        newest_epoch = *epoch;
      }
    }
    if (newest.empty()) continue;
    auto segment = data::ColumnarSnapshot::open(newest.string());
    if (!segment.ok()) return segment.error().with_context("restore tenant '" + name + "'");
    auto opened = open_tenant(name, segment.value()->spec());
    if (!opened.ok()) return opened.error().with_context("restore tenant '" + name + "'");
    ++restored;
  }
  return restored;
}

Tenant* FleetService::find(const std::string& name) const {
  std::shared_lock lock(tenants_mutex_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Result<stream::IngestOutcome> FleetService::ingest_row(const std::string& tenant,
                                                       std::string_view row) {
  Tenant* t = find(tenant);
  if (t == nullptr) return Error(ErrorKind::kNotFound, "unknown tenant '" + tenant + "'");
  return t->ingest_row(row);
}

Result<std::uint64_t> FleetService::seal(const std::string& tenant) {
  Tenant* t = find(tenant);
  if (t == nullptr) return Error(ErrorKind::kNotFound, "unknown tenant '" + tenant + "'");
  return t->seal();
}

Result<FleetService::QueryResponse> FleetService::query(const std::string& tenant,
                                                        std::string_view key) {
  OBS_SPAN("serve.query");
  obs::Stopwatch timer;
  query_requests().add();

  Tenant* t = find(tenant);
  if (t == nullptr) {
    query_errors().add();
    return Error(ErrorKind::kNotFound, "unknown tenant '" + tenant + "'");
  }
  if (!is_key(key)) {
    query_errors().add();
    return Error(ErrorKind::kNotFound,
                 "unknown query key '" + std::string(key) + "' (see KEYS)");
  }

  data::SnapshotPtr snapshot = t->snapshot();
  const std::uint64_t epoch = snapshot->epoch();

  if (auto hit = cache_.get(tenant, epoch, key)) {
    query_cache_hits().add();
    query_seconds().observe(timer.seconds());
    return QueryResponse{epoch, true, std::move(*hit)};
  }
  query_cache_misses().add();

  Result<std::string> text = [&]() -> Result<std::string> {
    if (key == kStudyKey) {
      auto study = analysis::run_study(snapshot->log(), {config_.study_jobs});
      if (!study.ok()) return study.error();
      return report::render_study_text(snapshot->log(), study.value());
    }
    return analysis::run_query(key, snapshot->index());
  }();
  if (!text.ok()) {
    query_errors().add();
    query_seconds().observe(timer.seconds());
    return text.error().with_context("query '" + std::string(key) + "' on '" + tenant + "'");
  }

  cache_.put(tenant, epoch, key, text.value());
  query_seconds().observe(timer.seconds());
  return QueryResponse{epoch, false, std::move(text).value()};
}

Result<TenantStats> FleetService::tenant_stats(const std::string& tenant) const {
  Tenant* t = find(tenant);
  if (t == nullptr) return Error(ErrorKind::kNotFound, "unknown tenant '" + tenant + "'");
  return t->stats();
}

Result<std::vector<stream::Alert>> FleetService::recent_alerts(const std::string& tenant) const {
  Tenant* t = find(tenant);
  if (t == nullptr) return Error(ErrorKind::kNotFound, "unknown tenant '" + tenant + "'");
  return t->recent_alerts();
}

std::vector<std::string> FleetService::tenant_names() const {
  std::shared_lock lock(tenants_mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;  // std::map keeps them ascending
}

std::vector<analysis::QueryKey> FleetService::keys() {
  std::vector<analysis::QueryKey> out;
  auto base = analysis::query_keys();
  out.reserve(base.size() + 1);
  out.push_back({kStudyKey, kStudySummary});
  out.insert(out.end(), base.begin(), base.end());
  return out;
}

bool FleetService::is_key(std::string_view key) noexcept {
  return key == kStudyKey || analysis::is_query_key(key);
}

std::string FleetService::metrics_text() {
  return obs::prometheus_text(obs::collect_metrics());
}

void FleetService::slo_tick(std::uint64_t now_ns) {
  if (now_ns == 0) now_ns = obs::now_ns();
  // Refresh the per-tenant staleness gauges before snapshotting; stats()
  // writes the gauge as a side effect.
  {
    std::shared_lock lock(tenants_mutex_);
    for (const auto& [name, tenant] : tenants_) (void)tenant->stats();
  }
  slo_.tick(obs::collect_metrics(), now_ns);
}

std::vector<obs::SloStatus> FleetService::slo_statuses(std::uint64_t now_ns) const {
  return slo_.evaluate(now_ns == 0 ? obs::now_ns() : now_ns);
}

std::string FleetService::slo_text(std::uint64_t now_ns) const {
  return obs::render_slo_text(slo_statuses(now_ns));
}

obs::SloState FleetService::health_state(std::uint64_t now_ns) const {
  return obs::aggregate_slo_state(slo_statuses(now_ns));
}

std::string FleetService::healthz_text(std::uint64_t now_ns) const {
  const std::vector<obs::SloStatus> statuses = slo_statuses(now_ns);
  std::string out = "status ";
  out += obs::slo_state_name(obs::aggregate_slo_state(statuses));
  out += '\n';
  constexpr std::string_view kTenantPrefix = "serve.tenant.";
  for (const obs::SloStatus& status : statuses) {
    if (status.objective.starts_with(kTenantPrefix)) {
      const std::string_view tail =
          std::string_view(status.objective).substr(kTenantPrefix.size());
      out += "tenant ";
      out += tail.substr(0, tail.find('.'));
    } else {
      out += "fleet";
    }
    out += ' ';
    out += status.objective;
    out += ' ';
    out += obs::slo_state_name(status.state);
    out += ' ';
    out += status.reason;
    out += '\n';
  }
  return out;
}

}  // namespace tsufail::serve
