#include "serve/cache.h"

namespace tsufail::serve {

std::string QueryCache::make_key(std::string_view tenant, std::uint64_t epoch,
                                 std::string_view key) {
  // '\x1f' (unit separator) cannot appear in tenant names or query keys,
  // so the concatenation is injective.
  std::string out;
  out.reserve(tenant.size() + key.size() + 24);
  out.append(tenant).push_back('\x1f');
  out.append(std::to_string(epoch)).push_back('\x1f');
  out.append(key);
  return out;
}

std::optional<std::string> QueryCache::get(std::string_view tenant, std::uint64_t epoch,
                                           std::string_view key) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(make_key(tenant, epoch, key));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh to MRU
  return it->second.value;
}

void QueryCache::put(std::string_view tenant, std::uint64_t epoch, std::string_view key,
                     std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  std::string cache_key = make_key(tenant, epoch, key);
  auto it = entries_.find(cache_key);
  if (it != entries_.end()) {
    it->second.value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(cache_key);
  entries_.emplace(std::move(cache_key),
                   Entry{std::string(tenant), epoch, std::move(value), lru_.begin()});
  ++stats_.insertions;
}

std::size_t QueryCache::invalidate_before(std::string_view tenant, std::uint64_t epoch) {
  std::lock_guard lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.tenant == tenant && it->second.epoch < epoch) {
      lru_.erase(it->second.lru);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidated += dropped;
  return dropped;
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace tsufail::serve
