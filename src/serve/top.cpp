#include "serve/top.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tsufail::serve {
namespace {

std::string format_fixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_burn(double burn) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.1fx", burn);
  return buffer;
}

/// Pads (or leaves alone — never truncates) to `width` columns.
std::string pad(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

const char* state_color(obs::SloState state) {
  switch (state) {
    case obs::SloState::kOk: return "\x1b[32m";        // green
    case obs::SloState::kNoData: return "\x1b[2m";     // dim
    case obs::SloState::kDegraded: return "\x1b[33m";  // yellow
    case obs::SloState::kBurning: return "\x1b[31m";   // red
  }
  return "";
}

}  // namespace

TopTenant parse_top_tenant(const std::string& name, std::string_view stats_block) {
  TopTenant row;
  row.name = name;
  std::size_t pos = 0;
  while (pos < stats_block.size()) {
    std::size_t newline = stats_block.find('\n', pos);
    if (newline == std::string_view::npos) newline = stats_block.size();
    const std::string_view line = stats_block.substr(pos, newline - pos);
    pos = newline + 1;
    const std::size_t colon = line.find(": ");
    if (colon == std::string_view::npos) continue;
    const std::string_view key = line.substr(0, colon);
    const std::string value(line.substr(colon + 2));
    if (key == "epoch") row.epoch = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "records") row.records = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "sealed_pending") row.pending = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "offered") row.offered = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "quarantined_invalid" || key == "quarantined_late")
      row.quarantined += std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "alerts_fired") row.alerts_fired = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "staleness_seconds") row.staleness_seconds = std::strtod(value.c_str(), nullptr);
  }
  return row;
}

Result<TopSnapshot> fetch_top(LineClient& client, const std::string& target) {
  TopSnapshot snapshot;
  snapshot.target = target;

  auto slo_payload = client.framed("SLO");
  if (!slo_payload.ok()) return slo_payload.error().with_context("fetching /slo");
  auto statuses = obs::parse_slo_text(slo_payload.value());
  if (!statuses.ok()) return statuses.error().with_context("parsing SLO table");
  snapshot.objectives = std::move(statuses.value());

  auto tenants_payload = client.framed("TENANTS");
  if (!tenants_payload.ok()) return tenants_payload.error().with_context("fetching tenants");
  std::istringstream names(tenants_payload.value());
  std::string name;
  while (std::getline(names, name)) {
    if (name.empty()) continue;
    auto stats_payload = client.framed("STATS " + name);
    if (!stats_payload.ok())
      return stats_payload.error().with_context("fetching stats for " + name);
    snapshot.tenants.push_back(parse_top_tenant(name, stats_payload.value()));
  }

  auto metrics_payload = client.framed("METRICS");
  if (!metrics_payload.ok()) return metrics_payload.error().with_context("fetching metrics");
  auto metrics = obs::parse_prometheus_text(metrics_payload.value());
  if (!metrics.ok()) return metrics.error().with_context("parsing /metrics");
  // parse_prometheus_text returns sanitized names ('.' became '_').
  if (const auto* latency = metrics.value().find_histogram("serve_query_seconds")) {
    snapshot.query_p50 = obs::histogram_quantile(*latency, 0.50);
    snapshot.query_p95 = obs::histogram_quantile(*latency, 0.95);
    snapshot.query_p99 = obs::histogram_quantile(*latency, 0.99);
    snapshot.query_count = latency->count;
  }
  if (const auto* hits = metrics.value().find_counter("serve_query_cache_hits"))
    snapshot.cache_hits = hits->value;
  if (const auto* misses = metrics.value().find_counter("serve_query_cache_misses"))
    snapshot.cache_misses = misses->value;
  for (const auto& histogram : metrics.value().histograms)
    snapshot.exemplars += histogram.exemplars.size();
  return snapshot;
}

std::string render_top(const TopSnapshot& snapshot, bool ansi) {
  const char* reset = ansi ? "\x1b[0m" : "";
  std::string out;
  if (ansi) out += "\x1b[H\x1b[2J";  // cursor home + clear screen

  const obs::SloState aggregate = obs::aggregate_slo_state(snapshot.objectives);
  out += "tsufail top — " + snapshot.target + "   fleet: ";
  if (ansi) out += state_color(aggregate);
  out += slo_state_name(aggregate);
  out += reset;
  out += '\n';

  out += "\nOBJECTIVES\n";
  out += pad("NAME", 36) + pad("STATE", 10) + pad("FAST", 8) + pad("SLOW", 8) +
         pad("VALUE", 12) + pad("TARGET", 12) + "REASON\n";
  for (const auto& status : snapshot.objectives) {
    out += pad(status.objective, 36);
    if (ansi) out += state_color(status.state);
    out += pad(std::string(slo_state_name(status.state)), 10);
    out += reset;
    out += pad(format_burn(status.fast_burn), 8);
    out += pad(format_burn(status.slow_burn), 8);
    out += pad(format_fixed(status.value, 4), 12);
    out += pad(format_fixed(status.threshold, 4), 12);
    out += status.reason;
    out += '\n';
  }
  if (snapshot.objectives.empty()) out += "(no objectives registered)\n";

  const std::uint64_t lookups = snapshot.cache_hits + snapshot.cache_misses;
  const double hit_pct = lookups == 0 ? 0.0 : 100.0 * snapshot.cache_hits / lookups;
  out += "\nQUERIES  p50 " + format_fixed(snapshot.query_p50, 4) + "s  p95 " +
         format_fixed(snapshot.query_p95, 4) + "s  p99 " + format_fixed(snapshot.query_p99, 4) +
         "s  count " + std::to_string(snapshot.query_count) + "  cache_hit " +
         format_fixed(hit_pct, 1) + "%  exemplars " + std::to_string(snapshot.exemplars) + '\n';

  out += "\nTENANTS\n";
  out += pad("NAME", 20) + pad("EPOCH", 8) + pad("RECORDS", 10) + pad("PENDING", 10) +
         pad("OFFERED", 10) + pad("QUARANTINED", 13) + pad("ALERTS", 8) + "STALE_S\n";
  for (const auto& tenant : snapshot.tenants) {
    out += pad(tenant.name, 20);
    out += pad(std::to_string(tenant.epoch), 8);
    out += pad(std::to_string(tenant.records), 10);
    out += pad(std::to_string(tenant.pending), 10);
    out += pad(std::to_string(tenant.offered), 10);
    out += pad(std::to_string(tenant.quarantined), 13);
    out += pad(std::to_string(tenant.alerts_fired), 8);
    out += format_fixed(tenant.staleness_seconds, 1);
    out += '\n';
  }
  if (snapshot.tenants.empty()) out += "(no tenants open)\n";
  return out;
}

}  // namespace tsufail::serve
