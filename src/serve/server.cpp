#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

namespace tsufail::serve {
namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Writes all of `data`, tolerating partial sends.  False on any error
/// (peer gone); MSG_NOSIGNAL keeps EPIPE a return value, not a signal.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

}  // namespace

struct Server::Impl {
  FleetService* service = nullptr;
  ServerConfig config;
  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> running{false};

  std::thread acceptor;
  std::mutex mutex;  // guards clients + threads
  std::unordered_set<int> clients;
  std::vector<std::thread> threads;

  void accept_loop() {
    while (running.load()) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listener closed by stop()
      }
      std::lock_guard lock(mutex);
      if (!running.load()) {
        ::close(fd);
        break;
      }
      clients.insert(fd);
      threads.emplace_back([this, fd] { serve_client(fd); });
    }
  }

  void serve_client(int fd) {
    Connection connection(*service, config.protocol);
    std::string out;
    char buffer[4096];
    bool open = true;
    while (open && running.load()) {
      ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;  // disconnect (abrupt or orderly) — just stop
      out.clear();
      open = connection.feed({buffer, static_cast<std::size_t>(got)}, out);
      if (!out.empty() && !send_all(fd, out)) break;
    }
    // Erase and close under one lock so stop()'s shutdown sweep can
    // never touch a just-recycled descriptor.
    std::lock_guard lock(mutex);
    clients.erase(fd);
    ::close(fd);
  }
};

Result<std::unique_ptr<Server>> Server::start(FleetService& service, ServerConfig config) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error(ErrorKind::kIo, errno_text("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(ErrorKind::kValidation, "bad listen address '" + config.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Error error(ErrorKind::kIo, errno_text("bind " + config.host + ":" +
                                           std::to_string(config.port)));
    ::close(fd);
    return error;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Error error(ErrorKind::kIo, errno_text("listen"));
    ::close(fd);
    return error;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Error error(ErrorKind::kIo, errno_text("getsockname"));
    ::close(fd);
    return error;
  }

  std::unique_ptr<Server> server(new Server());
  server->impl_ = std::make_unique<Impl>();
  server->impl_->service = &service;
  server->impl_->config = std::move(config);
  server->impl_->listen_fd = fd;
  server->impl_->bound_port = ntohs(bound.sin_port);
  server->impl_->running.store(true);
  server->impl_->acceptor = std::thread([impl = server->impl_.get()] { impl->accept_loop(); });
  return server;
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

void Server::stop() {
  if (impl_ == nullptr || !impl_->running.exchange(false)) return;
  // Closing the listener unblocks accept(); closing clients unblocks
  // their recv()s (and fails any in-flight send to a stalled peer).
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  {
    std::lock_guard lock(impl_->mutex);
    for (int fd : impl_->clients) ::shutdown(fd, SHUT_RDWR);
  }
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  // Connection threads remove themselves from `clients` but append to
  // `threads` only under the acceptor; after the acceptor joined, the
  // vector is stable.
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(impl_->mutex);
    threads.swap(impl_->threads);
  }
  for (auto& thread : threads)
    if (thread.joinable()) thread.join();
}

Server::~Server() { stop(); }

}  // namespace tsufail::serve
