// Blocking POSIX TCP front-end for the fleet service.
//
// Deliberately dumb: one acceptor thread plus one thread per connection,
// each pumping recv() bytes through a protocol Connection and send()ing
// whatever it emits.  All protocol logic, framing, and robustness lives
// in Connection (where it is unit-tested without sockets); the server
// adds only lifecycle — bind/listen (port 0 = kernel-assigned, reported
// via port()), fd tracking so stop() can unblock every thread, and
// EPIPE-safe writes so an abruptly vanished client kills its own thread
// and nothing else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.h"
#include "serve/service.h"
#include "util/error.h"

namespace tsufail::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (see port()).
  std::uint16_t port = 0;
  ProtocolConfig protocol;
};

class Server {
 public:
  /// Binds, listens, and starts accepting.  Errors: bad host, bind or
  /// listen failure (message carries errno text).
  static Result<std::unique_ptr<Server>> start(FleetService& service, ServerConfig config = {});

  /// Stops accepting, closes every connection, joins every thread.
  ~Server();

  /// The bound port (the kernel's choice when config.port was 0).
  std::uint16_t port() const noexcept;

  /// Idempotent shutdown; after it returns no thread is running.
  void stop();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  Server() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tsufail::serve
