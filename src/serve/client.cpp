#include "serve/client.h"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>

namespace tsufail::serve {

Result<std::size_t> parse_frame_header(std::string_view header) {
  if (header.rfind("OK", 0) != 0)
    return Error(ErrorKind::kValidation, "server said: " + std::string(header));
  const std::size_t marker = header.rfind(" bytes ");
  if (marker == std::string_view::npos)
    return Error(ErrorKind::kParse, "unframed response: " + std::string(header));
  const std::string digits(header.substr(marker + 7));
  char* end = nullptr;
  const unsigned long long n = std::strtoull(digits.c_str(), &end, 10);
  if (end == digits.c_str() || *end != '\0')
    return Error(ErrorKind::kParse, "bad frame length in: " + std::string(header));
  return static_cast<std::size_t>(n);
}

LineClient::~LineClient() { close(); }

void LineClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  inbox_.clear();
}

Result<void> LineClient::connect(const std::string& host, const std::string& port) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &found) != 0 || found == nullptr)
    return Error(ErrorKind::kIo, "cannot resolve " + host + ":" + port);
  fd_ = ::socket(found->ai_family, found->ai_socktype, found->ai_protocol);
  const bool ok = fd_ >= 0 && ::connect(fd_, found->ai_addr, found->ai_addrlen) == 0;
  ::freeaddrinfo(found);
  if (!ok) {
    close();
    return Error(ErrorKind::kIo, "cannot connect to " + host + ":" + port);
  }
  return {};
}

Result<void> LineClient::send_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t sent = ::send(fd_, data.data() + off, data.size() - off, 0);
    if (sent <= 0) return Error(ErrorKind::kIo, "send failed (connection lost?)");
    off += static_cast<std::size_t>(sent);
  }
  return {};
}

Result<void> LineClient::fill() {
  char buffer[4096];
  const ssize_t got = ::recv(fd_, buffer, sizeof buffer, 0);
  if (got <= 0) return Error(ErrorKind::kIo, "connection closed mid-response");
  inbox_.append(buffer, static_cast<std::size_t>(got));
  return {};
}

Result<std::string> LineClient::read_line() {
  for (;;) {
    const std::size_t newline = inbox_.find('\n');
    if (newline != std::string::npos) {
      std::string line = inbox_.substr(0, newline);
      inbox_.erase(0, newline + 1);
      return line;
    }
    if (auto filled = fill(); !filled.ok()) return filled.error();
  }
}

Result<std::string> LineClient::read_bytes(std::size_t n) {
  while (inbox_.size() < n) {
    if (auto filled = fill(); !filled.ok()) return filled.error();
  }
  std::string payload = inbox_.substr(0, n);
  inbox_.erase(0, n);
  return payload;
}

Result<std::string> LineClient::simple(const std::string& line) {
  if (fd_ < 0) return Error(ErrorKind::kValidation, "not connected");
  if (auto sent = send_all(line + "\n"); !sent.ok()) return sent.error();
  auto response = read_line();
  if (!response.ok()) return response.error();
  if (response.value().rfind("OK", 0) != 0)
    return Error(ErrorKind::kValidation, "server said: " + response.value());
  return response;
}

Result<std::string> LineClient::framed(const std::string& line) {
  if (fd_ < 0) return Error(ErrorKind::kValidation, "not connected");
  if (auto sent = send_all(line + "\n"); !sent.ok()) return sent.error();
  auto header = read_line();
  if (!header.ok()) return header.error();
  auto length = parse_frame_header(header.value());
  if (!length.ok()) return length.error().with_context("command '" + line + "'");
  return read_bytes(length.value());
}

}  // namespace tsufail::serve
