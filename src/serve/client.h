// Blocking TCP client for the serve line protocol — the library twin of
// the driver the serve bench carries, with Result-based errors instead
// of exits.  `tsufail top` polls a daemon through this; tests exercise
// the response parsing against canned bytes via parse_frame_header.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.h"

namespace tsufail::serve {

/// Parses "OK <header...> bytes <n>" into n.  Errors on ERR lines and
/// unframed responses.
Result<std::size_t> parse_frame_header(std::string_view header);

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to host:port (IPv4).  A second call reconnects.
  Result<void> connect(const std::string& host, const std::string& port);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends `line` and returns the single "OK ..." response line.
  Result<std::string> simple(const std::string& line);

  /// Sends `line` expecting a framed response; returns the payload.
  Result<std::string> framed(const std::string& line);

 private:
  Result<void> send_all(std::string_view data);
  Result<std::string> read_line();
  Result<std::string> read_bytes(std::size_t n);
  Result<void> fill();

  int fd_ = -1;
  std::string inbox_;
};

}  // namespace tsufail::serve
