// FleetService: the multi-tenant core of `tsufail serve`.
//
// One service owns many tenants (fleets) concurrently, each running the
// full EventStream -> epoch merge -> LogSnapshot pipeline, plus the one
// shared QueryCache.  The protocol and HTTP layers are thin translators
// over this API, so everything observable over a socket is testable here
// without one.
//
// Concurrency: the tenant map is guarded by a shared_mutex (opens are
// rare, lookups constant); per-tenant synchronization lives inside
// Tenant; the cache carries its own lock.  A query therefore touches
// three short critical sections and computes on an immutable snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/query.h"
#include "obs/slo.h"
#include "serve/cache.h"
#include "serve/tenant.h"

namespace tsufail::serve {

/// Error-budget targets for the service's default objectives.  A target
/// of 0 leaves that objective unregistered.
struct SloTargets {
  double query_p99_seconds = 0.1;    ///< "99% of queries answer within this"
  double query_budget = 0.01;        ///< allowed slow-query fraction
  double cache_miss_budget = 0.9;    ///< allowed miss fraction (cold caches miss)
  double min_ingest_per_s = 0.0;     ///< ingest-throughput floor (0 = off)
  double staleness_ceiling_s = 600.0;///< per-tenant watermark staleness bound
  double staleness_budget = 0.1;     ///< allowed fraction of stale ticks
  obs::SloConfig windows;            ///< burn-rate windows and thresholds
};

struct ServiceConfig {
  /// Shared query-cache capacity (entries across all tenants; 0 = off).
  std::size_t cache_capacity = 256;
  /// Defaults applied to tenants opened without an explicit config.
  TenantConfig tenant;
  /// Worker threads for "study" queries (see analysis::StudyOptions).
  std::size_t study_jobs = 1;
  /// Cardinality cap: at most this many tenants register per-tenant
  /// series (serve.tenant.<name>.*).  Tenants past the cap still work,
  /// but open with per-tenant metrics off and count into
  /// obs.dropped_series — a tenant flood cannot blow up the registry.
  std::size_t max_tenant_series = 64;
  /// Default objectives for the SLO engine.
  SloTargets slo;
};

class FleetService {
 public:
  explicit FleetService(ServiceConfig config = {});

  /// Opens a tenant with the service-default tenant config.  Errors:
  /// duplicate name or Tenant::open failures.
  Result<void> open_tenant(const std::string& name, const data::MachineSpec& spec);
  Result<void> open_tenant(const std::string& name, const data::MachineSpec& spec,
                           const TenantConfig& config);

  /// Re-opens every tenant persisted under the default tenant config's
  /// data_dir (each subdirectory holding epoch-*.tsnap segments becomes
  /// one tenant, its spec read from the newest segment).  Tenants whose
  /// names are already open are skipped.  Returns how many were
  /// restored; a no-op when data_dir is empty or missing.
  Result<std::size_t> restore_tenants();

  /// Ingests one canonical CSV row into a tenant.
  Result<stream::IngestOutcome> ingest_row(const std::string& tenant, std::string_view row);

  /// Seals the tenant's pending records into a new epoch (see
  /// Tenant::seal); the cache drops the tenant's stale epochs.
  Result<std::uint64_t> seal(const std::string& tenant);

  /// One answered query: which epoch it reflects, whether the cache
  /// served it, and the rendered fragment.
  struct QueryResponse {
    std::uint64_t epoch = 0;
    bool cached = false;
    std::string text;
  };

  /// Answers one keyed query against the tenant's current snapshot.
  /// Keys: "study" (the full `tsufail analyze` text) plus everything in
  /// analysis::query_keys().  Errors (unknown tenant/key, analysis
  /// domain errors) are never cached.
  Result<QueryResponse> query(const std::string& tenant, std::string_view key);

  Result<TenantStats> tenant_stats(const std::string& tenant) const;
  Result<std::vector<stream::Alert>> recent_alerts(const std::string& tenant) const;

  /// Open tenant names, ascending.
  std::vector<std::string> tenant_names() const;

  /// The full query vocabulary ("study" first, then the analysis keys).
  static std::vector<analysis::QueryKey> keys();
  /// True iff `key` is servable by query().
  static bool is_key(std::string_view key) noexcept;

  QueryCache::Stats cache_stats() const { return cache_.stats(); }

  /// Prometheus text exposition of the whole obs registry (global
  /// serve.* aggregates plus per-tenant series).
  static std::string metrics_text();

  /// One SLO evaluation tick: refreshes per-tenant staleness gauges,
  /// snapshots the registry, and feeds the engine.  The serve daemon
  /// calls this once a second; tests call it with synthetic timestamps.
  /// `now_ns` = 0 means obs::now_ns().
  void slo_tick(std::uint64_t now_ns = 0);

  /// Every objective's status as of `now_ns` (0 = obs::now_ns()).
  std::vector<obs::SloStatus> slo_statuses(std::uint64_t now_ns = 0) const;

  /// The /slo page (render_slo_text over slo_statuses).
  std::string slo_text(std::uint64_t now_ns = 0) const;

  /// The /healthz page: "status <STATE>" headline, then one line per
  /// objective — "fleet <objective> <STATE> <reason>" for service-wide
  /// objectives, "tenant <name> <objective> <STATE> <reason>" for
  /// per-tenant ones.
  std::string healthz_text(std::uint64_t now_ns = 0) const;

  /// Aggregate state across all objectives (kNoData never escalates).
  obs::SloState health_state(std::uint64_t now_ns = 0) const;

  obs::SloEngine& slo_engine() noexcept { return slo_; }

  const ServiceConfig& config() const noexcept { return config_; }

 private:
  Tenant* find(const std::string& name) const;

  ServiceConfig config_;
  QueryCache cache_;
  obs::SloEngine slo_;
  std::size_t metered_tenants_ = 0;  ///< tenants granted per-tenant series
  mutable std::shared_mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace tsufail::serve
