// Tenant: one fleet's live pipeline inside the serve daemon.
//
//   ingest (CSV row) -> EventStream (reorder + quarantine)
//          -> sealed buffer -> epoch refresh (LogSnapshot::extend)
//          -> atomic snapshot swap -> queries
//
// Two locks with a strict story: `ingest_mutex_` serializes writers
// (EventStream, the health monitor, the sealed buffer) and
// `snapshot_mutex_` guards only the current-snapshot pointer.  A query
// copies the SnapshotPtr under the latter and then runs entirely on its
// own immutable snapshot, so readers never block on ingest or on an
// in-flight epoch merge; the merge itself runs outside both locks and
// swaps the pointer at the end.
//
// Every released record also feeds a HealthMonitor + AlertEngine pair
// running the same default rule set as `tsufail watch`
// (stream::default_rules — one definition, two consumers), with raise
// and clear transitions counted into per-tenant obs metrics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/snapshot.h"
#include "obs/metrics.h"
#include "stream/alerts.h"
#include "stream/event_stream.h"
#include "stream/health.h"

namespace tsufail::serve {

struct TenantConfig {
  stream::StreamConfig stream;
  /// Validation slack passed to the epoch merge (generated logs may
  /// overshoot the spec window slightly).
  double slack_hours = 0.0;
  /// Seal automatically once this many released records are waiting
  /// (0 = epochs are sealed only by an explicit seal call).
  std::uint64_t auto_epoch_events = 0;
  /// Register per-tenant obs counters/gauges (serve.tenant.<name>.*).
  /// Global serve.* aggregates are always maintained.
  bool per_tenant_metrics = true;
  /// Run the default alert rule set over the released stream.
  bool alerts = true;
  /// Calibration for the alert baselines (0 = the paper's count for the
  /// machine, via stream::paper_expected_failures).
  std::size_t expected_failures = 0;
  /// Multi-GPU burst threshold for the shared rule set.
  double burst_threshold = 3.0;
  /// Alert transitions kept for the ALERTS query (oldest dropped).
  std::size_t alert_history = 64;
  /// Root directory for columnar epoch segments ("" = in-memory only).
  /// When set, every sealed epoch N atomically writes
  /// <data_dir>/<tenant>/epoch-N.tsnap (records-only columnar snapshot,
  /// checksummed) and open() re-mounts the segments already on disk —
  /// the tenant comes back at its last sealed epoch without replaying
  /// the event stream.  The reorder buffer itself is not persisted:
  /// records still in flight at shutdown re-enter through ingest.
  std::string data_dir;
};

/// Parses a persisted segment filename ("epoch-<N>.tsnap", nothing
/// else) into its epoch number.
std::optional<std::uint64_t> segment_epoch(const std::string& filename);

/// One tenant's counters, consistent at a point in time.
struct TenantStats {
  stream::StreamStats stream;
  std::uint64_t epoch = 0;
  std::size_t records = 0;          ///< records in the current snapshot
  std::size_t sealed_pending = 0;   ///< released, awaiting the next epoch
  std::uint64_t bad_rows = 0;       ///< rows that never parsed to a record
  std::uint64_t alerts_fired = 0;
  std::uint64_t alerts_cleared = 0;
  /// Wall-clock age (seconds) of the oldest released record still
  /// waiting for a seal — the tenant's watermark staleness.  0 when
  /// nothing is pending.
  double staleness_seconds = 0.0;
};

class Tenant {
 public:
  /// Opens a tenant with an empty epoch-0 snapshot — or, when
  /// config.data_dir holds previously sealed segments for this name,
  /// re-mounted at its last persisted epoch.  Errors: invalid stream
  /// config or monitor grid for this spec, unreadable/corrupt segments,
  /// or a segment packed for a different machine.
  static Result<std::unique_ptr<Tenant>> open(std::string name, const data::MachineSpec& spec,
                                              const TenantConfig& config);

  const std::string& name() const noexcept { return name_; }
  const data::MachineSpec& spec() const noexcept { return spec_; }

  /// Ingests one canonical CSV row (write_log_csv shape, no header).
  /// Parse failures and spec-mismatched machines are counted (bad_rows)
  /// and reported back as a value-level error without touching pipeline
  /// state — one garbage line must never poison the tenant.  Thread-safe.
  Result<stream::IngestOutcome> ingest_row(std::string_view row);

  /// Ingests an already-parsed record.  Thread-safe.
  Result<stream::IngestOutcome> ingest(const data::FailureRecord& record);

  /// Seals the current epoch: flushes nothing from the reorder buffer
  /// (the watermark owns that), but merges every *released* record into
  /// a new snapshot and swaps it in.  Returns the new epoch, or the
  /// current one if nothing was pending.  Thread-safe; concurrent seals
  /// serialize.
  Result<std::uint64_t> seal();

  /// The current snapshot (immutable; safe to use for any duration).
  data::SnapshotPtr snapshot() const;

  TenantStats stats() const;

  /// Most recent alert transitions, oldest first.
  std::vector<stream::Alert> recent_alerts() const;

  /// Invoked after every epoch swap with (tenant name, new epoch); the
  /// service hooks cache invalidation here.
  void set_epoch_callback(std::function<void(const std::string&, std::uint64_t)> callback) {
    epoch_callback_ = std::move(callback);
  }

 private:
  Tenant(std::string name, data::MachineSpec spec, const TenantConfig& config);

  void consume_released();  ///< drains the stream; caller holds ingest_mutex_

  /// Re-mounts every epoch segment under data_dir (ascending epoch) into
  /// the starting snapshot.  Returns the restored epoch (0 = none).
  Result<std::uint64_t> remount_segments();
  /// Persists `suffix` (the records epoch `epoch` added) as a segment.
  Result<void> persist_segment(std::uint64_t epoch,
                               std::span<const data::FailureRecord> suffix) const;

  std::string name_;
  data::MachineSpec spec_;
  TenantConfig config_;

  mutable std::mutex ingest_mutex_;
  std::optional<stream::EventStream> events_;
  std::optional<stream::HealthMonitor> monitor_;
  std::optional<stream::AlertEngine> engine_;
  std::vector<data::FailureRecord> sealed_pending_;
  std::uint64_t pending_since_ns_ = 0;  ///< obs clock when pending became non-empty
  std::deque<stream::Alert> alert_history_;
  std::uint64_t bad_rows_ = 0;
  std::uint64_t alerts_fired_ = 0;
  std::uint64_t alerts_cleared_ = 0;

  std::mutex seal_mutex_;  ///< serializes epoch merges
  mutable std::mutex snapshot_mutex_;
  data::SnapshotPtr snapshot_;

  std::function<void(const std::string&, std::uint64_t)> epoch_callback_;

  // Per-tenant metric handles (engaged when per_tenant_metrics).
  std::optional<obs::Counter> ingested_counter_;
  std::optional<obs::Counter> quarantined_counter_;
  std::optional<obs::Counter> fired_counter_;
  std::optional<obs::Counter> cleared_counter_;
  std::optional<obs::Gauge> epoch_gauge_;
  std::optional<obs::Gauge> records_gauge_;
  // mutable: const stats() refreshes the gauge as a side effect.
  mutable std::optional<obs::Gauge> staleness_gauge_;
};

}  // namespace tsufail::serve
