// `tsufail top` — fleet dashboard over the serve line protocol.
//
// Split for testability: fetch_top() talks to a daemon through a
// LineClient (SLO, TENANTS, STATS per tenant, METRICS) and fills a
// TopSnapshot; render_top() is a pure function from snapshot to text,
// so the golden test renders a hand-built snapshot with no socket in
// sight.  Plain mode emits a stable tab-free table for pipes and tests;
// ANSI mode adds a home/clear prefix and state colors for the live
// loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "serve/client.h"

namespace tsufail::serve {

/// One tenant row on the dashboard (a distillation of TenantStats as
/// rendered by the STATS verb).
struct TopTenant {
  std::string name;
  std::uint64_t epoch = 0;
  std::uint64_t records = 0;
  std::uint64_t pending = 0;
  std::uint64_t offered = 0;
  std::uint64_t quarantined = 0;  ///< invalid + late
  std::uint64_t alerts_fired = 0;
  double staleness_seconds = 0.0;
};

struct TopSnapshot {
  std::string target;  ///< host:port the data came from
  std::vector<obs::SloStatus> objectives;
  std::vector<TopTenant> tenants;
  // Fleet-wide query latency, recomputed client-side from the scraped
  // serve.query.seconds histogram.
  double query_p50 = 0.0;
  double query_p95 = 0.0;
  double query_p99 = 0.0;
  std::uint64_t query_count = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t exemplars = 0;  ///< exemplar annotations on the /metrics page
};

/// Parses a STATS payload ("key: value" lines) into a row.  Unknown keys
/// are ignored so older daemons still render.
TopTenant parse_top_tenant(const std::string& name, std::string_view stats_block);

/// Polls one round of SLO + TENANTS + STATS + METRICS.
Result<TopSnapshot> fetch_top(LineClient& client, const std::string& target);

/// Renders the dashboard.  `ansi` adds cursor-home/clear and colors.
std::string render_top(const TopSnapshot& snapshot, bool ansi);

}  // namespace tsufail::serve
