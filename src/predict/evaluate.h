// Replay evaluation of node-risk predictors.
//
// Protocol: walk the log in time order; after a warm-up fraction, each
// failure becomes a test query — just before it happens, rank all nodes
// by predictor score and check where the actually-failing node landed.
// Ties (very common: most nodes score 0) are handled by expectation over
// random tie-breaking, so the uniform baseline correctly measures
// hit@k = k / node_count instead of an artifact of sort order.
#pragma once

#include <string>
#include <vector>

#include "data/log.h"
#include "predict/predictor.h"

namespace tsufail::predict {

struct EvaluationReport {
  std::string predictor;
  std::size_t queries = 0;          ///< post-warm-up failures evaluated
  std::size_t top_k = 0;
  double hit_rate_at_k = 0.0;       ///< expected fraction of queries hit
  double mean_reciprocal_rank = 0.0;///< expected 1/rank of the failing node
  double random_hit_rate = 0.0;     ///< k / node_count floor
  double lift_at_k = 0.0;           ///< hit_rate / random_hit_rate
};

/// Evaluates one predictor on the log.
/// Errors: empty log, warmup outside [0,1), top_k == 0 or > node count,
/// or no post-warm-up queries.
Result<EvaluationReport> evaluate_predictor(const data::FailureLog& log,
                                            NodeRiskPredictor& predictor,
                                            double warmup_fraction = 0.3,
                                            std::size_t top_k = 20);

/// Evaluates the built-in predictor family (uniform, count, recency,
/// hybrid) under identical settings, sorted by descending hit rate.
Result<std::vector<EvaluationReport>> compare_predictors(const data::FailureLog& log,
                                                         double warmup_fraction = 0.3,
                                                         std::size_t top_k = 20);

}  // namespace tsufail::predict
