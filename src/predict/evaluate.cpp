#include "predict/evaluate.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tsufail::predict {
namespace {

obs::Counter& queries_counter() {
  static obs::Counter counter = obs::counter("predict.queries");
  return counter;
}

obs::Counter& observations_counter() {
  static obs::Counter counter = obs::counter("predict.observations");
  return counter;
}

}  // namespace

Result<EvaluationReport> evaluate_predictor(const data::FailureLog& log,
                                            NodeRiskPredictor& predictor,
                                            double warmup_fraction, std::size_t top_k) {
  OBS_SPAN("predict.evaluate");
  if (log.empty())
    return Error(ErrorKind::kDomain, "evaluate_predictor: empty log");
  if (!(warmup_fraction >= 0.0 && warmup_fraction < 1.0))
    return Error(ErrorKind::kDomain, "evaluate_predictor: warmup must be in [0,1)");
  const auto node_count = static_cast<std::size_t>(log.spec().node_count);
  if (top_k == 0 || top_k > node_count)
    return Error(ErrorKind::kDomain, "evaluate_predictor: top_k must be in [1, node_count]");

  predictor.reset();
  const auto records = log.records();
  const auto warmup_end = static_cast<std::size_t>(warmup_fraction *
                                                   static_cast<double>(records.size()));

  EvaluationReport report;
  report.predictor = predictor.name();
  report.top_k = top_k;
  report.random_hit_rate = static_cast<double>(top_k) / static_cast<double>(node_count);

  double hit_sum = 0.0;
  double mrr_sum = 0.0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    if (i >= warmup_end) {
      // Query: rank `record.node` among all nodes by score at this time.
      const double target = predictor.score(record.node, record.time);
      std::size_t strictly_greater = 0;
      std::size_t ties = 0;  // including the target node itself
      for (int node = 0; node < log.spec().node_count; ++node) {
        const double s = predictor.score(node, record.time);
        if (s > target) ++strictly_greater;
        else if (s == target) ++ties;
      }
      // Expected hit@k under random tie-breaking: the target competes for
      // the remaining top-k slots with its tie group.
      if (strictly_greater < top_k) {
        const double slots = static_cast<double>(top_k - strictly_greater);
        hit_sum += std::min(1.0, slots / static_cast<double>(ties));
      }
      // Expected rank = greater + (ties + 1) / 2.
      const double expected_rank =
          static_cast<double>(strictly_greater) + (static_cast<double>(ties) + 1.0) / 2.0;
      mrr_sum += 1.0 / expected_rank;
      ++report.queries;
      queries_counter().add();
    }
    predictor.observe(record);
    observations_counter().add();
  }

  if (report.queries == 0)
    return Error(ErrorKind::kDomain, "evaluate_predictor: no post-warm-up queries");
  report.hit_rate_at_k = hit_sum / static_cast<double>(report.queries);
  report.mean_reciprocal_rank = mrr_sum / static_cast<double>(report.queries);
  report.lift_at_k = report.hit_rate_at_k / report.random_hit_rate;
  return report;
}

Result<std::vector<EvaluationReport>> compare_predictors(const data::FailureLog& log,
                                                         double warmup_fraction,
                                                         std::size_t top_k) {
  OBS_SPAN("predict.compare");
  std::vector<std::unique_ptr<NodeRiskPredictor>> predictors;
  predictors.push_back(make_uniform_predictor());
  predictors.push_back(make_count_predictor());
  predictors.push_back(make_recency_predictor());
  predictors.push_back(make_hybrid_predictor());

  std::vector<EvaluationReport> reports;
  for (auto& predictor : predictors) {
    auto report = evaluate_predictor(log, *predictor, warmup_fraction, top_k);
    if (!report.ok()) return report.error().with_context(predictor->name());
    reports.push_back(report.value());
  }
  std::stable_sort(reports.begin(), reports.end(),
                   [](const EvaluationReport& a, const EvaluationReport& b) {
                     return a.hit_rate_at_k > b.hit_rate_at_k;
                   });
  return reports;
}

}  // namespace tsufail::predict
