#include "predict/predictor.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.h"

namespace tsufail::predict {
namespace {

class UniformPredictor final : public NodeRiskPredictor {
 public:
  std::string name() const override { return "uniform"; }
  void observe(const data::FailureRecord&) override {}
  double score(int, TimePoint) const override { return 0.0; }
  void reset() override {}
};

class CountPredictor final : public NodeRiskPredictor {
 public:
  std::string name() const override { return "count"; }
  void observe(const data::FailureRecord& record) override { ++counts_[record.node]; }
  double score(int node, TimePoint) const override {
    const auto it = counts_.find(node);
    return it == counts_.end() ? 0.0 : static_cast<double>(it->second);
  }
  void reset() override { counts_.clear(); }

 private:
  std::map<int, std::size_t> counts_;
};

class RecencyPredictor final : public NodeRiskPredictor {
 public:
  explicit RecencyPredictor(double tau_hours) : tau_hours_(tau_hours) {
    TSUFAIL_REQUIRE(tau_hours > 0.0, "recency predictor tau must be positive");
  }

  std::string name() const override {
    return "recency(tau=" + std::to_string(static_cast<int>(tau_hours_)) + "h)";
  }

  void observe(const data::FailureRecord& record) override {
    // Fold the new event into the decayed intensity:
    //   I(t) = I(t_prev) * exp(-(t - t_prev)/tau) + 1.
    auto& state = intensity_[record.node];
    state.value = state.value * decay(state.last, record.time) + 1.0;
    state.last = record.time;
  }

  double score(int node, TimePoint now) const override {
    const auto it = intensity_.find(node);
    if (it == intensity_.end()) return 0.0;
    return it->second.value * decay(it->second.last, now);
  }

  void reset() override { intensity_.clear(); }

 private:
  struct State {
    double value = 0.0;
    TimePoint last;
  };

  double decay(TimePoint from, TimePoint to) const {
    const double dt = hours_between(from, to);
    return dt <= 0.0 ? 1.0 : std::exp(-dt / tau_hours_);
  }

  double tau_hours_;
  std::map<int, State> intensity_;
};

class HybridPredictor final : public NodeRiskPredictor {
 public:
  HybridPredictor(double tau_hours, double alpha)
      : recency_(tau_hours), alpha_(alpha) {
    TSUFAIL_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "hybrid alpha must be in [0,1]");
  }

  std::string name() const override { return "hybrid"; }

  void observe(const data::FailureRecord& record) override {
    count_.observe(record);
    recency_.observe(record);
    max_count_ = std::max(max_count_, count_.score(record.node, record.time));
  }

  double score(int node, TimePoint now) const override {
    // Normalize the unbounded count by the fleet's current maximum so the
    // two components live on comparable scales; recency is already <= a
    // few units for realistic streams.
    const double count = max_count_ > 0.0 ? count_.score(node, now) / max_count_ : 0.0;
    return alpha_ * count + (1.0 - alpha_) * recency_.score(node, now);
  }

  void reset() override {
    count_.reset();
    recency_.reset();
    max_count_ = 0.0;
  }

 private:
  CountPredictor count_;
  RecencyPredictor recency_;
  double alpha_;
  double max_count_ = 0.0;
};

}  // namespace

std::unique_ptr<NodeRiskPredictor> make_uniform_predictor() {
  return std::make_unique<UniformPredictor>();
}

std::unique_ptr<NodeRiskPredictor> make_count_predictor() {
  return std::make_unique<CountPredictor>();
}

std::unique_ptr<NodeRiskPredictor> make_recency_predictor(double tau_hours) {
  return std::make_unique<RecencyPredictor>(tau_hours);
}

std::unique_ptr<NodeRiskPredictor> make_hybrid_predictor(double tau_hours, double alpha) {
  return std::make_unique<HybridPredictor>(tau_hours, alpha);
}

}  // namespace tsufail::predict
