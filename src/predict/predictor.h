// Node-level failure-risk predictors.
//
// The paper closes RQ5 with: "lowering the time to recovery requires ...
// leveraging failure prediction to initiate recovery proactively where
// possible."  This module provides the online predictors that make that
// actionable at the node granularity the study exposes: given everything
// observed so far, score every node's risk of failing next.  Predictors
// are deliberately simple, transparent baselines (the fleet sizes here do
// not support deep models): failure counts, recency-decayed intensity,
// and a hybrid — plus a uniform strawman for lift computation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/record.h"

namespace tsufail::predict {

/// Online risk scorer.  observe() is called for every failure in time
/// order; score() may be called between observations for any node.
class NodeRiskPredictor {
 public:
  virtual ~NodeRiskPredictor() = default;

  virtual std::string name() const = 0;

  /// Ingests one failure (records arrive in non-decreasing time order).
  virtual void observe(const data::FailureRecord& record) = 0;

  /// Risk score of `node` at `now`; higher = more likely to fail next.
  /// Scores only need to be comparable across nodes at one instant.
  virtual double score(int node, TimePoint now) const = 0;

  /// Resets all learned state.
  virtual void reset() = 0;
};

/// Uniform baseline: every node equally risky (defines the random-guess
/// floor that lift is measured against).
std::unique_ptr<NodeRiskPredictor> make_uniform_predictor();

/// Lifetime failure count per node ("lemon list").
std::unique_ptr<NodeRiskPredictor> make_count_predictor();

/// Exponentially-decayed failure intensity per node:
/// score = sum_i exp(-(now - t_i) / tau).  Small tau reacts to bursts,
/// large tau approaches the count predictor.
std::unique_ptr<NodeRiskPredictor> make_recency_predictor(double tau_hours = 24.0 * 14);

/// Blend of count and recency: alpha * normalized-count + (1 - alpha) *
/// normalized-recency.  Precondition: 0 <= alpha <= 1.
std::unique_ptr<NodeRiskPredictor> make_hybrid_predictor(double tau_hours = 24.0 * 14,
                                                         double alpha = 0.5);

}  // namespace tsufail::predict
