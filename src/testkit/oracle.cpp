#include "testkit/oracle.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "analysis/study.h"
#include "data/columnar.h"
#include "data/log_index.h"
#include "testkit/reference.h"

namespace tsufail::testkit {
namespace {

// Tolerance tiers (see header).
constexpr std::int64_t kExactUlps = 4;
constexpr std::int64_t kNearUlps = 512;
constexpr double kNearRel = 1e-9;

/// Maps a double onto a monotone signed-integer scale where adjacent
/// representable values differ by 1 (the standard ULP-distance trick).
std::int64_t ulp_key(double x) noexcept {
  const auto bits = std::bit_cast<std::int64_t>(x);
  return bits >= 0 ? bits : std::numeric_limits<std::int64_t>::min() - bits;
}

}  // namespace

bool nearly_equal(double a, double b, std::int64_t max_ulps, double rel) noexcept {
  if (std::bit_cast<std::int64_t>(a) == std::bit_cast<std::int64_t>(b)) return true;
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (std::isinf(a) || std::isinf(b)) return a == b;
  const std::int64_t ka = ulp_key(a);
  const std::int64_t kb = ulp_key(b);
  const std::int64_t distance = ka > kb ? ka - kb : kb - ka;
  if (distance <= max_ulps) return true;
  if (rel > 0.0 && std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b))) return true;
  return false;
}

namespace {

std::string repr(double x) {
  std::ostringstream out;
  out.precision(17);
  out << x;
  return out.str();
}

/// Collects mismatch lines; every check method takes a field path that is
/// prefixed with the analysis/code-path tag under comparison.
class Differ {
 public:
  explicit Differ(std::vector<std::string>& sink) : sink_(&sink) {}

  void set_tag(std::string tag) { tag_ = std::move(tag); }

  void fail(const std::string& path, const std::string& detail) {
    sink_->push_back(tag_ + "." + path + ": " + detail);
  }

  void eq(const std::string& path, std::uint64_t ref, std::uint64_t got) {
    if (ref != got)
      fail(path, "reference=" + std::to_string(ref) + " got=" + std::to_string(got));
  }
  void eq(const std::string& path, std::int64_t ref, std::int64_t got) {
    if (ref != got)
      fail(path, "reference=" + std::to_string(ref) + " got=" + std::to_string(got));
  }
  void eq(const std::string& path, bool ref, bool got) {
    if (ref != got)
      fail(path, std::string("reference=") + (ref ? "true" : "false") +
                     " got=" + (got ? "true" : "false"));
  }
  void eq(const std::string& path, const std::string& ref, const std::string& got) {
    if (ref != got) fail(path, "reference='" + ref + "' got='" + got + "'");
  }

  /// Identical-arithmetic doubles: a handful of ULPs at most.
  void deq(const std::string& path, double ref, double got) {
    if (!nearly_equal(ref, got, kExactUlps))
      fail(path, "reference=" + repr(ref) + " got=" + repr(got) + " (exact tier)");
  }
  /// Reassociation-prone doubles: bounded ULP/relative agreement.  Pass a
  /// data-magnitude `scale` for quantities subject to catastrophic
  /// cancellation (a stddev of identical samples is pure rounding noise
  /// on both paths — ~eps*scale absolute, arbitrarily far apart
  /// relatively), so agreement is judged against the inputs' magnitude.
  void dnear(const std::string& path, double ref, double got, double scale = 0.0) {
    if (nearly_equal(ref, got, kNearUlps, kNearRel)) return;
    if (scale > 0.0 && std::abs(ref - got) <= kNearRel * scale) return;
    fail(path, "reference=" + repr(ref) + " got=" + repr(got) + " (near tier)");
  }

  void deq_vec(const std::string& path, const std::vector<double>& ref,
               const std::vector<double>& got) {
    eq(path + ".size", static_cast<std::uint64_t>(ref.size()),
       static_cast<std::uint64_t>(got.size()));
    if (ref.size() != got.size()) return;
    for (std::size_t i = 0; i < ref.size(); ++i)
      deq(path + "[" + std::to_string(i) + "]", ref[i], got[i]);
  }

 private:
  std::vector<std::string>* sink_;
  std::string tag_;
};

// --- per-struct comparisons ----------------------------------------------

void cmp(Differ& d, const std::string& p, const stats::Summary& ref, const stats::Summary& got) {
  d.eq(p + ".count", static_cast<std::uint64_t>(ref.count),
       static_cast<std::uint64_t>(got.count));
  const double scale = std::max(std::abs(ref.min), std::abs(ref.max));
  d.dnear(p + ".mean", ref.mean, got.mean);
  d.dnear(p + ".stddev", ref.stddev, got.stddev, scale);
  d.deq(p + ".min", ref.min, got.min);
  d.deq(p + ".p25", ref.p25, got.p25);
  d.deq(p + ".median", ref.median, got.median);
  d.deq(p + ".p75", ref.p75, got.p75);
  d.deq(p + ".p95", ref.p95, got.p95);
  d.deq(p + ".max", ref.max, got.max);
}

void cmp(Differ& d, const std::string& p, const stats::BoxStats& ref,
         const stats::BoxStats& got) {
  d.eq(p + ".count", static_cast<std::uint64_t>(ref.count),
       static_cast<std::uint64_t>(got.count));
  d.deq(p + ".q1", ref.q1, got.q1);
  d.deq(p + ".median", ref.median, got.median);
  d.deq(p + ".q3", ref.q3, got.q3);
  d.deq(p + ".iqr", ref.iqr, got.iqr);
  d.deq(p + ".whisker_low", ref.whisker_low, got.whisker_low);
  d.deq(p + ".whisker_high", ref.whisker_high, got.whisker_high);
  d.dnear(p + ".mean", ref.mean, got.mean);
  d.eq(p + ".outliers", static_cast<std::uint64_t>(ref.outliers),
       static_cast<std::uint64_t>(got.outliers));
  d.deq(p + ".sample_min", ref.sample_min, got.sample_min);
  d.deq(p + ".sample_max", ref.sample_max, got.sample_max);
}

void cmp(Differ& d, const std::string& p, const std::optional<stats::FamilyChoice>& ref,
         const std::optional<stats::FamilyChoice>& got) {
  d.eq(p + ".has_value", ref.has_value(), got.has_value());
  if (!ref || !got) return;
  d.eq(p + ".family", static_cast<std::int64_t>(ref->family),
       static_cast<std::int64_t>(got->family));
  d.deq(p + ".ks_distance", ref->ks_distance, got->ks_distance);
}

void cmp(Differ& d, const std::string& p, const analysis::CategoryBreakdown& ref,
         const analysis::CategoryBreakdown& got) {
  d.eq(p + ".total_failures", static_cast<std::uint64_t>(ref.total_failures),
       static_cast<std::uint64_t>(got.total_failures));
  d.eq(p + ".categories.size", static_cast<std::uint64_t>(ref.categories.size()),
       static_cast<std::uint64_t>(got.categories.size()));
  if (ref.categories.size() == got.categories.size()) {
    for (std::size_t i = 0; i < ref.categories.size(); ++i) {
      const std::string q = p + ".categories[" + std::to_string(i) + "]";
      d.eq(q + ".category", std::string(data::to_string(ref.categories[i].category)),
           std::string(data::to_string(got.categories[i].category)));
      d.eq(q + ".count", static_cast<std::uint64_t>(ref.categories[i].count),
           static_cast<std::uint64_t>(got.categories[i].count));
      d.deq(q + ".percent", ref.categories[i].percent, got.categories[i].percent);
    }
  }
  d.eq(p + ".classes.size", static_cast<std::uint64_t>(ref.classes.size()),
       static_cast<std::uint64_t>(got.classes.size()));
  if (ref.classes.size() == got.classes.size()) {
    for (std::size_t i = 0; i < ref.classes.size(); ++i) {
      const std::string q = p + ".classes[" + std::to_string(i) + "]";
      d.eq(q + ".cls", static_cast<std::int64_t>(ref.classes[i].cls),
           static_cast<std::int64_t>(got.classes[i].cls));
      d.eq(q + ".count", static_cast<std::uint64_t>(ref.classes[i].count),
           static_cast<std::uint64_t>(got.classes[i].count));
      d.deq(q + ".percent", ref.classes[i].percent, got.classes[i].percent);
    }
  }
}

void cmp(Differ& d, const std::string& p, const analysis::SoftwareLoci& ref,
         const analysis::SoftwareLoci& got) {
  d.eq(p + ".software_failures", static_cast<std::uint64_t>(ref.software_failures),
       static_cast<std::uint64_t>(got.software_failures));
  d.eq(p + ".distinct_loci", static_cast<std::uint64_t>(ref.distinct_loci),
       static_cast<std::uint64_t>(got.distinct_loci));
  d.eq(p + ".top.size", static_cast<std::uint64_t>(ref.top.size()),
       static_cast<std::uint64_t>(got.top.size()));
  if (ref.top.size() == got.top.size()) {
    for (std::size_t i = 0; i < ref.top.size(); ++i) {
      const std::string q = p + ".top[" + std::to_string(i) + "]";
      d.eq(q + ".locus", ref.top[i].locus, got.top[i].locus);
      d.eq(q + ".count", static_cast<std::uint64_t>(ref.top[i].count),
           static_cast<std::uint64_t>(got.top[i].count));
      d.deq(q + ".percent", ref.top[i].percent, got.top[i].percent);
    }
  }
  d.deq(p + ".gpu_driver_percent", ref.gpu_driver_percent, got.gpu_driver_percent);
  d.deq(p + ".unknown_percent", ref.unknown_percent, got.unknown_percent);
}

void cmp(Differ& d, const std::string& p, const analysis::NodeCounts& ref,
         const analysis::NodeCounts& got) {
  d.eq(p + ".failed_nodes", static_cast<std::uint64_t>(ref.failed_nodes),
       static_cast<std::uint64_t>(got.failed_nodes));
  d.eq(p + ".total_nodes", static_cast<std::uint64_t>(ref.total_nodes),
       static_cast<std::uint64_t>(got.total_nodes));
  d.eq(p + ".buckets.size", static_cast<std::uint64_t>(ref.buckets.size()),
       static_cast<std::uint64_t>(got.buckets.size()));
  if (ref.buckets.size() == got.buckets.size()) {
    for (std::size_t i = 0; i < ref.buckets.size(); ++i) {
      const std::string q = p + ".buckets[" + std::to_string(i) + "]";
      d.eq(q + ".failures", static_cast<std::uint64_t>(ref.buckets[i].failures),
           static_cast<std::uint64_t>(got.buckets[i].failures));
      d.eq(q + ".nodes", static_cast<std::uint64_t>(ref.buckets[i].nodes),
           static_cast<std::uint64_t>(got.buckets[i].nodes));
      d.deq(q + ".percent_of_failed", ref.buckets[i].percent_of_failed,
            got.buckets[i].percent_of_failed);
    }
  }
  d.deq(p + ".percent_single_failure", ref.percent_single_failure, got.percent_single_failure);
  d.deq(p + ".percent_multi_failure", ref.percent_multi_failure, got.percent_multi_failure);
  d.eq(p + ".max_failures_on_one_node",
       static_cast<std::uint64_t>(ref.max_failures_on_one_node),
       static_cast<std::uint64_t>(got.max_failures_on_one_node));
  d.eq(p + ".repeat_node_hardware_failures",
       static_cast<std::uint64_t>(ref.repeat_node_hardware_failures),
       static_cast<std::uint64_t>(got.repeat_node_hardware_failures));
  d.eq(p + ".repeat_node_software_failures",
       static_cast<std::uint64_t>(ref.repeat_node_software_failures),
       static_cast<std::uint64_t>(got.repeat_node_software_failures));
}

void cmp(Differ& d, const std::string& p, const analysis::GpuSlotDistribution& ref,
         const analysis::GpuSlotDistribution& got) {
  d.eq(p + ".slots.size", static_cast<std::uint64_t>(ref.slots.size()),
       static_cast<std::uint64_t>(got.slots.size()));
  if (ref.slots.size() == got.slots.size()) {
    for (std::size_t i = 0; i < ref.slots.size(); ++i) {
      const std::string q = p + ".slots[" + std::to_string(i) + "]";
      d.eq(q + ".slot", static_cast<std::int64_t>(ref.slots[i].slot),
           static_cast<std::int64_t>(got.slots[i].slot));
      d.eq(q + ".count", static_cast<std::uint64_t>(ref.slots[i].count),
           static_cast<std::uint64_t>(got.slots[i].count));
      d.deq(q + ".percent", ref.slots[i].percent, got.slots[i].percent);
      d.deq(q + ".per_node_average", ref.slots[i].per_node_average,
            got.slots[i].per_node_average);
    }
  }
  d.eq(p + ".attributed_failures", static_cast<std::uint64_t>(ref.attributed_failures),
       static_cast<std::uint64_t>(got.attributed_failures));
  d.eq(p + ".total_involvements", static_cast<std::uint64_t>(ref.total_involvements),
       static_cast<std::uint64_t>(got.total_involvements));
  d.deq(p + ".max_relative_excess", ref.max_relative_excess, got.max_relative_excess);
  d.deq(p + ".uniformity_p_value", ref.uniformity_p_value, got.uniformity_p_value);
}

void cmp(Differ& d, const std::string& p, const analysis::MultiGpuInvolvement& ref,
         const analysis::MultiGpuInvolvement& got) {
  d.eq(p + ".attributed_failures", static_cast<std::uint64_t>(ref.attributed_failures),
       static_cast<std::uint64_t>(got.attributed_failures));
  d.eq(p + ".buckets.size", static_cast<std::uint64_t>(ref.buckets.size()),
       static_cast<std::uint64_t>(got.buckets.size()));
  if (ref.buckets.size() == got.buckets.size()) {
    for (std::size_t i = 0; i < ref.buckets.size(); ++i) {
      const std::string q = p + ".buckets[" + std::to_string(i) + "]";
      d.eq(q + ".gpus", static_cast<std::int64_t>(ref.buckets[i].gpus),
           static_cast<std::int64_t>(got.buckets[i].gpus));
      d.eq(q + ".count", static_cast<std::uint64_t>(ref.buckets[i].count),
           static_cast<std::uint64_t>(got.buckets[i].count));
      d.deq(q + ".percent", ref.buckets[i].percent, got.buckets[i].percent);
    }
  }
  d.deq(p + ".percent_multi", ref.percent_multi, got.percent_multi);
}

void cmp(Differ& d, const std::string& p, const analysis::TbfResult& ref,
         const analysis::TbfResult& got) {
  d.deq_vec(p + ".tbf_hours", ref.tbf_hours, got.tbf_hours);
  d.dnear(p + ".mtbf_hours", ref.mtbf_hours, got.mtbf_hours);
  d.deq(p + ".exposure_mtbf_hours", ref.exposure_mtbf_hours, got.exposure_mtbf_hours);
  cmp(d, p + ".summary", ref.summary, got.summary);
  d.deq(p + ".p75_hours", ref.p75_hours, got.p75_hours);
  cmp(d, p + ".best_family", ref.best_family, got.best_family);
}

/// Per-category vectors are ranked by a mean-derived key (MTBF/MTTR), and
/// a mean is reassociation-prone — two categories whose keys tie in real
/// arithmetic (identical gap multisets are easy to construct with
/// simultaneous failures) can legitimately sort either way.  So: rows are
/// matched *by category* and compared field-wise, and the fast path's
/// ordering is checked to be non-decreasing in its own key up to the near
/// tolerance — any inversion larger than rounding noise is still a bug.
template <typename Row, typename KeyFn, typename RowFn>
void cmp_ranked(Differ& d, const std::string& p, const std::vector<Row>& ref,
                const std::vector<Row>& got, KeyFn key, RowFn cmp_row) {
  d.eq(p + ".size", static_cast<std::uint64_t>(ref.size()),
       static_cast<std::uint64_t>(got.size()));
  if (ref.size() != got.size()) return;
  for (const Row& ref_row : ref) {
    const Row* match = nullptr;
    for (const Row& got_row : got)
      if (got_row.category == ref_row.category) match = &got_row;
    const std::string q = p + "[" + std::string(data::to_string(ref_row.category)) + "]";
    if (match == nullptr) {
      d.fail(q, "category present in reference but not in fast result");
      continue;
    }
    cmp_row(q, ref_row, *match);
  }
  for (std::size_t i = 1; i < got.size(); ++i) {
    if (key(got[i]) < key(got[i - 1]) &&
        !nearly_equal(key(got[i]), key(got[i - 1]), kNearUlps, kNearRel))
      d.fail(p + ".order",
             "rows " + std::to_string(i - 1) + ".." + std::to_string(i) +
                 " are inverted beyond rounding noise: " + repr(key(got[i - 1])) + " then " +
                 repr(key(got[i])));
  }
}

void cmp(Differ& d, const std::string& p, const std::vector<analysis::CategoryTbf>& ref,
         const std::vector<analysis::CategoryTbf>& got) {
  cmp_ranked(
      d, p, ref, got, [](const analysis::CategoryTbf& row) { return row.mtbf_hours; },
      [&d](const std::string& q, const analysis::CategoryTbf& a,
           const analysis::CategoryTbf& b) {
        d.eq(q + ".failures", static_cast<std::uint64_t>(a.failures),
             static_cast<std::uint64_t>(b.failures));
        cmp(d, q + ".box", a.box, b.box);
        d.dnear(q + ".mtbf_hours", a.mtbf_hours, b.mtbf_hours);
        d.deq(q + ".exposure_mtbf_hours", a.exposure_mtbf_hours, b.exposure_mtbf_hours);
      });
}

void cmp(Differ& d, const std::string& p, const analysis::TemporalClustering& ref,
         const analysis::TemporalClustering& got) {
  d.eq(p + ".events", static_cast<std::uint64_t>(ref.events),
       static_cast<std::uint64_t>(got.events));
  d.deq_vec(p + ".event_hours", ref.event_hours, got.event_hours);
  d.deq_vec(p + ".gaps_hours", ref.gaps_hours, got.gaps_hours);
  cmp(d, p + ".gap_summary", ref.gap_summary, got.gap_summary);
  d.dnear(p + ".cv", ref.cv, got.cv, 1.0);  // dimensionless; 0/0-noise regime
  d.dnear(p + ".burstiness", ref.burstiness, got.burstiness, 1.0);
  d.dnear(p + ".follow_window_hours", ref.follow_window_hours, got.follow_window_hours);
  d.dnear(p + ".follow_probability", ref.follow_probability, got.follow_probability);
  d.dnear(p + ".poisson_follow_probability", ref.poisson_follow_probability,
          got.poisson_follow_probability);
  d.eq(p + ".clustered", ref.clustered, got.clustered);
}

void cmp(Differ& d, const std::string& p, const analysis::TtrResult& ref,
         const analysis::TtrResult& got) {
  d.deq_vec(p + ".ttr_hours", ref.ttr_hours, got.ttr_hours);
  d.dnear(p + ".mttr_hours", ref.mttr_hours, got.mttr_hours);
  cmp(d, p + ".summary", ref.summary, got.summary);
  cmp(d, p + ".best_family", ref.best_family, got.best_family);
}

void cmp(Differ& d, const std::string& p, const std::vector<analysis::CategoryTtr>& ref,
         const std::vector<analysis::CategoryTtr>& got) {
  cmp_ranked(
      d, p, ref, got, [](const analysis::CategoryTtr& row) { return row.mttr_hours; },
      [&d](const std::string& q, const analysis::CategoryTtr& a,
           const analysis::CategoryTtr& b) {
        d.eq(q + ".failures", static_cast<std::uint64_t>(a.failures),
             static_cast<std::uint64_t>(b.failures));
        d.deq(q + ".share_percent", a.share_percent, b.share_percent);
        cmp(d, q + ".box", a.box, b.box);
        d.dnear(q + ".mttr_hours", a.mttr_hours, b.mttr_hours);
      });
}

void cmp(Differ& d, const std::string& p, const std::vector<analysis::CategoryBurstiness>& ref,
         const std::vector<analysis::CategoryBurstiness>& got) {
  // Ranked descending by burstiness (negate the key for the shared
  // ascending-order check); the sort is additionally unstable, so exact
  // ties may land in any order even with bit-identical keys.
  cmp_ranked(
      d, p, ref, got, [](const analysis::CategoryBurstiness& row) { return -row.burstiness; },
      [&d](const std::string& q, const analysis::CategoryBurstiness& a,
           const analysis::CategoryBurstiness& b) {
        d.eq(q + ".failures", static_cast<std::uint64_t>(a.failures),
             static_cast<std::uint64_t>(b.failures));
        d.dnear(q + ".cv", a.cv, b.cv, 1.0);
        d.dnear(q + ".burstiness", a.burstiness, b.burstiness, 1.0);
      });
}

void cmp(Differ& d, const std::string& p, const analysis::SeasonalAnalysis& ref,
         const analysis::SeasonalAnalysis& got) {
  for (std::size_t m = 0; m < 12; ++m) {
    const std::string q = p + ".monthly[" + std::to_string(m) + "]";
    d.eq(q + ".month", static_cast<std::int64_t>(ref.monthly[m].month),
         static_cast<std::int64_t>(got.monthly[m].month));
    d.eq(q + ".failures", static_cast<std::uint64_t>(ref.monthly[m].failures),
         static_cast<std::uint64_t>(got.monthly[m].failures));
    d.eq(q + ".box.has_value", ref.monthly[m].box.has_value(), got.monthly[m].box.has_value());
    if (ref.monthly[m].box && got.monthly[m].box)
      cmp(d, q + ".box", *ref.monthly[m].box, *got.monthly[m].box);
    d.eq(q + ".failure_counts", static_cast<std::uint64_t>(ref.failure_counts[m]),
         static_cast<std::uint64_t>(got.failure_counts[m]));
    d.dnear(q + ".exposure_days", ref.exposure_days[m], got.exposure_days[m]);
    d.dnear(q + ".failures_per_day", ref.failures_per_day[m], got.failures_per_day[m]);
  }
  d.deq(p + ".first_half_median_ttr", ref.first_half_median_ttr, got.first_half_median_ttr);
  d.deq(p + ".second_half_median_ttr", ref.second_half_median_ttr, got.second_half_median_ttr);
  d.eq(p + ".pearson.has_value", ref.pearson_density_ttr.has_value(),
       got.pearson_density_ttr.has_value());
  if (ref.pearson_density_ttr && got.pearson_density_ttr)
    d.dnear(p + ".pearson", *ref.pearson_density_ttr, *got.pearson_density_ttr);
  d.eq(p + ".spearman.has_value", ref.spearman_density_ttr.has_value(),
       got.spearman_density_ttr.has_value());
  if (ref.spearman_density_ttr && got.spearman_density_ttr)
    d.dnear(p + ".spearman", *ref.spearman_density_ttr, *got.spearman_density_ttr);
}

void cmp(Differ& d, const std::string& p, const analysis::PerfErrorProportionality& ref,
         const analysis::PerfErrorProportionality& got) {
  d.deq(p + ".mtbf_hours", ref.mtbf_hours, got.mtbf_hours);
  d.deq(p + ".rpeak_pflops", ref.rpeak_pflops, got.rpeak_pflops);
  d.deq(p + ".pflop_hours_per_failure_free_period", ref.pflop_hours_per_failure_free_period,
        got.pflop_hours_per_failure_free_period);
  d.deq(p + ".pflop_hours_per_component", ref.pflop_hours_per_component,
        got.pflop_hours_per_component);
  d.eq(p + ".components", static_cast<std::int64_t>(ref.components),
       static_cast<std::int64_t>(got.components));
}

template <typename T>
void cmp_optional(Differ& d, const std::string& p, const std::optional<T>& ref,
                  const std::optional<T>& got) {
  d.eq(p + ".has_value", ref.has_value(), got.has_value());
  if (ref && got) cmp(d, p, *ref, *got);
}

void cmp(Differ& d, const std::string& p, const analysis::StudyReport& ref,
         const analysis::StudyReport& got) {
  cmp(d, p + ".categories", ref.categories, got.categories);
  cmp_optional(d, p + ".software_loci", ref.software_loci, got.software_loci);
  cmp(d, p + ".node_counts", ref.node_counts, got.node_counts);
  cmp_optional(d, p + ".gpu_slots", ref.gpu_slots, got.gpu_slots);
  cmp_optional(d, p + ".multi_gpu", ref.multi_gpu, got.multi_gpu);
  cmp_optional(d, p + ".tbf", ref.tbf, got.tbf);
  cmp(d, p + ".tbf_by_category", ref.tbf_by_category, got.tbf_by_category);
  cmp_optional(d, p + ".multi_gpu_clustering", ref.multi_gpu_clustering,
               got.multi_gpu_clustering);
  cmp(d, p + ".ttr", ref.ttr, got.ttr);
  cmp(d, p + ".ttr_by_category", ref.ttr_by_category, got.ttr_by_category);
  cmp(d, p + ".seasonal", ref.seasonal, got.seasonal);
  cmp(d, p + ".perf_error_prop", ref.perf_error_prop, got.perf_error_prop);
  d.eq(p + ".skipped.size", static_cast<std::uint64_t>(ref.skipped.size()),
       static_cast<std::uint64_t>(got.skipped.size()));
  if (ref.skipped.size() == got.skipped.size()) {
    for (std::size_t i = 0; i < ref.skipped.size(); ++i) {
      const std::string q = p + ".skipped[" + std::to_string(i) + "]";
      d.eq(q + ".analysis", ref.skipped[i].analysis, got.skipped[i].analysis);
      d.eq(q + ".error.kind", std::string(to_string(ref.skipped[i].error.kind())),
           std::string(to_string(got.skipped[i].error.kind())));
      d.eq(q + ".error.message", ref.skipped[i].error.message(),
           got.skipped[i].error.message());
    }
  }
}

/// Compares two Results: outcome parity, then error kind+message or value.
template <typename T>
void cmp_result(Differ& d, const Result<T>& ref, const Result<T>& got) {
  if (ref.ok() != got.ok()) {
    d.fail("outcome", std::string("reference ") + (ref.ok() ? "ok" : "error") + " but got " +
                          (got.ok() ? "ok" : "error") + " (" +
                          (ref.ok() ? got.error().to_string() : ref.error().to_string()) + ")");
    return;
  }
  if (!ref.ok()) {
    d.eq("error.kind", std::string(to_string(ref.error().kind())),
         std::string(to_string(got.error().kind())));
    d.eq("error.message", ref.error().message(), got.error().message());
    return;
  }
  cmp(d, "value", ref.value(), got.value());
}

// --- incremental-merge equivalence ---------------------------------------

/// Bitwise double-span comparison: the delta-merge contract is *identity*,
/// not ULP agreement, so even -0.0 vs +0.0 must be flagged.
void cmp_bits(Differ& d, const std::string& p, std::span<const double> ref,
              std::span<const double> got) {
  d.eq(p + ".size", static_cast<std::uint64_t>(ref.size()),
       static_cast<std::uint64_t>(got.size()));
  if (ref.size() != got.size()) return;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(ref[i]) != std::bit_cast<std::uint64_t>(got[i])) {
      d.fail(p + "[" + std::to_string(i) + "]",
             "reference=" + repr(ref[i]) + " got=" + repr(got[i]) + " (bitwise tier)");
      return;  // first divergence only; the rest is usually the same shift
    }
  }
}

void cmp_positions(Differ& d, const std::string& p, std::span<const std::uint32_t> ref,
                   std::span<const std::uint32_t> got) {
  d.eq(p + ".size", static_cast<std::uint64_t>(ref.size()),
       static_cast<std::uint64_t>(got.size()));
  if (ref.size() != got.size()) return;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i] != got[i]) {
      d.fail(p + "[" + std::to_string(i) + "]",
             "reference=" + std::to_string(ref[i]) + " got=" + std::to_string(got[i]));
      return;
    }
  }
}

/// Re-derives the full index via the delta-merge path (index a prefix,
/// then LogIndex::extend over the appended remainder — the shape a sealed
/// serve epoch produces) and demands bit-identity with the from-scratch
/// index, at several split points.  Both paths share one builder, so any
/// divergence here is a builder regression, not a tolerance question.
void check_index_merge(Differ& d, const data::FailureLog& log, const data::LogIndex& full) {
  const auto records = log.records();
  const std::size_t n = records.size();
  std::size_t previous = n + 1;  // dedup splits on tiny logs
  for (const std::size_t split : {std::size_t{0}, n / 2, n == 0 ? 0 : n - 1, n}) {
    if (split == previous) continue;
    previous = split;
    d.set_tag("index_merge[split=" + std::to_string(split) + "]");
    auto base = data::FailureLog::create(
        log.spec(), {records.begin(), records.begin() + static_cast<std::ptrdiff_t>(split)});
    if (!base.ok()) {
      d.fail("base", base.error().to_string());
      continue;
    }
    const data::LogIndex base_index(base.value());
    auto merged_log = data::FailureLog::append(
        base.value(), {records.begin() + static_cast<std::ptrdiff_t>(split), records.end()});
    if (!merged_log.ok()) {
      d.fail("append", merged_log.error().to_string());
      continue;
    }
    const data::LogIndex merged = data::LogIndex::extend(base_index, merged_log.value());

    cmp_bits(d, "hours", full.hours(), merged.hours());
    cmp_bits(d, "ttr", full.ttr(), merged.ttr());
    for (std::size_t c = 0; c <= static_cast<std::size_t>(data::Category::kUnknown); ++c) {
      const auto category = static_cast<data::Category>(c);
      cmp_positions(d, "by_category[" + std::string(data::to_string(category)) + "]",
                    full.by_category(category), merged.by_category(category));
    }
    for (std::size_t c = 0; c <= static_cast<std::size_t>(data::FailureClass::kUnknown); ++c) {
      const auto cls = static_cast<data::FailureClass>(c);
      cmp_positions(d, "by_class[" + std::string(data::to_string(cls)) + "]",
                    full.by_class(cls), merged.by_class(cls));
    }
    for (int month = 1; month <= 12; ++month) {
      cmp_positions(d, "by_month[" + std::to_string(month) + "]", full.by_month(month),
                    merged.by_month(month));
    }
    cmp_positions(d, "gpu_attributed", full.gpu_attributed(), merged.gpu_attributed());
    cmp_positions(d, "multi_gpu", full.multi_gpu(), merged.multi_gpu());

    const auto ref_nodes = full.nodes();
    const auto got_nodes = merged.nodes();
    d.eq("nodes.size", static_cast<std::uint64_t>(ref_nodes.size()),
         static_cast<std::uint64_t>(got_nodes.size()));
    if (ref_nodes.size() == got_nodes.size()) {
      for (std::size_t i = 0; i < ref_nodes.size(); ++i) {
        const std::string p = "nodes[" + std::to_string(i) + "]";
        d.eq(p + ".node", static_cast<std::int64_t>(ref_nodes[i].node),
             static_cast<std::int64_t>(got_nodes[i].node));
        cmp_positions(d, p + ".positions", full.positions_of(ref_nodes[i]),
                      merged.positions_of(got_nodes[i]));
      }
    }
  }
}

/// Packs the log (with its index) into the columnar snapshot format,
/// loads it back from the bytes, and demands the materialized records
/// and the zero-copy-adopted index be bit-identical to the in-memory
/// originals — the pack -> mmap-load -> analyze path must be
/// indistinguishable from parse -> analyze.
void check_snapshot_roundtrip(Differ& d, const data::FailureLog& log,
                              const data::LogIndex& index) {
  d.set_tag("snapshot_roundtrip");
  const std::string bytes = data::pack_columnar(log, &index);
  auto loaded = data::ColumnarSnapshot::from_bytes(bytes);
  if (!loaded.ok()) {
    d.fail("load", loaded.error().to_string());
    return;
  }
  const auto& snap = *loaded.value();
  d.eq("size", static_cast<std::uint64_t>(log.size()), static_cast<std::uint64_t>(snap.size()));
  if (log.size() != snap.size()) return;

  const auto records = log.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const data::FailureRecord got = snap.record_at(static_cast<std::uint32_t>(i));
    const auto& ref = records[i];
    const std::string p = "record[" + std::to_string(i) + "]";
    if (ref.time.seconds_since_epoch() != got.time.seconds_since_epoch() ||
        ref.node != got.node || ref.category != got.category ||
        std::bit_cast<std::uint64_t>(ref.ttr_hours) != std::bit_cast<std::uint64_t>(got.ttr_hours) ||
        ref.gpu_slots != got.gpu_slots || ref.root_locus != got.root_locus) {
      d.fail(p, "materialized record differs from the original");
      return;  // first divergence only
    }
  }

  auto adopted = data::LogIndex::from_columnar(log, loaded.value());
  if (!adopted.ok()) {
    d.fail("adopt", adopted.error().to_string());
    return;
  }
  const data::LogIndex& got = adopted.value();
  cmp_bits(d, "hours", index.hours(), got.hours());
  cmp_bits(d, "ttr", index.ttr(), got.ttr());
  for (std::size_t c = 0; c <= static_cast<std::size_t>(data::Category::kUnknown); ++c) {
    const auto category = static_cast<data::Category>(c);
    cmp_positions(d, "by_category[" + std::string(data::to_string(category)) + "]",
                  index.by_category(category), got.by_category(category));
  }
  for (std::size_t c = 0; c <= static_cast<std::size_t>(data::FailureClass::kUnknown); ++c) {
    const auto cls = static_cast<data::FailureClass>(c);
    cmp_positions(d, "by_class[" + std::string(data::to_string(cls)) + "]",
                  index.by_class(cls), got.by_class(cls));
  }
  for (int month = 1; month <= 12; ++month) {
    cmp_positions(d, "by_month[" + std::to_string(month) + "]", index.by_month(month),
                  got.by_month(month));
  }
  cmp_positions(d, "gpu_attributed", index.gpu_attributed(), got.gpu_attributed());
  cmp_positions(d, "multi_gpu", index.multi_gpu(), got.multi_gpu());

  const auto ref_nodes = index.nodes();
  const auto got_nodes = got.nodes();
  d.eq("nodes.size", static_cast<std::uint64_t>(ref_nodes.size()),
       static_cast<std::uint64_t>(got_nodes.size()));
  if (ref_nodes.size() == got_nodes.size()) {
    for (std::size_t i = 0; i < ref_nodes.size(); ++i) {
      const std::string p = "nodes[" + std::to_string(i) + "]";
      d.eq(p + ".node", static_cast<std::int64_t>(ref_nodes[i].node),
           static_cast<std::int64_t>(got_nodes[i].node));
      cmp_positions(d, p + ".positions", index.positions_of(ref_nodes[i]),
                    got.positions_of(got_nodes[i]));
    }
  }
}

}  // namespace

std::string OracleReport::str(std::size_t max_lines) const {
  if (mismatches.empty()) return "oracle: all analyses agree";
  std::ostringstream out;
  out << "oracle: " << mismatches.size() << " mismatch(es)\n";
  for (std::size_t i = 0; i < mismatches.size() && i < max_lines; ++i)
    out << "  " << mismatches[i] << "\n";
  if (mismatches.size() > max_lines)
    out << "  ... +" << (mismatches.size() - max_lines) << " more\n";
  return out.str();
}

OracleReport run_oracle(const data::FailureLog& log, const OracleOptions& options) {
  OracleReport report;
  Differ d(report.mismatches);
  const data::LogIndex index(log);

  // The serve delta-merge path must reproduce this index bit-for-bit.
  check_index_merge(d, log, index);

  // The columnar pack -> load path must reproduce both the records and
  // the index bit-for-bit.
  check_snapshot_roundtrip(d, log, index);

  // One analysis, three ways: reference vs FailureLog wrapper vs LogIndex
  // overload.
  const auto check = [&](const std::string& name, auto ref_result, auto log_result,
                         auto index_result) {
    d.set_tag(name + "[log]");
    cmp_result(d, ref_result, log_result);
    d.set_tag(name + "[index]");
    cmp_result(d, ref_result, index_result);
  };

  check("categories", ref_categories(log), analysis::analyze_categories(log),
        analysis::analyze_categories(index));
  check("software_loci", ref_software_loci(log), analysis::analyze_software_loci(log),
        analysis::analyze_software_loci(index));
  check("node_counts", ref_node_counts(log), analysis::analyze_node_counts(log),
        analysis::analyze_node_counts(index));
  check("gpu_slots", ref_gpu_slots(log), analysis::analyze_gpu_slots(log),
        analysis::analyze_gpu_slots(index));
  check("multi_gpu", ref_multi_gpu(log), analysis::analyze_multi_gpu(log),
        analysis::analyze_multi_gpu(index));
  check("tbf", ref_tbf(log), analysis::analyze_tbf(log), analysis::analyze_tbf(index));
  check("tbf_by_category", ref_tbf_by_category(log), analysis::analyze_tbf_by_category(log),
        analysis::analyze_tbf_by_category(index));
  check("multi_gpu_clustering", ref_multi_gpu_clustering(log),
        analysis::analyze_multi_gpu_clustering(log),
        analysis::analyze_multi_gpu_clustering(index));
  check("ttr", ref_ttr(log), analysis::analyze_ttr(log), analysis::analyze_ttr(index));
  check("ttr_by_category", ref_ttr_by_category(log), analysis::analyze_ttr_by_category(log),
        analysis::analyze_ttr_by_category(index));
  check("seasonal", ref_seasonal(log), analysis::analyze_seasonal(log),
        analysis::analyze_seasonal(index));
  check("perf_error_prop", ref_perf_error_prop(log), analysis::analyze_perf_error_prop(log),
        analysis::analyze_perf_error_prop(index));

  // Restricted-stream variants on representative streams.
  for (data::Category category : {data::Category::kGpu, data::Category::kCpu}) {
    const std::string tag(data::to_string(category));
    check("tbf_category[" + tag + "]", ref_tbf_category(log, category),
          analysis::analyze_tbf_category(log, category),
          analysis::analyze_tbf_category(index, category));
    check("ttr_category[" + tag + "]", ref_ttr_category(log, category),
          analysis::analyze_ttr_category(log, category),
          analysis::analyze_ttr_category(index, category));
  }
  for (data::FailureClass cls : {data::FailureClass::kHardware, data::FailureClass::kSoftware}) {
    const std::string tag(data::to_string(cls));
    check("tbf_class[" + tag + "]", ref_tbf_class(log, cls),
          analysis::analyze_tbf_class(log, cls), analysis::analyze_tbf_class(index, cls));
    check("ttr_class[" + tag + "]", ref_ttr_class(log, cls),
          analysis::analyze_ttr_class(log, cls), analysis::analyze_ttr_class(index, cls));
  }
  check("category_burstiness", ref_category_burstiness(log),
        analysis::analyze_category_burstiness(log),
        analysis::analyze_category_burstiness(index));

  // The assembled study, serial reference vs the executor at every
  // configured thread count.
  const auto study_reference = ref_run_study(log);
  for (std::size_t jobs : options.thread_counts) {
    d.set_tag("run_study[jobs=" + std::to_string(jobs) + "]");
    cmp_result(d, study_reference, analysis::run_study(log, analysis::StudyOptions{jobs}));
  }
  return report;
}

std::optional<std::string> oracle_property(const data::FailureLog& log) {
  const OracleReport report = run_oracle(log);
  if (report.ok()) return std::nullopt;
  return report.str();
}

}  // namespace tsufail::testkit
