// tsufail::testkit — naive reference implementations of every analysis.
//
// Each ref_* function recomputes one paper analysis from the flat record
// vector with the most obvious algorithm that could possibly be right:
// nested scans instead of the LogIndex's arena spans, O(n^2) insertion
// sorts instead of std::sort, two-pass moments instead of Welford.  They
// share *nothing* with the fast path above the stats-kernel leaves —
// selection, grouping, ordering, differencing, truncation, tie-breaking,
// and normalization are all re-derived here — so a bug in the data plane
// or the analysis plane cannot cancel itself out of a differential test.
//
// What IS shared, deliberately: transcendental stats kernels
// (stats::select_family, stats::chi_square_gof, stats::pearson/spearman).
// They are pure functions of sample values with their own unit suites;
// the oracle feeds them independently-derived inputs and targets the
// analysis plane, not the special-function library.
//
// Agreement contract (asserted by the oracle in oracle.h): integers,
// enums, strings, orderings, and doubles produced by identical arithmetic
// match the fast path exactly; doubles whose computation reassociates
// floating-point ops (Welford vs two-pass moments, chunked vs day-walk
// exposure) match within a tight ULP/relative bound.  Error cases match
// kind and message verbatim.
#pragma once

#include "analysis/perf_error_prop.h"
#include "analysis/study.h"
#include "analysis/temporal_cluster.h"
#include "data/log.h"

namespace tsufail::testkit {

// --- the twelve study analyses ------------------------------------------

Result<analysis::CategoryBreakdown> ref_categories(const data::FailureLog& log);
Result<analysis::SoftwareLoci> ref_software_loci(const data::FailureLog& log,
                                                 std::size_t top_n = 16);
Result<analysis::NodeCounts> ref_node_counts(const data::FailureLog& log);
Result<analysis::GpuSlotDistribution> ref_gpu_slots(const data::FailureLog& log);
Result<analysis::MultiGpuInvolvement> ref_multi_gpu(const data::FailureLog& log);
Result<analysis::TbfResult> ref_tbf(const data::FailureLog& log);
Result<std::vector<analysis::CategoryTbf>> ref_tbf_by_category(const data::FailureLog& log,
                                                               std::size_t min_failures = 3);
Result<analysis::TemporalClustering> ref_multi_gpu_clustering(const data::FailureLog& log);
Result<analysis::TtrResult> ref_ttr(const data::FailureLog& log);
Result<std::vector<analysis::CategoryTtr>> ref_ttr_by_category(const data::FailureLog& log,
                                                               std::size_t min_failures = 2);
Result<analysis::SeasonalAnalysis> ref_seasonal(const data::FailureLog& log);
Result<analysis::PerfErrorProportionality> ref_perf_error_prop(const data::FailureLog& log);

// --- restricted-stream variants (same cores, caller-selected streams) ----

Result<analysis::TbfResult> ref_tbf_category(const data::FailureLog& log,
                                             data::Category category);
Result<analysis::TbfResult> ref_tbf_class(const data::FailureLog& log, data::FailureClass cls);
Result<analysis::TtrResult> ref_ttr_category(const data::FailureLog& log,
                                             data::Category category);
Result<analysis::TtrResult> ref_ttr_class(const data::FailureLog& log, data::FailureClass cls);
Result<std::vector<analysis::CategoryBurstiness>> ref_category_burstiness(
    const data::FailureLog& log, std::size_t min_failures = 5);

// --- the study itself ----------------------------------------------------

/// Sequential reference re-computation of run_study: every slot filled
/// from the ref_* implementations above, skipped entries in the same
/// registration order with the same error kinds and messages.
Result<analysis::StudyReport> ref_run_study(const data::FailureLog& log);

}  // namespace tsufail::testkit
