// tsufail::testkit — seeded random-log generation for property testing.
//
// The fleet simulator (src/sim/) generates *calibrated* logs: realistic
// category mixes pinned to the paper's numbers.  Property testing needs
// the opposite: *arbitrary* logs that roam the whole input space the data
// plane accepts — any category mix, clustered and simultaneous
// timestamps, multi-GPU bursts, zero repair times, records piled onto one
// node — plus the pathological shapes that hand-written tests forget
// (empty logs, single-record logs, everything at the same instant).
//
// Generation is deterministic in (options, rng): the same seed always
// yields the same log, which is what makes a red property run replayable
// (see property.h for the TSUFAIL_TEST_SEED contract).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/log.h"
#include "util/rng.h"

namespace tsufail::testkit {

/// Knobs for the random-log generator.  The defaults aim for adversarial
/// coverage, not realism: every probability below is deliberately far
/// above field rates so that small iteration counts still hit the
/// interesting interactions (ties x multi-GPU, bursts x one node, ...).
struct GenOptions {
  data::Machine machine = data::Machine::kTsubame3;
  std::size_t min_records = 0;    ///< inclusive; 0 admits the empty log
  std::size_t max_records = 96;   ///< inclusive
  /// Probability that a record reuses the previous record's timestamp
  /// exactly (simultaneous failures -> zero TBF gaps).
  double duplicate_time_probability = 0.10;
  /// Probability that a record lands within a few hours of the previous
  /// one instead of uniformly in the window (temporal clustering).
  double burst_probability = 0.25;
  /// Probability that a GPU-related record names >= 2 slots.
  double multi_gpu_probability = 0.35;
  /// Probability that a record repairs instantly (ttr == 0).
  double zero_ttr_probability = 0.10;
  /// Probability that a record lands on a small "hot" subset of nodes
  /// (repeat-failure nodes for the Figure 4 analyses).
  double hot_node_probability = 0.40;
  /// Probability that a software-class record carries a root-locus label.
  double root_locus_probability = 0.70;
};

/// Draws one random valid FailureLog.  Deterministic in (options, rng
/// state); records are handed to FailureLog::create in *generation* order
/// (not time order), so the constructor's sort path is exercised too.
data::FailureLog random_log(const GenOptions& options, Rng& rng);

/// The raw record draw behind random_log, exposed so shrinkers and tests
/// can rebuild logs from record subsets.  Record count is drawn from
/// [min_records, max_records].
std::vector<data::FailureRecord> random_records(const GenOptions& options, Rng& rng);

/// A named pathological log for corpus-style tests.
struct EdgeCase {
  std::string name;
  data::FailureLog log;
};

/// Deterministic corpus of pathological-but-valid logs for one machine:
/// empty, single record, two simultaneous records, all records at one
/// instant, duplicate timestamps interleaved out of order, all failures
/// on one node, all-zero repair times, records pinned to the window
/// edges, and an all-multi-GPU burst.  Every log passes
/// FailureLog::create validation; "invalid input" rejection is
/// fuzz_robustness_test's job, not the corpus's.
std::vector<EdgeCase> edge_case_logs(data::Machine machine);

/// Renders a log as a compact one-record-per-line table (time, node,
/// category, ttr, slots, locus) — the shape counterexamples print in.
std::string describe_log(const data::FailureLog& log);

/// Renders a record vector the same way (for shrink traces, where the
/// subset is not a valid log yet).
std::string describe_records(const data::MachineSpec& spec,
                             std::span<const data::FailureRecord> records);

}  // namespace tsufail::testkit
