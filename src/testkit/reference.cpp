#include "testkit/reference.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "stats/correlation.h"
#include "stats/fit.h"
#include "stats/hypothesis.h"
#include "util/strings.h"

namespace tsufail::testkit {
namespace {

using data::Category;
using data::FailureClass;
using data::FailureLog;
using data::FailureRecord;

// --- naive numeric building blocks ---------------------------------------
// Independent of src/stats/: O(n^2) sorting, two-pass moments, and the
// R type-7 quantile formula re-stated from the definition.

std::vector<double> insertion_sorted(std::vector<double> values) {
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double x = values[i];
    std::size_t j = i;
    while (j > 0 && values[j - 1] > x) {
      values[j] = values[j - 1];
      --j;
    }
    values[j] = x;
  }
  return values;
}

double naive_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double x : values) sum += x;
  return sum / static_cast<double>(values.size());
}

double naive_stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = naive_mean(values);
  double ss = 0.0;
  for (double x : values) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

/// R type-7 quantile of an ascending-sorted sample (matches
/// stats::quantile_sorted bit-for-bit on identical input).
double naive_quantile(const std::vector<double>& sorted, double q) {
  const double h = static_cast<double>(sorted.size() - 1) * q;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

stats::Summary naive_summary(const std::vector<double>& values) {
  const std::vector<double> sorted = insertion_sorted(values);
  stats::Summary s;
  s.count = sorted.size();
  s.mean = naive_mean(sorted);
  s.stddev = naive_stddev(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = naive_quantile(sorted, 0.25);
  s.median = naive_quantile(sorted, 0.50);
  s.p75 = naive_quantile(sorted, 0.75);
  s.p95 = naive_quantile(sorted, 0.95);
  return s;
}

stats::BoxStats naive_box(const std::vector<double>& values) {
  const std::vector<double> sorted = insertion_sorted(values);
  stats::BoxStats b;
  b.count = sorted.size();
  b.q1 = naive_quantile(sorted, 0.25);
  b.median = naive_quantile(sorted, 0.50);
  b.q3 = naive_quantile(sorted, 0.75);
  b.iqr = b.q3 - b.q1;
  b.mean = naive_mean(sorted);
  b.sample_min = sorted.front();
  b.sample_max = sorted.back();
  const double fence_low = b.q1 - 1.5 * b.iqr;
  const double fence_high = b.q3 + 1.5 * b.iqr;
  b.whisker_low = sorted.front();
  b.whisker_high = sorted.back();
  for (double x : sorted) {
    if (x >= fence_low) {
      b.whisker_low = x;
      break;
    }
  }
  for (std::size_t i = sorted.size(); i > 0; --i) {
    if (sorted[i - 1] <= fence_high) {
      b.whisker_high = sorted[i - 1];
      break;
    }
  }
  for (double x : sorted) {
    if (x < fence_low || x > fence_high) ++b.outliers;
  }
  return b;
}

/// Stable O(n^2) insertion sort by an arbitrary strict-weak `less`.
template <typename T, typename Less>
void stable_insertion_sort(std::vector<T>& items, Less less) {
  for (std::size_t i = 1; i < items.size(); ++i) {
    T x = std::move(items[i]);
    std::size_t j = i;
    while (j > 0 && less(x, items[j - 1])) {
      items[j] = std::move(items[j - 1]);
      --j;
    }
    items[j] = std::move(x);
  }
}

// --- naive record-stream selection ---------------------------------------

/// The machine's vocabulary in ascending enum order (the order a
/// std::map<Category, ...> iterates, which the fast paths inherit).
std::vector<Category> vocabulary_enum_order(data::Machine machine) {
  std::vector<Category> vocabulary(data::categories_for(machine).begin(),
                                   data::categories_for(machine).end());
  stable_insertion_sort(vocabulary, [](Category a, Category b) {
    return static_cast<int>(a) < static_cast<int>(b);
  });
  return vocabulary;
}

std::vector<double> hours_of_stream(const FailureLog& log,
                                    const std::vector<const FailureRecord*>& stream) {
  std::vector<double> hours;
  for (const FailureRecord* record : stream)
    hours.push_back(hours_between(log.spec().log_start, record->time));
  return hours;
}

std::vector<double> ttr_of_stream(const std::vector<const FailureRecord*>& stream) {
  std::vector<double> values;
  for (const FailureRecord* record : stream) values.push_back(record->ttr_hours);
  return values;
}

template <typename Pred>
std::vector<const FailureRecord*> select(const FailureLog& log, Pred pred) {
  std::vector<const FailureRecord*> stream;
  for (const FailureRecord& record : log.records())
    if (pred(record)) stream.push_back(&record);
  return stream;
}

bool slot_attributed(const FailureRecord& record) {
  return record.gpu_related() && !record.gpu_slots.empty();
}

// --- shared analysis cores (naive) ---------------------------------------

/// TBF over an event-hour sample (mirrors tbf_from_hours).
Result<analysis::TbfResult> tbf_core(const data::MachineSpec& spec, std::vector<double> hours) {
  if (hours.size() < 2)
    return Error(ErrorKind::kDomain,
                 "TBF needs at least 2 failures, have " + std::to_string(hours.size()));
  const std::vector<double> sorted = insertion_sorted(std::move(hours));

  analysis::TbfResult result;
  for (std::size_t i = 1; i < sorted.size(); ++i)
    result.tbf_hours.push_back(sorted[i] - sorted[i - 1]);
  result.mtbf_hours = naive_mean(result.tbf_hours);
  result.exposure_mtbf_hours = spec.window_hours() / static_cast<double>(sorted.size());
  result.summary = naive_summary(result.tbf_hours);
  result.p75_hours = result.summary.p75;

  std::vector<double> positive;
  for (double gap : insertion_sorted(result.tbf_hours))
    if (gap > 0.0) positive.push_back(gap);
  if (positive.size() >= 8) {
    if (auto family = stats::select_family(positive); family.ok())
      result.best_family = family.value();
  }
  return result;
}

/// TTR over a repair-time sample in record order (mirrors ttr_from_values).
Result<analysis::TtrResult> ttr_core(std::vector<double> values) {
  if (values.empty())
    return Error(ErrorKind::kDomain, "TTR analysis needs at least one failure");
  analysis::TtrResult result;
  result.ttr_hours = std::move(values);
  result.mttr_hours = naive_mean(result.ttr_hours);
  result.summary = naive_summary(result.ttr_hours);

  std::vector<double> positive;
  for (double value : insertion_sorted(result.ttr_hours))
    if (value > 0.0) positive.push_back(value);
  if (positive.size() >= 8) {
    if (auto family = stats::select_family(positive); family.ok())
      result.best_family = family.value();
  }
  return result;
}

/// Point-process clustering over event hours (mirrors
/// analyze_event_clustering with the auto-selected follow window).
Result<analysis::TemporalClustering> clustering_core(std::vector<double> event_hours) {
  if (event_hours.size() < 3)
    return Error(ErrorKind::kDomain, "clustering needs at least 3 events, have " +
                                         std::to_string(event_hours.size()));
  analysis::TemporalClustering result;
  result.events = event_hours.size();
  result.event_hours = insertion_sorted(std::move(event_hours));
  for (std::size_t i = 1; i < result.events; ++i)
    result.gaps_hours.push_back(result.event_hours[i] - result.event_hours[i - 1]);
  result.gap_summary = naive_summary(result.gaps_hours);

  const double mean_gap = result.gap_summary.mean;
  if (mean_gap <= 0.0)
    return Error(ErrorKind::kDomain, "all events are simultaneous; clustering undefined");
  const double follow_window = std::min(0.5 * mean_gap, 168.0);
  result.follow_window_hours = follow_window;
  result.cv = result.gap_summary.stddev / mean_gap;
  result.burstiness = (result.cv - 1.0) / (result.cv + 1.0);

  std::size_t followed = 0;
  for (double gap : result.gaps_hours)
    if (gap <= follow_window) ++followed;
  result.follow_probability =
      static_cast<double>(followed) / static_cast<double>(result.gaps_hours.size());
  result.poisson_follow_probability = -std::expm1(-follow_window / mean_gap);
  result.clustered =
      result.cv > 1.0 && result.follow_probability > result.poisson_follow_probability;
  return result;
}

}  // namespace

// --- the twelve study analyses ------------------------------------------

Result<analysis::CategoryBreakdown> ref_categories(const FailureLog& log) {
  if (log.empty()) return Error(ErrorKind::kDomain, "analyze_categories: empty log");

  analysis::CategoryBreakdown breakdown;
  breakdown.total_failures = log.size();
  const double total = static_cast<double>(log.size());

  for (Category category : vocabulary_enum_order(log.machine())) {
    std::size_t count = 0;
    for (const FailureRecord& record : log.records())
      if (record.category == category) ++count;
    breakdown.categories.push_back(
        {category, count, 100.0 * static_cast<double>(count) / total});
  }
  stable_insertion_sort(breakdown.categories,
                        [](const analysis::CategoryShare& a, const analysis::CategoryShare& b) {
                          return a.count > b.count;
                        });

  for (FailureClass cls :
       {FailureClass::kHardware, FailureClass::kSoftware, FailureClass::kUnknown}) {
    std::size_t count = 0;
    for (const FailureRecord& record : log.records())
      if (record.failure_class() == cls) ++count;
    breakdown.classes.push_back({cls, count, 100.0 * static_cast<double>(count) / total});
  }
  return breakdown;
}

Result<analysis::SoftwareLoci> ref_software_loci(const FailureLog& log, std::size_t top_n) {
  const auto software =
      select(log, [](const FailureRecord& r) { return r.failure_class() == FailureClass::kSoftware; });
  if (software.empty())
    return Error(ErrorKind::kDomain, "analyze_software_loci: no software-class failures in log");

  // Normalized locus per software record, in time order.
  std::vector<std::string> loci;
  std::size_t gpu_driver = 0;
  std::size_t unknown = 0;
  for (const FailureRecord* record : software) {
    std::string locus = to_lower(trim(record->root_locus));
    if (locus.empty() || locus == "unknown") {
      locus = "unknown";
      ++unknown;
    } else if (locus.find("driver") != std::string::npos ||
               locus.find("cuda") != std::string::npos ||
               locus.find("gpu direct") != std::string::npos) {
      ++gpu_driver;
    }
    loci.push_back(std::move(locus));
  }

  // Distinct loci in lexicographic order (the fast path's std::map order),
  // counted by linear rescans.
  std::vector<std::string> distinct;
  for (const std::string& locus : loci) {
    bool seen = false;
    for (const std::string& d : distinct) seen = seen || d == locus;
    if (!seen) distinct.push_back(locus);
  }
  stable_insertion_sort(distinct,
                        [](const std::string& a, const std::string& b) { return a < b; });

  analysis::SoftwareLoci result;
  result.software_failures = software.size();
  result.distinct_loci = distinct.size();
  const double total = static_cast<double>(software.size());
  result.gpu_driver_percent = 100.0 * static_cast<double>(gpu_driver) / total;
  result.unknown_percent = 100.0 * static_cast<double>(unknown) / total;

  for (const std::string& locus : distinct) {
    std::size_t count = 0;
    for (const std::string& l : loci)
      if (l == locus) ++count;
    result.top.push_back({locus, count, 100.0 * static_cast<double>(count) / total});
  }
  stable_insertion_sort(result.top,
                        [](const analysis::RootLocusShare& a, const analysis::RootLocusShare& b) {
                          return a.count > b.count;
                        });
  if (result.top.size() > top_n) result.top.resize(top_n);
  return result;
}

Result<analysis::NodeCounts> ref_node_counts(const FailureLog& log) {
  if (log.empty()) return Error(ErrorKind::kDomain, "analyze_node_counts: empty log");

  analysis::NodeCounts result;
  result.total_nodes = static_cast<std::size_t>(log.spec().node_count);

  // Failures per node by brute scan over all node ids.
  std::vector<std::size_t> per_node(result.total_nodes, 0);
  for (int node = 0; node < log.spec().node_count; ++node)
    for (const FailureRecord& record : log.records())
      if (record.node == node) ++per_node[static_cast<std::size_t>(node)];

  for (std::size_t count : per_node) {
    if (count == 0) continue;
    ++result.failed_nodes;
    result.max_failures_on_one_node = std::max(result.max_failures_on_one_node, count);
  }

  const double failed = static_cast<double>(result.failed_nodes);
  for (std::size_t k = 1; k <= result.max_failures_on_one_node; ++k) {
    std::size_t nodes = 0;
    for (std::size_t count : per_node)
      if (count == k) ++nodes;
    if (nodes == 0) continue;
    result.buckets.push_back({k, nodes, 100.0 * static_cast<double>(nodes) / failed});
  }
  result.percent_single_failure = result.percent_with(1);
  result.percent_multi_failure = 100.0 - result.percent_single_failure;

  for (const FailureRecord& record : log.records()) {
    if (per_node[static_cast<std::size_t>(record.node)] <= 1) continue;
    switch (record.failure_class()) {
      case FailureClass::kHardware: ++result.repeat_node_hardware_failures; break;
      case FailureClass::kSoftware: ++result.repeat_node_software_failures; break;
      case FailureClass::kUnknown: break;
    }
  }
  return result;
}

Result<analysis::GpuSlotDistribution> ref_gpu_slots(const FailureLog& log) {
  const auto attributed = select(log, slot_attributed);
  if (attributed.empty())
    return Error(ErrorKind::kDomain, "analyze_gpu_slots: no slot-attributed GPU failures");

  const int slots_per_node = log.spec().gpus_per_node;
  std::vector<std::size_t> counts(static_cast<std::size_t>(slots_per_node), 0);
  for (const FailureRecord* record : attributed)
    for (int slot : record->gpu_slots) ++counts[static_cast<std::size_t>(slot)];

  analysis::GpuSlotDistribution result;
  result.attributed_failures = attributed.size();
  for (std::size_t c : counts) result.total_involvements += c;
  const double total = static_cast<double>(result.total_involvements);
  const double mean_count = total / static_cast<double>(slots_per_node);
  for (int slot = 0; slot < slots_per_node; ++slot) {
    const auto count = counts[static_cast<std::size_t>(slot)];
    result.slots.push_back({slot, count, 100.0 * static_cast<double>(count) / total,
                            static_cast<double>(count) / log.spec().node_count});
    result.max_relative_excess =
        std::max(result.max_relative_excess, static_cast<double>(count) / mean_count - 1.0);
  }

  const std::vector<double> uniform(static_cast<std::size_t>(slots_per_node), 1.0);
  if (auto chi = stats::chi_square_gof(counts, uniform); chi.ok())
    result.uniformity_p_value = chi.value().p_value;
  return result;
}

Result<analysis::MultiGpuInvolvement> ref_multi_gpu(const FailureLog& log) {
  const auto attributed = select(log, slot_attributed);
  if (attributed.empty())
    return Error(ErrorKind::kDomain, "analyze_multi_gpu: no slot-attributed GPU failures");

  const int slots_per_node = log.spec().gpus_per_node;
  analysis::MultiGpuInvolvement result;
  result.attributed_failures = attributed.size();
  const double total = static_cast<double>(attributed.size());
  for (int gpus = 1; gpus <= slots_per_node; ++gpus) {
    std::size_t count = 0;
    for (const FailureRecord* record : attributed)
      if (record->gpu_slots.size() == static_cast<std::size_t>(gpus)) ++count;
    const double percent = 100.0 * static_cast<double>(count) / total;
    result.buckets.push_back({gpus, count, percent});
    if (gpus >= 2) result.percent_multi += percent;
  }
  return result;
}

Result<analysis::TbfResult> ref_tbf(const FailureLog& log) {
  return tbf_core(log.spec(),
                  hours_of_stream(log, select(log, [](const FailureRecord&) { return true; })));
}

Result<analysis::TbfResult> ref_tbf_category(const FailureLog& log, Category category) {
  auto result = tbf_core(log.spec(), hours_of_stream(log, select(log, [category](
                                                                          const FailureRecord& r) {
                                       return r.category == category;
                                     })));
  if (!result.ok())
    return result.error().with_context("category " + std::string(data::to_string(category)));
  return result;
}

Result<analysis::TbfResult> ref_tbf_class(const FailureLog& log, FailureClass cls) {
  auto result = tbf_core(
      log.spec(), hours_of_stream(log, select(log, [cls](const FailureRecord& r) {
                                    return r.failure_class() == cls;
                                  })));
  if (!result.ok())
    return result.error().with_context("class " + std::string(data::to_string(cls)));
  return result;
}

Result<std::vector<analysis::CategoryTbf>> ref_tbf_by_category(const FailureLog& log,
                                                               std::size_t min_failures) {
  std::vector<analysis::CategoryTbf> rows;
  for (Category category : data::categories_for(log.machine())) {
    const auto stream =
        select(log, [category](const FailureRecord& r) { return r.category == category; });
    if (stream.size() < std::max<std::size_t>(min_failures, 2)) continue;
    const std::vector<double> hours = insertion_sorted(hours_of_stream(log, stream));
    std::vector<double> gaps;
    for (std::size_t i = 1; i < hours.size(); ++i) gaps.push_back(hours[i] - hours[i - 1]);
    rows.push_back({category, stream.size(), naive_box(gaps), naive_mean(gaps),
                    log.spec().window_hours() / static_cast<double>(hours.size())});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_tbf_by_category: no category has enough failures");
  stable_insertion_sort(rows, [](const analysis::CategoryTbf& a, const analysis::CategoryTbf& b) {
    return a.mtbf_hours < b.mtbf_hours;
  });
  return rows;
}

Result<analysis::TemporalClustering> ref_multi_gpu_clustering(const FailureLog& log) {
  auto result = clustering_core(
      hours_of_stream(log, select(log, [](const FailureRecord& r) { return r.multi_gpu(); })));
  if (!result.ok()) return result.error().with_context("multi-GPU failure stream");
  return result;
}

Result<analysis::TtrResult> ref_ttr(const FailureLog& log) {
  return ttr_core(ttr_of_stream(select(log, [](const FailureRecord&) { return true; })));
}

Result<analysis::TtrResult> ref_ttr_category(const FailureLog& log, Category category) {
  auto result = ttr_core(ttr_of_stream(
      select(log, [category](const FailureRecord& r) { return r.category == category; })));
  if (!result.ok())
    return result.error().with_context("category " + std::string(data::to_string(category)));
  return result;
}

Result<analysis::TtrResult> ref_ttr_class(const FailureLog& log, FailureClass cls) {
  auto result = ttr_core(
      ttr_of_stream(select(log, [cls](const FailureRecord& r) { return r.failure_class() == cls; })));
  if (!result.ok())
    return result.error().with_context("class " + std::string(data::to_string(cls)));
  return result;
}

Result<std::vector<analysis::CategoryTtr>> ref_ttr_by_category(const FailureLog& log,
                                                               std::size_t min_failures) {
  std::vector<analysis::CategoryTtr> rows;
  const double total = static_cast<double>(log.size());
  for (Category category : data::categories_for(log.machine())) {
    const auto stream =
        select(log, [category](const FailureRecord& r) { return r.category == category; });
    if (stream.size() < std::max<std::size_t>(min_failures, 1)) continue;
    const std::vector<double> values = ttr_of_stream(stream);
    rows.push_back({category, stream.size(),
                    100.0 * static_cast<double>(stream.size()) / total, naive_box(values),
                    naive_mean(values)});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_ttr_by_category: no category has enough failures");
  stable_insertion_sort(rows, [](const analysis::CategoryTtr& a, const analysis::CategoryTtr& b) {
    return a.mttr_hours < b.mttr_hours;
  });
  return rows;
}

Result<std::vector<analysis::CategoryBurstiness>> ref_category_burstiness(
    const FailureLog& log, std::size_t min_failures) {
  std::vector<analysis::CategoryBurstiness> rows;
  for (Category category : data::categories_for(log.machine())) {
    const auto stream =
        select(log, [category](const FailureRecord& r) { return r.category == category; });
    if (stream.size() < std::max<std::size_t>(min_failures, 3)) continue;
    auto clustering = clustering_core(hours_of_stream(log, stream));
    if (!clustering.ok()) continue;
    rows.push_back({category, clustering.value().events, clustering.value().cv,
                    clustering.value().burstiness});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_category_burstiness: no category has enough events");
  stable_insertion_sort(rows,
                        [](const analysis::CategoryBurstiness& a,
                           const analysis::CategoryBurstiness& b) {
                          return a.burstiness > b.burstiness;
                        });
  return rows;
}

Result<analysis::SeasonalAnalysis> ref_seasonal(const FailureLog& log) {
  if (log.empty()) return Error(ErrorKind::kDomain, "analyze_seasonal: empty log");

  analysis::SeasonalAnalysis result;

  // Exposure by a naive civil-day walk: each day (or partial day at the
  // window edges) contributes to its month separately.  The fast path
  // walks whole months; the two reassociate the same sum, so the oracle
  // compares exposure-derived numbers with a relative bound.
  {
    TimePoint cursor = log.spec().log_start;
    const TimePoint end = log.spec().log_end;
    while (cursor < end) {
      const CivilDateTime civil = cursor.to_civil();
      CivilDateTime next_day{civil.year, civil.month, civil.day, 0, 0, 0};
      ++next_day.day;
      if (next_day.day > days_in_month(next_day.year, next_day.month)) {
        next_day.day = 1;
        if (++next_day.month > 12) {
          next_day.month = 1;
          ++next_day.year;
        }
      }
      TimePoint day_end = TimePoint::from_civil(next_day);
      if (day_end > end) day_end = end;
      result.exposure_days[static_cast<std::size_t>(civil.month - 1)] +=
          hours_between(cursor, day_end) / 24.0;
      cursor = day_end;
    }
  }

  std::vector<double> densities, medians;
  std::vector<double> first_half, second_half;
  for (int month = 1; month <= 12; ++month) {
    const auto idx = static_cast<std::size_t>(month - 1);
    std::vector<double> ttr;
    for (const FailureRecord& record : log.records())
      if (record.time.month() == month) ttr.push_back(record.ttr_hours);

    auto& slot = result.monthly[idx];
    slot.month = month;
    slot.failures = ttr.size();
    result.failure_counts[idx] = ttr.size();
    if (result.exposure_days[idx] > 0.0)
      result.failures_per_day[idx] =
          static_cast<double>(ttr.size()) / result.exposure_days[idx];
    if (!ttr.empty()) {
      slot.box = naive_box(ttr);
      densities.push_back(result.failures_per_day[idx]);
      medians.push_back(slot.box->median);
    }
    auto& half = month <= 6 ? first_half : second_half;
    half.insert(half.end(), ttr.begin(), ttr.end());
  }

  if (!first_half.empty())
    result.first_half_median_ttr = naive_quantile(insertion_sorted(first_half), 0.5);
  if (!second_half.empty())
    result.second_half_median_ttr = naive_quantile(insertion_sorted(second_half), 0.5);

  if (densities.size() >= 3) {
    if (auto r = stats::pearson(densities, medians); r.ok())
      result.pearson_density_ttr = r.value();
    if (auto rho = stats::spearman(densities, medians); rho.ok())
      result.spearman_density_ttr = rho.value();
  }
  return result;
}

Result<analysis::PerfErrorProportionality> ref_perf_error_prop(const FailureLog& log) {
  if (log.empty()) return Error(ErrorKind::kDomain, "analyze_perf_error_prop: empty log");
  analysis::PerfErrorProportionality result;
  result.mtbf_hours = log.spec().window_hours() / static_cast<double>(log.size());
  result.rpeak_pflops = log.spec().rpeak_pflops;
  result.pflop_hours_per_failure_free_period = result.rpeak_pflops * result.mtbf_hours;
  result.components = log.spec().total_gpu_cpu_components();
  result.pflop_hours_per_component =
      result.pflop_hours_per_failure_free_period / static_cast<double>(result.components);
  return result;
}

Result<analysis::StudyReport> ref_run_study(const FailureLog& log) {
  if (log.empty()) return Error(ErrorKind::kDomain, "run_study: empty log");

  analysis::StudyReport report;

  // Required analyses: a failure aborts the study with the task name as
  // context, exactly as the executor-driven run_study reports it.
  {
    auto categories = ref_categories(log);
    if (!categories.ok()) return categories.error().with_context("run_study: categories");
    report.categories = std::move(categories).value();
  }
  {
    auto node_counts = ref_node_counts(log);
    if (!node_counts.ok()) return node_counts.error().with_context("run_study: node_counts");
    report.node_counts = std::move(node_counts).value();
  }
  {
    auto ttr = ref_ttr(log);
    if (!ttr.ok()) return ttr.error().with_context("run_study: ttr");
    report.ttr = std::move(ttr).value();
  }
  {
    auto seasonal = ref_seasonal(log);
    if (!seasonal.ok()) return seasonal.error().with_context("run_study: seasonal");
    report.seasonal = std::move(seasonal).value();
  }
  {
    auto perf = ref_perf_error_prop(log);
    if (!perf.ok()) return perf.error().with_context("run_study: perf_error_prop");
    report.perf_error_prop = std::move(perf).value();
  }

  // Optional analyses: a failure lands in `skipped`, in registration
  // order, carrying the analysis error verbatim.
  const auto optional_slot = [&report](const std::string& name, auto result, auto& slot) {
    if (result.ok()) {
      slot = std::move(result).value();
    } else {
      report.skipped.push_back({name, result.error()});
    }
  };
  optional_slot("software_loci", ref_software_loci(log), report.software_loci);
  optional_slot("gpu_slots", ref_gpu_slots(log), report.gpu_slots);
  optional_slot("multi_gpu", ref_multi_gpu(log), report.multi_gpu);
  optional_slot("tbf", ref_tbf(log), report.tbf);
  optional_slot("tbf_by_category", ref_tbf_by_category(log), report.tbf_by_category);
  optional_slot("multi_gpu_clustering", ref_multi_gpu_clustering(log),
                report.multi_gpu_clustering);
  optional_slot("ttr_by_category", ref_ttr_by_category(log), report.ttr_by_category);
  return report;
}

}  // namespace tsufail::testkit
