#include "testkit/golden.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "ops/repair_sweep.h"
#include "report/markdown_report.h"
#include "report/repair_text.h"
#include "sim/generator.h"
#include "sim/tsubame_models.h"

namespace tsufail::testkit {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorKind::kIo, "cannot open golden file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<void> write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error(ErrorKind::kIo, "cannot write golden file: " + path);
  out << content;
  out.flush();
  if (!out) return Error(ErrorKind::kIo, "short write to golden file: " + path);
  return {};
}

}  // namespace

Result<std::string> golden_report_markdown(data::Machine machine) {
  const sim::MachineModel& model = machine == data::Machine::kTsubame2
                                       ? sim::tsubame2_model()
                                       : sim::tsubame3_model();
  auto log = sim::generate_log(model, kGoldenSeed);
  if (!log.ok()) return log.error().with_context("golden_report_markdown");
  auto markdown = report::render_markdown_report(log.value());
  if (!markdown.ok()) return markdown.error().with_context("golden_report_markdown");
  return std::move(markdown).value();
}

Result<std::string> golden_repairs_markdown(data::Machine machine, std::size_t jobs) {
  const sim::MachineModel& model = machine == data::Machine::kTsubame2
                                       ? sim::tsubame2_model()
                                       : sim::tsubame3_model();
  // A deliberately contended shop, so the policies actually diverge in
  // the golden: two crews, a small GPU pool with a two-week lead, and a
  // load throttle that lifts below 95% healthy capacity.
  ops::RepairShopConfig base;
  base.crews = 2;
  base.spare_pools.push_back({data::Category::kGpu, {2, 336.0}});
  base.throttle.max_active = 1;
  base.throttle.boost_below_capacity = 0.95;

  ops::RepairSweepOptions options;
  options.sweep.base_seed = kGoldenSeed;
  options.sweep.replicates = 6;
  options.sweep.jobs = jobs;
  options.job_mix.jobs = 400;
  auto sweep =
      ops::run_repair_policy_sweep(model, ops::default_policy_variants(base), options);
  if (!sweep.ok()) return sweep.error().with_context("golden_repairs_markdown");
  return report::render_repair_comparison(sweep.value(), base, options.sweep);
}

std::string diff_lines(const std::string& expected, const std::string& actual,
                       std::size_t context) {
  if (expected == actual) return {};
  const std::vector<std::string> a = split_lines(expected);
  const std::vector<std::string> b = split_lines(actual);

  // Longest-common-prefix/suffix trim keeps the output focused on the
  // changed region; within it, emit a plain paired walk.  (Report diffs
  // in practice are localized — a full LCS is not worth the code.)
  std::size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) ++prefix;
  std::size_t suffix = 0;
  while (suffix < a.size() - prefix && suffix < b.size() - prefix &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix])
    ++suffix;

  std::ostringstream out;
  const std::size_t lead = prefix > context ? prefix - context : 0;
  if (lead > 0) out << "  ... " << lead << " common line(s)\n";
  for (std::size_t i = lead; i < prefix; ++i) out << "  " << a[i] << "\n";
  for (std::size_t i = prefix; i < a.size() - suffix; ++i) out << "- " << a[i] << "\n";
  for (std::size_t i = prefix; i < b.size() - suffix; ++i) out << "+ " << b[i] << "\n";
  const std::size_t tail = std::min(context, suffix);
  for (std::size_t i = 0; i < tail; ++i) out << "  " << a[a.size() - suffix + i] << "\n";
  if (suffix > tail) out << "  ... " << (suffix - tail) << " common line(s)\n";
  return out.str();
}

bool update_golden_requested() {
  const char* env = std::getenv("TSUFAIL_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

std::optional<std::string> check_golden(const std::string& path, const std::string& actual) {
  if (update_golden_requested()) {
    auto written = write_file(path, actual);
    if (!written.ok()) return written.error().to_string();
    return std::nullopt;
  }
  auto expected = read_file(path);
  if (!expected.ok()) {
    return expected.error().to_string() +
           "\n  (generate it with: TSUFAIL_UPDATE_GOLDEN=1 ctest -L golden)";
  }
  if (expected.value() == actual) return std::nullopt;
  return "golden mismatch for " + path + ":\n" + diff_lines(expected.value(), actual) +
         "  (if the new output is intended: TSUFAIL_UPDATE_GOLDEN=1 ctest -L golden)";
}

}  // namespace tsufail::testkit
