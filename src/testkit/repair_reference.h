// tsufail::testkit — naive reference implementation of the repair shop.
//
// reference_repair_shop() implements the exact semantics documented in
// ops/repairshop.h with the dumbest structure that can be right: no event
// queue, no incremental state.  Each step scans every failure, every
// crew, and every outstanding restock to find the next time anything can
// happen, then re-derives eligibility and policy order from scratch at
// that time — O(n) scans per step, O(n²) overall.  The production
// event-loop orchestrator must match it event for event; diff_repair_runs
// renders any divergence field-by-field.
//
// Times along the schedule derive from identical arithmetic in both
// simulators (arrival via hours_between, completion = start + service,
// restock = start + lead), so starts, completions, and crew indices are
// compared exactly (4-ULP guard only).  Time *integrals* (degraded node
// hours and everything downstream) accumulate over differently-partitioned
// intervals in the two simulators, so those compare at 512 ULPs / 1e-9
// relative, the oracle's reassociation tier.
#pragma once

#include <string>
#include <vector>

#include "ops/repairshop.h"

namespace tsufail::testkit {

/// The O(n²) scan-based reference schedule.  Same error conditions as
/// ops::run_repair_shop.
Result<ops::RepairShopResult> reference_repair_shop(const data::FailureLog& log,
                                                    const ops::RepairShopConfig& config);

/// Field-by-field diff of two repair runs ("assignments[3].start_hours:
/// engine=… reference=…"); empty = event-for-event identical.
std::vector<std::string> diff_repair_runs(const ops::RepairShopResult& engine,
                                          const ops::RepairShopResult& reference);

/// Convenience: runs both simulators on (log, config) and diffs.  Error
/// outcomes must agree too — one side failing where the other succeeds
/// is itself a mismatch.
std::vector<std::string> repair_oracle(const data::FailureLog& log,
                                       const ops::RepairShopConfig& config);

}  // namespace tsufail::testkit
