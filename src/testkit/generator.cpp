#include "testkit/generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "data/category.h"

namespace tsufail::testkit {
namespace {

/// Root-locus vocabulary for software-class records: a few labels that
/// exercise the GPU-driver matcher ("driver"/"cuda"), the "unknown"
/// normalization, and case/whitespace folding.
constexpr const char* kLoci[] = {
    "GPU driver",  "cuda runtime", "  Lustre client ", "scheduler",
    "unknown",     "firmware",     "MPI library",      "gpu direct rdma",
};

data::FailureRecord random_record(const GenOptions& options, const data::MachineSpec& spec,
                                  const std::vector<int>& hot_nodes,
                                  const data::FailureRecord* previous, Rng& rng) {
  const auto vocabulary = data::categories_for(spec.machine);
  data::FailureRecord record;
  record.category = vocabulary[rng.uniform_index(vocabulary.size())];

  const auto window_seconds =
      static_cast<std::uint64_t>(spec.log_end.seconds_since_epoch() -
                                 spec.log_start.seconds_since_epoch());
  if (previous != nullptr && rng.bernoulli(options.duplicate_time_probability)) {
    record.time = previous->time;  // exact tie: zero TBF gap
  } else if (previous != nullptr && rng.bernoulli(options.burst_probability)) {
    // Clustered arrival: within 72 hours of the previous draw, clamped
    // into the window.
    const auto delta = static_cast<std::int64_t>(rng.uniform_index(72 * 3600 + 1));
    record.time = previous->time.plus_seconds(delta);
    if (record.time > spec.log_end) record.time = spec.log_end;
  } else {
    record.time = spec.log_start.plus_seconds(
        static_cast<std::int64_t>(rng.uniform_index(window_seconds + 1)));
  }

  if (!hot_nodes.empty() && rng.bernoulli(options.hot_node_probability)) {
    record.node = hot_nodes[rng.uniform_index(hot_nodes.size())];
  } else {
    record.node = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(spec.node_count)));
  }

  record.ttr_hours =
      rng.bernoulli(options.zero_ttr_probability) ? 0.0 : rng.lognormal(std::log(12.0), 1.2);

  if (data::is_gpu_related(record.category)) {
    const int per_node = spec.gpus_per_node;
    int involved = 1;
    if (per_node > 1 && rng.bernoulli(options.multi_gpu_probability))
      involved = 2 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(per_node - 1)));
    // Partial Fisher-Yates over the slot ids gives `involved` distinct slots.
    std::vector<int> slots(static_cast<std::size_t>(per_node));
    for (int s = 0; s < per_node; ++s) slots[static_cast<std::size_t>(s)] = s;
    for (int k = 0; k < involved; ++k) {
      const auto j = k + static_cast<int>(rng.uniform_index(
                             static_cast<std::uint64_t>(per_node - k)));
      std::swap(slots[static_cast<std::size_t>(k)], slots[static_cast<std::size_t>(j)]);
    }
    record.gpu_slots.assign(slots.begin(), slots.begin() + involved);
  }

  if (record.failure_class() == data::FailureClass::kSoftware &&
      rng.bernoulli(options.root_locus_probability)) {
    record.root_locus = kLoci[rng.uniform_index(std::size(kLoci))];
  }
  return record;
}

data::FailureLog must_create(const data::MachineSpec& spec,
                             std::vector<data::FailureRecord> records) {
  auto log = data::FailureLog::create(spec, std::move(records));
  TSUFAIL_REQUIRE(log.ok(), "testkit generator produced an invalid log: " +
                                (log.ok() ? std::string() : log.error().to_string()));
  return std::move(log).value();
}

}  // namespace

std::vector<data::FailureRecord> random_records(const GenOptions& options, Rng& rng) {
  TSUFAIL_REQUIRE(options.min_records <= options.max_records,
                  "GenOptions: min_records must be <= max_records");
  const data::MachineSpec& spec = data::spec_for(options.machine);
  const std::size_t count =
      options.min_records +
      rng.uniform_index(options.max_records - options.min_records + 1);

  // A handful of "hot" nodes shared by the whole log, so repeat-failure
  // nodes (Figure 4) and same-node bursts actually occur at small n.
  std::vector<int> hot_nodes;
  for (int k = 0; k < 3; ++k)
    hot_nodes.push_back(
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(spec.node_count))));

  std::vector<data::FailureRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const data::FailureRecord* previous = records.empty() ? nullptr : &records.back();
    records.push_back(random_record(options, spec, hot_nodes, previous, rng));
  }

  // Hand the records over in random order: FailureLog::create must sort,
  // and permutation-sensitive bugs downstream get a fighting chance to
  // surface.
  for (std::size_t i = records.size(); i > 1; --i)
    std::swap(records[i - 1], records[rng.uniform_index(i)]);
  return records;
}

data::FailureLog random_log(const GenOptions& options, Rng& rng) {
  return must_create(data::spec_for(options.machine), random_records(options, rng));
}

std::vector<EdgeCase> edge_case_logs(data::Machine machine) {
  const data::MachineSpec& spec = data::spec_for(machine);
  const TimePoint mid = spec.log_start.plus_seconds(
      (spec.log_end.seconds_since_epoch() - spec.log_start.seconds_since_epoch()) / 2);
  const data::Category gpu = data::Category::kGpu;  // in both vocabularies
  const data::Category cpu = data::Category::kCpu;

  const auto rec = [&](TimePoint t, int node, data::Category c, double ttr,
                       std::vector<int> slots = {}) {
    data::FailureRecord r;
    r.time = t;
    r.node = node;
    r.category = c;
    r.ttr_hours = ttr;
    r.gpu_slots = std::move(slots);
    return r;
  };

  std::vector<EdgeCase> cases;
  const auto add = [&](std::string name, std::vector<data::FailureRecord> records) {
    cases.push_back({std::move(name), must_create(spec, std::move(records))});
  };

  add("empty", {});
  add("single_record", {rec(mid, 0, gpu, 4.0, {0})});
  add("two_simultaneous", {rec(mid, 0, gpu, 4.0, {0}), rec(mid, 1, cpu, 2.0)});
  add("all_simultaneous", {rec(mid, 0, gpu, 1.0, {0}), rec(mid, 1, gpu, 2.0, {1}),
                           rec(mid, 2, cpu, 3.0), rec(mid, 3, cpu, 4.0),
                           rec(mid, 4, data::Category::kDisk, 5.0)});
  // Interleaved duplicates handed over out of time order: create() must
  // sort them, and tie groups keep hand-over order (stable sort).
  add("duplicates_out_of_order",
      {rec(mid.plus_hours(48.0), 5, cpu, 1.0), rec(mid, 6, gpu, 2.0, {0}),
       rec(mid.plus_hours(48.0), 7, cpu, 3.0), rec(mid, 8, gpu, 4.0, {1}),
       rec(mid.plus_hours(-48.0), 9, data::Category::kDisk, 5.0)});
  add("one_hot_node", {rec(mid, 3, gpu, 1.0, {0}), rec(mid.plus_hours(1.0), 3, cpu, 2.0),
                       rec(mid.plus_hours(2.0), 3, gpu, 3.0, {1}),
                       rec(mid.plus_hours(3.0), 3, data::Category::kMemory, 4.0)});
  add("all_zero_ttr", {rec(mid, 0, gpu, 0.0, {0}), rec(mid.plus_hours(5.0), 1, cpu, 0.0),
                       rec(mid.plus_hours(9.0), 2, data::Category::kMemory, 0.0)});
  add("window_edges", {rec(spec.log_start, 0, gpu, 1.0, {0}),
                       rec(mid, 1, cpu, 2.0),
                       rec(spec.log_end, 2, data::Category::kDisk, 3.0)});
  // Dense multi-GPU burst: every record names every slot, minutes apart.
  {
    std::vector<int> all_slots;
    for (int s = 0; s < spec.gpus_per_node; ++s) all_slots.push_back(s);
    std::vector<data::FailureRecord> burst;
    for (int i = 0; i < 6; ++i)
      burst.push_back(rec(mid.plus_seconds(i * 600), i, gpu, 2.0, all_slots));
    add("multi_gpu_burst", std::move(burst));
  }
  return cases;
}

std::string describe_records(const data::MachineSpec& spec,
                             std::span<const data::FailureRecord> records) {
  std::ostringstream out;
  out << spec.name << ", " << records.size() << " record(s):\n";
  for (const auto& record : records) {
    out << "  " << format_time(record.time) << "  node=" << record.node << "  "
        << data::to_string(record.category) << "  ttr=" << record.ttr_hours << "h";
    if (!record.gpu_slots.empty()) {
      out << "  slots=[";
      for (std::size_t i = 0; i < record.gpu_slots.size(); ++i)
        out << (i ? "," : "") << record.gpu_slots[i];
      out << "]";
    }
    if (!record.root_locus.empty()) out << "  locus=\"" << record.root_locus << "\"";
    out << "\n";
  }
  return out.str();
}

std::string describe_log(const data::FailureLog& log) {
  return describe_records(log.spec(), log.records());
}

}  // namespace tsufail::testkit
