// tsufail::testkit — the differential oracle.
//
// run_oracle() recomputes every analysis three ways — the naive reference
// (reference.h), the FailureLog wrapper, and the LogIndex overload — plus
// run_study at several thread counts, and structurally diffs the results.
// Exact fields (counts, enums, strings, orderings, identical-arithmetic
// doubles) must match to <= 4 ULPs; reassociation-prone doubles (Welford
// vs two-pass moments, chunked vs day-walk exposure, correlations over
// those) must match within 512 ULPs or 1e-9 relative.  Error outcomes
// must match in kind and message, verbatim, on every path.
//
// Each mismatch is reported as a path into the result struct
// ("ttr.summary.p95: reference=… study[jobs=8]=…"), so a red run names
// the exact field and code path that diverged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/log.h"

namespace tsufail::testkit {

/// True iff a and b are bitwise equal, within `max_ulps` representable
/// doubles of each other, or (when rel > 0) within `rel` relatively.
/// NaNs compare equal to NaNs; +0 and -0 are adjacent.
bool nearly_equal(double a, double b, std::int64_t max_ulps, double rel = 0.0) noexcept;

struct OracleOptions {
  /// Thread counts run_study is checked at (0 = hardware concurrency).
  std::vector<std::size_t> thread_counts{1, 2, 8};
};

struct OracleReport {
  /// One line per diverging field: "analysis.path: reference=… fast=…".
  std::vector<std::string> mismatches;

  bool ok() const noexcept { return mismatches.empty(); }
  /// Multi-line rendering, truncated to `max_lines` with a "+N more" tail.
  std::string str(std::size_t max_lines = 24) const;
};

/// Diffs every analysis (and run_study at every configured thread count)
/// against the naive reference for one log.  Handles logs where analyses
/// are undefined — including the empty log — by requiring identical
/// error behaviour instead.
OracleReport run_oracle(const data::FailureLog& log, const OracleOptions& options = {});

/// Property-runner adapter: nullopt when the oracle is clean, the diff
/// rendering otherwise.  Plug straight into check_property() to get
/// shrunk minimal counterexamples for oracle violations.
std::optional<std::string> oracle_property(const data::FailureLog& log);

}  // namespace tsufail::testkit
