#include "testkit/property.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace tsufail::testkit {
namespace {

std::uint64_t parse_seed_env(const char* text) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 0);  // base 0: decimal or 0x-hex
  TSUFAIL_REQUIRE(end != text && *end == '\0',
                  std::string("TSUFAIL_TEST_SEED is not a number: '") + text + "'");
  return value;
}

/// Evaluates the property on a record subset; nullopt if the subset no
/// longer fails (or no longer forms a valid log — a shrink step must
/// never leave the input space).
std::optional<std::string> failure_of(const data::MachineSpec& spec,
                                      const std::vector<data::FailureRecord>& records,
                                      const Property& property) {
  auto log = data::FailureLog::create(spec, records);
  if (!log.ok()) return std::nullopt;
  return property(log.value());
}

}  // namespace

std::uint64_t test_seed(std::uint64_t fallback) {
  const char* env = std::getenv("TSUFAIL_TEST_SEED");
  return env != nullptr ? parse_seed_env(env) : fallback;
}

std::size_t scaled_iterations(std::size_t base) {
  const char* env = std::getenv("TSUFAIL_TEST_ITERS");
  if (env == nullptr) return base;
  char* end = nullptr;
  const unsigned long long factor = std::strtoull(env, &end, 10);
  TSUFAIL_REQUIRE(end != env && *end == '\0' && factor >= 1,
                  std::string("TSUFAIL_TEST_ITERS must be a positive integer, got '") + env +
                      "'");
  return base * static_cast<std::size_t>(factor);
}

std::string Counterexample::describe() const {
  std::ostringstream out;
  out << "property '" << property << "' falsified\n";
  out << "  seed:      " << seed << " (0x" << std::hex << seed << std::dec << ")\n";
  out << "  iteration: " << iteration << "\n";
  out << "  shrink:    " << original_size << " record(s)";
  for (std::size_t size : shrink_trace) out << " -> " << size;
  out << "\n";
  out << "  replay:    TSUFAIL_TEST_SEED=" << seed << " <re-run this test>\n";
  out << "  failure:   " << message << "\n";
  out << "  counterexample " << describe_records(spec, records);
  return out.str();
}

Counterexample shrink_counterexample(const std::string& name, const data::MachineSpec& spec,
                                     std::vector<data::FailureRecord> records,
                                     const Property& property, std::size_t max_checks) {
  Counterexample ce;
  ce.property = name;
  ce.spec = spec;
  ce.original_size = records.size();

  auto initial = failure_of(spec, records, property);
  TSUFAIL_REQUIRE(initial.has_value(),
                  "shrink_counterexample: property does not fail on the given records");
  std::string message = *initial;

  std::size_t checks = 0;
  const auto try_accept = [&](std::vector<data::FailureRecord>& candidate) {
    ++checks;
    auto failure = failure_of(spec, candidate, property);
    if (!failure) return false;
    records.swap(candidate);
    message = std::move(*failure);
    ce.shrink_trace.push_back(records.size());
    return true;
  };

  // Phase 1: ddmin-style chunk removal — halves first, then finer, then a
  // record-at-a-time fixed point.
  std::size_t chunk = std::max<std::size_t>(records.size() / 2, 1);
  while (checks < max_checks && !records.empty()) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < records.size() && checks < max_checks) {
      const std::size_t len = std::min(chunk, records.size() - start);
      std::vector<data::FailureRecord> candidate;
      candidate.reserve(records.size() - len);
      candidate.insert(candidate.end(), records.begin(),
                       records.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       records.begin() + static_cast<std::ptrdiff_t>(start + len),
                       records.end());
      if (try_accept(candidate)) {
        removed_any = true;  // same start now names the next chunk
      } else {
        start += len;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // no single record can be removed: minimal
    } else {
      chunk /= 2;
    }
  }

  // Phase 2: simplify surviving records — a multi-slot list shrinks to its
  // first slot when the failure does not depend on the extra slots.
  for (std::size_t i = 0; i < records.size() && checks < max_checks; ++i) {
    if (records[i].gpu_slots.size() <= 1) continue;
    std::vector<data::FailureRecord> candidate = records;
    candidate[i].gpu_slots.resize(1);
    try_accept(candidate);
  }

  ce.records = std::move(records);
  ce.message = std::move(message);
  return ce;
}

std::optional<Counterexample> check_property(const std::string& name,
                                             const PropertyOptions& options,
                                             const Property& property,
                                             std::uint64_t seed_override) {
  const std::uint64_t seed = seed_override;
  const std::size_t iterations = scaled_iterations(options.iterations);
  const Rng root(seed);
  for (std::size_t i = 0; i < iterations; ++i) {
    Rng stream = root.fork(i);
    auto records = random_records(options.gen, stream);
    auto log = data::FailureLog::create(data::spec_for(options.gen.machine), records);
    TSUFAIL_REQUIRE(log.ok(), "testkit generator produced an invalid log");
    auto failure = property(log.value());
    if (!failure) continue;
    // Shrink from the log's (time-sorted) view so the trace is invariant
    // to the generator's hand-over order.
    std::vector<data::FailureRecord> sorted(log.value().records().begin(),
                                            log.value().records().end());
    Counterexample ce = shrink_counterexample(name, log.value().spec(), std::move(sorted),
                                              property, options.max_shrink_checks);
    ce.seed = seed;
    ce.iteration = i;
    return ce;
  }
  return std::nullopt;
}

std::optional<Counterexample> check_property(const std::string& name,
                                             const PropertyOptions& options,
                                             const Property& property) {
  return check_property(name, options, property, test_seed());
}

}  // namespace tsufail::testkit
