// tsufail::testkit — golden-snapshot framework.
//
// Pins large rendered artifacts (the full markdown study report for the
// Tsubame-2/Tsubame-3 presets) against checked-in golden files.  A
// mismatch prints a readable line diff; regeneration is one command:
//
//   TSUFAIL_UPDATE_GOLDEN=1 ctest -L golden
//
// which rewrites the golden files in place from the current output.
#pragma once

#include <optional>
#include <string>

#include "data/machine.h"
#include "util/error.h"

namespace tsufail::testkit {

/// Seed used for the golden preset logs.  Changing it invalidates every
/// golden file, so it is pinned here, once.
inline constexpr std::uint64_t kGoldenSeed = 0x60'1D'EE'D5;

/// Renders the deterministic golden artifact for one machine preset:
/// sim::generate_log(<preset model>, kGoldenSeed) fed through
/// report::render_markdown_report with default options (serial study).
/// Errors propagate from generation/rendering.
Result<std::string> golden_report_markdown(data::Machine machine);

/// Renders the repair-policy-comparison golden for one machine preset:
/// a run_repair_policy_sweep over the default policy variants (6
/// replicates of the preset model from kGoldenSeed, serial) fed through
/// report::render_repair_comparison.  Deterministic by the sweep's
/// bit-identity contract; the golden test re-renders at jobs=2 to prove
/// it.
Result<std::string> golden_repairs_markdown(data::Machine machine, std::size_t jobs = 1);

/// Line-oriented diff of expected vs actual with `context` lines around
/// each hunk ("-" expected-only, "+" actual-only, " " common).  Empty
/// string when equal.
std::string diff_lines(const std::string& expected, const std::string& actual,
                       std::size_t context = 2);

/// True when TSUFAIL_UPDATE_GOLDEN is set to a non-empty, non-"0" value.
bool update_golden_requested();

/// Compares `actual` against the golden file at `path`.
///  - match          -> nullopt
///  - update mode    -> rewrites the file, returns nullopt
///  - missing file   -> instructions for generating it
///  - mismatch       -> readable diff plus the regeneration command
/// The returned string is ready to hand to a test failure message.
std::optional<std::string> check_golden(const std::string& path, const std::string& actual);

}  // namespace tsufail::testkit
