#include "testkit/repair_reference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "testkit/oracle.h"

namespace tsufail::testkit {
namespace {

constexpr double kNoTime = std::numeric_limits<double>::infinity();

// Same arithmetic as the production engine, re-stated independently.
int reference_units(const data::FailureRecord& record, int gpus_per_node) {
  const int g = std::max(1, gpus_per_node);
  if (record.category == data::Category::kGpu && gpus_per_node > 0) {
    const int slots = static_cast<int>(record.gpu_slots.size());
    return std::min(g, std::max(1, slots));
  }
  return g;
}

bool window_open(const ops::MaintenanceWindows& w, double t) {
  if (w.duration_hours >= w.period_hours) return true;
  if (t < w.offset_hours) return false;
  const double k = std::floor((t - w.offset_hours) / w.period_hours);
  return t - (w.offset_hours + k * w.period_hours) < w.duration_hours;
}

double window_start_after(const ops::MaintenanceWindows& w, double t) {
  if (t < w.offset_hours) return w.offset_hours;
  const double k = std::floor((t - w.offset_hours) / w.period_hours);
  double start = w.offset_hours + (k + 1.0) * w.period_hours;
  if (start <= t) start += w.period_hours;
  return start;
}

enum class Phase { kNotArrived, kWaiting, kInService, kDone };

struct RefJob {
  double arrival = 0.0;
  double service = 0.0;
  int units = 0;
  int node = 0;
  int pool = -1;
  Phase phase = Phase::kNotArrived;
};

}  // namespace

Result<ops::RepairShopResult> reference_repair_shop(const data::FailureLog& log,
                                                    const ops::RepairShopConfig& config) {
  if (auto valid = ops::validate_repair_config(config); !valid.ok()) return valid.error();
  const data::MachineSpec& spec = log.spec();
  for (const ops::SparePoolConfig& pool : config.spare_pools) {
    if (!data::valid_for(pool.category, spec.machine)) {
      return Error(ErrorKind::kValidation,
                   "spare pool category '" + std::string(data::to_string(pool.category)) +
                       "' is not in " + spec.name + "'s vocabulary");
    }
  }

  const int g = std::max(1, spec.gpus_per_node);
  const long long total_units = static_cast<long long>(std::max(1, spec.node_count)) * g;
  const auto records = log.records();
  const std::size_t n = records.size();

  std::vector<RefJob> jobs(n);
  double last_arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].arrival = hours_between(spec.log_start, records[i].time);
    jobs[i].service = records[i].ttr_hours;
    jobs[i].units = reference_units(records[i], spec.gpus_per_node);
    jobs[i].node = records[i].node;
    for (std::size_t p = 0; p < config.spare_pools.size(); ++p) {
      if (config.spare_pools[p].category == records[i].category) {
        jobs[i].pool = static_cast<int>(p);
        break;
      }
    }
    last_arrival = std::max(last_arrival, jobs[i].arrival);
  }
  const double horizon =
      std::max(spec.window_hours(), last_arrival) + config.horizon_slack_hours;

  ops::RepairShopResult result;
  result.assignments.resize(n);
  result.horizon_hours = horizon;
  result.crew_busy_hours.assign(config.crews, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    result.assignments[i].arrival_hours = jobs[i].arrival;
    result.assignments[i].degradation_units = jobs[i].units;
  }

  std::vector<std::size_t> pools(config.spare_pools.size());
  for (std::size_t p = 0; p < pools.size(); ++p) {
    pools[p] = config.spare_pools[p].policy.initial_spares;
  }
  std::vector<double> restocks;           // outstanding restock arrival times
  std::vector<std::size_t> restock_pool;  // parallel: which pool each feeds
  std::vector<bool> crew_busy(config.crews, false);

  // Full-scan helpers — recomputed from scratch every time, on purpose.
  const auto lost_units_now = [&]() {
    // Sum per-node capped losses by scanning all open jobs per open job.
    long long lost = 0;
    std::vector<int> seen_nodes;
    for (std::size_t i = 0; i < n; ++i) {
      if (jobs[i].phase != Phase::kWaiting && jobs[i].phase != Phase::kInService) continue;
      if (std::find(seen_nodes.begin(), seen_nodes.end(), jobs[i].node) != seen_nodes.end()) {
        continue;
      }
      seen_nodes.push_back(jobs[i].node);
      int node_total = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (jobs[j].node != jobs[i].node) continue;
        if (jobs[j].phase != Phase::kWaiting && jobs[j].phase != Phase::kInService) continue;
        node_total += jobs[j].units;
      }
      lost += std::min(g, node_total);
    }
    return lost;
  };

  const auto active_now = [&]() {
    std::size_t active = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (jobs[i].phase == Phase::kInService) ++active;
    }
    return active;
  };

  const auto active_cap = [&](long long lost) -> std::size_t {
    if (config.throttle.max_active == 0) return config.crews;
    if (config.throttle.boost_below_capacity > 0.0) {
      const double healthy =
          static_cast<double>(total_units - lost) / static_cast<double>(total_units);
      if (healthy < config.throttle.boost_below_capacity) return config.crews;
    }
    return std::min(config.throttle.max_active, config.crews);
  };

  const auto window_admits = [&](const RefJob& job, double t) {
    if (config.policy != ops::RepairPolicy::kBatchedWindows) return true;
    if (job.units >= g) return true;
    return window_open(config.windows, t);
  };

  const auto policy_prefers = [&](std::size_t a, std::size_t b) {
    if (config.policy == ops::RepairPolicy::kCriticalityFirst) {
      if (jobs[a].units != jobs[b].units) return jobs[a].units > jobs[b].units;
      if (jobs[a].service != jobs[b].service) return jobs[a].service < jobs[b].service;
    }
    return a < b;
  };

  double now = 0.0;
  double degraded_units_hours = 0.0;
  bool first_step = true;

  while (true) {
    // Next time anything can happen, by scanning everything.
    double t = kNoTime;
    if (first_step) {
      for (std::size_t i = 0; i < n; ++i) t = std::min(t, jobs[i].arrival);
      first_step = false;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (jobs[i].phase == Phase::kNotArrived && jobs[i].arrival > now) {
          t = std::min(t, jobs[i].arrival);
        }
        if (jobs[i].phase == Phase::kInService &&
            result.assignments[i].completion_hours > now) {
          t = std::min(t, result.assignments[i].completion_hours);
        }
      }
      for (double restock : restocks) {
        if (restock > now) t = std::min(t, restock);
      }
      bool stalled_on_window = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (jobs[i].phase == Phase::kWaiting && !window_admits(jobs[i], now)) {
          stalled_on_window = true;
        }
      }
      if (stalled_on_window) {
        t = std::min(t, window_start_after(config.windows, now));
      }
    }
    if (t == kNoTime || t > horizon) break;
    degraded_units_hours += static_cast<double>(lost_units_now()) * (t - now);
    now = t;

    // Keep processing the instant t until it quiesces: the dispatch below
    // can schedule zero-service completions and zero-lead restocks right
    // back at t, which must re-enter this loop like any other event.
    bool again = true;
    while (again) {
      for (std::size_t r = 0; r < restocks.size();) {
        if (restocks[r] == t) {
          ++pools[restock_pool[r]];
          restocks.erase(restocks.begin() + static_cast<std::ptrdiff_t>(r));
          restock_pool.erase(restock_pool.begin() + static_cast<std::ptrdiff_t>(r));
        } else {
          ++r;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (jobs[i].phase == Phase::kInService &&
            result.assignments[i].completion_hours == t) {
          jobs[i].phase = Phase::kDone;
          crew_busy[result.assignments[i].crew] = false;
          ++result.completed;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (jobs[i].phase == Phase::kNotArrived && jobs[i].arrival == t) {
          jobs[i].phase = Phase::kWaiting;
        }
      }

      while (true) {
        const long long lost = lost_units_now();
        if (active_now() >= active_cap(lost)) break;
        bool crew_free = false;
        for (bool busy : crew_busy) crew_free = crew_free || !busy;
        if (!crew_free) break;
        std::size_t best = n;
        for (std::size_t i = 0; i < n; ++i) {
          if (jobs[i].phase != Phase::kWaiting) continue;
          if (!window_admits(jobs[i], t)) continue;
          if (jobs[i].pool >= 0 && pools[static_cast<std::size_t>(jobs[i].pool)] == 0) continue;
          if (best == n || policy_prefers(i, best)) best = i;
        }
        if (best == n) break;
        std::size_t crew = 0;
        while (crew_busy[crew]) ++crew;
        crew_busy[crew] = true;
        jobs[best].phase = Phase::kInService;
        ops::RepairAssignment& assignment = result.assignments[best];
        assignment.crew = crew;
        assignment.start_hours = t;
        assignment.completion_hours = t + jobs[best].service;
        if (jobs[best].pool >= 0) {
          const auto p = static_cast<std::size_t>(jobs[best].pool);
          --pools[p];
          assignment.consumed_spare = true;
          ++result.spare_demands;
          restocks.push_back(t + config.spare_pools[p].policy.restock_lead_time_hours);
          restock_pool.push_back(p);
        }
        result.peak_active = std::max(result.peak_active, active_now());
      }

      again = false;
      for (double restock : restocks) again = again || restock == t;
      for (std::size_t i = 0; i < n; ++i) {
        if (jobs[i].phase == Phase::kInService &&
            result.assignments[i].completion_hours == t) {
          again = true;
        }
      }
    }

    // End-of-instant bookkeeping, matching the engine's tick epilogue.
    std::size_t waiting_count = 0;
    bool crew_free = false;
    for (bool busy : crew_busy) crew_free = crew_free || !busy;
    const bool crew_and_cap_free = crew_free && active_now() < active_cap(lost_units_now());
    for (std::size_t i = 0; i < n; ++i) {
      if (jobs[i].phase != Phase::kWaiting) continue;
      ++waiting_count;
      if (!window_admits(jobs[i], t)) continue;
      if (crew_and_cap_free && jobs[i].pool >= 0 &&
          pools[static_cast<std::size_t>(jobs[i].pool)] == 0) {
        result.assignments[i].waited_for_spare = true;
      }
    }
    result.peak_queue_depth = std::max(result.peak_queue_depth, waiting_count);
  }
  degraded_units_hours += static_cast<double>(lost_units_now()) * (horizon - now);

  std::size_t started = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ops::RepairAssignment& assignment = result.assignments[i];
    if (!assignment.started()) {
      ++result.unstarted_at_horizon;
      if (assignment.waited_for_spare) ++result.stockouts;
      continue;
    }
    ++started;
    if (assignment.completion_hours > horizon) ++result.in_flight_at_horizon;
    const double clipped = std::min(assignment.completion_hours, horizon);
    result.crew_busy_hours[assignment.crew] += clipped - assignment.start_hours;
    result.makespan_hours = std::max(result.makespan_hours, clipped);
    const double wait = assignment.start_hours - assignment.arrival_hours;
    result.total_wait_hours += wait;
    result.max_wait_hours = std::max(result.max_wait_hours, wait);
    if (assignment.waited_for_spare) ++result.stockouts;
  }
  result.mean_wait_hours =
      started > 0 ? result.total_wait_hours / static_cast<double>(started) : 0.0;
  double busy_total = 0.0;
  for (double busy : result.crew_busy_hours) busy_total += busy;
  result.crew_utilization =
      result.makespan_hours > 0.0
          ? busy_total / (static_cast<double>(config.crews) * result.makespan_hours)
          : 0.0;
  result.final_pool_counts = pools;
  result.degraded_node_hours = degraded_units_hours / static_cast<double>(g);
  const double exposure = static_cast<double>(spec.node_count) * spec.window_hours();
  result.availability =
      exposure > 0.0 ? std::clamp(1.0 - result.degraded_node_hours / exposure, 0.0, 1.0) : 1.0;
  return result;
}

namespace {

// Schedule-path doubles: identical arithmetic chains, 4-ULP guard.
constexpr std::int64_t kExactUlps = 4;
// Integral-path doubles: differently-partitioned accumulation.
constexpr std::int64_t kAccumUlps = 512;
constexpr double kAccumRel = 1e-9;

void diff_double(std::vector<std::string>& out, const std::string& path, double engine,
                 double reference, std::int64_t max_ulps, double rel) {
  if (nearly_equal(engine, reference, max_ulps, rel)) return;
  std::ostringstream line;
  line.precision(17);
  line << path << ": engine=" << engine << " reference=" << reference;
  out.push_back(line.str());
}

void diff_count(std::vector<std::string>& out, const std::string& path, std::size_t engine,
                std::size_t reference) {
  if (engine == reference) return;
  out.push_back(path + ": engine=" + std::to_string(engine) +
                " reference=" + std::to_string(reference));
}

}  // namespace

std::vector<std::string> diff_repair_runs(const ops::RepairShopResult& engine,
                                          const ops::RepairShopResult& reference) {
  std::vector<std::string> out;
  diff_count(out, "assignments.size", engine.assignments.size(), reference.assignments.size());
  if (!out.empty()) return out;
  for (std::size_t i = 0; i < engine.assignments.size(); ++i) {
    const ops::RepairAssignment& e = engine.assignments[i];
    const ops::RepairAssignment& r = reference.assignments[i];
    const std::string prefix = "assignments[" + std::to_string(i) + "].";
    diff_double(out, prefix + "arrival_hours", e.arrival_hours, r.arrival_hours, kExactUlps, 0.0);
    diff_double(out, prefix + "start_hours", e.start_hours, r.start_hours, kExactUlps, 0.0);
    diff_double(out, prefix + "completion_hours", e.completion_hours, r.completion_hours,
                kExactUlps, 0.0);
    diff_count(out, prefix + "crew", e.crew, r.crew);
    diff_count(out, prefix + "degradation_units", static_cast<std::size_t>(e.degradation_units),
               static_cast<std::size_t>(r.degradation_units));
    if (e.consumed_spare != r.consumed_spare) {
      out.push_back(prefix + "consumed_spare: engine=" + std::to_string(e.consumed_spare) +
                    " reference=" + std::to_string(r.consumed_spare));
    }
    if (e.waited_for_spare != r.waited_for_spare) {
      out.push_back(prefix + "waited_for_spare: engine=" + std::to_string(e.waited_for_spare) +
                    " reference=" + std::to_string(r.waited_for_spare));
    }
    if (out.size() > 40) return out;  // a broken run floods; cap the noise
  }
  diff_count(out, "completed", engine.completed, reference.completed);
  diff_count(out, "in_flight_at_horizon", engine.in_flight_at_horizon,
             reference.in_flight_at_horizon);
  diff_count(out, "unstarted_at_horizon", engine.unstarted_at_horizon,
             reference.unstarted_at_horizon);
  diff_double(out, "horizon_hours", engine.horizon_hours, reference.horizon_hours, kExactUlps, 0.0);
  diff_double(out, "makespan_hours", engine.makespan_hours, reference.makespan_hours, kExactUlps,
              0.0);
  diff_double(out, "total_wait_hours", engine.total_wait_hours, reference.total_wait_hours,
              kExactUlps, 0.0);
  diff_double(out, "mean_wait_hours", engine.mean_wait_hours, reference.mean_wait_hours,
              kExactUlps, 0.0);
  diff_double(out, "max_wait_hours", engine.max_wait_hours, reference.max_wait_hours, kExactUlps,
              0.0);
  diff_count(out, "peak_queue_depth", engine.peak_queue_depth, reference.peak_queue_depth);
  diff_count(out, "peak_active", engine.peak_active, reference.peak_active);
  diff_count(out, "crew_busy_hours.size", engine.crew_busy_hours.size(),
             reference.crew_busy_hours.size());
  if (engine.crew_busy_hours.size() == reference.crew_busy_hours.size()) {
    for (std::size_t c = 0; c < engine.crew_busy_hours.size(); ++c) {
      diff_double(out, "crew_busy_hours[" + std::to_string(c) + "]", engine.crew_busy_hours[c],
                  reference.crew_busy_hours[c], kExactUlps, 0.0);
    }
  }
  diff_double(out, "crew_utilization", engine.crew_utilization, reference.crew_utilization,
              kExactUlps, 0.0);
  diff_count(out, "spare_demands", engine.spare_demands, reference.spare_demands);
  diff_count(out, "stockouts", engine.stockouts, reference.stockouts);
  diff_count(out, "final_pool_counts.size", engine.final_pool_counts.size(),
             reference.final_pool_counts.size());
  if (engine.final_pool_counts.size() == reference.final_pool_counts.size()) {
    for (std::size_t p = 0; p < engine.final_pool_counts.size(); ++p) {
      diff_count(out, "final_pool_counts[" + std::to_string(p) + "]",
                 engine.final_pool_counts[p], reference.final_pool_counts[p]);
    }
  }
  diff_double(out, "degraded_node_hours", engine.degraded_node_hours,
              reference.degraded_node_hours, kAccumUlps, kAccumRel);
  diff_double(out, "availability", engine.availability, reference.availability, kAccumUlps,
              kAccumRel);
  return out;
}

std::vector<std::string> repair_oracle(const data::FailureLog& log,
                                       const ops::RepairShopConfig& config) {
  auto engine = ops::run_repair_shop(log, config);
  auto reference = reference_repair_shop(log, config);
  if (engine.ok() != reference.ok()) {
    return {std::string("outcome: engine=") + (engine.ok() ? "ok" : engine.error().to_string()) +
            " reference=" + (reference.ok() ? "ok" : reference.error().to_string())};
  }
  if (!engine.ok()) {
    if (engine.error().to_string() != reference.error().to_string()) {
      return {"error: engine=" + engine.error().to_string() +
              " reference=" + reference.error().to_string()};
    }
    return {};
  }
  return diff_repair_runs(engine.value(), reference.value());
}

}  // namespace tsufail::testkit
