// tsufail::testkit — metamorphic-property runner with shrinking.
//
// A property is a predicate over a FailureLog: return std::nullopt if the
// log satisfies it, or a failure message if it does not.  The runner
// draws `iterations` random logs from one seeded stream, checks each, and
// on the first failure *shrinks*: it greedily removes record chunks
// (ddmin-style — halves, then quarters, ... then single records) while
// the property keeps failing, ending at a minimal counterexample no
// single removal can reduce further.
//
// Replay contract (one env var, verbatim):
//   * every run derives from one base seed — kDefaultSeed unless the
//     TSUFAIL_TEST_SEED environment variable overrides it;
//   * a failure prints that seed, the iteration, the shrink trace, and
//     the shrunk log, plus the exact TSUFAIL_TEST_SEED=... command that
//     reproduces it locally;
//   * the same seed always reaches the same counterexample: generation,
//     checking, and shrinking are all deterministic.
//
// TSUFAIL_TEST_ITERS multiplies every suite's iteration count (the
// nightly CI job sets it to 10) without touching the seed, so deep runs
// replay under the same contract.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "testkit/generator.h"

namespace tsufail::testkit {

/// Base seed shared by every property suite unless overridden.
inline constexpr std::uint64_t kDefaultSeed = 0x75E5FA11ULL;  // "tsufail"

/// The seed properties run from: TSUFAIL_TEST_SEED if set (decimal or
/// 0x-hex), else `fallback`.  A malformed value is a test-setup bug and
/// throws via TSUFAIL_REQUIRE rather than silently testing the wrong seed.
std::uint64_t test_seed(std::uint64_t fallback = kDefaultSeed);

/// `base` scaled by the TSUFAIL_TEST_ITERS multiplier (>= 1; unset = 1).
std::size_t scaled_iterations(std::size_t base);

/// A property over one log: nullopt = holds, message = violated.
using Property = std::function<std::optional<std::string>(const data::FailureLog&)>;

/// A shrunk failing input, with everything needed to replay it.
struct Counterexample {
  std::uint64_t seed = 0;          ///< base seed of the run that failed
  std::size_t iteration = 0;       ///< which draw failed (0-based)
  std::string property;            ///< property name
  std::string message;             ///< failure message on the shrunk log
  std::vector<data::FailureRecord> records;  ///< the shrunk record set
  data::MachineSpec spec;
  std::size_t original_size = 0;   ///< records before shrinking
  /// Record counts after each successful shrink step, e.g. {40, 20, 19}.
  std::vector<std::size_t> shrink_trace;

  /// Human-readable report: seed, replay command, trace, and the shrunk
  /// log rendered record-per-line.
  std::string describe() const;
};

struct PropertyOptions {
  GenOptions gen;
  std::size_t iterations = 64;   ///< before TSUFAIL_TEST_ITERS scaling
  /// Upper bound on predicate evaluations while shrinking (safety valve;
  /// the greedy pass almost always finishes far below it).
  std::size_t max_shrink_checks = 4096;
};

/// Runs `property` over random logs.  Returns the shrunk counterexample
/// of the first failing draw, or nullopt if every draw passed.  The base
/// seed is test_seed(); pass `seed_override` to pin it programmatically
/// (tests of the runner itself do this).
std::optional<Counterexample> check_property(const std::string& name,
                                             const PropertyOptions& options,
                                             const Property& property);
std::optional<Counterexample> check_property(const std::string& name,
                                             const PropertyOptions& options,
                                             const Property& property,
                                             std::uint64_t seed_override);

/// Shrinks `records` against `property` directly (exposed for tests of
/// the shrinker and for callers with a non-generated failing input).
/// Precondition: the property fails on the full record set.
Counterexample shrink_counterexample(const std::string& name, const data::MachineSpec& spec,
                                     std::vector<data::FailureRecord> records,
                                     const Property& property, std::size_t max_checks = 4096);

}  // namespace tsufail::testkit
