// Maximum-likelihood fitting of the distribution families in
// distribution.h.  Used by the analysis layer to characterize measured TBF
// and TTR samples, and by tests to verify the simulator generates what its
// models claim.
#pragma once

#include <span>

#include "stats/distribution.h"
#include "util/error.h"

namespace tsufail::stats {

/// MLE for Exponential: mean of the sample.
/// Errors: empty sample or any non-positive observation policy violation
/// (zeros are allowed; negatives are not).
Result<Exponential> fit_exponential(std::span<const double> sample);

/// MLE for LogNormal: moments of log(x).
/// Errors: empty sample or any observation <= 0.
Result<LogNormal> fit_lognormal(std::span<const double> sample);

/// MLE for Weibull via Newton-Raphson on the profile-likelihood shape
/// equation.  Errors: fewer than 2 observations, any observation <= 0, or
/// no convergence (degenerate samples).
Result<Weibull> fit_weibull(std::span<const double> sample);

/// Gamma fit: method-of-moments start refined by Newton steps on the MLE
/// equation log(k) - digamma(k) = log(mean) - mean(log).
/// Errors: fewer than 2 observations or any observation <= 0.
Result<Gamma> fit_gamma(std::span<const double> sample);

/// Digamma function (psi), asymptotic expansion with recurrence shift.
double digamma(double x) noexcept;

/// Which family best fits a sample, chosen by one-sample KS distance.
enum class Family { kExponential, kWeibull, kLogNormal, kGamma };
const char* to_string(Family family) noexcept;

struct FamilyChoice {
  Family family = Family::kExponential;
  double ks_distance = 0.0;
};

/// Fits all four families and returns the one with the smallest KS distance
/// against the sample's ECDF.  Errors: unfittable sample (see fitters).
Result<FamilyChoice> select_family(std::span<const double> sample);

}  // namespace tsufail::stats
