// stats::simd — the explicit-SIMD numeric kernel engine.
//
// Raw-slice kernels behind the public stats surfaces (stats::kernels,
// Ecdf::evaluate_many/quantile_many, bootstrap_ci's resample fill), with
// one implementation per dispatch level (util/simd.h): a portable scalar
// twin, the SSE2 subset that pays off at 128 bits, and the AVX2 tier
// (4-wide double math, vpgather, 4-lane xoshiro256**).  The level is
// selected once per process by CPUID, overridable via TSUFAIL_SIMD.
//
// Determinism contract: every kernel produces BIT-IDENTICAL results at
// every level.  That is possible because the kernels only reorganize
// lane-independent work — element-wise subtraction, per-query binary
// search, per-stream RNG steps, IEEE division (correctly rounded, so
// vector and scalar divides agree) — and never reassociate floating-point
// accumulation.  The dispatch-equivalence suite (stats_simd_test) bit-
// compares every kernel across levels on adversarial inputs; the
// differential oracle and golden report snapshots hold at every level.
//
// Preconditions shared by the vector paths: array lengths and index
// values must stay below 2^31 (vpgather consumes signed 32/64-bit
// indices).  Wrappers fall back to the scalar twin automatically for
// larger inputs, so the public API has no size limit.
#pragma once

#include <cstdint>
#include <span>

#include "util/rng.h"
#include "util/simd.h"

namespace tsufail::stats::simd {

using Level = tsufail::simd::Level;
using tsufail::simd::active_level;
using tsufail::simd::available_levels;
using tsufail::simd::level_name;
using tsufail::simd::parse_level;
using tsufail::simd::set_active_level;
using tsufail::simd::supported_level;

/// out[i] = values[i + 1] - values[i].  Precondition: out.size() + 1 ==
/// values.size() (out may be empty for a single-element input).
void adjacent_deltas(std::span<const double> values, std::span<double> out) noexcept;

/// out[i] = values[indices[i]] (vpgatherqd/i32gather on AVX2).
/// Precondition: every index < values.size(); out.size() == indices.size().
void gather(std::span<const double> values, std::span<const std::uint32_t> indices,
            std::span<double> out) noexcept;

/// out[i] = number of elements of `sorted` <= xs[i], i.e.
/// std::upper_bound(sorted, xs[i]) - sorted.begin(), via a lane-parallel
/// branchless power-of-two descent.  NaN queries count the whole sample
/// (exactly as std::upper_bound's comparator does).
/// Precondition: sorted ascending; out.size() == xs.size().
void upper_bound_many(std::span<const double> sorted, std::span<const double> xs,
                      std::span<std::uint32_t> out) noexcept;

/// out[i] = number of elements of `sorted` < xs[i]
/// (std::lower_bound positions).  NaN queries count zero elements.
void lower_bound_many(std::span<const double> sorted, std::span<const double> xs,
                      std::span<std::uint32_t> out) noexcept;

/// out[i] = static_cast<double>(counts[i]) / n — the ECDF step heights
/// for a batch of upper_bound_many counts.  IEEE division is correctly
/// rounded, so the vector divide is bit-identical to the scalar one.
void counts_to_fractions(std::span<const std::uint32_t> counts, double n,
                         std::span<double> out) noexcept;

/// out[i] = the sorted-sample index of the empirical quantile qs[i] over
/// a sample of size n, matching Ecdf::quantile exactly:
/// clamp(ceil(q * n), 1, n) - 1.  Precondition: every q in [0, 1]
/// (validate before calling); n >= 1.
void quantile_indices(std::span<const double> qs, std::size_t n,
                      std::span<std::uint32_t> out) noexcept;

/// Kolmogorov-Smirnov distance sup_x |F_a(x) - F_b(x)| between two
/// ascending-sorted samples, via the O(n + m) merge sweep at every level
/// (measured faster than a lane-parallel batched-search formulation,
/// whose log-factor extra work dwarfs the vector width).
/// Returns 0.0 if either sample is empty.
double ks_distance_sorted(std::span<const double> a, std::span<const double> b);

/// Four xoshiro256** streams advanced in lockstep — one per 64-bit lane
/// of an AVX2 register at that level, scalar column loops otherwise.
///
/// Each lane is seeded from `parent.fork(first_stream + lane)`, and its
/// draw sequence is bit-identical to calling Rng::uniform_index on that
/// fork directly (the rare Lemire rejection redraws a single lane in
/// place).  bootstrap_ci runs its fixed-128-replicate shards four per
/// group on this engine: the per-shard sequences — and therefore every
/// CI bound — are unchanged, while resample-index throughput roughly
/// quadruples.
class XoshiroLanes {
 public:
  static constexpr std::size_t kLanes = 4;

  XoshiroLanes(const Rng& parent, std::uint64_t first_stream) noexcept {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      const auto words = parent.fork(first_stream + lane).state_words();
      for (std::size_t word = 0; word < 4; ++word) state_[word][lane] = words[word];
    }
  }

  /// Fills outs[lane][0..count) with Lemire-bounded indices in [0, n) for
  /// every lane, advancing all four streams.  Precondition: n in
  /// [1, 2^32); all four out pointers valid for `count` elements.
  void fill_indices(std::uint64_t n, std::size_t count,
                    std::uint32_t* const outs[kLanes]) noexcept;

  /// The current state words of one lane (for tests pinning lane
  /// evolution against a scalar Rng).
  std::array<std::uint64_t, 4> lane_state(std::size_t lane) const noexcept {
    return {state_[0][lane], state_[1][lane], state_[2][lane], state_[3][lane]};
  }

 private:
  // Word-major, lane-minor: state_[word][lane], so each state word of the
  // four streams is one contiguous 32-byte row a vector load picks up.
  alignas(32) std::uint64_t state_[4][kLanes];
};

// --- Internal: per-level kernel table ----------------------------------
//
// Exposed so bench_kernels can time one level without flipping the
// process-wide dispatch, and so the equivalence suite can diff levels.

struct NumericKernels {
  void (*adjacent_deltas)(const double* in, std::size_t n_out, double* out) noexcept;
  void (*gather_u32)(const double* values, const std::uint32_t* idx, std::size_t n,
                     double* out) noexcept;
  void (*upper_bound_many)(const double* sorted, std::size_t n, const double* xs, std::size_t m,
                           std::uint32_t* out) noexcept;
  void (*lower_bound_many)(const double* sorted, std::size_t n, const double* xs, std::size_t m,
                           std::uint32_t* out) noexcept;
  void (*counts_to_fractions)(const std::uint32_t* counts, std::size_t m, double n,
                              double* out) noexcept;
  void (*quantile_indices)(const double* qs, std::size_t m, std::size_t n,
                           std::uint32_t* out) noexcept;
  /// max_i |ca[i]/dn - cb[i]/dm| over m entries (0.0 for m == 0).
  double (*max_abs_cdf_gap)(const std::uint32_t* ca, const std::uint32_t* cb, std::size_t m,
                            double dn, double dm) noexcept;
  /// Advances 4 xoshiro lanes `count` steps each, writing Lemire-bounded
  /// indices; `threshold` = (2^64 - n) % n precomputed by the wrapper.
  void (*xoshiro_fill)(std::uint64_t state[4][XoshiroLanes::kLanes], std::uint64_t n,
                       std::uint64_t threshold, std::size_t count,
                       std::uint32_t* const* outs) noexcept;
};

/// The numeric kernel table for `level` (clamped to supported_level()).
const NumericKernels& numeric_kernels(Level level) noexcept;

}  // namespace tsufail::stats::simd
