// Hypothesis tests used for calibration validation.
//
// The simulator must generate logs whose per-category statistics match the
// paper's targets; these tests are how the test suite (and downstream
// users) check that claim quantitatively rather than by eyeball.
#pragma once

#include <span>

#include "util/error.h"

namespace tsufail::stats {

struct KsTestResult {
  double statistic = 0.0;  ///< sup |F1 - F2|
  double p_value = 0.0;    ///< asymptotic Kolmogorov p-value
};

/// Two-sample Kolmogorov-Smirnov test with the asymptotic p-value
/// (Kolmogorov distribution of sqrt(n_eff) * D).
/// Errors: either sample empty.
Result<KsTestResult> ks_two_sample(std::span<const double> a, std::span<const double> b);

/// Survival function of the Kolmogorov distribution, Q(lambda) =
/// 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
double kolmogorov_sf(double lambda) noexcept;

struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t dof = 0;
  double p_value = 0.0;
};

/// Chi-square goodness-of-fit of observed counts against expected
/// proportions (need not be normalized).
/// Errors: size mismatch, fewer than 2 cells, zero/negative expectation,
/// or zero observed total.
Result<ChiSquareResult> chi_square_gof(std::span<const std::size_t> observed,
                                       std::span<const double> expected_proportions);

/// Upper-tail probability of the chi-square distribution with `dof` degrees
/// of freedom at `x` (via the regularized incomplete gamma).
double chi_square_sf(double x, std::size_t dof) noexcept;

/// Inverse CDF of the chi-square distribution: the x with P[X <= x] = p.
/// Errors: p outside (0, 1) or dof == 0.  Solved by bisection on the CDF
/// (monotone; ~1e-10 relative accuracy).
Result<double> chi_square_quantile(double p, std::size_t dof);

struct RateInterval {
  double rate = 0.0;        ///< events per unit exposure (point estimate)
  double low = 0.0;
  double high = 0.0;
  double level = 0.95;
};

/// Exact (Garwood) confidence interval for a Poisson rate given `events`
/// over `exposure`; the standard uncertainty statement for MTBF numbers.
/// Errors: zero/negative exposure, level outside (0,1).
Result<RateInterval> poisson_rate_interval(std::size_t events, double exposure,
                                           double level = 0.95);

}  // namespace tsufail::stats
