#include "stats/survival.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/hypothesis.h"

namespace tsufail::stats {
namespace {

/// Groups observations into (event time -> {events, censored}) and checks
/// preconditions shared by fit() and log_rank_test().
Result<void> check(std::span<const SurvivalObservation> observations) {
  if (observations.empty())
    return Error(ErrorKind::kDomain, "survival: empty sample");
  bool any_event = false;
  for (const auto& obs : observations) {
    if (!(obs.time >= 0.0) || !std::isfinite(obs.time))
      return Error(ErrorKind::kDomain, "survival: times must be finite and >= 0");
    any_event |= obs.event;
  }
  if (!any_event)
    return Error(ErrorKind::kDomain, "survival: no observed events (all censored)");
  return {};
}

}  // namespace

Result<SurvivalCurve> SurvivalCurve::fit(std::span<const SurvivalObservation> observations) {
  if (auto ok = check(observations); !ok.ok()) return ok.error();

  // events[t] = failures at t; removals[t] = all departures at t
  // (failures + censorings), used to maintain the at-risk count.
  std::map<double, std::size_t> events, removals;
  for (const auto& obs : observations) {
    ++removals[obs.time];
    if (obs.event) ++events[obs.time];
  }

  SurvivalCurve curve;
  curve.n_ = observations.size();
  std::size_t at_risk = observations.size();
  double survival = 1.0;
  double hazard = 0.0;
  for (const auto& [time, removed] : removals) {
    const auto it = events.find(time);
    const std::size_t d = it == events.end() ? 0 : it->second;
    if (d > 0) {
      SurvivalPoint point;
      point.time = time;
      point.at_risk = at_risk;
      point.events = d;
      survival *= 1.0 - static_cast<double>(d) / static_cast<double>(at_risk);
      hazard += static_cast<double>(d) / static_cast<double>(at_risk);
      point.survival = survival;
      point.cumulative_hazard = hazard;
      curve.points_.push_back(point);
      curve.events_ += d;
    }
    at_risk -= removed;
  }
  return curve;
}

double SurvivalCurve::survival_at(double time) const noexcept {
  double value = 1.0;
  for (const auto& point : points_) {
    if (point.time > time) break;
    value = point.survival;
  }
  return value;
}

double SurvivalCurve::cumulative_hazard_at(double time) const noexcept {
  double value = 0.0;
  for (const auto& point : points_) {
    if (point.time > time) break;
    value = point.cumulative_hazard;
  }
  return value;
}

Result<double> SurvivalCurve::quantile(double q) const {
  if (!(q > 0.0 && q < 1.0))
    return Error(ErrorKind::kDomain, "survival quantile level must be in (0,1)");
  for (const auto& point : points_) {
    if (point.survival <= 1.0 - q) return point.time;
  }
  return Error(ErrorKind::kDomain,
               "survival curve never reaches S(t) <= " + std::to_string(1.0 - q) +
                   " (heavy censoring)");
}

double SurvivalCurve::restricted_mean(double horizon) const noexcept {
  double area = 0.0;
  double prev_time = 0.0;
  double prev_survival = 1.0;
  for (const auto& point : points_) {
    if (point.time >= horizon) break;
    area += prev_survival * (point.time - prev_time);
    prev_time = point.time;
    prev_survival = point.survival;
  }
  area += prev_survival * std::max(0.0, horizon - prev_time);
  return area;
}

Result<LogRankResult> log_rank_test(std::span<const SurvivalObservation> group_a,
                                    std::span<const SurvivalObservation> group_b) {
  if (auto ok = check(group_a); !ok.ok()) return ok.error().with_context("group A");
  if (auto ok = check(group_b); !ok.ok()) return ok.error().with_context("group B");

  // Departure (event/censor) bookkeeping per group at each distinct time.
  struct Cell {
    std::size_t events_a = 0, events_b = 0;
    std::size_t removed_a = 0, removed_b = 0;
  };
  std::map<double, Cell> timeline;
  for (const auto& obs : group_a) {
    auto& cell = timeline[obs.time];
    ++cell.removed_a;
    if (obs.event) ++cell.events_a;
  }
  for (const auto& obs : group_b) {
    auto& cell = timeline[obs.time];
    ++cell.removed_b;
    if (obs.event) ++cell.events_b;
  }

  double observed_a = 0.0, expected_a = 0.0, variance = 0.0;
  double at_risk_a = static_cast<double>(group_a.size());
  double at_risk_b = static_cast<double>(group_b.size());
  for (const auto& [time, cell] : timeline) {
    const double d = static_cast<double>(cell.events_a + cell.events_b);
    const double n = at_risk_a + at_risk_b;
    if (d > 0.0 && n > 1.0) {
      observed_a += static_cast<double>(cell.events_a);
      expected_a += d * at_risk_a / n;
      variance += d * (at_risk_a / n) * (at_risk_b / n) * (n - d) / (n - 1.0);
    }
    at_risk_a -= static_cast<double>(cell.removed_a);
    at_risk_b -= static_cast<double>(cell.removed_b);
  }

  LogRankResult result;
  result.observed_minus_expected_a = observed_a - expected_a;
  if (variance <= 0.0)
    return Error(ErrorKind::kDomain, "log-rank: zero variance (degenerate samples)");
  result.statistic = result.observed_minus_expected_a * result.observed_minus_expected_a /
                     variance;
  result.p_value = chi_square_sf(result.statistic, 1);
  return result;
}

}  // namespace tsufail::stats
