// Simple ordinary-least-squares linear regression, used by the
// rolling-trend analysis to quantify whether reliability drifts over a
// system's lifetime (burn-in / wear-out).
#pragma once

#include <span>

#include "util/error.h"

namespace tsufail::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  double slope_stderr = 0.0;   ///< standard error of the slope estimate
  /// Two-sided p-value for slope != 0 (normal approximation; adequate for
  /// the n >= 10 window counts this library produces).
  double slope_p_value = 1.0;

  double predict(double x) const noexcept { return intercept + slope * x; }
};

/// Fits y = intercept + slope * x.
/// Errors: size mismatch, fewer than 3 points, or zero variance in x.
Result<LinearFit> linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace tsufail::stats
