#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace tsufail::stats {

Result<double> pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    return Error(ErrorKind::kDomain, "pearson: length mismatch");
  if (x.size() < 2)
    return Error(ErrorKind::kDomain, "pearson: need at least 2 pairs");
  const auto n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0)
    return Error(ErrorKind::kDomain, "pearson: zero variance sample");
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> fractional_ranks(std::span<const double> sample) {
  std::vector<std::size_t> order(sample.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sample[a] < sample[b]; });
  std::vector<double> ranks(sample.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && sample[order[j + 1]] == sample[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

Result<double> spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    return Error(ErrorKind::kDomain, "spearman: length mismatch");
  const auto rx = fractional_ranks(x);
  const auto ry = fractional_ranks(y);
  return pearson(rx, ry);
}

}  // namespace tsufail::stats
