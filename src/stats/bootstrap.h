// Nonparametric bootstrap confidence intervals.
//
// The logs are single realizations (897 and 338 failures); every headline
// number (MTBF, MTTR, category shares) deserves an uncertainty estimate.
// We use the percentile bootstrap, adequate at these sample sizes.
#pragma once

#include <functional>
#include <span>

#include "util/error.h"
#include "util/rng.h"

namespace tsufail::stats {

struct ConfidenceInterval {
  double point = 0.0;   ///< statistic on the original sample
  double low = 0.0;     ///< lower percentile bound
  double high = 0.0;    ///< upper percentile bound
  double level = 0.95;  ///< nominal coverage
};

/// Percentile-bootstrap CI of an arbitrary statistic.
/// `statistic` must accept any resample of the original length.
/// Errors: empty sample, replicates == 0, level outside (0, 1).
Result<ConfidenceInterval> bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates = 1000, double level = 0.95);

/// Convenience wrappers for the two statistics the benches report.
Result<ConfidenceInterval> bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                             std::size_t replicates = 1000, double level = 0.95);
Result<ConfidenceInterval> bootstrap_median_ci(std::span<const double> sample, Rng& rng,
                                               std::size_t replicates = 1000, double level = 0.95);

}  // namespace tsufail::stats
