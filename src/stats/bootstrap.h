// Nonparametric bootstrap confidence intervals.
//
// The logs are single realizations (897 and 338 failures); every headline
// number (MTBF, MTTR, category shares) deserves an uncertainty estimate.
// We use the percentile bootstrap, adequate at these sample sizes.
//
// Determinism contract: the resamples are drawn in fixed-size shards,
// each from its own child RNG forked off the caller's generator, and the
// shard partition depends only on `replicates` — never on `jobs`.  The
// returned interval is therefore bit-identical at any thread count, and
// the caller's generator advances exactly once per call (so consecutive
// calls still see fresh resamples).
#pragma once

#include <functional>
#include <span>

#include "util/error.h"
#include "util/rng.h"

namespace tsufail::stats {

struct ConfidenceInterval {
  double point = 0.0;   ///< statistic on the original sample
  double low = 0.0;     ///< lower percentile bound
  double high = 0.0;    ///< upper percentile bound
  double level = 0.95;  ///< nominal coverage
};

/// Percentile-bootstrap CI of an arbitrary statistic.
/// `statistic` must accept any resample of the original length, and must
/// be a pure function of its argument: shards run four per multi-lane
/// RNG group, so statistic calls interleave across shards (and run
/// concurrently when jobs != 1) — only the per-replicate result slot is
/// guaranteed, not the call order.
/// `jobs` shards the replicate loop across worker threads: 1 (default)
/// stays on the calling thread, 0 uses one worker per hardware thread;
/// the bounds are identical for every value.
/// Errors: empty sample, replicates == 0, level outside (0, 1).
Result<ConfidenceInterval> bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates = 1000, double level = 0.95, std::size_t jobs = 1);

/// Convenience wrappers for the two statistics the benches report.
Result<ConfidenceInterval> bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                             std::size_t replicates = 1000, double level = 0.95,
                                             std::size_t jobs = 1);
Result<ConfidenceInterval> bootstrap_median_ci(std::span<const double> sample, Rng& rng,
                                               std::size_t replicates = 1000, double level = 0.95,
                                               std::size_t jobs = 1);

}  // namespace tsufail::stats
