#include "stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "stats/descriptive.h"

namespace tsufail::stats {

Result<ConfidenceInterval> bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates, double level) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "bootstrap_ci: empty sample");
  if (replicates == 0)
    return Error(ErrorKind::kDomain, "bootstrap_ci: need at least one replicate");
  if (!(level > 0.0 && level < 1.0))
    return Error(ErrorKind::kDomain, "bootstrap_ci: level must be in (0,1)");

  std::vector<double> resample(sample.size());
  std::vector<double> replicate_stats;
  replicate_stats.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& slot : resample) slot = sample[rng.uniform_index(sample.size())];
    replicate_stats.push_back(statistic(resample));
  }
  std::sort(replicate_stats.begin(), replicate_stats.end());

  const double alpha = (1.0 - level) / 2.0;
  ConfidenceInterval ci;
  ci.point = statistic(sample);
  ci.low = quantile_sorted(replicate_stats, alpha).value();
  ci.high = quantile_sorted(replicate_stats, 1.0 - alpha).value();
  ci.level = level;
  return ci;
}

Result<ConfidenceInterval> bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                             std::size_t replicates, double level) {
  return bootstrap_ci(sample, [](std::span<const double> s) { return mean(s); }, rng, replicates,
                      level);
}

Result<ConfidenceInterval> bootstrap_median_ci(std::span<const double> sample, Rng& rng,
                                               std::size_t replicates, double level) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return quantile(s, 0.5).value_or(0.0); }, rng,
      replicates, level);
}

}  // namespace tsufail::stats
