#include "stats/bootstrap.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "stats/descriptive.h"
#include "stats/kernels.h"

namespace tsufail::stats {
namespace {

/// Replicates per RNG shard.  The shard partition is a function of
/// `replicates` alone, so the same draws happen at any thread count.
constexpr std::size_t kShardSize = 128;

}  // namespace

Result<ConfidenceInterval> bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates, double level, std::size_t jobs) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "bootstrap_ci: empty sample");
  if (replicates == 0)
    return Error(ErrorKind::kDomain, "bootstrap_ci: need at least one replicate");
  if (!(level > 0.0 && level < 1.0))
    return Error(ErrorKind::kDomain, "bootstrap_ci: level must be in (0,1)");

  ConfidenceInterval ci;
  ci.point = statistic(sample);  // hoisted: computed once, before any resampling
  ci.level = level;

  // Advance the caller's generator once so consecutive calls differ, then
  // fork one child stream per shard off the advanced state.
  rng();
  const std::size_t shard_count = (replicates + kShardSize - 1) / kShardSize;

  std::vector<double> replicate_stats(replicates);
  // Per-replicate fill is split draw-then-gather: the RNG advances in
  // exactly the same call order as the old fused loop (same indices, so
  // bit-identical resamples and CI bounds), but the value movement
  // becomes a contiguous stats::gather_into the vectorizer can handle.
  struct ShardScratch {
    std::vector<std::uint32_t> indices;
    std::vector<double> resample;
  };
  const auto run_shard = [&](std::size_t shard, ShardScratch& scratch) {
    Rng shard_rng = rng.fork(shard);
    const std::size_t begin = shard * kShardSize;
    const std::size_t end = std::min(begin + kShardSize, replicates);
    for (std::size_t r = begin; r < end; ++r) {
      for (auto& slot : scratch.indices)
        slot = static_cast<std::uint32_t>(shard_rng.uniform_index(sample.size()));
      gather_into(sample, scratch.indices, scratch.resample);
      replicate_stats[r] = statistic(scratch.resample);
    }
  };

  std::size_t workers = jobs == 0 ? std::max(1u, std::thread::hardware_concurrency()) : jobs;
  workers = std::min(workers, shard_count);
  if (workers <= 1) {
    ShardScratch scratch{std::vector<std::uint32_t>(sample.size()),
                         std::vector<double>(sample.size())};
    for (std::size_t shard = 0; shard < shard_count; ++shard) run_shard(shard, scratch);
  } else {
    std::atomic<std::size_t> next_shard{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        ShardScratch scratch{std::vector<std::uint32_t>(sample.size()),
                             std::vector<double>(sample.size())};
        for (std::size_t shard = next_shard.fetch_add(1); shard < shard_count;
             shard = next_shard.fetch_add(1)) {
          run_shard(shard, scratch);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  std::sort(replicate_stats.begin(), replicate_stats.end());
  const double alpha = (1.0 - level) / 2.0;
  ci.low = quantile_sorted(replicate_stats, alpha).value();
  ci.high = quantile_sorted(replicate_stats, 1.0 - alpha).value();
  return ci;
}

Result<ConfidenceInterval> bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                             std::size_t replicates, double level,
                                             std::size_t jobs) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, rng, replicates, level, jobs);
}

Result<ConfidenceInterval> bootstrap_median_ci(std::span<const double> sample, Rng& rng,
                                               std::size_t replicates, double level,
                                               std::size_t jobs) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return quantile(s, 0.5).value_or(0.0); }, rng,
      replicates, level, jobs);
}

}  // namespace tsufail::stats
