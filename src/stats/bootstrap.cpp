#include "stats/bootstrap.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "stats/descriptive.h"
#include "stats/kernels.h"
#include "stats/simd.h"

namespace tsufail::stats {
namespace {

/// Replicates per RNG shard.  The shard partition is a function of
/// `replicates` alone, so the same draws happen at any thread count.
constexpr std::size_t kShardSize = 128;

/// Shards per work unit: one per 64-bit lane of the stats::simd
/// multi-lane engine, so a single vectorized fill advances four shard
/// streams at once.  The grouping is the same at every dispatch level
/// (scalar dispatch just steps the four columns in a scalar loop), so it
/// changes which statistic call runs when — never which indices a shard
/// draws or which slot its statistic lands in.
constexpr std::size_t kLaneCount = simd::XoshiroLanes::kLanes;

}  // namespace

Result<ConfidenceInterval> bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates, double level, std::size_t jobs) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "bootstrap_ci: empty sample");
  if (replicates == 0)
    return Error(ErrorKind::kDomain, "bootstrap_ci: need at least one replicate");
  if (!(level > 0.0 && level < 1.0))
    return Error(ErrorKind::kDomain, "bootstrap_ci: level must be in (0,1)");

  ConfidenceInterval ci;
  ci.point = statistic(sample);  // hoisted: computed once, before any resampling
  ci.level = level;

  // Advance the caller's generator once so consecutive calls differ, then
  // fork one child stream per shard off the advanced state (XoshiroLanes
  // seeds lane L of group G from fork(G * kLaneCount + L), exactly the
  // fork the scalar per-shard loop used).
  rng();
  const std::size_t n = sample.size();
  const std::size_t shard_count = (replicates + kShardSize - 1) / kShardSize;
  const std::size_t group_count = (shard_count + kLaneCount - 1) / kLaneCount;

  std::vector<double> replicate_stats(replicates);
  // Per-replicate fill is split draw-then-gather: the four shard streams
  // of a group advance in lockstep (one vectorized fill per replicate
  // row), each lane's draw sequence bit-identical to calling
  // uniform_index on its fork directly, then the value movement is a
  // contiguous gather per lane.  Same indices per shard, same statistic
  // slot per replicate — bit-identical resamples and CI bounds.
  struct GroupScratch {
    std::array<std::vector<std::uint32_t>, kLaneCount> indices;
    std::vector<double> resample;
    explicit GroupScratch(std::size_t n) : resample(n) {
      for (auto& buf : indices) buf.resize(n);
    }
  };
  const auto run_group = [&](std::size_t group, GroupScratch& scratch) {
    simd::XoshiroLanes lanes(rng, group * kLaneCount);
    std::uint32_t* outs[kLaneCount];
    std::size_t lane_rows[kLaneCount];
    std::size_t rows = 0;
    for (std::size_t lane = 0; lane < kLaneCount; ++lane) {
      outs[lane] = scratch.indices[lane].data();
      const std::size_t begin = (group * kLaneCount + lane) * kShardSize;
      lane_rows[lane] = begin < replicates ? std::min(kShardSize, replicates - begin) : 0;
      rows = std::max(rows, lane_rows[lane]);
    }
    for (std::size_t row = 0; row < rows; ++row) {
      // Lanes already past their shard's last replicate keep drawing in
      // lockstep; those draws are discarded and the stream is never read
      // again, so finished lanes cannot perturb any result.
      lanes.fill_indices(n, n, outs);
      for (std::size_t lane = 0; lane < kLaneCount; ++lane) {
        if (row >= lane_rows[lane]) continue;
        gather_into(sample, scratch.indices[lane], scratch.resample);
        replicate_stats[(group * kLaneCount + lane) * kShardSize + row] =
            statistic(scratch.resample);
      }
    }
  };

  std::size_t workers = jobs == 0 ? std::max(1u, std::thread::hardware_concurrency()) : jobs;
  workers = std::min(workers, group_count);
  if (workers <= 1) {
    GroupScratch scratch(n);
    for (std::size_t group = 0; group < group_count; ++group) run_group(group, scratch);
  } else {
    std::atomic<std::size_t> next_group{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        GroupScratch scratch(n);
        for (std::size_t group = next_group.fetch_add(1); group < group_count;
             group = next_group.fetch_add(1)) {
          run_group(group, scratch);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  std::sort(replicate_stats.begin(), replicate_stats.end());
  const double alpha = (1.0 - level) / 2.0;
  ci.low = quantile_sorted(replicate_stats, alpha).value();
  ci.high = quantile_sorted(replicate_stats, 1.0 - alpha).value();
  return ci;
}

Result<ConfidenceInterval> bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                                             std::size_t replicates, double level,
                                             std::size_t jobs) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, rng, replicates, level, jobs);
}

Result<ConfidenceInterval> bootstrap_median_ci(std::span<const double> sample, Rng& rng,
                                               std::size_t replicates, double level,
                                               std::size_t jobs) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return quantile(s, 0.5).value_or(0.0); }, rng,
      replicates, level, jobs);
}

}  // namespace tsufail::stats
