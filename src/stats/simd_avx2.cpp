// The AVX2 tier of stats::simd.  Compiled with -mavx2 when the compiler
// supports it (see stats/CMakeLists.txt); the #if keeps the TU an empty
// stub on other targets so the build stays portable.  Every kernel here
// is bit-identical to its scalar twin in simd.cpp — see the determinism
// notes on each one.
#include "stats/simd_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>

namespace tsufail::stats::simd {
namespace {

inline __m256i rotl64(__m256i v, int k) noexcept {
  return _mm256_or_si256(_mm256_slli_epi64(v, k), _mm256_srli_epi64(v, 64 - k));
}

void avx2_adjacent_deltas(const double* in, std::size_t n_out, double* out) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n_out; i += 4) {
    const __m256d hi = _mm256_loadu_pd(in + i + 1);
    const __m256d lo = _mm256_loadu_pd(in + i);
    _mm256_storeu_pd(out + i, _mm256_sub_pd(hi, lo));
  }
  for (; i < n_out; ++i) out[i] = in[i + 1] - in[i];
}

void avx2_gather_u32(const double* values, const std::uint32_t* idx, std::size_t n,
                     double* out) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Four u32 indices; the wrapper guarantees every index < 2^31, so the
    // signed i32 gather reads the intended elements.
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(out + i, _mm256_i32gather_pd(values, vi, 8));
  }
  for (; i < n; ++i) out[i] = values[idx[i]];
}

/// Lane-parallel branchless search: finds, per query lane, the length of
/// the prefix of `sorted` satisfying a monotone predicate, by greedy
/// power-of-two descent from bit_floor(n).  Every lane runs the same
/// iteration count, so the loop has no per-lane control flow.  The count
/// is an exact integer — bit-identical to std::upper_bound/lower_bound by
/// construction (same predicate, same prefix).
template <int kCmpPredicate, bool kQueryFirst>
void avx2_bound_many(const double* sorted, std::size_t n, const double* xs, std::size_t m,
                     std::uint32_t* out) noexcept {
  const __m256i vn = _mm256_set1_epi64x(static_cast<long long>(n));
  const __m256i one = _mm256_set1_epi64x(1);
  const std::uint64_t top = std::bit_floor(n);
  std::size_t q = 0;
  for (; q + 4 <= m; q += 4) {
    const __m256d x = _mm256_loadu_pd(xs + q);
    __m256i ub = _mm256_setzero_si256();
    for (std::uint64_t bit = top; bit > 0; bit >>= 1) {
      const __m256i vbit = _mm256_set1_epi64x(static_cast<long long>(bit));
      const __m256i next = _mm256_add_epi64(ub, vbit);
      const __m256i over = _mm256_cmpgt_epi64(next, vn);
      // Clamp the probe so the gather index stays in range for lanes that
      // are already past the end (their result is masked off below).
      const __m256i probe = _mm256_blendv_epi8(next, vn, over);
      const __m256d av =
          _mm256_i64gather_pd(sorted, _mm256_sub_epi64(probe, one), 8);
      const __m256d hit = kQueryFirst ? _mm256_cmp_pd(x, av, kCmpPredicate)
                                      : _mm256_cmp_pd(av, x, kCmpPredicate);
      const __m256i ok = _mm256_andnot_si256(over, _mm256_castpd_si256(hit));
      ub = _mm256_add_epi64(ub, _mm256_and_si256(ok, vbit));
    }
    alignas(32) long long counts[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts), ub);
    for (int lane = 0; lane < 4; ++lane)
      out[q + static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(counts[lane]);
  }
  for (; q < m; ++q) {
    if constexpr (kQueryFirst) {
      out[q] = static_cast<std::uint32_t>(std::upper_bound(sorted, sorted + n, xs[q]) - sorted);
    } else {
      out[q] = static_cast<std::uint32_t>(std::lower_bound(sorted, sorted + n, xs[q]) - sorted);
    }
  }
}

void avx2_upper_bound_many(const double* sorted, std::size_t n, const double* xs,
                           std::size_t m, std::uint32_t* out) noexcept {
  // upper_bound keeps growing while !(x < a[next-1]); NLT_UQ makes a NaN
  // query count the whole sample, exactly like std::upper_bound.
  avx2_bound_many<_CMP_NLT_UQ, true>(sorted, n, xs, m, out);
}

void avx2_lower_bound_many(const double* sorted, std::size_t n, const double* xs,
                           std::size_t m, std::uint32_t* out) noexcept {
  // lower_bound keeps growing while a[next-1] < x; LT_OQ makes a NaN
  // query count zero, exactly like std::lower_bound.
  avx2_bound_many<_CMP_LT_OQ, false>(sorted, n, xs, m, out);
}

void avx2_counts_to_fractions(const std::uint32_t* counts, std::size_t m, double n,
                              double* out) noexcept {
  const __m256d dn = _mm256_set1_pd(n);
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + i));
    // Counts < 2^31, so the signed i32 -> double conversion is exact, and
    // IEEE division is correctly rounded: bit-identical to the scalar.
    _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_cvtepi32_pd(raw), dn));
  }
  for (; i < m; ++i) out[i] = static_cast<double>(counts[i]) / n;
}

void avx2_quantile_indices(const double* qs, std::size_t m, std::size_t n,
                           std::uint32_t* out) noexcept {
  const auto dn = static_cast<double>(n);
  const auto scalar_one = [&](double qv) {
    auto rank = static_cast<std::size_t>(std::ceil(qv * dn));
    rank = std::min(rank, n);
    rank = std::max<std::size_t>(rank, 1);
    return static_cast<std::uint32_t>(rank - 1);
  };
  if (n > (std::size_t{1} << 31) - 1) {
    for (std::size_t i = 0; i < m; ++i) out[i] = scalar_one(qs[i]);
    return;
  }
  const __m256d vdn = _mm256_set1_pd(dn);
  const __m128i vn32 = _mm_set1_epi32(static_cast<int>(n));
  const __m128i vone = _mm_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d t = _mm256_mul_pd(_mm256_loadu_pd(qs + i), vdn);
    const __m256d up = _mm256_round_pd(t, _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC);
    __m128i rank = _mm256_cvttpd_epi32(up);  // exact: up is integral, <= n < 2^31
    rank = _mm_min_epi32(rank, vn32);
    rank = _mm_max_epi32(rank, vone);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_sub_epi32(rank, vone));
  }
  for (; i < m; ++i) out[i] = scalar_one(qs[i]);
}

double avx2_max_abs_cdf_gap(const std::uint32_t* ca, const std::uint32_t* cb, std::size_t m,
                            double dn, double dm) noexcept {
  // max is exact and order-independent over these finite values, so the
  // vector reduction matches the scalar left-to-right scan bit-for-bit.
  const __m256d vdn = _mm256_set1_pd(dn);
  const __m256d vdm = _mm256_set1_pd(dm);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d vworst = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d fa = _mm256_div_pd(
        _mm256_cvtepi32_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(ca + i))), vdn);
    const __m256d fb = _mm256_div_pd(
        _mm256_cvtepi32_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(cb + i))), vdm);
    vworst = _mm256_max_pd(vworst, _mm256_andnot_pd(sign_mask, _mm256_sub_pd(fa, fb)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vworst);
  double worst = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
  for (; i < m; ++i) {
    const double diff = std::abs(static_cast<double>(ca[i]) / dn -
                                 static_cast<double>(cb[i]) / dm);
    if (diff > worst) worst = diff;
  }
  return worst;
}

void avx2_xoshiro_fill(std::uint64_t state[4][XoshiroLanes::kLanes], std::uint64_t n,
                       std::uint64_t threshold, std::size_t count,
                       std::uint32_t* const* outs) noexcept {
  // All four streams advance in lockstep in registers; the rare Lemire
  // rejection flushes state to memory, redraws the rejecting lane(s) with
  // the shared scalar step (so redraw sequences match the scalar engine
  // exactly), and reloads.
  __m256i s0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[0]));
  __m256i s1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[1]));
  __m256i s2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[2]));
  __m256i s3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[3]));
  alignas(32) std::uint64_t draws[XoshiroLanes::kLanes];
  for (std::size_t i = 0; i < count; ++i) {
    // result = rotl(s1 * 5, 7) * 9 — the multiplies strength-reduce to
    // shift-adds (no 64-bit vector multiply in AVX2).
    const __m256i mul5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
    const __m256i rot = rotl64(mul5, 7);
    const __m256i result = _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = rotl64(s3, 45);
    _mm256_store_si256(reinterpret_cast<__m256i*>(draws), result);

    bool rejected = false;
    for (std::size_t lane = 0; lane < XoshiroLanes::kLanes; ++lane) {
      const auto mul =
          static_cast<__uint128_t>(draws[lane]) * static_cast<__uint128_t>(n);
      if (static_cast<std::uint64_t>(mul) < threshold) [[unlikely]] {
        rejected = true;
        break;
      }
      outs[lane][i] = static_cast<std::uint32_t>(mul >> 64);
    }
    if (rejected) [[unlikely]] {
      _mm256_store_si256(reinterpret_cast<__m256i*>(state[0]), s0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(state[1]), s1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(state[2]), s2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(state[3]), s3);
      for (std::size_t lane = 0; lane < XoshiroLanes::kLanes; ++lane)
        outs[lane][i] = detail::lemire_finish_lane(state, lane, draws[lane], n, threshold);
      s0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[0]));
      s1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[1]));
      s2 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[2]));
      s3 = _mm256_load_si256(reinterpret_cast<const __m256i*>(state[3]));
    }
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(state[0]), s0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(state[1]), s1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(state[2]), s2);
  _mm256_store_si256(reinterpret_cast<__m256i*>(state[3]), s3);
}

constexpr NumericKernels kAvx2NumericKernels{
    avx2_adjacent_deltas, avx2_gather_u32,         avx2_upper_bound_many,
    avx2_lower_bound_many, avx2_counts_to_fractions, avx2_quantile_indices,
    avx2_max_abs_cdf_gap, avx2_xoshiro_fill,
};

}  // namespace

namespace detail {
const NumericKernels* avx2_numeric_kernels() noexcept { return &kAvx2NumericKernels; }
}  // namespace detail

}  // namespace tsufail::stats::simd

#else  // !__AVX2__

namespace tsufail::stats::simd::detail {
const NumericKernels* avx2_numeric_kernels() noexcept { return nullptr; }
}  // namespace tsufail::stats::simd::detail

#endif
