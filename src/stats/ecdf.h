// Empirical cumulative distribution functions.
//
// Figures 6 and 9 of the paper are CDFs of time-between-failures and
// time-to-recovery.  Ecdf owns a sorted copy of the sample and answers
// F(x), inverse-F (quantiles), and produces plot-ready (x, F) step series.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "util/error.h"

namespace tsufail::stats {

class Ecdf {
 public:
  /// Builds an ECDF from an unsorted sample. Errors: empty sample.
  static Result<Ecdf> create(std::span<const double> sample);

  std::size_t count() const noexcept { return sorted_.size(); }
  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }
  double mean() const noexcept { return mean_; }

  /// F(x) = P[X <= x], the right-continuous empirical CDF.
  double evaluate(double x) const noexcept;

  /// Batched evaluate: out[i] = evaluate(xs[i]) for every query, via the
  /// stats::simd lane-parallel binary search (4 queries per AVX2
  /// iteration) — bit-identical to the one-at-a-time path.
  /// Precondition: out.size() == xs.size().
  void evaluate_many(std::span<const double> xs, std::span<double> out) const noexcept;

  /// Smallest sample value v with F(v) >= q (empirical quantile,
  /// inverse-CDF definition). Errors: q outside [0, 1].
  Result<double> quantile(double q) const;

  /// Batched quantile: the rank arithmetic runs 4-wide and the sorted
  /// sample is fetched with one vector gather — each result bit-identical
  /// to quantile(qs[i]).  Errors: any q outside [0, 1].
  Result<std::vector<double>> quantile_many(std::span<const double> qs) const;

  /// The underlying ascending-sorted sample.
  std::span<const double> sorted() const noexcept { return sorted_; }

  /// Step-function series for plotting: `points` (x, F(x)) pairs sampled at
  /// evenly spaced ranks (always including the first and last observation).
  /// Precondition: points >= 2.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  explicit Ecdf(std::vector<double> sorted);
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Dvoretzky-Kiefer-Wolfowitz band half-width: with probability `level`,
/// the true CDF lies within +- this of the ECDF everywhere.  Gives the
/// Figure 6/9 CDFs an honest uncertainty envelope.
/// Errors: n == 0 or level outside (0, 1).
Result<double> dkw_band_halfwidth(std::size_t n, double level = 0.95);

/// Two-sample Kolmogorov-Smirnov statistic: sup_x |F1(x) - F2(x)|.
/// Used by tests to verify simulated samples match calibrated analytic
/// distributions in shape.
double ks_statistic(const Ecdf& a, const Ecdf& b);

/// One-sample KS statistic against an arbitrary continuous CDF.
template <typename Cdf>
double ks_statistic_against(const Ecdf& ecdf, Cdf&& cdf) {
  const auto sorted = ecdf.sorted();
  const auto n = static_cast<double>(sorted.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = cdf(sorted[i]);
    const double before = static_cast<double>(i) / n;
    const double after = static_cast<double>(i + 1) / n;
    worst = std::max({worst, std::abs(model - before), std::abs(model - after)});
  }
  return worst;
}

}  // namespace tsufail::stats
