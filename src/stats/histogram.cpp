#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace tsufail::stats {

Result<Histogram> Histogram::create(std::span<const double> sample, double lo, double hi,
                                    std::size_t bins) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "Histogram: empty sample");
  if (bins == 0)
    return Error(ErrorKind::kDomain, "Histogram: need at least one bin");
  if (!(hi > lo))
    return Error(ErrorKind::kDomain, "Histogram: hi must exceed lo");

  Histogram h;
  h.bins_.resize(bins);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    h.bins_[i].lower = lo + width * static_cast<double>(i);
    h.bins_[i].upper = (i + 1 == bins) ? hi : lo + width * static_cast<double>(i + 1);
  }
  for (double x : sample) {
    ++h.total_;
    if (x < lo) {
      ++h.underflow_;
      continue;
    }
    if (x > hi) {
      ++h.overflow_;
      continue;
    }
    auto idx = static_cast<std::size_t>((x - lo) / width);
    idx = std::min(idx, bins - 1);  // x == hi lands in the last bin
    ++h.bins_[idx].count;
  }
  for (auto& bin : h.bins_)
    bin.fraction = static_cast<double>(bin.count) / static_cast<double>(h.total_);
  return h;
}

Result<Histogram> Histogram::create_auto(std::span<const double> sample, std::size_t bins) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "Histogram: empty sample");
  const auto [lo_it, hi_it] = std::minmax_element(sample.begin(), sample.end());
  double lo = *lo_it;
  double hi = *hi_it;
  if (lo == hi) hi = lo + 1.0;  // degenerate constant sample: one unit bin
  return create(sample, lo, hi, bins);
}

}  // namespace tsufail::stats
