// Descriptive statistics over double samples.
//
// All analyses in the paper reduce to order statistics and moments of
// per-category samples (time-between-failures, time-to-recovery).  This
// header provides the numerically careful building blocks: Welford moments,
// interpolated quantiles (R type-7, matching numpy/pandas defaults so the
// reproduction is comparable to the paper's Python-era tooling), and
// five-number/box-plot summaries.
#pragma once

#include <span>
#include <vector>

#include "util/error.h"

namespace tsufail::stats {

/// Single-pass accumulator for count/mean/variance/min/max (Welford).
/// Numerically stable for the 1e2..1e6-sample logs this library targets.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Sample (n-1) variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator (Chan's parallel combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Full descriptive summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Box-and-whisker statistics (Tukey fences at 1.5 IQR), as plotted in the
/// paper's Figures 7 and 10.
struct BoxStats {
  std::size_t count = 0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double iqr = 0.0;            ///< q3 - q1 ("spread" in the paper's wording)
  double whisker_low = 0.0;    ///< smallest sample >= q1 - 1.5*iqr
  double whisker_high = 0.0;   ///< largest sample <= q3 + 1.5*iqr
  double mean = 0.0;
  std::size_t outliers = 0;    ///< samples outside the whiskers
  double sample_min = 0.0;     ///< true extremes (outliers included)
  double sample_max = 0.0;
};

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> sample) noexcept;

/// Sample standard deviation (n-1); 0 for fewer than two observations.
double stddev(std::span<const double> sample) noexcept;

/// Interpolated quantile (R type-7) of an UNSORTED sample copy.
/// Errors: empty sample or q outside [0, 1].
Result<double> quantile(std::span<const double> sample, double q);

/// Quantile of an already-ascending-sorted sample (no copy).
/// Precondition: sorted ascending. Errors as quantile().
Result<double> quantile_sorted(std::span<const double> sorted, double q);

/// Full summary. Errors: empty sample.
Result<Summary> summarize(std::span<const double> sample);

/// Box-plot statistics. Errors: empty sample.
Result<BoxStats> box_stats(std::span<const double> sample);

}  // namespace tsufail::stats
