#include "stats/fit.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/ecdf.h"

namespace tsufail::stats {
namespace {

Result<void> check_positive(std::span<const double> sample, const char* who) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, std::string(who) + ": empty sample");
  for (double x : sample) {
    if (!(x > 0.0) || !std::isfinite(x))
      return Error(ErrorKind::kDomain, std::string(who) + ": observations must be positive and finite");
  }
  return {};
}

}  // namespace

Result<Exponential> fit_exponential(std::span<const double> sample) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "fit_exponential: empty sample");
  double sum = 0.0;
  for (double x : sample) {
    if (!(x >= 0.0) || !std::isfinite(x))
      return Error(ErrorKind::kDomain, "fit_exponential: observations must be >= 0 and finite");
    sum += x;
  }
  const double mean = sum / static_cast<double>(sample.size());
  if (!(mean > 0.0))
    return Error(ErrorKind::kDomain, "fit_exponential: all-zero sample");
  return Exponential{mean};
}

Result<LogNormal> fit_lognormal(std::span<const double> sample) {
  if (auto ok = check_positive(sample, "fit_lognormal"); !ok.ok()) return ok.error();
  RunningStats logs;
  for (double x : sample) logs.add(std::log(x));
  LogNormal d;
  d.mu_log = logs.mean();
  // MLE uses the biased (n) variance of the logs.
  const auto n = static_cast<double>(sample.size());
  d.sigma_log = std::sqrt(logs.variance() * (n - 1.0) / n);
  if (d.sigma_log <= 0.0) d.sigma_log = 1e-12;  // degenerate constant sample
  return d;
}

Result<Weibull> fit_weibull(std::span<const double> sample) {
  if (auto ok = check_positive(sample, "fit_weibull"); !ok.ok()) return ok.error();
  if (sample.size() < 2)
    return Error(ErrorKind::kDomain, "fit_weibull: need at least 2 observations");

  // Profile likelihood: the shape k solves
  //   g(k) = sum(x^k log x)/sum(x^k) - 1/k - mean(log x) = 0,
  // then scale = (mean(x^k))^(1/k).  g is increasing in k, so Newton with
  // bisection safeguards converges from a moment-based start.
  std::vector<double> logs(sample.size());
  double mean_log = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    logs[i] = std::log(sample[i]);
    mean_log += logs[i];
  }
  mean_log /= static_cast<double>(sample.size());

  // Scale x^k by exp(-k*max_log) implicitly via shifted logs to avoid
  // overflow with large k.  The shift is invariant across Newton
  // iterations, so it is computed once, not per g_and_slope call.
  const double max_log = *std::max_element(logs.begin(), logs.end());

  const auto g_and_slope = [&](double k, double& g, double& slope) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const double w = std::exp(k * (logs[i] - max_log));
      s0 += w;
      s1 += w * logs[i];
      s2 += w * logs[i] * logs[i];
    }
    const double r1 = s1 / s0;
    const double r2 = s2 / s0;
    g = r1 - 1.0 / k - mean_log;
    slope = (r2 - r1 * r1) + 1.0 / (k * k);
  };

  // Start from the classic log-variance approximation.
  RunningStats log_stats;
  for (double l : logs) log_stats.add(l);
  double k = log_stats.stddev() > 0 ? 1.2 / (log_stats.stddev() * std::sqrt(6.0) / std::numbers::pi)
                                    : 1.0;
  k = std::clamp(k, 1e-2, 1e2);

  bool converged = false;
  for (int iter = 0; iter < 100; ++iter) {
    double g = 0.0, slope = 0.0;
    g_and_slope(k, g, slope);
    const double step = g / slope;
    double next = k - step;
    if (!(next > 0.0)) next = k / 2.0;  // safeguard
    if (std::abs(next - k) < 1e-12 * std::max(1.0, k)) {
      k = next;
      converged = true;
      break;
    }
    k = next;
  }
  if (!converged || !std::isfinite(k) || k <= 0.0)
    return Error(ErrorKind::kDomain, "fit_weibull: shape estimation did not converge");

  double sum_pow = 0.0;
  for (double x : sample) sum_pow += std::pow(x, k);
  const double scale = std::pow(sum_pow / static_cast<double>(sample.size()), 1.0 / k);
  return Weibull{k, scale};
}

double digamma(double x) noexcept {
  // Shift into the asymptotic regime, then use the Bernoulli expansion.
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

Result<Gamma> fit_gamma(std::span<const double> sample) {
  if (auto ok = check_positive(sample, "fit_gamma"); !ok.ok()) return ok.error();
  if (sample.size() < 2)
    return Error(ErrorKind::kDomain, "fit_gamma: need at least 2 observations");
  RunningStats raw, logs;
  for (double x : sample) {
    raw.add(x);
    logs.add(std::log(x));
  }
  const double s = std::log(raw.mean()) - logs.mean();
  if (s <= 0.0) {  // numerically constant sample
    return Gamma{1e6, raw.mean() / 1e6};
  }
  // Minka's closed-form start, then Newton on log(k) - digamma(k) = s.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
  for (int iter = 0; iter < 60; ++iter) {
    const double f = std::log(k) - digamma(k) - s;
    // d/dk [log k - psi(k)] = 1/k - psi'(k); approximate trigamma by a
    // truncated series accurate enough for Newton.
    const double inv = 1.0 / k;
    const double trigamma = inv + 0.5 * inv * inv + inv * inv * inv / 6.0;
    const double slope = inv - trigamma;
    const double next = k - f / slope;
    if (!(next > 0.0)) {
      k /= 2.0;
      continue;
    }
    if (std::abs(next - k) < 1e-12 * std::max(1.0, k)) {
      k = next;
      break;
    }
    k = next;
  }
  return Gamma{k, raw.mean() / k};
}

const char* to_string(Family family) noexcept {
  switch (family) {
    case Family::kExponential: return "exponential";
    case Family::kWeibull: return "weibull";
    case Family::kLogNormal: return "lognormal";
    case Family::kGamma: return "gamma";
  }
  return "unknown";
}

Result<FamilyChoice> select_family(std::span<const double> sample) {
  auto ecdf = Ecdf::create(sample);
  if (!ecdf.ok()) return ecdf.error();

  FamilyChoice best;
  best.ks_distance = 2.0;  // above any possible KS distance
  bool any = false;

  const auto consider = [&](Family family, auto fitted) {
    if (!fitted.ok()) return;
    const double d =
        ks_statistic_against(ecdf.value(), [&](double x) { return fitted.value().cdf(x); });
    if (d < best.ks_distance) {
      best.family = family;
      best.ks_distance = d;
    }
    any = true;
  };

  consider(Family::kExponential, fit_exponential(sample));
  consider(Family::kWeibull, fit_weibull(sample));
  consider(Family::kLogNormal, fit_lognormal(sample));
  consider(Family::kGamma, fit_gamma(sample));

  if (!any)
    return Error(ErrorKind::kDomain, "select_family: no family could be fitted");
  return best;
}

}  // namespace tsufail::stats
