// Parametric distributions used to model inter-arrival (TBF) and repair
// (TTR) times.  Each type exposes pdf/cdf/quantile/mean so the fitting code,
// the simulator, and the goodness-of-fit tests share one definition.
//
// The choice of families follows HPC field-study practice: Weibull for
// hardware inter-arrival times (decreasing hazard from infant mortality),
// exponential for memoryless software arrival processes, and lognormal for
// repair times (multiplicative delays: diagnosis x parts x staffing).
#pragma once

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace tsufail::stats {

namespace detail {
/// Thread-safe ln|Gamma(a)|.  glibc's lgamma() writes the process-global
/// `signgam`, which is a data race when analyses fit distributions in
/// parallel; lgamma_r() returns the sign through an out-parameter instead.
inline double lgamma_threadsafe(double a) noexcept {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(a, &sign);
#else
  return std::lgamma(a);
#endif
}
}  // namespace detail

/// Exponential(mean). Hazard is constant; the classic MTBF model.
struct Exponential {
  double mean_value = 1.0;

  double pdf(double x) const noexcept {
    return x < 0 ? 0.0 : std::exp(-x / mean_value) / mean_value;
  }
  double cdf(double x) const noexcept { return x < 0 ? 0.0 : -std::expm1(-x / mean_value); }
  double quantile(double q) const noexcept { return -mean_value * std::log1p(-q); }
  double mean() const noexcept { return mean_value; }
  double variance() const noexcept { return mean_value * mean_value; }
};

/// Weibull(shape k, scale lambda). k < 1 gives a decreasing hazard
/// (failures cluster after repairs), k = 1 reduces to Exponential.
struct Weibull {
  double shape = 1.0;
  double scale = 1.0;

  double pdf(double x) const noexcept {
    if (x < 0) return 0.0;
    if (x == 0) return shape < 1.0 ? 0.0 : (shape == 1.0 ? 1.0 / scale : 0.0);
    const double z = x / scale;
    return (shape / scale) * std::pow(z, shape - 1.0) * std::exp(-std::pow(z, shape));
  }
  double cdf(double x) const noexcept {
    return x < 0 ? 0.0 : -std::expm1(-std::pow(x / scale, shape));
  }
  double quantile(double q) const noexcept {
    return scale * std::pow(-std::log1p(-q), 1.0 / shape);
  }
  double mean() const noexcept { return scale * std::tgamma(1.0 + 1.0 / shape); }
  double variance() const noexcept {
    const double g1 = std::tgamma(1.0 + 1.0 / shape);
    const double g2 = std::tgamma(1.0 + 2.0 / shape);
    return scale * scale * (g2 - g1 * g1);
  }
};

/// LogNormal(mu, sigma) of the underlying normal: X = exp(N(mu, sigma^2)).
struct LogNormal {
  double mu_log = 0.0;
  double sigma_log = 1.0;

  double pdf(double x) const noexcept {
    if (x <= 0) return 0.0;
    const double z = (std::log(x) - mu_log) / sigma_log;
    return std::exp(-0.5 * z * z) / (x * sigma_log * std::sqrt(2.0 * std::numbers::pi));
  }
  double cdf(double x) const noexcept {
    if (x <= 0) return 0.0;
    return 0.5 * std::erfc(-(std::log(x) - mu_log) / (sigma_log * std::numbers::sqrt2));
  }
  double mean() const noexcept { return std::exp(mu_log + 0.5 * sigma_log * sigma_log); }
  double median() const noexcept { return std::exp(mu_log); }
  double variance() const noexcept {
    const double s2 = sigma_log * sigma_log;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_log + s2);
  }

  /// Parameterizes a lognormal from a desired mean and median
  /// (mean > median > 0); convenient when calibrating to reported MTTRs.
  static Result<LogNormal> from_mean_median(double mean, double median);
};

/// Gamma(shape k, scale theta).
struct Gamma {
  double shape = 1.0;
  double scale = 1.0;

  double pdf(double x) const noexcept {
    if (x < 0) return 0.0;
    if (x == 0) return shape < 1.0 ? 0.0 : (shape == 1.0 ? 1.0 / scale : 0.0);
    return std::exp((shape - 1.0) * std::log(x) - x / scale -
                    detail::lgamma_threadsafe(shape) - shape * std::log(scale));
  }
  /// Regularized lower incomplete gamma, via series/continued fraction.
  double cdf(double x) const noexcept;
  double mean() const noexcept { return shape * scale; }
  double variance() const noexcept { return shape * scale * scale; }
};

}  // namespace tsufail::stats
