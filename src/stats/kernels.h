// Vectorization-friendly primitive kernels shared by the hot analysis
// paths (ECDF/KS scans, TBF deltas, index gathers, bootstrap resampling).
//
// Each kernel restructures a loop that used to live inline in one
// consumer — push_back accumulation, branchy merges, fused random-draw +
// gather — into a branch-light pass over contiguous slices that the
// auto-vectorizer can handle, while producing bit-identical doubles:
// every arithmetic operation happens in the same order with the same
// operands as the scalar loop it replaced, so the golden report
// snapshots and the differential oracle's ULP tiers stay green.
// bench_perf_kernels reports single-core elements/s for each.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tsufail::stats {

/// out[i] = values[i + 1] - values[i] for i in [0, n - 1); empty for
/// n < 2.  The TBF inner loop (gaps between consecutive failure hours),
/// as one indexed store per element instead of a push_back.
std::vector<double> adjacent_deltas(std::span<const double> values);

/// out[i] = values[indices[i]].  The index-gather behind hours_of /
/// ttr_of and the bootstrap resample fill.  Precondition: every index is
/// in range (callers index validated position spans).
std::vector<double> gather(std::span<const double> values,
                           std::span<const std::uint32_t> indices);

/// In-place variant writing into a caller-owned slice of size
/// indices.size() — lets resampling loops recycle one buffer.
void gather_into(std::span<const double> values, std::span<const std::uint32_t> indices,
                 std::span<double> out);

/// Kolmogorov-Smirnov distance sup_x |F_a(x) - F_b(x)| between the
/// empirical CDFs of two ascending-sorted samples, via one linear merge
/// sweep (O(n + m)) instead of per-point binary searches
/// (O(n log n + m log m)).  Each step distance is computed as
/// |i/n - j/m| with the same integer-to-double divisions the
/// evaluate()-based scan performed, so the result is bit-identical.
/// Returns 0.0 if either sample is empty.  Preconditions: both sorted.
double ks_distance_sorted(std::span<const double> a, std::span<const double> b);

}  // namespace tsufail::stats
