// Correlation measures.
//
// RQ5 asks whether monthly time-to-recovery is correlated with monthly
// failure density (the paper finds it is not).  We provide Pearson's r for
// linear association and Spearman's rho (rank-based, tie-aware) because
// failure-count series are heavy-tailed and non-normal.
#pragma once

#include <span>
#include <vector>

#include "util/error.h"

namespace tsufail::stats {

/// Pearson product-moment correlation of paired samples.
/// Errors: length mismatch, fewer than 2 pairs, or zero variance in either.
Result<double> pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation with average ranks for ties.
/// Errors: as pearson().
Result<double> spearman(std::span<const double> x, std::span<const double> y);

/// Fractional (average-for-ties) ranks of a sample, 1-based.
std::vector<double> fractional_ranks(std::span<const double> sample);

}  // namespace tsufail::stats
