#include "stats/simd.h"

#include <algorithm>
#include <cmath>

#include "stats/simd_internal.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace tsufail::stats::simd {
namespace {

// Vector paths use signed 32/64-bit lane indices; inputs at or above
// 2^31 elements take the scalar twin (wrappers check).
constexpr std::size_t kMaxVectorElements = (std::size_t{1} << 31) - 1;

// --- Scalar twins -------------------------------------------------------
//
// The portable baseline every other level is bit-compared against.

void scalar_adjacent_deltas(const double* in, std::size_t n_out, double* out) noexcept {
  for (std::size_t i = 0; i < n_out; ++i) out[i] = in[i + 1] - in[i];
}

void scalar_gather_u32(const double* values, const std::uint32_t* idx, std::size_t n,
                       double* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = values[idx[i]];
}

void scalar_upper_bound_many(const double* sorted, std::size_t n, const double* xs,
                             std::size_t m, std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = static_cast<std::uint32_t>(std::upper_bound(sorted, sorted + n, xs[i]) - sorted);
  }
}

void scalar_lower_bound_many(const double* sorted, std::size_t n, const double* xs,
                             std::size_t m, std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = static_cast<std::uint32_t>(std::lower_bound(sorted, sorted + n, xs[i]) - sorted);
  }
}

void scalar_counts_to_fractions(const std::uint32_t* counts, std::size_t m, double n,
                                double* out) noexcept {
  for (std::size_t i = 0; i < m; ++i) out[i] = static_cast<double>(counts[i]) / n;
}

void scalar_quantile_indices(const double* qs, std::size_t m, std::size_t n,
                             std::uint32_t* out) noexcept {
  const auto dn = static_cast<double>(n);
  for (std::size_t i = 0; i < m; ++i) {
    // Exactly Ecdf::quantile's arithmetic: rank = ceil(q*n) clamped to
    // [1, n] (the lower clamp covers q == 0 -> first observation).
    auto rank = static_cast<std::size_t>(std::ceil(qs[i] * dn));
    rank = std::min(rank, n);
    rank = std::max<std::size_t>(rank, 1);
    out[i] = static_cast<std::uint32_t>(rank - 1);
  }
}

double scalar_max_abs_cdf_gap(const std::uint32_t* ca, const std::uint32_t* cb, std::size_t m,
                              double dn, double dm) noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double diff =
        std::abs(static_cast<double>(ca[i]) / dn - static_cast<double>(cb[i]) / dm);
    if (diff > worst) worst = diff;
  }
  return worst;
}

void scalar_xoshiro_fill(std::uint64_t state[4][XoshiroLanes::kLanes], std::uint64_t n,
                         std::uint64_t threshold, std::size_t count,
                         std::uint32_t* const* outs) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t lane = 0; lane < XoshiroLanes::kLanes; ++lane) {
      const std::uint64_t x = detail::xoshiro_step_lane(state, lane);
      outs[lane][i] = detail::lemire_finish_lane(state, lane, x, n, threshold);
    }
  }
}

constexpr NumericKernels kScalarNumericKernels{
    scalar_adjacent_deltas, scalar_gather_u32,     scalar_upper_bound_many,
    scalar_lower_bound_many, scalar_counts_to_fractions, scalar_quantile_indices,
    scalar_max_abs_cdf_gap, scalar_xoshiro_fill,
};

// --- SSE2 tier ----------------------------------------------------------
//
// Only the kernels where 128 bits pay for themselves: 2-wide double
// subtraction/division and the 2-wide quantile rank math.  Binary search
// and gathers stay scalar (no gather instruction before AVX2), the
// merge-based KS stays shared, and the 4-lane RNG runs its scalar
// columns.

#if defined(__SSE2__)

void sse2_adjacent_deltas(const double* in, std::size_t n_out, double* out) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n_out; i += 2) {
    const __m128d hi = _mm_loadu_pd(in + i + 1);
    const __m128d lo = _mm_loadu_pd(in + i);
    _mm_storeu_pd(out + i, _mm_sub_pd(hi, lo));
  }
  for (; i < n_out; ++i) out[i] = in[i + 1] - in[i];
}

void sse2_counts_to_fractions(const std::uint32_t* counts, std::size_t m, double n,
                              double* out) noexcept {
  const __m128d dn = _mm_set1_pd(n);
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    // Two u32 counts -> two doubles (counts < 2^31, so the signed
    // conversion is exact).
    const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(counts + i));
    _mm_storeu_pd(out + i, _mm_div_pd(_mm_cvtepi32_pd(raw), dn));
  }
  for (; i < m; ++i) out[i] = static_cast<double>(counts[i]) / n;
}

void sse2_quantile_indices(const double* qs, std::size_t m, std::size_t n,
                           std::uint32_t* out) noexcept {
  if (n > kMaxVectorElements) return scalar_quantile_indices(qs, m, n, out);
  const auto dn = static_cast<double>(n);
  const __m128d dn2 = _mm_set1_pd(dn);
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const __m128d t = _mm_mul_pd(_mm_loadu_pd(qs + i), dn2);
    // ceil without SSE4.1 roundpd: truncate, then add 1 where the
    // truncation went below the value (q >= 0, so t >= 0 and the
    // truncated double is representable exactly).
    const __m128i trunc = _mm_cvttpd_epi32(t);
    const __m128d back = _mm_cvtepi32_pd(trunc);
    const __m128i below = _mm_castpd_si128(_mm_cmplt_pd(back, t));
    // below is a 64-bit lane mask; collapse to the 32-bit rank lanes.
    alignas(16) std::int32_t rank2[4];
    alignas(16) std::uint64_t mask2[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(rank2), trunc);
    _mm_store_si128(reinterpret_cast<__m128i*>(mask2), below);
    for (int lane = 0; lane < 2 && i + static_cast<std::size_t>(lane) < m; ++lane) {
      std::int64_t rank = rank2[lane] + (mask2[lane] != 0 ? 1 : 0);
      rank = std::min<std::int64_t>(rank, static_cast<std::int64_t>(n));
      rank = std::max<std::int64_t>(rank, 1);
      out[i + static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(rank - 1);
    }
  }
  for (; i < m; ++i) scalar_quantile_indices(qs + i, 1, n, out + i);
}

constexpr NumericKernels kSse2NumericKernels{
    sse2_adjacent_deltas,   scalar_gather_u32,        scalar_upper_bound_many,
    scalar_lower_bound_many, sse2_counts_to_fractions, sse2_quantile_indices,
    scalar_max_abs_cdf_gap, scalar_xoshiro_fill,
};

#endif  // __SSE2__

/// Merge-sweep KS (the scalar/SSE2 algorithm; see kernels.h for the
/// derivation).  The AVX2 batched formulation computes the same |i/n -
/// j/m| values, so both agree bit-for-bit.
double ks_merge(std::span<const double> a, std::span<const double> b) noexcept {
  const auto n = static_cast<double>(a.size());
  const auto m = static_cast<double>(b.size());
  double worst = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const double x = (j >= b.size() || (i < a.size() && a[i] <= b[j])) ? a[i] : b[j];
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    const double diff =
        std::abs(static_cast<double>(i) / n - static_cast<double>(j) / m);
    if (diff > worst) worst = diff;
  }
  return worst;
}

const NumericKernels& kernels_for(Level level) noexcept { return numeric_kernels(level); }

const NumericKernels& active_kernels() noexcept { return kernels_for(active_level()); }

}  // namespace

const NumericKernels& numeric_kernels(Level level) noexcept {
  if (static_cast<int>(level) > static_cast<int>(supported_level()))
    level = supported_level();
  switch (level) {
    case Level::kAvx2:
      if (const NumericKernels* avx2 = detail::avx2_numeric_kernels()) return *avx2;
      [[fallthrough]];
    case Level::kSse2:
#if defined(__SSE2__)
      return kSse2NumericKernels;
#else
      [[fallthrough]];
#endif
    case Level::kScalar:
      break;
  }
  return kScalarNumericKernels;
}

void adjacent_deltas(std::span<const double> values, std::span<double> out) noexcept {
  if (values.size() < 2) return;
  active_kernels().adjacent_deltas(values.data(), out.size(), out.data());
}

void gather(std::span<const double> values, std::span<const std::uint32_t> indices,
            std::span<double> out) noexcept {
  if (values.size() > kMaxVectorElements)
    return scalar_gather_u32(values.data(), indices.data(), indices.size(), out.data());
  active_kernels().gather_u32(values.data(), indices.data(), indices.size(), out.data());
}

void upper_bound_many(std::span<const double> sorted, std::span<const double> xs,
                      std::span<std::uint32_t> out) noexcept {
  if (sorted.size() > kMaxVectorElements)
    return scalar_upper_bound_many(sorted.data(), sorted.size(), xs.data(), xs.size(),
                                   out.data());
  active_kernels().upper_bound_many(sorted.data(), sorted.size(), xs.data(), xs.size(),
                                    out.data());
}

void lower_bound_many(std::span<const double> sorted, std::span<const double> xs,
                      std::span<std::uint32_t> out) noexcept {
  if (sorted.size() > kMaxVectorElements)
    return scalar_lower_bound_many(sorted.data(), sorted.size(), xs.data(), xs.size(),
                                   out.data());
  active_kernels().lower_bound_many(sorted.data(), sorted.size(), xs.data(), xs.size(),
                                    out.data());
}

void counts_to_fractions(std::span<const std::uint32_t> counts, double n,
                         std::span<double> out) noexcept {
  active_kernels().counts_to_fractions(counts.data(), counts.size(), n, out.data());
}

void quantile_indices(std::span<const double> qs, std::size_t n,
                      std::span<std::uint32_t> out) noexcept {
  active_kernels().quantile_indices(qs.data(), qs.size(), n, out.data());
}

double ks_distance_sorted(std::span<const double> a, std::span<const double> b) {
  // The O(n + m) merge sweep wins at every level: a lane-parallel
  // batched-search formulation (upper_bound_many of every sample point in
  // both samples + max_abs_cdf_gap) was measured ~8x SLOWER on AVX2 —
  // the log(n) factor of (n + m) searches dwarfs the 4-wide lanes.  The
  // batched kernels stay in the table for the consumers where they do
  // win (Ecdf::evaluate_many, rolling windows).
  if (a.empty() || b.empty()) return 0.0;
  return ks_merge(a, b);
}

void XoshiroLanes::fill_indices(std::uint64_t n, std::size_t count,
                                std::uint32_t* const outs[kLanes]) noexcept {
  // Lemire rejection threshold (2^64 - n) mod n, hoisted out of the fill
  // loop (Rng::uniform_index derives the same value lazily per draw).
  const std::uint64_t threshold = (~n + 1) % n;
  active_kernels().xoshiro_fill(state_, n, threshold, count, outs);
}

}  // namespace tsufail::stats::simd
