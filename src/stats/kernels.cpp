#include "stats/kernels.h"

#include <cassert>

#include "stats/simd.h"

namespace tsufail::stats {

std::vector<double> adjacent_deltas(std::span<const double> values) {
  if (values.size() < 2) return {};
  std::vector<double> deltas(values.size() - 1);
  simd::adjacent_deltas(values, deltas);
  return deltas;
}

std::vector<double> gather(std::span<const double> values,
                           std::span<const std::uint32_t> indices) {
  std::vector<double> out(indices.size());
  gather_into(values, indices, out);
  return out;
}

void gather_into(std::span<const double> values, std::span<const std::uint32_t> indices,
                 std::span<double> out) {
  assert(out.size() >= indices.size() && "gather_into: output slice too small");
#ifndef NDEBUG
  for (const std::uint32_t i : indices)
    assert(i < values.size() && "gather_into: index out of range");
#endif
  simd::gather(values, indices, out);
}

double ks_distance_sorted(std::span<const double> a, std::span<const double> b) {
  return simd::ks_distance_sorted(a, b);
}

}  // namespace tsufail::stats
