#include "stats/kernels.h"

#include <cmath>

namespace tsufail::stats {

std::vector<double> adjacent_deltas(std::span<const double> values) {
  if (values.size() < 2) return {};
  const std::size_t n = values.size() - 1;
  std::vector<double> deltas(n);
  const double* in = values.data();
  double* out = deltas.data();
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i + 1] - in[i];
  return deltas;
}

std::vector<double> gather(std::span<const double> values,
                           std::span<const std::uint32_t> indices) {
  std::vector<double> out(indices.size());
  gather_into(values, indices, out);
  return out;
}

void gather_into(std::span<const double> values, std::span<const std::uint32_t> indices,
                 std::span<double> out) {
  const double* src = values.data();
  const std::uint32_t* idx = indices.data();
  double* dst = out.data();
  const std::size_t n = indices.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

double ks_distance_sorted(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto n = static_cast<double>(a.size());
  const auto m = static_cast<double>(b.size());
  // One merge sweep over the union support.  Both ECDFs are right-
  // continuous step functions, so the supremum is attained just after a
  // sample point; at each distinct merged value x, i and j count the
  // elements <= x (the upper_bound the binary-search formulation used).
  double worst = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const double x = (j >= b.size() || (i < a.size() && a[i] <= b[j])) ? a[i] : b[j];
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    const double diff =
        std::abs(static_cast<double>(i) / n - static_cast<double>(j) / m);
    if (diff > worst) worst = diff;
  }
  return worst;
}

}  // namespace tsufail::stats
