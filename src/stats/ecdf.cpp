#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/kernels.h"
#include "stats/simd.h"

namespace tsufail::stats {

Ecdf::Ecdf(std::vector<double> sorted) : sorted_(std::move(sorted)) {
  mean_ = stats::mean(sorted_);
}

Result<Ecdf> Ecdf::create(std::span<const double> sample) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "Ecdf: empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  // Callers frequently hold pre-sorted samples (select_family over a
  // sorted sub-sample, time-ordered streams); skip the re-sort for them.
  if (!std::is_sorted(sorted.begin(), sorted.end())) std::sort(sorted.begin(), sorted.end());
  return Ecdf(std::move(sorted));
}

double Ecdf::evaluate(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

void Ecdf::evaluate_many(std::span<const double> xs, std::span<double> out) const noexcept {
  // upper_bound counts are exact integers and IEEE division is correctly
  // rounded, so batching changes neither — out[i] == evaluate(xs[i])
  // bit-for-bit at every dispatch level.
  std::vector<std::uint32_t> counts(xs.size());
  simd::upper_bound_many(sorted_, xs, counts);
  simd::counts_to_fractions(counts, static_cast<double>(sorted_.size()), out);
}

Result<double> Ecdf::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0))
    return Error(ErrorKind::kDomain, "Ecdf::quantile level must be in [0,1]");
  if (q == 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(rank, sorted_.size());
  return sorted_[rank - 1];
}

Result<std::vector<double>> Ecdf::quantile_many(std::span<const double> qs) const {
  for (const double q : qs) {
    if (!(q >= 0.0 && q <= 1.0))
      return Error(ErrorKind::kDomain, "Ecdf::quantile level must be in [0,1]");
  }
  // quantile_indices reproduces quantile()'s rank arithmetic exactly
  // (its lower clamp to rank 1 covers the q == 0 -> front() case).
  std::vector<std::uint32_t> ranks(qs.size());
  simd::quantile_indices(qs, sorted_.size(), ranks);
  std::vector<double> out(qs.size());
  simd::gather(sorted_, ranks, out);
  return out;
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  TSUFAIL_REQUIRE(points >= 2, "Ecdf::curve needs at least two points");
  points = std::min(points, sorted_.size());
  std::vector<std::pair<double, double>> series;
  series.reserve(points);
  const auto n = sorted_.size();
  if (points < 2) {  // single-observation sample
    series.emplace_back(sorted_.front(), 1.0);
    return series;
  }
  for (std::size_t k = 0; k < points; ++k) {
    // Evenly spaced ranks from the first to the last observation.
    const std::size_t idx = k * (n - 1) / (points - 1);
    series.emplace_back(sorted_[idx], static_cast<double>(idx + 1) / static_cast<double>(n));
  }
  return series;
}

Result<double> dkw_band_halfwidth(std::size_t n, double level) {
  if (n == 0)
    return Error(ErrorKind::kDomain, "DKW band needs at least one observation");
  if (!(level > 0.0 && level < 1.0))
    return Error(ErrorKind::kDomain, "DKW level must be in (0,1)");
  const double alpha = 1.0 - level;
  return std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(n)));
}

double ks_statistic(const Ecdf& a, const Ecdf& b) {
  // Both ECDFs are step functions, so the supremum is attained at a
  // sample point of one of them; the kernel's single merge sweep visits
  // exactly those points with the same i/n divisions a binary-search
  // scan would compute (bit-identical result, O(n + m) instead of
  // O((n + m) log(n + m))).
  return ks_distance_sorted(a.sorted(), b.sorted());
}

}  // namespace tsufail::stats
