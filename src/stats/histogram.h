// Fixed-width histograms for the monthly and per-slot bar figures.
#pragma once

#include <span>
#include <vector>

#include "util/error.h"

namespace tsufail::stats {

struct HistogramBin {
  double lower = 0.0;      ///< inclusive
  double upper = 0.0;      ///< exclusive (inclusive for the last bin)
  std::size_t count = 0;
  double fraction = 0.0;   ///< count / total
};

class Histogram {
 public:
  /// Builds a histogram with `bins` equal-width bins over [lo, hi].
  /// Samples outside the range are counted in underflow/overflow.
  /// Errors: empty sample, bins == 0, or hi <= lo.
  static Result<Histogram> create(std::span<const double> sample, double lo, double hi,
                                  std::size_t bins);

  /// Builds over the sample's own [min, max] range.
  static Result<Histogram> create_auto(std::span<const double> sample, std::size_t bins);

  const std::vector<HistogramBin>& bins() const noexcept { return bins_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }

 private:
  std::vector<HistogramBin> bins_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace tsufail::stats
