#include "stats/distribution.h"

#include <cmath>

namespace tsufail::stats {
namespace {

/// Regularized lower incomplete gamma P(a, x) by series expansion
/// (x < a + 1) or continued fraction (otherwise).  Standard Numerical
/// Recipes formulation, accurate to ~1e-12 over this library's range.
double reg_lower_gamma(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double log_prefix = a * std::log(x) - x - detail::lgamma_threadsafe(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = e^-x x^a / Gamma(a) * sum_{n>=0} x^n / (a (a+1)...(a+n))
    double term = 1.0 / a;
    double sum = term;
    double denom = a;
    for (int n = 0; n < 500; ++n) {
      denom += 1.0;
      term *= x / denom;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(log_prefix);
  }
  // Continued fraction for Q(a,x) (modified Lentz).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return 1.0 - std::exp(log_prefix) * h;
}

}  // namespace

double Gamma::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return reg_lower_gamma(shape, x / scale);
}

Result<LogNormal> LogNormal::from_mean_median(double mean, double median) {
  if (!(median > 0.0))
    return Error(ErrorKind::kDomain, "lognormal median must be positive");
  if (!(mean > median))
    return Error(ErrorKind::kDomain, "lognormal mean must exceed median (right skew)");
  LogNormal d;
  d.mu_log = std::log(median);
  // mean = exp(mu + sigma^2/2)  =>  sigma = sqrt(2 (log mean - mu)).
  d.sigma_log = std::sqrt(2.0 * (std::log(mean) - d.mu_log));
  return d;
}

}  // namespace tsufail::stats
