#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace tsufail::stats {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> sample) noexcept {
  RunningStats acc;
  for (double x : sample) acc.add(x);
  return acc.mean();
}

double stddev(std::span<const double> sample) noexcept {
  RunningStats acc;
  for (double x : sample) acc.add(x);
  return acc.stddev();
}

Result<double> quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty())
    return Error(ErrorKind::kDomain, "quantile of empty sample");
  if (!(q >= 0.0 && q <= 1.0))
    return Error(ErrorKind::kDomain, "quantile level must be in [0,1], got " + std::to_string(q));
  // R type-7: h = (n-1)q; linear interpolation between floor and ceil ranks.
  const double h = static_cast<double>(sorted.size() - 1) * q;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Result<double> quantile(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

Result<Summary> summarize(std::span<const double> sample) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "summarize: empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  // Analyzers often pass already-ordered samples (LogIndex streams are
  // time-sorted); an O(n) check dodges the O(n log n) re-sort then.
  if (!std::is_sorted(sorted.begin(), sorted.end())) std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.mean = mean(sorted);
  s.stddev = stddev(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25).value();
  s.median = quantile_sorted(sorted, 0.50).value();
  s.p75 = quantile_sorted(sorted, 0.75).value();
  s.p95 = quantile_sorted(sorted, 0.95).value();
  return s;
}

Result<BoxStats> box_stats(std::span<const double> sample) {
  if (sample.empty())
    return Error(ErrorKind::kDomain, "box_stats: empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  if (!std::is_sorted(sorted.begin(), sorted.end())) std::sort(sorted.begin(), sorted.end());
  BoxStats b;
  b.count = sorted.size();
  b.q1 = quantile_sorted(sorted, 0.25).value();
  b.median = quantile_sorted(sorted, 0.50).value();
  b.q3 = quantile_sorted(sorted, 0.75).value();
  b.iqr = b.q3 - b.q1;
  b.mean = mean(sorted);
  b.sample_min = sorted.front();
  b.sample_max = sorted.back();
  const double fence_low = b.q1 - 1.5 * b.iqr;
  const double fence_high = b.q3 + 1.5 * b.iqr;
  b.whisker_low = sorted.front();
  b.whisker_high = sorted.back();
  for (double x : sorted) {
    if (x >= fence_low) {
      b.whisker_low = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= fence_high) {
      b.whisker_high = *it;
      break;
    }
  }
  for (double x : sorted) {
    if (x < fence_low || x > fence_high) ++b.outliers;
  }
  return b;
}

}  // namespace tsufail::stats
