// Survival analysis with right-censoring.
//
// Field studies of component lifetimes (e.g. Ostrouchov et al.'s GPU
// lifetimes on Titan, cited by the paper) need estimators that handle
// units still alive when observation ends.  Node time-to-first-failure is
// exactly that shape: most nodes never fail inside the log window and are
// right-censored at its end.  This header provides the Kaplan-Meier
// product-limit estimator, the Nelson-Aalen cumulative hazard, and the
// two-sample log-rank test.
#pragma once

#include <span>
#include <vector>

#include "util/error.h"

namespace tsufail::stats {

/// One observed unit: a duration and whether the event (failure) was
/// actually observed (false = right-censored at `time`).
struct SurvivalObservation {
  double time = 0.0;
  bool event = true;
};

/// One step of the Kaplan-Meier / Nelson-Aalen curves.
struct SurvivalPoint {
  double time = 0.0;           ///< distinct event time
  std::size_t at_risk = 0;     ///< units at risk just before `time`
  std::size_t events = 0;      ///< failures exactly at `time`
  double survival = 1.0;       ///< S(t), Kaplan-Meier
  double cumulative_hazard = 0.0;  ///< H(t), Nelson-Aalen
};

class SurvivalCurve {
 public:
  /// An empty curve (S(t) = 1 everywhere); fit() replaces it.
  SurvivalCurve() = default;

  /// Builds the estimators.  Errors: empty input, negative times, or no
  /// observed events (an all-censored sample has no curve).
  static Result<SurvivalCurve> fit(std::span<const SurvivalObservation> observations);

  const std::vector<SurvivalPoint>& points() const noexcept { return points_; }
  std::size_t observations() const noexcept { return n_; }
  std::size_t events() const noexcept { return events_; }
  std::size_t censored() const noexcept { return n_ - events_; }

  /// S(t): right-continuous step function, 1 before the first event.
  double survival_at(double time) const noexcept;

  /// H(t): Nelson-Aalen cumulative hazard.
  double cumulative_hazard_at(double time) const noexcept;

  /// Smallest event time with S(t) <= 1 - q (e.g. q = 0.5 -> median
  /// survival).  Errors: the curve never falls that far (heavy
  /// censoring).
  Result<double> quantile(double q) const;

  /// Restricted mean survival time up to `horizon` (area under S(t)).
  double restricted_mean(double horizon) const noexcept;

 private:
  std::vector<SurvivalPoint> points_;
  std::size_t n_ = 0;
  std::size_t events_ = 0;
};

struct LogRankResult {
  double statistic = 0.0;  ///< chi-square with 1 dof
  double p_value = 0.0;
  /// Observed minus expected events in the first group; sign says which
  /// group fails faster (positive = group A fails more than expected).
  double observed_minus_expected_a = 0.0;
};

/// Two-sample log-rank test: H0 = both groups share one hazard function.
/// Errors: either sample unusable for fit().
Result<LogRankResult> log_rank_test(std::span<const SurvivalObservation> group_a,
                                    std::span<const SurvivalObservation> group_b);

}  // namespace tsufail::stats
