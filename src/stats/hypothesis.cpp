#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>

#include "stats/distribution.h"
#include "stats/ecdf.h"

namespace tsufail::stats {

double kolmogorov_sf(double lambda) noexcept {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

Result<KsTestResult> ks_two_sample(std::span<const double> a, std::span<const double> b) {
  auto fa = Ecdf::create(a);
  if (!fa.ok()) return fa.error().with_context("ks_two_sample: first sample");
  auto fb = Ecdf::create(b);
  if (!fb.ok()) return fb.error().with_context("ks_two_sample: second sample");

  KsTestResult result;
  result.statistic = ks_statistic(fa.value(), fb.value());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double n_eff = na * nb / (na + nb);
  // Smirnov's small-sample correction improves the asymptotic approximation.
  const double lambda = (std::sqrt(n_eff) + 0.12 + 0.11 / std::sqrt(n_eff)) * result.statistic;
  result.p_value = kolmogorov_sf(lambda);
  return result;
}

double chi_square_sf(double x, std::size_t dof) noexcept {
  if (x <= 0.0) return 1.0;
  // Chi-square(k) is Gamma(shape=k/2, scale=2); SF = 1 - CDF.
  Gamma g{static_cast<double>(dof) / 2.0, 2.0};
  return 1.0 - g.cdf(x);
}

Result<double> chi_square_quantile(double p, std::size_t dof) {
  if (!(p > 0.0 && p < 1.0))
    return Error(ErrorKind::kDomain, "chi_square_quantile: p must be in (0,1)");
  if (dof == 0)
    return Error(ErrorKind::kDomain, "chi_square_quantile: dof must be >= 1");
  const Gamma g{static_cast<double>(dof) / 2.0, 2.0};
  // Bracket: mean +- a generous multiple of the stddev, expanded if needed.
  double lo = 0.0;
  double hi = static_cast<double>(dof) + 20.0 * std::sqrt(2.0 * static_cast<double>(dof)) + 20.0;
  while (g.cdf(hi) < p) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2.0;
    (g.cdf(mid) < p ? lo : hi) = mid;
    if (hi - lo < 1e-12 * std::max(1.0, hi)) break;
  }
  return (lo + hi) / 2.0;
}

Result<RateInterval> poisson_rate_interval(std::size_t events, double exposure, double level) {
  if (!(exposure > 0.0))
    return Error(ErrorKind::kDomain, "poisson_rate_interval: exposure must be positive");
  if (!(level > 0.0 && level < 1.0))
    return Error(ErrorKind::kDomain, "poisson_rate_interval: level must be in (0,1)");

  const double alpha = 1.0 - level;
  RateInterval interval;
  interval.level = level;
  interval.rate = static_cast<double>(events) / exposure;
  // Garwood: low = chi2(alpha/2; 2n)/2, high = chi2(1-alpha/2; 2n+2)/2.
  if (events == 0) {
    interval.low = 0.0;
  } else {
    auto q = chi_square_quantile(alpha / 2.0, 2 * events);
    if (!q.ok()) return q.error();
    interval.low = q.value() / 2.0 / exposure;
  }
  auto q = chi_square_quantile(1.0 - alpha / 2.0, 2 * events + 2);
  if (!q.ok()) return q.error();
  interval.high = q.value() / 2.0 / exposure;
  return interval;
}

Result<ChiSquareResult> chi_square_gof(std::span<const std::size_t> observed,
                                       std::span<const double> expected_proportions) {
  if (observed.size() != expected_proportions.size())
    return Error(ErrorKind::kDomain, "chi_square_gof: size mismatch");
  if (observed.size() < 2)
    return Error(ErrorKind::kDomain, "chi_square_gof: need at least 2 cells");
  double total_prop = 0.0;
  std::size_t total_obs = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (!(expected_proportions[i] > 0.0))
      return Error(ErrorKind::kDomain, "chi_square_gof: expected proportions must be positive");
    total_prop += expected_proportions[i];
    total_obs += observed[i];
  }
  if (total_obs == 0)
    return Error(ErrorKind::kDomain, "chi_square_gof: no observations");

  ChiSquareResult result;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        static_cast<double>(total_obs) * expected_proportions[i] / total_prop;
    const double diff = static_cast<double>(observed[i]) - expected;
    result.statistic += diff * diff / expected;
  }
  result.dof = observed.size() - 1;
  result.p_value = chi_square_sf(result.statistic, result.dof);
  return result;
}

}  // namespace tsufail::stats
