#include "stats/regression.h"

#include <cmath>

namespace tsufail::stats {
namespace {

/// Standard normal survival function.
double normal_sf(double z) noexcept { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

Result<LinearFit> linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    return Error(ErrorKind::kDomain, "linear_fit: size mismatch");
  if (x.size() < 3)
    return Error(ErrorKind::kDomain, "linear_fit: need at least 3 points");

  const auto n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0)
    return Error(ErrorKind::kDomain, "linear_fit: zero variance in x");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double rss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double resid = y[i] - fit.predict(x[i]);
    rss += resid * resid;
  }
  fit.r_squared = syy == 0.0 ? 1.0 : 1.0 - rss / syy;
  const double sigma2 = rss / (n - 2.0);
  fit.slope_stderr = std::sqrt(sigma2 / sxx);
  if (fit.slope_stderr > 0.0) {
    const double z = std::abs(fit.slope) / fit.slope_stderr;
    fit.slope_p_value = 2.0 * normal_sf(z);
  } else {
    fit.slope_p_value = fit.slope == 0.0 ? 1.0 : 0.0;
  }
  return fit;
}

}  // namespace tsufail::stats
