// Internal wiring between the stats::simd dispatch wrappers (simd.cpp)
// and the separately-compiled AVX2 translation unit (simd_avx2.cpp,
// built with -mavx2 when the compiler supports it).  Not installed;
// include only from those two files.
#pragma once

#include "stats/simd.h"

namespace tsufail::stats::simd::detail {

/// The AVX2 numeric-kernel table, or nullptr when this binary was
/// compiled without AVX2 support.  Entries left null by the AVX2 TU
/// (none today) fall back per-kernel to the scalar twin in simd.cpp.
const NumericKernels* avx2_numeric_kernels() noexcept;

/// One scalar xoshiro256** step on column `lane` of the word-major state
/// block.  Shared by the scalar fill kernel and the AVX2 TU's rare
/// Lemire-rejection path, so both advance lanes identically.
inline std::uint64_t xoshiro_step_lane(
    std::uint64_t state[4][XoshiroLanes::kLanes], std::size_t lane) noexcept {
  const auto rotl = [](std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(state[1][lane] * 5, 7) * 9;
  const std::uint64_t t = state[1][lane] << 17;
  state[2][lane] ^= state[0][lane];
  state[3][lane] ^= state[1][lane];
  state[1][lane] ^= state[2][lane];
  state[0][lane] ^= state[3][lane];
  state[2][lane] ^= t;
  state[3][lane] = rotl(state[3][lane], 45);
  return result;
}

/// Finishes one Lemire draw for `lane` given its first raw draw `x`:
/// returns the bounded index, redrawing the lane scalar-wise while the
/// low half rejects.  Bit-identical to Rng::uniform_index.
inline std::uint32_t lemire_finish_lane(std::uint64_t state[4][XoshiroLanes::kLanes],
                                        std::size_t lane, std::uint64_t x, std::uint64_t n,
                                        std::uint64_t threshold) noexcept {
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  while (low < threshold) [[unlikely]] {
    x = xoshiro_step_lane(state, lane);
    m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    low = static_cast<std::uint64_t>(m);
  }
  return static_cast<std::uint32_t>(m >> 64);
}

}  // namespace tsufail::stats::simd::detail
