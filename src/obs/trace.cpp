#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "obs/obs.h"

namespace tsufail::obs {
namespace {

/// One thread's bounded span ring.  Single writer (the owning thread);
/// the mutex is uncontended on the hot path and only ever shared with a
/// collect/reset pass.
struct Ring {
  explicit Ring(std::uint32_t id, std::size_t cap) : tid(id), capacity(cap), spans(cap) {}

  std::mutex mutex;
  const std::uint32_t tid;
  const std::size_t capacity;
  std::vector<Span> spans;  ///< circular; oldest at (next + capacity - count) % capacity
  std::size_t next = 0;
  std::size_t count = 0;
  std::uint64_t dropped = 0;
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
  std::atomic<std::size_t> capacity{std::size_t{1} << 17};
  std::uint32_t next_tid = 1;
};

// Leaked on purpose: spans may be recorded from threads that outlive
// static destruction order.
TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

Ring& local_ring() {
  thread_local Ring* ring = [] {
    TraceRegistry& r = registry();
    std::lock_guard lock(r.mutex);
    auto owned = std::make_shared<Ring>(r.next_tid++,
                                        std::max<std::size_t>(1, r.capacity.load()));
    r.rings.push_back(owned);
    return owned.get();
  }();
  return *ring;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Indices of `spans` in nesting preorder: start ascending, longer span
/// first on ties, completion order last (zero-duration stability).
std::vector<std::size_t> preorder(const std::vector<Span>& spans) {
  std::vector<std::size_t> order(spans.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&spans](std::size_t a, std::size_t b) {
    if (spans[a].start_ns != spans[b].start_ns) return spans[a].start_ns < spans[b].start_ns;
    if (spans[a].end_ns != spans[b].end_ns) return spans[a].end_ns > spans[b].end_ns;
    return a < b;
  });
  return order;
}

struct Event {
  std::uint64_t ts_ns = 0;
  bool begin = true;
  const char* name = nullptr;
  std::uint32_t tid = 0;
  std::uint64_t trace_id = 0;  ///< only emitted on "B" events
};

/// Expands one thread's completed spans into a properly nested B/E event
/// sequence, non-decreasing in ts.  RAII spans on one thread are always
/// properly nested, and ring eviction only removes whole spans, so the
/// interval set is nested-or-disjoint by construction.
void emit_thread_events(const ThreadTrace& thread, std::vector<Event>& out) {
  const auto order = preorder(thread.spans);
  std::vector<const Span*> stack;
  for (std::size_t index : order) {
    const Span& span = thread.spans[index];
    while (!stack.empty() && stack.back()->end_ns <= span.start_ns) {
      out.push_back({stack.back()->end_ns, false, stack.back()->name, thread.tid, 0});
      stack.pop_back();
    }
    out.push_back({span.start_ns, true, span.name, thread.tid, span.trace_id});
    stack.push_back(&span);
  }
  while (!stack.empty()) {
    out.push_back({stack.back()->end_ns, false, stack.back()->name, thread.tid, 0});
    stack.pop_back();
  }
}

}  // namespace

namespace detail {

void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                 std::uint64_t trace_id) noexcept {
  Ring& ring = local_ring();
  std::lock_guard lock(ring.mutex);
  ring.spans[ring.next] = {name, start_ns, end_ns, trace_id};
  ring.next = (ring.next + 1) % ring.capacity;
  if (ring.count < ring.capacity) {
    ++ring.count;
  } else {
    ++ring.dropped;
  }
}

}  // namespace detail

std::string trace_id_hex(std::uint64_t trace_id) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(trace_id));
  return buffer;
}

std::size_t TraceSnapshot::span_count() const noexcept {
  std::size_t total = 0;
  for (const auto& thread : threads) total += thread.spans.size();
  return total;
}

std::uint64_t TraceSnapshot::dropped_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& thread : threads) total += thread.dropped;
  return total;
}

std::uint64_t TraceSnapshot::epoch_ns() const noexcept {
  std::uint64_t epoch = 0;
  bool any = false;
  for (const auto& thread : threads) {
    for (const auto& span : thread.spans) {
      if (!any || span.start_ns < epoch) epoch = span.start_ns;
      any = true;
    }
  }
  return epoch;
}

void set_trace_capacity(std::size_t spans) {
  registry().capacity.store(std::max<std::size_t>(1, spans));
}

TraceSnapshot collect_trace() {
  TraceRegistry& r = registry();
  std::lock_guard registry_lock(r.mutex);
  TraceSnapshot snapshot;
  snapshot.threads.reserve(r.rings.size());
  for (const auto& ring : r.rings) {
    std::lock_guard ring_lock(ring->mutex);
    ThreadTrace thread;
    thread.tid = ring->tid;
    thread.dropped = ring->dropped;
    thread.spans.reserve(ring->count);
    const std::size_t first = (ring->next + ring->capacity - ring->count) % ring->capacity;
    for (std::size_t i = 0; i < ring->count; ++i)
      thread.spans.push_back(ring->spans[(first + i) % ring->capacity]);
    snapshot.threads.push_back(std::move(thread));
  }
  std::sort(snapshot.threads.begin(), snapshot.threads.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) { return a.tid < b.tid; });
  return snapshot;
}

void reset_trace() {
  TraceRegistry& r = registry();
  std::lock_guard registry_lock(r.mutex);
  for (const auto& ring : r.rings) {
    std::lock_guard ring_lock(ring->mutex);
    ring->next = 0;
    ring->count = 0;
    ring->dropped = 0;
  }
}

std::string chrome_trace_json(const TraceSnapshot& snapshot) {
  std::vector<Event> events;
  events.reserve(2 * snapshot.span_count());
  for (const auto& thread : snapshot.threads) {
    std::vector<Event> thread_events;
    thread_events.reserve(2 * thread.spans.size());
    emit_thread_events(thread, thread_events);
    events.insert(events.end(), thread_events.begin(), thread_events.end());
  }
  // Each thread's sequence is non-decreasing in ts, so a stable sort on
  // (ts, tid) yields a globally non-decreasing stream that preserves
  // every thread's B/E nesting order.
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.tid < b.tid;
  });

  const std::uint64_t epoch = snapshot.epoch_ns();
  std::string json = "{\"traceEvents\":[";
  char buffer[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    json += i == 0 ? "\n" : ",\n";
    json += "{\"name\":";
    append_json_string(json, event.name == nullptr ? "(null)" : event.name);
    json += event.begin ? ",\"ph\":\"B\"" : ",\"ph\":\"E\"";
    // Microseconds relative to the snapshot epoch, at ns resolution.
    std::snprintf(buffer, sizeof buffer, ",\"ts\":%.3f",
                  static_cast<double>(event.ts_ns - epoch) / 1000.0);
    json += buffer;
    std::snprintf(buffer, sizeof buffer, ",\"pid\":1,\"tid\":%u", event.tid);
    json += buffer;
    if (event.begin && event.trace_id != 0) {
      json += ",\"args\":{\"trace_id\":\"";
      json += trace_id_hex(event.trace_id);
      json += "\"}";
    }
    json += "}";
  }
  json += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"exporter\":\"tsufail::obs\"";
  std::snprintf(buffer, sizeof buffer, ",\"dropped_spans\":%llu}}\n",
                static_cast<unsigned long long>(snapshot.dropped_total()));
  json += buffer;
  return json;
}

std::vector<ProfileEntry> profile(const TraceSnapshot& snapshot) {
  std::map<std::string, ProfileEntry> by_name;
  for (const auto& thread : snapshot.threads) {
    const auto order = preorder(thread.spans);
    // child_ns[i]: total duration of span i's direct children, found by
    // walking the preorder with an enclosing-span stack.
    std::vector<std::uint64_t> child_ns(thread.spans.size(), 0);
    std::vector<std::size_t> stack;
    for (std::size_t index : order) {
      const Span& span = thread.spans[index];
      while (!stack.empty() && thread.spans[stack.back()].end_ns <= span.start_ns)
        stack.pop_back();
      if (!stack.empty()) child_ns[stack.back()] += span.duration_ns();
      stack.push_back(index);
    }
    for (std::size_t i = 0; i < thread.spans.size(); ++i) {
      const Span& span = thread.spans[i];
      const std::string name = span.name == nullptr ? "(null)" : span.name;
      auto [it, inserted] = by_name.try_emplace(name);
      ProfileEntry& entry = it->second;
      if (inserted) {
        entry.name = name;
        entry.min_ns = span.duration_ns();
      }
      ++entry.count;
      entry.total_ns += span.duration_ns();
      entry.self_ns += span.duration_ns() - std::min(span.duration_ns(), child_ns[i]);
      entry.min_ns = std::min(entry.min_ns, span.duration_ns());
      entry.max_ns = std::max(entry.max_ns, span.duration_ns());
    }
  }
  std::vector<ProfileEntry> entries;
  entries.reserve(by_name.size());
  for (auto& [name, entry] : by_name) entries.push_back(std::move(entry));
  std::sort(entries.begin(), entries.end(), [](const ProfileEntry& a, const ProfileEntry& b) {
    if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
    return a.name < b.name;
  });
  return entries;
}

std::string profile_table(const std::vector<ProfileEntry>& entries, std::size_t top) {
  std::uint64_t self_total = 0;
  for (const auto& entry : entries) self_total += entry.self_ns;

  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-28s %10s %12s %12s %7s %10s %10s\n", "span", "count",
                "total ms", "self ms", "self%", "min ms", "max ms");
  out += line;
  const std::size_t shown = std::min(top, entries.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const ProfileEntry& entry = entries[i];
    std::snprintf(line, sizeof line, "%-28s %10llu %12.3f %12.3f %6.1f%% %10.3f %10.3f\n",
                  entry.name.c_str(), static_cast<unsigned long long>(entry.count),
                  static_cast<double>(entry.total_ns) * 1e-6,
                  static_cast<double>(entry.self_ns) * 1e-6,
                  self_total == 0 ? 0.0
                                  : 100.0 * static_cast<double>(entry.self_ns) /
                                        static_cast<double>(self_total),
                  static_cast<double>(entry.min_ns) * 1e-6,
                  static_cast<double>(entry.max_ns) * 1e-6);
    out += line;
  }
  if (entries.size() > shown) {
    std::snprintf(line, sizeof line, "... and %zu more span name(s)\n", entries.size() - shown);
    out += line;
  }
  return out;
}

// --- Chrome-trace validation ------------------------------------------
//
// A deliberately small recursive-descent JSON reader: enough to verify
// well-formedness and pull out the event fields the checker needs,
// without growing a dependency.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(std::string_view key) const noexcept {
    for (const auto& [name, value] : members) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_space();
    if (position_ != text_.size())
      return fail("trailing characters after top-level value");
    return value;
  }

 private:
  Error fail(const std::string& why) const {
    return Error(ErrorKind::kParse, "json offset " + std::to_string(position_) + ": " + why);
  }

  void skip_space() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_])))
      ++position_;
  }

  bool consume(char c) {
    skip_space();
    if (position_ < text_.size() && text_[position_] == c) {
      ++position_;
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value() {
    skip_space();
    if (position_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[position_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_keyword();
    if (c == 'n') return parse_keyword();
    return parse_number();
  }

  Result<JsonValue> parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    consume('{');
    if (consume('}')) return value;
    for (;;) {
      auto key = parse_string();
      if (!key.ok()) return key.error();
      if (!consume(':')) return fail("expected ':' in object");
      auto member = parse_value();
      if (!member.ok()) return member.error();
      value.members.emplace_back(std::move(key.value().text), std::move(member.value()));
      if (consume(',')) continue;
      if (consume('}')) return value;
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    consume('[');
    if (consume(']')) return value;
    for (;;) {
      auto item = parse_value();
      if (!item.ok()) return item.error();
      value.items.push_back(std::move(item.value()));
      if (consume(',')) continue;
      if (consume(']')) return value;
      return fail("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> parse_string() {
    skip_space();
    if (position_ >= text_.size() || text_[position_] != '"')
      return fail("expected string");
    ++position_;
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (position_ < text_.size()) {
      const char c = text_[position_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (position_ >= text_.size()) return fail("dangling escape");
        const char escape = text_[position_++];
        switch (escape) {
          case '"': value.text.push_back('"'); break;
          case '\\': value.text.push_back('\\'); break;
          case '/': value.text.push_back('/'); break;
          case 'b': value.text.push_back('\b'); break;
          case 'f': value.text.push_back('\f'); break;
          case 'n': value.text.push_back('\n'); break;
          case 'r': value.text.push_back('\r'); break;
          case 't': value.text.push_back('\t'); break;
          case 'u': {
            if (position_ + 4 > text_.size()) return fail("truncated \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[position_ + i])))
                return fail("bad \\u escape");
            }
            position_ += 4;
            value.text.push_back('?');  // checker never reads escaped names
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char in string");
      value.text.push_back(c);
    }
    return fail("unterminated string");
  }

  Result<JsonValue> parse_keyword() {
    const auto match = [&](std::string_view keyword) {
      return text_.substr(position_, keyword.size()) == keyword;
    };
    JsonValue value;
    if (match("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      position_ += 4;
      return value;
    }
    if (match("false")) {
      value.kind = JsonValue::Kind::kBool;
      position_ += 5;
      return value;
    }
    if (match("null")) {
      position_ += 4;
      return value;
    }
    return fail("unknown keyword");
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = position_;
    if (position_ < text_.size() && (text_[position_] == '-' || text_[position_] == '+'))
      ++position_;
    bool digits = false;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.' || text_[position_] == 'e' || text_[position_] == 'E' ||
            text_[position_] == '-' || text_[position_] == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[position_]));
      ++position_;
    }
    if (!digits) return fail("expected number");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(std::string(text_.substr(start, position_ - start)).c_str(),
                               nullptr);
    if (!std::isfinite(value.number)) return fail("non-finite number");
    return value;
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

}  // namespace

Result<ChromeTraceCheck> check_chrome_trace(std::string_view json) {
  auto parsed = JsonParser(json).parse();
  if (!parsed.ok()) return parsed.error().with_context("chrome trace");
  const JsonValue& root = parsed.value();
  if (root.kind != JsonValue::Kind::kObject)
    return Error(ErrorKind::kValidation, "chrome trace: top level is not an object");
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray)
    return Error(ErrorKind::kValidation, "chrome trace: missing traceEvents array");

  ChromeTraceCheck check;
  double last_ts = -1.0;
  // tid -> stack of open "B" names.
  std::map<std::uint32_t, std::vector<std::string>> open;
  std::map<std::string, std::size_t> spans_by_name;
  std::map<std::string, bool> trace_ids;
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& event = events->items[i];
    const auto fail = [&](const std::string& why) {
      return Error(ErrorKind::kValidation,
                   "chrome trace event " + std::to_string(i) + ": " + why);
    };
    if (event.kind != JsonValue::Kind::kObject) return fail("not an object");
    const JsonValue* name = event.find("name");
    const JsonValue* phase = event.find("ph");
    const JsonValue* ts = event.find("ts");
    const JsonValue* pid = event.find("pid");
    const JsonValue* tid = event.find("tid");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) return fail("missing name");
    if (phase == nullptr || phase->kind != JsonValue::Kind::kString) return fail("missing ph");
    if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) return fail("missing ts");
    if (pid == nullptr || pid->kind != JsonValue::Kind::kNumber) return fail("missing pid");
    if (tid == nullptr || tid->kind != JsonValue::Kind::kNumber) return fail("missing tid");
    if (ts->number < 0.0) return fail("negative ts");
    if (ts->number < last_ts) return fail("ts went backwards");
    last_ts = ts->number;
    const auto thread = static_cast<std::uint32_t>(tid->number);
    if (phase->text == "B") {
      open[thread].push_back(name->text);
      ++check.begin_events;
      if (const JsonValue* arguments = event.find("args");
          arguments != nullptr && arguments->kind == JsonValue::Kind::kObject) {
        if (const JsonValue* id = arguments->find("trace_id"); id != nullptr) {
          if (id->kind != JsonValue::Kind::kString || id->text.empty())
            return fail("args.trace_id is not a non-empty string");
          for (char c : id->text) {
            if (!std::isxdigit(static_cast<unsigned char>(c)))
              return fail("args.trace_id '" + id->text + "' is not hex");
          }
          trace_ids[id->text] = true;
        }
      }
    } else if (phase->text == "E") {
      auto& stack = open[thread];
      if (stack.empty()) return fail("E without open B on tid " + std::to_string(thread));
      if (stack.back() != name->text)
        return fail("E for '" + name->text + "' but innermost open span is '" + stack.back() +
                    "'");
      stack.pop_back();
      ++spans_by_name[name->text];
    } else {
      return fail("unexpected phase '" + phase->text + "'");
    }
    ++check.events;
  }
  for (const auto& [thread, stack] : open) {
    if (!stack.empty())
      return Error(ErrorKind::kValidation, "chrome trace: tid " + std::to_string(thread) +
                                               " has " + std::to_string(stack.size()) +
                                               " unclosed span(s)");
  }
  check.threads = open.size();
  check.spans_by_name.assign(spans_by_name.begin(), spans_by_name.end());
  check.trace_ids.reserve(trace_ids.size());
  for (const auto& [id, seen] : trace_ids) check.trace_ids.push_back(id);
  return check;
}

bool ChromeTraceCheck::has_trace_id(std::string_view id) const noexcept {
  return std::binary_search(trace_ids.begin(), trace_ids.end(), id,
                            [](std::string_view a, std::string_view b) { return a < b; });
}

}  // namespace tsufail::obs
