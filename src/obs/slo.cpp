#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/strings.h"

namespace tsufail::obs {
namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

/// "p99" / "p99.9" from a quantile in [0, 1].
std::string quantile_label(double q) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "p%g", q * 100.0);
  return buffer;
}

}  // namespace

std::string_view slo_state_name(SloState state) noexcept {
  switch (state) {
    case SloState::kOk: return "OK";
    case SloState::kNoData: return "NO_DATA";
    case SloState::kDegraded: return "DEGRADED";
    case SloState::kBurning: return "BURNING";
  }
  return "OK";
}

SloEngine::SloEngine(SloConfig config) : config_(config) {}

void SloEngine::add_objective(SloObjective objective) {
  std::lock_guard lock(mutex_);
  auto it = std::lower_bound(tracked_.begin(), tracked_.end(), objective.name,
                             [](const Tracked& t, std::string_view name) {
                               return t.objective.name < name;
                             });
  if (it != tracked_.end() && it->objective.name == objective.name) {
    *it = Tracked{std::move(objective), {}, {}};
    return;
  }
  tracked_.insert(it, Tracked{std::move(objective), {}, {}});
}

void SloEngine::remove_objective(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = std::lower_bound(
      tracked_.begin(), tracked_.end(), name,
      [](const Tracked& t, std::string_view n) { return t.objective.name < n; });
  if (it != tracked_.end() && it->objective.name == name) tracked_.erase(it);
}

std::size_t SloEngine::objective_count() const {
  std::lock_guard lock(mutex_);
  return tracked_.size();
}

void SloEngine::tick(const MetricsSnapshot& snapshot, std::uint64_t now_ns) {
  std::lock_guard lock(mutex_);
  for (Tracked& tracked : tracked_) {
    const SloObjective& objective = tracked.objective;
    Entry entry;
    entry.t_ns = now_ns;
    switch (objective.kind) {
      case SloKind::kLatencyQuantile: {
        const HistogramValue* h = snapshot.find_histogram(objective.metric);
        if (h != nullptr) {
          if (tracked.bounds.empty()) tracked.bounds = h->bounds;
          // Observations are "good" when they land in a bucket whose
          // upper bound is <= threshold; a threshold between bounds
          // conservatively counts the straddling bucket as bad, so set
          // thresholds on bucket boundaries.
          const auto within = static_cast<std::size_t>(
              std::upper_bound(h->bounds.begin(), h->bounds.end(), objective.threshold) -
              h->bounds.begin());
          const std::uint64_t good = within == 0 ? 0 : h->cumulative(within - 1);
          entry.total = static_cast<double>(h->count);
          entry.bad = static_cast<double>(h->count - std::min(h->count, good));
          entry.buckets = h->counts;
        }
        break;
      }
      case SloKind::kErrorRatio: {
        const CounterValue* bad = snapshot.find_counter(objective.metric);
        const CounterValue* total = snapshot.find_counter(objective.denominator);
        if (bad != nullptr) entry.bad = static_cast<double>(bad->value);
        if (total != nullptr) entry.total = static_cast<double>(total->value);
        break;
      }
      case SloKind::kThroughputMin: {
        const CounterValue* total = snapshot.find_counter(objective.metric);
        if (total != nullptr) entry.total = static_cast<double>(total->value);
        break;
      }
      case SloKind::kStalenessMax: {
        const GaugeValue* gauge = snapshot.find_gauge(objective.metric);
        entry.current = gauge == nullptr ? 0.0 : gauge->value;
        // Cumulative bad-tick / total-tick counts, accumulated by the
        // engine itself (gauges have no cumulative form to diff).
        const Entry* previous = tracked.ring.empty() ? nullptr : &tracked.ring.back();
        entry.bad = (previous == nullptr ? 0.0 : previous->bad) +
                    (entry.current > objective.threshold ? 1.0 : 0.0);
        entry.total = (previous == nullptr ? 0.0 : previous->total) + 1.0;
        break;
      }
    }
    tracked.ring.push_back(std::move(entry));
    const std::uint64_t horizon =
        config_.slow_window_ns + config_.fast_window_ns;  // keep one baseline past the window
    while (tracked.ring.size() > 2 &&
           tracked.ring[1].t_ns + horizon < now_ns)
      tracked.ring.pop_front();
  }
  advance_exemplar_window();
}

SloStatus SloEngine::evaluate_one(const Tracked& tracked, std::uint64_t now_ns) const {
  const SloObjective& objective = tracked.objective;
  SloStatus status;
  status.objective = objective.name;
  status.kind = objective.kind;
  status.threshold = objective.threshold;
  status.budget = objective.budget;
  if (tracked.ring.size() < 2) {
    status.state = SloState::kNoData;
    status.reason = "insufficient data (need two ticks)";
    return status;
  }

  const Entry& latest = tracked.ring.back();
  // Baseline for a window: the newest entry at least one window old,
  // falling back to the oldest entry while history is still short.
  const auto baseline_for = [&](std::uint64_t window_ns) -> const Entry& {
    const std::uint64_t cutoff = now_ns > window_ns ? now_ns - window_ns : 0;
    const Entry* baseline = &tracked.ring.front();
    for (const Entry& entry : tracked.ring) {
      if (entry.t_ns > cutoff) break;
      baseline = &entry;
    }
    return *baseline;
  };
  // Bad fraction over a window, with counter-reset handling: a cumulative
  // value that went backwards means the process restarted, so the latest
  // cumulative IS the delta since restart.
  const auto window_fraction = [&](const Entry& baseline, double* rate_out) {
    double bad = latest.bad - baseline.bad;
    double total = latest.total - baseline.total;
    if (bad < 0.0 || total < 0.0) {
      bad = latest.bad;
      total = latest.total;
    }
    if (rate_out != nullptr) {
      const double seconds =
          static_cast<double>(latest.t_ns - baseline.t_ns) * 1e-9;
      *rate_out = seconds > 0.0 ? total / seconds : 0.0;
    }
    if (objective.kind == SloKind::kThroughputMin) {
      if (objective.threshold <= 0.0 || rate_out == nullptr) return 0.0;
      return std::max(0.0, 1.0 - *rate_out / objective.threshold);
    }
    return total > 0.0 ? bad / total : 0.0;
  };

  const Entry& fast_base = baseline_for(config_.fast_window_ns);
  const Entry& slow_base = baseline_for(config_.slow_window_ns);
  double fast_rate = 0.0;
  double slow_rate = 0.0;
  const double fast_fraction = window_fraction(fast_base, &fast_rate);
  const double slow_fraction = window_fraction(slow_base, &slow_rate);
  const double budget = std::max(objective.budget, 1e-12);
  status.fast_burn = fast_fraction / budget;
  status.slow_burn = slow_fraction / budget;

  const bool fast_hot = status.fast_burn >= config_.fast_burn_threshold;
  const bool slow_hot = status.slow_burn >= config_.slow_burn_threshold;
  status.state = fast_hot && slow_hot ? SloState::kBurning
                 : fast_hot || slow_hot ? SloState::kDegraded
                                        : SloState::kOk;

  std::string headline;
  switch (objective.kind) {
    case SloKind::kLatencyQuantile: {
      // The displayed quantile is computed over the fast window's bucket
      // deltas (burn itself only needs the threshold split).  A baseline
      // from before the histogram existed has no buckets; everything in
      // the latest entry is then the delta.
      if (!latest.buckets.empty() &&
          (fast_base.buckets.empty() || latest.buckets.size() == fast_base.buckets.size())) {
        HistogramValue window;
        window.bounds = tracked.bounds;
        window.counts.resize(latest.buckets.size());
        for (std::size_t b = 0; b < latest.buckets.size(); ++b) {
          const std::uint64_t from = b < fast_base.buckets.size() ? fast_base.buckets[b] : 0;
          const std::uint64_t to = latest.buckets[b];
          window.counts[b] = to >= from ? to - from : to;
          window.count += window.counts[b];
        }
        status.value = histogram_quantile(window, objective.quantile);
      }
      headline = quantile_label(objective.quantile) + " " + format_double(status.value) +
                 "s vs " + format_double(objective.threshold) + "s target";
      break;
    }
    case SloKind::kErrorRatio:
      status.value = fast_fraction;
      headline = "ratio " + format_double(status.value) + " vs budget " +
                 format_double(objective.budget);
      break;
    case SloKind::kThroughputMin:
      status.value = fast_rate;
      headline = "rate " + format_double(status.value) + "/s vs floor " +
                 format_double(objective.threshold) + "/s";
      break;
    case SloKind::kStalenessMax:
      status.value = latest.current;
      headline = "staleness " + format_double(status.value) + " vs ceiling " +
                 format_double(objective.threshold);
      break;
  }
  char burn[64];
  std::snprintf(burn, sizeof burn, "; burn %.1fx/fast %.1fx/slow", status.fast_burn,
                status.slow_burn);
  status.reason = headline + burn;
  return status;
}

std::vector<SloStatus> SloEngine::evaluate(std::uint64_t now_ns) const {
  std::lock_guard lock(mutex_);
  std::vector<SloStatus> statuses;
  statuses.reserve(tracked_.size());
  for (const Tracked& tracked : tracked_) statuses.push_back(evaluate_one(tracked, now_ns));
  return statuses;
}

SloState aggregate_slo_state(std::span<const SloStatus> statuses) noexcept {
  SloState worst = SloState::kOk;
  for (const SloStatus& status : statuses) {
    if (status.state == SloState::kNoData) continue;  // idle != unhealthy
    if (static_cast<int>(status.state) > static_cast<int>(worst)) worst = status.state;
  }
  return worst;
}

std::string render_slo_text(std::span<const SloStatus> statuses) {
  std::string out = "# tsufail slo v1\n";
  for (const SloStatus& status : statuses) {
    out += status.objective;
    out += '\t';
    out += slo_state_name(status.state);
    out += '\t';
    out += format_double(status.fast_burn);
    out += '\t';
    out += format_double(status.slow_burn);
    out += '\t';
    out += format_double(status.value);
    out += '\t';
    out += format_double(status.threshold);
    out += '\t';
    out += status.reason;
    out += '\n';
  }
  return out;
}

Result<std::vector<SloStatus>> parse_slo_text(std::string_view text) {
  std::vector<SloStatus> statuses;
  std::size_t line_number = 0;
  std::size_t position = 0;
  while (position < text.size()) {
    std::size_t end = text.find('\n', position);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(position, end - position);
    position = end + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string_view> fields = split(line, '\t');
    const auto fail = [&](const std::string& why) {
      return Error(ErrorKind::kParse, "slo line " + std::to_string(line_number) + ": " + why);
    };
    if (fields.size() != 7) return fail("expected 7 tab-separated fields");
    SloStatus status;
    status.objective = std::string(fields[0]);
    bool known = false;
    for (SloState state : {SloState::kOk, SloState::kNoData, SloState::kDegraded,
                           SloState::kBurning}) {
      if (fields[1] == slo_state_name(state)) {
        status.state = state;
        known = true;
      }
    }
    if (!known) return fail("unknown state '" + std::string(fields[1]) + "'");
    struct { std::string_view text; double* out; } numbers[] = {
        {fields[2], &status.fast_burn},
        {fields[3], &status.slow_burn},
        {fields[4], &status.value},
        {fields[5], &status.threshold},
    };
    for (auto& [field, out] : numbers) {
      auto parsed = parse_double(std::string(field));
      if (!parsed.ok()) return fail("unparseable number '" + std::string(field) + "'");
      *out = parsed.value();
    }
    status.reason = std::string(fields[6]);
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace tsufail::obs
