// Metrics registry: counters, gauges, and fixed-bucket histograms with
// per-thread shards merged on snapshot.
//
// Hot-path contract: every update is one relaxed enabled() load and a
// predictable branch while obs is disabled; when enabled, a counter add
// is a thread-local lookup plus one relaxed atomic add on a cell no
// other thread writes.  Shards are never unregistered, so a snapshot
// taken after worker threads exit still sees their contributions.
//
// Determinism: counters and histogram observation counts accumulate in
// integers, so any interleaving of semantic events produces the same
// totals — a sweep's counter snapshot is bit-identical at --jobs 1/2/8.
// Histogram *sums* (and timing-valued observations generally) are the
// documented floating-point exception.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"
#include "util/error.h"

namespace tsufail::obs {

namespace detail {
void counter_add(std::uint32_t id, std::uint64_t n) noexcept;
void gauge_set(std::uint32_t id, double value) noexcept;
void histogram_observe(std::uint32_t id, double value) noexcept;
}  // namespace detail

/// Monotone event counter handle.  Cheap to copy; obtain via counter().
/// The canonical call-site idiom registers once per site:
///   static obs::Counter cells = obs::counter("sweep.cells");
///   cells.add();
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) detail::counter_add(id_, n);
  }
  void increment() noexcept { add(1); }

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Registers (or finds) the counter `name`.  Names are process-lifetime;
/// registration is idempotent and may happen while obs is disabled.
Counter counter(std::string_view name);

/// Last-write-wins instantaneous value (worker count, pending queue
/// depth, current estimator value).  Unset gauges are omitted from
/// snapshots.
class Gauge {
 public:
  void set(double value) noexcept {
    if (enabled()) detail::gauge_set(id_, value);
  }

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

Gauge gauge(std::string_view name);

/// Whether a histogram captures trace exemplars (the slowest observation
/// per bucket per exemplar window, tagged with the recording span's
/// trace id).  Off by default: exemplar cells cost ~32 bytes per bucket
/// per thread and one extra relaxed load per observation.
enum class ExemplarMode : std::uint8_t { kNone, kMaxPerBucket };

/// Fixed-bucket histogram.  Bucket `i` counts observations with
/// value <= bounds[i] (Prometheus "le" semantics, first matching
/// bucket); an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  void observe(double value) noexcept {
    if (enabled()) detail::histogram_observe(id_, value);
  }

 private:
  friend Histogram histogram(std::string_view name, std::span<const double> bounds,
                             ExemplarMode mode);
  explicit Histogram(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Registers (or finds) the histogram `name`.  `bounds` must be strictly
/// increasing and non-empty; a re-registration keeps the first bounds
/// and ExemplarMode (the name identifies the metric, not the call site).
Histogram histogram(std::string_view name, std::span<const double> bounds,
                    ExemplarMode mode = ExemplarMode::kNone);

/// The current exemplar window generation.  Exemplar cells remember the
/// window they were captured in; a stale cell is overwritten by the next
/// observation regardless of value, so "slowest" always means "slowest
/// since the window last advanced".
std::uint64_t exemplar_window() noexcept;

/// Advances the exemplar window (the SLO tick calls this once per
/// evaluation period).  Returns the new generation.
std::uint64_t advance_exemplar_window() noexcept;

/// Shared log-spaced duration buckets (seconds): 1us .. 100s.
std::span<const double> time_buckets_seconds() noexcept;

// --- snapshots --------------------------------------------------------

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
};

struct HistogramValue {
  /// The slowest observation captured for one bucket in one exemplar
  /// window.  `trace_id` is 0 when the observation happened outside any
  /// span; otherwise it matches a span in the Chrome trace export.
  struct Exemplar {
    std::size_t bucket = 0;      ///< index into counts (bounds.size() = +Inf)
    double value = 0.0;
    std::uint64_t trace_id = 0;
    std::uint64_t window = 0;    ///< exemplar_window() generation at capture
  };

  std::string name;
  std::vector<double> bounds;        ///< upper bounds, ascending
  std::vector<std::uint64_t> counts; ///< per-bucket, size bounds.size() + 1 (+Inf last)
  std::uint64_t count = 0;           ///< total observations
  double sum = 0.0;                  ///< FP merge order is unspecified
  std::vector<Exemplar> exemplars;   ///< at most one per bucket, ascending by bucket

  /// Cumulative count through bucket `i` (Prometheus exposition shape).
  std::uint64_t cumulative(std::size_t i) const noexcept;
  const Exemplar* find_exemplar(std::size_t bucket) const noexcept;
};

/// Quantile estimate from a fixed-bucket histogram, linearly
/// interpolated inside the owning bucket (the Prometheus
/// histogram_quantile model).  `q` is clamped to [0, 1]; observations in
/// the +Inf bucket report the highest finite bound.  0 when empty.
double histogram_quantile(const HistogramValue& histogram, double q);

/// Immutable merged view of every shard, each section ascending by name.
/// Metrics that were registered but never updated report zero/empty;
/// unset gauges are omitted.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* find_counter(std::string_view name) const noexcept;
  const GaugeValue* find_gauge(std::string_view name) const noexcept;
  const HistogramValue* find_histogram(std::string_view name) const noexcept;
};

/// Merges every thread's shard (live and exited) into a snapshot.
MetricsSnapshot collect_metrics();

/// Zeroes every counter/histogram cell and clears every gauge.  Handles
/// stay registered and valid.
void reset_metrics();

/// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// with full round-trip precision on doubles.
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (version 0.0.4): HELP/TYPE headers,
/// cumulative `_bucket{le="..."}` series, `_sum`/`_count`.  Metric names
/// are sanitized ('.' and '-' map to '_').  Histogram buckets with a
/// captured exemplar carry an OpenMetrics-style annotation:
///   name_bucket{le="0.1"} 42 # {trace_id="00000100000002a7"} 0.0871
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Structural validation of a Prometheus text exposition: every sample
/// line parses, every series was declared by a preceding TYPE line,
/// histogram bucket series are cumulative, and exemplar annotations only
/// appear on bucket series with hex trace ids and parseable values.
/// Used by tests and the `obs_check` CI tool.
struct PrometheusCheck {
  std::size_t samples = 0;
  std::size_t families = 0;
  std::size_t exemplars = 0;
  /// Distinct trace_id label values across all exemplars, sorted.
  std::vector<std::string> exemplar_trace_ids;
};
Result<PrometheusCheck> check_prometheus_text(std::string_view text);

/// Parses a tsufail-generated Prometheus exposition back into a
/// MetricsSnapshot (the inverse of prometheus_text, modulo name
/// sanitization: names come back with '_' where '.' was).  Exemplar
/// annotations are reconstructed with window 0.  `tsufail top` uses this
/// to recompute quantiles client-side from a scraped /metrics page.
Result<MetricsSnapshot> parse_prometheus_text(std::string_view text);

}  // namespace tsufail::obs
