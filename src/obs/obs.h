// tsufail::obs — low-overhead tracing and metrics for the analysis,
// sweep, and stream pipelines.
//
// Design contract (DESIGN.md section 12):
//
//   * Two kill switches.  Compile-time: building with
//     -DTSUFAIL_OBS_DISABLE turns OBS_SPAN into nothing and folds
//     enabled() to a constant false.  Runtime (the default build):
//     instrumentation is compiled in but dormant — every instrumented
//     site costs one relaxed atomic load and a predictable branch until
//     obs::set_enabled(true).  bench_run_study gates the dormant cost at
//     < 1% of a study run.
//
//   * Scoped RAII tracing.  OBS_SPAN("name") records a completed span
//     (name, start, end) into a per-thread lock-free-in-spirit ring
//     buffer (one uncontended mutex per thread, never shared on the hot
//     path).  Span names must be string literals or obs::intern()ed —
//     the buffer stores the pointer, not a copy.
//
//   * Deterministic metrics.  Counters count semantic events (cells
//     analyzed, records quarantined), not scheduling accidents, so
//     snapshots are count-exact at any worker-thread count.  Timing
//     histograms are the documented exception.
//
// obs depends only on util; every other subsystem may depend on obs.
#pragma once

#include <cstdint>

namespace tsufail::obs {

#if defined(TSUFAIL_OBS_DISABLE)
/// False when the instrumentation layer was compiled out.
inline constexpr bool kCompiledIn = false;
inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
inline constexpr bool kCompiledIn = true;
/// Runtime kill switch: one relaxed atomic load.  Off by default.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;
#endif

/// Monotonic nanoseconds (steady_clock).  The single clock path shared
/// by spans, benches, and the CLI — no other component reads a clock.
std::uint64_t now_ns() noexcept;

/// Wall-clock stopwatch over now_ns(); replaces the hand-rolled
/// steady_clock arithmetic the benches used to carry.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}
  void restart() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double seconds() const noexcept { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t start_;
};

/// Interns a dynamic string as a process-lifetime span name.  Idempotent
/// per content; costs one lock + hash lookup, so call it outside hot
/// loops (or only when enabled()).  Literals need no interning.
const char* intern(const char* name);

/// The innermost live span's trace id on this thread (0 = no span open).
/// Exemplar-enabled histograms read this at observe() time, which is how
/// a slow observation links back to the span that produced it.
std::uint64_t current_trace_id() noexcept;

namespace detail {
/// Records one completed span into this thread's ring buffer.
void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                 std::uint64_t trace_id) noexcept;
/// Allocates a fresh process-unique nonzero trace id (thread-sequenced,
/// no shared atomic on the hot path).
std::uint64_t new_trace_id() noexcept;
/// Installs `id` as this thread's current trace id, returning the old one.
std::uint64_t swap_current_trace_id(std::uint64_t id) noexcept;
}  // namespace detail

/// RAII span: captures the clock on construction when obs is enabled
/// (and `name` is non-null), records on destruction.  A null name is an
/// explicit no-op, which lets call sites skip intern() while disabled:
///   SpanScope span(obs::enabled() ? obs::intern(name) : nullptr);
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept {
    if (name != nullptr && enabled()) {
      name_ = name;
      trace_id_ = detail::new_trace_id();
      parent_id_ = detail::swap_current_trace_id(trace_id_);
      start_ = now_ns();
    }
  }
  ~SpanScope() { stop(); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Ends the span before scope exit (for phases that do not map onto a
  /// C++ block).  Idempotent; the destructor becomes a no-op.
  void stop() noexcept {
    if (name_ != nullptr) {
      detail::record_span(name_, start_, now_ns(), trace_id_);
      detail::swap_current_trace_id(parent_id_);
    }
    name_ = nullptr;
  }

  /// This span's trace id (0 when the span is not recording).
  std::uint64_t trace_id() const noexcept { return trace_id_; }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t parent_id_ = 0;
};

#define TSUFAIL_OBS_CAT2(a, b) a##b
#define TSUFAIL_OBS_CAT(a, b) TSUFAIL_OBS_CAT2(a, b)

#if defined(TSUFAIL_OBS_DISABLE)
#define OBS_SPAN(name)
#else
/// Scoped trace span: OBS_SPAN("sweep.cell"); lives to the end of the
/// enclosing block.  `name` must be a string literal or intern()ed.
#define OBS_SPAN(name) \
  ::tsufail::obs::SpanScope TSUFAIL_OBS_CAT(obs_span_, __COUNTER__)(name)
#endif

}  // namespace tsufail::obs
