// tsufail::obs — low-overhead tracing and metrics for the analysis,
// sweep, and stream pipelines.
//
// Design contract (DESIGN.md section 12):
//
//   * Two kill switches.  Compile-time: building with
//     -DTSUFAIL_OBS_DISABLE turns OBS_SPAN into nothing and folds
//     enabled() to a constant false.  Runtime (the default build):
//     instrumentation is compiled in but dormant — every instrumented
//     site costs one relaxed atomic load and a predictable branch until
//     obs::set_enabled(true).  bench_run_study gates the dormant cost at
//     < 1% of a study run.
//
//   * Scoped RAII tracing.  OBS_SPAN("name") records a completed span
//     (name, start, end) into a per-thread lock-free-in-spirit ring
//     buffer (one uncontended mutex per thread, never shared on the hot
//     path).  Span names must be string literals or obs::intern()ed —
//     the buffer stores the pointer, not a copy.
//
//   * Deterministic metrics.  Counters count semantic events (cells
//     analyzed, records quarantined), not scheduling accidents, so
//     snapshots are count-exact at any worker-thread count.  Timing
//     histograms are the documented exception.
//
// obs depends only on util; every other subsystem may depend on obs.
#pragma once

#include <cstdint>

namespace tsufail::obs {

#if defined(TSUFAIL_OBS_DISABLE)
/// False when the instrumentation layer was compiled out.
inline constexpr bool kCompiledIn = false;
inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
inline constexpr bool kCompiledIn = true;
/// Runtime kill switch: one relaxed atomic load.  Off by default.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;
#endif

/// Monotonic nanoseconds (steady_clock).  The single clock path shared
/// by spans, benches, and the CLI — no other component reads a clock.
std::uint64_t now_ns() noexcept;

/// Wall-clock stopwatch over now_ns(); replaces the hand-rolled
/// steady_clock arithmetic the benches used to carry.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}
  void restart() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double seconds() const noexcept { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t start_;
};

/// Interns a dynamic string as a process-lifetime span name.  Idempotent
/// per content; costs one lock + hash lookup, so call it outside hot
/// loops (or only when enabled()).  Literals need no interning.
const char* intern(const char* name);

namespace detail {
/// Records one completed span into this thread's ring buffer.
void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) noexcept;
}  // namespace detail

/// RAII span: captures the clock on construction when obs is enabled
/// (and `name` is non-null), records on destruction.  A null name is an
/// explicit no-op, which lets call sites skip intern() while disabled:
///   SpanScope span(obs::enabled() ? obs::intern(name) : nullptr);
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept {
    if (name != nullptr && enabled()) {
      name_ = name;
      start_ = now_ns();
    }
  }
  ~SpanScope() { stop(); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Ends the span before scope exit (for phases that do not map onto a
  /// C++ block).  Idempotent; the destructor becomes a no-op.
  void stop() noexcept {
    if (name_ != nullptr) detail::record_span(name_, start_, now_ns());
    name_ = nullptr;
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

#define TSUFAIL_OBS_CAT2(a, b) a##b
#define TSUFAIL_OBS_CAT(a, b) TSUFAIL_OBS_CAT2(a, b)

#if defined(TSUFAIL_OBS_DISABLE)
#define OBS_SPAN(name)
#else
/// Scoped trace span: OBS_SPAN("sweep.cell"); lives to the end of the
/// enclosing block.  `name` must be a string literal or intern()ed.
#define OBS_SPAN(name) \
  ::tsufail::obs::SpanScope TSUFAIL_OBS_CAT(obs_span_, __COUNTER__)(name)
#endif

}  // namespace tsufail::obs
