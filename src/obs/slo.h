// obs::slo — sliding-window service-level objectives over the metrics
// registry, with Google-SRE-style multi-window burn-rate alerting.
//
// The engine never touches the hot path: callers feed it a
// MetricsSnapshot once per tick (the serve daemon ticks once a second),
// and each tick appends one cumulative entry per objective to a bounded
// ring.  Evaluation diffs the newest entry against a baseline entry one
// window back, so a window's bad-event fraction costs O(1) per
// objective regardless of traffic volume.
//
// Burn rate is the SRE book's definition: the rate at which an
// objective consumes its error budget, normalized so burn 1.0 exhausts
// the budget exactly over the SLO period.  With budget b and a window's
// bad fraction f, burn = f / b.  An objective pages (kBurning) when the
// fast (5m) AND slow (1h) windows both exceed their thresholds — the
// fast window for responsiveness, the slow window so a short spike that
// already passed cannot page.  One window alone marks kDegraded.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace tsufail::obs {

/// How an objective turns metric samples into a bad-event fraction.
enum class SloKind : std::uint8_t {
  /// "q of observations complete within `threshold`": bad = histogram
  /// observations above `threshold` seconds; budget defaults to 1 - q.
  kLatencyQuantile,
  /// "bad/total stays within budget": bad = counter `metric`, total =
  /// counter `denominator` (e.g. cache misses over query requests).
  kErrorRatio,
  /// "counter `metric` advances at >= `threshold` per second": the bad
  /// fraction is the relative shortfall, max(0, 1 - rate/threshold).
  kThroughputMin,
  /// "gauge `metric` stays <= `threshold`": each tick with the gauge
  /// above threshold is one bad tick out of the window's total ticks.
  kStalenessMax,
};

struct SloObjective {
  std::string name;         ///< stable identifier, e.g. "serve.query.p99"
  SloKind kind = SloKind::kErrorRatio;
  std::string metric;       ///< histogram/counter/gauge name in the registry
  std::string denominator;  ///< kErrorRatio: the total-events counter
  double threshold = 0.0;   ///< seconds / rate per second / gauge ceiling
  double quantile = 0.99;   ///< kLatencyQuantile: the quantile reported
  double budget = 0.01;     ///< allowed bad fraction (error budget)
};

enum class SloState : std::uint8_t { kOk, kNoData, kDegraded, kBurning };

/// Stable lowercase-to-wire rendering: "OK", "NO_DATA", "DEGRADED",
/// "BURNING".
std::string_view slo_state_name(SloState state) noexcept;

/// One objective's evaluation at a point in time.
struct SloStatus {
  std::string objective;
  SloKind kind = SloKind::kErrorRatio;
  SloState state = SloState::kNoData;
  double fast_burn = 0.0;   ///< burn rate over the fast window
  double slow_burn = 0.0;   ///< burn rate over the slow window
  double value = 0.0;       ///< measured value (quantile / rate / ratio / gauge)
  double threshold = 0.0;   ///< the objective's target for `value`
  double budget = 0.0;
  std::string reason;       ///< human-readable one-liner
};

struct SloConfig {
  std::uint64_t fast_window_ns = 300ull * 1'000'000'000ull;   ///< 5 minutes
  std::uint64_t slow_window_ns = 3600ull * 1'000'000'000ull;  ///< 1 hour
  /// SRE-book paging thresholds for a 30d SLO period: 14.4x burn over
  /// 5m / 6x over 1h both consume >= 2% / 5% of the monthly budget.
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
};

/// The engine.  Thread-safe: tick() runs on the owner's cadence thread
/// while evaluate()/statuses serve concurrent readers.
class SloEngine {
 public:
  explicit SloEngine(SloConfig config = {});

  /// Adds or replaces (by name) an objective.  The ring restarts for a
  /// replaced objective.
  void add_objective(SloObjective objective);
  void remove_objective(std::string_view name);
  std::size_t objective_count() const;

  /// Appends one ring entry per objective from `snapshot`, pruning
  /// entries older than the slow window.  Also advances the exemplar
  /// window, so "slowest observation per window" aligns with ticks.
  void tick(const MetricsSnapshot& snapshot, std::uint64_t now_ns);

  /// Evaluates every objective against the ring as of `now_ns`,
  /// ascending by objective name.  O(objectives).
  std::vector<SloStatus> evaluate(std::uint64_t now_ns) const;

  const SloConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    std::uint64_t t_ns = 0;
    double bad = 0.0;      ///< cumulative bad events (or bad ticks)
    double total = 0.0;    ///< cumulative total events (or ticks)
    double current = 0.0;  ///< instantaneous value (gauge kinds)
    std::vector<std::uint64_t> buckets;  ///< kLatencyQuantile: cumulative per-bucket
  };
  struct Tracked {
    SloObjective objective;
    std::vector<double> bounds;  ///< kLatencyQuantile: captured at first tick
    std::deque<Entry> ring;
  };

  SloStatus evaluate_one(const Tracked& tracked, std::uint64_t now_ns) const;

  const SloConfig config_;
  mutable std::mutex mutex_;
  std::vector<Tracked> tracked_;  ///< ascending by objective name
};

/// Worst state across `statuses`; kNoData never escalates the aggregate
/// (an idle fleet is healthy, not degraded).
SloState aggregate_slo_state(std::span<const SloStatus> statuses) noexcept;

/// Line-oriented /slo rendering, one objective per line, tab-separated:
///   name<TAB>STATE<TAB>fast<TAB>slow<TAB>value<TAB>threshold<TAB>reason
/// prefixed by a "# tsufail slo v1" header.  `tsufail top` parses this.
std::string render_slo_text(std::span<const SloStatus> statuses);

/// Inverse of render_slo_text (reasons round-trip verbatim).
Result<std::vector<SloStatus>> parse_slo_text(std::string_view text);

}  // namespace tsufail::obs
