#include "obs/obs.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <unordered_set>

namespace tsufail::obs {

#if !defined(TSUFAIL_OBS_DISABLE)
namespace {
// The runtime kill switch.  Relaxed is enough: enabling observability is
// advisory (a span straddling the flip may or may not be recorded), and
// all real synchronization happens on the buffer/registry mutexes.
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }
#endif

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* intern(const char* name) {
  static std::mutex mutex;
  // Node-based set: element addresses survive rehashing, so the returned
  // pointer is stable for the life of the process.
  static std::unordered_set<std::string> names;
  std::lock_guard lock(mutex);
  return names.emplace(name).first->c_str();
}

namespace {
// Trace ids are (thread slot << 40) | per-thread sequence: process-unique
// and nonzero without a shared atomic per span.  The global counter is
// touched once per thread lifetime.
std::atomic<std::uint64_t> g_trace_thread_seq{0};
thread_local std::uint64_t t_trace_id_base = 0;
thread_local std::uint64_t t_trace_id_seq = 0;
thread_local std::uint64_t t_current_trace_id = 0;
}  // namespace

std::uint64_t current_trace_id() noexcept { return t_current_trace_id; }

namespace detail {

std::uint64_t new_trace_id() noexcept {
  if (t_trace_id_base == 0)
    t_trace_id_base = (g_trace_thread_seq.fetch_add(1, std::memory_order_relaxed) + 1) << 40;
  return t_trace_id_base | (++t_trace_id_seq & ((std::uint64_t{1} << 40) - 1));
}

std::uint64_t swap_current_trace_id(std::uint64_t id) noexcept {
  const std::uint64_t previous = t_current_trace_id;
  t_current_trace_id = id;
  return previous;
}

}  // namespace detail

}  // namespace tsufail::obs
