#include "obs/obs.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <unordered_set>

namespace tsufail::obs {

#if !defined(TSUFAIL_OBS_DISABLE)
namespace {
// The runtime kill switch.  Relaxed is enough: enabling observability is
// advisory (a span straddling the flip may or may not be recorded), and
// all real synchronization happens on the buffer/registry mutexes.
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }
#endif

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* intern(const char* name) {
  static std::mutex mutex;
  // Node-based set: element addresses survive rehashing, so the returned
  // pointer is stable for the life of the process.
  static std::unordered_set<std::string> names;
  std::lock_guard lock(mutex);
  return names.emplace(name).first->c_str();
}

}  // namespace tsufail::obs
