#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/trace.h"
#include "util/strings.h"

namespace tsufail::obs {
namespace {

/// Relaxed add on an atomic double (shards are single-writer, so the CAS
/// loop converges immediately; it only guards against torn reads from a
/// concurrent snapshot).
void atomic_add(std::atomic<double>& cell, double delta) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(seen, seen + delta, std::memory_order_relaxed)) {
  }
}

struct HistogramSpec {
  std::string name;
  std::vector<double> bounds;
  ExemplarMode exemplar_mode = ExemplarMode::kNone;
};

/// The exemplar window generation (see exemplar_window() in the header).
/// Starts at 1 so window 0 can mean "cell never written".
std::atomic<std::uint64_t> g_exemplar_window{1};

/// One bucket's exemplar slot: a seqlock over all-atomic fields.  Single
/// writer (the shard's owning thread); snapshot readers retry while the
/// version is odd or changes under them.  All fields are atomics so a
/// lost retry race is stale data, never UB or a TSan report.
struct ExemplarCell {
  std::atomic<std::uint64_t> version{0};  ///< even = stable, odd = write in flight
  std::atomic<double> value{0.0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> window{0};   ///< 0 = empty
};

/// Writer side of the seqlock (Boehm's seqlock-with-fences shape).
void exemplar_store(ExemplarCell& cell, double value, std::uint64_t trace_id,
                    std::uint64_t window) noexcept {
  const std::uint64_t v = cell.version.load(std::memory_order_relaxed);
  cell.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  cell.value.store(value, std::memory_order_relaxed);
  cell.trace_id.store(trace_id, std::memory_order_relaxed);
  cell.window.store(window, std::memory_order_relaxed);
  cell.version.store(v + 2, std::memory_order_release);
}

/// Reader side: returns false when the cell is empty or stayed unstable
/// across the retry budget (a writer storm; the exemplar is best-effort).
bool exemplar_read(const ExemplarCell& cell, HistogramValue::Exemplar& out) noexcept {
  for (int attempt = 0; attempt < 100; ++attempt) {
    const std::uint64_t v1 = cell.version.load(std::memory_order_acquire);
    if (v1 & 1) continue;
    const double value = cell.value.load(std::memory_order_relaxed);
    const std::uint64_t trace_id = cell.trace_id.load(std::memory_order_relaxed);
    const std::uint64_t window = cell.window.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (cell.version.load(std::memory_order_relaxed) != v1) continue;
    if (window == 0) return false;
    out.value = value;
    out.trace_id = trace_id;
    out.window = window;
    return true;
  }
  return false;
}

/// Per-thread cells for one histogram: bounds.size() + 1 buckets, plus
/// the running count/sum.  `spec` points at the registry's
/// stable-address spec, so the hot path never takes the registry lock.
struct HistogramCells {
  explicit HistogramCells(const HistogramSpec* histogram_spec)
      : spec(histogram_spec), counts(histogram_spec->bounds.size() + 1) {
    if (spec->exemplar_mode != ExemplarMode::kNone)
      exemplars = std::make_unique<ExemplarCell[]>(spec->bounds.size() + 1);
  }
  const HistogramSpec* spec;
  std::deque<std::atomic<std::uint64_t>> counts;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::unique_ptr<ExemplarCell[]> exemplars;  ///< null unless exemplars enabled
};

/// One thread's slice of every counter/histogram.  Single writer (the
/// owning thread); the mutex serializes growth against snapshot/reset
/// readers — plain adds go lock-free on the atomics.
struct Shard {
  std::mutex mutex;
  std::deque<std::atomic<std::uint64_t>> counters;
  std::deque<std::unique_ptr<HistogramCells>> histograms;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::vector<std::string> gauge_names;
  std::unordered_map<std::string, std::uint32_t> gauge_ids;
  // Gauges are global (last write wins), not sharded: merging per-thread
  // last-writes would need timestamps for no benefit.
  std::deque<std::atomic<double>> gauge_values;
  std::deque<std::atomic<bool>> gauge_set;
  // unique_ptr: HistogramCells caches a pointer to the bounds vector, so
  // spec addresses must survive later registrations.
  std::vector<std::unique_ptr<HistogramSpec>> histogram_specs;
  std::unordered_map<std::string, std::uint32_t> histogram_ids;
  std::vector<std::shared_ptr<Shard>> shards;
};

// Leaked on purpose: metric handles may fire from detached threads
// during shutdown, and a destructed registry would turn them into UB.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

Shard& local_shard() {
  thread_local Shard* shard = [] {
    auto owned = std::make_shared<Shard>();
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    r.shards.push_back(owned);
    return owned.get();
  }();
  return *shard;
}

/// Grows `cells` under the shard lock until `id` is addressable.
void ensure_counter(Shard& shard, std::uint32_t id) {
  std::lock_guard lock(shard.mutex);
  while (shard.counters.size() <= id) shard.counters.emplace_back(0);
}

void ensure_histogram(Shard& shard, std::uint32_t id) {
  const HistogramSpec* spec = nullptr;
  {
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    spec = r.histogram_specs[id].get();
  }
  std::lock_guard lock(shard.mutex);
  while (shard.histograms.size() <= id) shard.histograms.push_back(nullptr);
  if (shard.histograms[id] == nullptr)
    shard.histograms[id] = std::make_unique<HistogramCells>(spec);
}

void append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  out += buffer;
}

/// tsufail metric names are dot-separated; Prometheus wants [a-zA-Z0-9_:].
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

namespace detail {

void counter_add(std::uint32_t id, std::uint64_t n) noexcept {
  Shard& shard = local_shard();
  if (shard.counters.size() <= id) ensure_counter(shard, id);
  shard.counters[id].fetch_add(n, std::memory_order_relaxed);
}

void gauge_set(std::uint32_t id, double value) noexcept {
  Registry& r = registry();
  // Gauge ids are handed out only after the deques grew (under the
  // registry lock), so this indexing never races with growth.
  r.gauge_values[id].store(value, std::memory_order_relaxed);
  r.gauge_set[id].store(true, std::memory_order_relaxed);
}

void histogram_observe(std::uint32_t id, double value) noexcept {
  Shard& shard = local_shard();
  if (shard.histograms.size() <= id || shard.histograms[id] == nullptr)
    ensure_histogram(shard, id);
  HistogramCells& cells = *shard.histograms[id];
  const std::vector<double>& bounds = cells.spec->bounds;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  cells.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cells.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(cells.sum, value);
  if (cells.exemplars != nullptr) {
    // Capture the slowest observation per bucket per window.  This
    // thread is the cell's only writer, so the relaxed pre-reads are
    // exact; the seqlock only protects snapshot readers.
    ExemplarCell& cell = cells.exemplars[bucket];
    const std::uint64_t window = g_exemplar_window.load(std::memory_order_relaxed);
    if (cell.window.load(std::memory_order_relaxed) != window ||
        value > cell.value.load(std::memory_order_relaxed))
      exemplar_store(cell, value, current_trace_id(), window);
  }
}

}  // namespace detail

Counter counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto [it, inserted] = r.counter_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.counter_names.size()));
  if (inserted) r.counter_names.emplace_back(name);
  return Counter(it->second);
}

Gauge gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto [it, inserted] = r.gauge_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.gauge_names.size()));
  if (inserted) {
    r.gauge_names.emplace_back(name);
    r.gauge_values.emplace_back(0.0);
    r.gauge_set.emplace_back(false);
  }
  return Gauge(it->second);
}

Histogram histogram(std::string_view name, std::span<const double> bounds, ExemplarMode mode) {
  TSUFAIL_REQUIRE(!bounds.empty(), "obs::histogram: empty bucket bounds");
  TSUFAIL_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()) &&
                      std::adjacent_find(bounds.begin(), bounds.end()) == bounds.end(),
                  "obs::histogram: bounds must be strictly increasing");
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto [it, inserted] = r.histogram_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.histogram_specs.size()));
  if (inserted) {
    r.histogram_specs.push_back(std::make_unique<HistogramSpec>(
        HistogramSpec{std::string(name), {bounds.begin(), bounds.end()}, mode}));
  }
  return Histogram(it->second);
}

std::uint64_t exemplar_window() noexcept {
  return g_exemplar_window.load(std::memory_order_relaxed);
}

std::uint64_t advance_exemplar_window() noexcept {
  return g_exemplar_window.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::span<const double> time_buckets_seconds() noexcept {
  static constexpr std::array<double, 9> kBuckets = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                                     0.1,  1.0,  10.0, 100.0};
  return kBuckets;
}

std::uint64_t HistogramValue::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < counts.size(); ++b) total += counts[b];
  return total;
}

const HistogramValue::Exemplar* HistogramValue::find_exemplar(std::size_t bucket) const noexcept {
  for (const auto& exemplar : exemplars) {
    if (exemplar.bucket == bucket) return &exemplar;
  }
  return nullptr;
}

double histogram_quantile(const HistogramValue& histogram, double q) {
  if (histogram.count == 0 || histogram.bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
    const std::uint64_t next = cumulative + histogram.counts[b];
    if (static_cast<double>(next) >= rank && histogram.counts[b] > 0) {
      if (b >= histogram.bounds.size()) return histogram.bounds.back();  // +Inf bucket
      const double lower = b == 0 ? 0.0 : histogram.bounds[b - 1];
      const double upper = histogram.bounds[b];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(histogram.counts[b]);
      return lower + (upper - lower) * within;
    }
    cumulative = next;
  }
  return histogram.bounds.back();
}

const CounterValue* MetricsSnapshot::find_counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeValue* MetricsSnapshot::find_gauge(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::find_histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot collect_metrics() {
  Registry& r = registry();
  std::lock_guard registry_lock(r.mutex);

  MetricsSnapshot snapshot;
  snapshot.counters.reserve(r.counter_names.size());
  for (const auto& name : r.counter_names) snapshot.counters.push_back({name, 0});
  for (std::size_t g = 0; g < r.gauge_names.size(); ++g) {
    if (r.gauge_set[g].load(std::memory_order_relaxed))
      snapshot.gauges.push_back({r.gauge_names[g], r.gauge_values[g].load(std::memory_order_relaxed)});
  }
  snapshot.histograms.reserve(r.histogram_specs.size());
  for (const auto& spec : r.histogram_specs) {
    HistogramValue value;
    value.name = spec->name;
    value.bounds = spec->bounds;
    value.counts.assign(spec->bounds.size() + 1, 0);
    snapshot.histograms.push_back(std::move(value));
  }

  for (const auto& shard : r.shards) {
    std::lock_guard shard_lock(shard->mutex);
    for (std::size_t c = 0; c < shard->counters.size() && c < snapshot.counters.size(); ++c)
      snapshot.counters[c].value += shard->counters[c].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < shard->histograms.size() && h < snapshot.histograms.size(); ++h) {
      if (shard->histograms[h] == nullptr) continue;
      const HistogramCells& cells = *shard->histograms[h];
      HistogramValue& merged = snapshot.histograms[h];
      for (std::size_t b = 0; b < merged.counts.size() && b < cells.counts.size(); ++b)
        merged.counts[b] += cells.counts[b].load(std::memory_order_relaxed);
      merged.count += cells.count.load(std::memory_order_relaxed);
      merged.sum += cells.sum.load(std::memory_order_relaxed);
      if (cells.exemplars != nullptr) {
        // Keep the winning exemplar per bucket across shards: freshest
        // window first, then slowest value.
        for (std::size_t b = 0; b < merged.counts.size(); ++b) {
          HistogramValue::Exemplar candidate;
          if (!exemplar_read(cells.exemplars[b], candidate)) continue;
          candidate.bucket = b;
          auto existing = std::find_if(
              merged.exemplars.begin(), merged.exemplars.end(),
              [b](const HistogramValue::Exemplar& e) { return e.bucket == b; });
          if (existing == merged.exemplars.end()) {
            merged.exemplars.push_back(candidate);
          } else if (candidate.window > existing->window ||
                     (candidate.window == existing->window &&
                      candidate.value > existing->value)) {
            *existing = candidate;
          }
        }
      }
    }
  }
  for (auto& h : snapshot.histograms) {
    std::sort(h.exemplars.begin(), h.exemplars.end(),
              [](const HistogramValue::Exemplar& a, const HistogramValue::Exemplar& b) {
                return a.bucket < b.bucket;
              });
  }

  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard registry_lock(r.mutex);
  for (std::size_t g = 0; g < r.gauge_names.size(); ++g) {
    r.gauge_set[g].store(false, std::memory_order_relaxed);
    r.gauge_values[g].store(0.0, std::memory_order_relaxed);
  }
  for (const auto& shard : r.shards) {
    std::lock_guard shard_lock(shard->mutex);
    for (auto& cell : shard->counters) cell.store(0, std::memory_order_relaxed);
    for (auto& cells : shard->histograms) {
      if (cells == nullptr) continue;
      for (auto& bucket : cells->counts) bucket.store(0, std::memory_order_relaxed);
      cells->count.store(0, std::memory_order_relaxed);
      cells->sum.store(0.0, std::memory_order_relaxed);
      if (cells->exemplars != nullptr) {
        // window = 0 marks the cell empty; readers skip it.  A reset
        // racing an active writer loses to the writer's next store,
        // which is the semantics a reset wants anyway.
        for (std::size_t b = 0; b < cells->counts.size(); ++b)
          cells->exemplars[b].window.store(0, std::memory_order_relaxed);
      }
    }
  }
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string json = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    json += i == 0 ? "\n    " : ",\n    ";
    append_json_string(json, snapshot.counters[i].name);
    json += ": ";
    append_u64(json, snapshot.counters[i].value);
  }
  json += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    json += i == 0 ? "\n    " : ",\n    ";
    append_json_string(json, snapshot.gauges[i].name);
    json += ": ";
    append_double(json, snapshot.gauges[i].value);
  }
  json += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& h = snapshot.histograms[i];
    json += i == 0 ? "\n    " : ",\n    ";
    append_json_string(json, h.name);
    json += ": {\"count\": ";
    append_u64(json, h.count);
    json += ", \"sum\": ";
    append_double(json, h.sum);
    json += ", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b != 0) json += ", ";
      append_double(json, h.bounds[b]);
    }
    json += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) json += ", ";
      append_u64(json, h.counts[b]);
    }
    json += "]";
    if (!h.exemplars.empty()) {
      json += ", \"exemplars\": [";
      for (std::size_t e = 0; e < h.exemplars.size(); ++e) {
        const HistogramValue::Exemplar& exemplar = h.exemplars[e];
        if (e != 0) json += ", ";
        json += "{\"bucket\": ";
        append_u64(json, exemplar.bucket);
        json += ", \"value\": ";
        append_double(json, exemplar.value);
        json += ", \"trace_id\": ";
        append_json_string(json, trace_id_hex(exemplar.trace_id));
        json += ", \"window\": ";
        append_u64(json, exemplar.window);
        json += "}";
      }
      json += "]";
    }
    json += "}";
  }
  json += "\n  }\n}\n";
  return json;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    out += "# HELP " + name + " tsufail counter " + c.name + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    append_u64(out, c.value);
    out += "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# HELP " + name + " tsufail gauge " + g.name + "\n";
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    append_double(out, g.value);
    out += "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# HELP " + name + " tsufail histogram " + h.name + "\n";
    out += "# TYPE " + name + " histogram\n";
    const auto append_exemplar = [&](std::size_t bucket) {
      const HistogramValue::Exemplar* exemplar = h.find_exemplar(bucket);
      if (exemplar == nullptr) return;
      out += " # {trace_id=\"" + trace_id_hex(exemplar->trace_id) + "\"} ";
      append_double(out, exemplar->value);
    };
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out += name + "_bucket{le=\"";
      append_double(out, h.bounds[b]);
      out += "\"} ";
      append_u64(out, h.cumulative(b));
      append_exemplar(b);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    append_exemplar(h.bounds.size());
    out += "\n" + name + "_sum ";
    append_double(out, h.sum);
    out += "\n" + name + "_count ";
    append_u64(out, h.count);
    out += "\n";
  }
  return out;
}

Result<PrometheusCheck> check_prometheus_text(std::string_view text) {
  PrometheusCheck check;
  // name -> declared type; histogram series must resolve through their
  // _bucket/_sum/_count suffixes.
  std::unordered_map<std::string, std::string> types;
  std::unordered_map<std::string, std::uint64_t> last_bucket;  ///< cumulative monotonicity
  std::size_t line_number = 0;
  std::size_t position = 0;
  while (position < text.size()) {
    std::size_t end = text.find('\n', position);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(position, end - position);
    position = end + 1;
    ++line_number;
    const auto fail = [&](const std::string& why) {
      return Error(ErrorKind::kValidation,
                   "prometheus line " + std::to_string(line_number) + ": " + why);
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::vector<std::string_view> parts = split(line, ' ');
      if (parts.size() >= 4 && parts[1] == "TYPE") {
        const std::string family(parts[2]);
        const std::string type(parts[3]);
        if (type != "counter" && type != "gauge" && type != "histogram")
          return fail("unknown TYPE '" + type + "'");
        if (types.contains(family)) return fail("duplicate TYPE for " + family);
        types[family] = type;
        ++check.families;
      }
      continue;
    }
    // Sample line: name[{labels}] value [# {exemplar-labels} exemplar-value]
    std::string_view sample = line;
    std::string_view exemplar_text;
    if (const std::size_t hash = line.find(" # "); hash != std::string_view::npos) {
      sample = line.substr(0, hash);
      exemplar_text = line.substr(hash + 3);
    }
    const std::size_t space = sample.rfind(' ');
    if (space == std::string_view::npos || space + 1 >= sample.size())
      return fail("sample line has no value");
    const std::string value_text(sample.substr(space + 1));
    auto value = parse_double(value_text);
    if (!value.ok()) return fail("unparseable value '" + value_text + "'");
    std::string series(sample.substr(0, space));
    std::string labels;
    if (const std::size_t brace = series.find('{'); brace != std::string::npos) {
      if (series.back() != '}') return fail("unterminated label set");
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series.resize(brace);
    }
    std::string family = series;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string_view sv(suffix);
      if (family.size() > sv.size() && family.ends_with(sv)) {
        const std::string candidate = family.substr(0, family.size() - sv.size());
        if (types.contains(candidate) && types[candidate] == "histogram") {
          family = candidate;
          break;
        }
      }
    }
    const auto type = types.find(family);
    if (type == types.end()) return fail("series '" + series + "' has no TYPE declaration");
    const bool is_bucket = type->second == "histogram" && series.ends_with("_bucket");
    if (is_bucket) {
      if (labels.find("le=\"") == std::string::npos)
        return fail("histogram bucket without le label");
      auto& previous = last_bucket[family];
      const auto count = static_cast<std::uint64_t>(value.value());
      if (count < previous) return fail("bucket counts for " + family + " not cumulative");
      previous = count;
    }
    if (!exemplar_text.empty()) {
      // OpenMetrics-style: `# {trace_id="<hex>"} <value>` — bucket
      // series only.
      if (!is_bucket) return fail("exemplar on non-bucket series '" + series + "'");
      if (exemplar_text.front() != '{') return fail("exemplar missing label set");
      const std::size_t close = exemplar_text.find('}');
      if (close == std::string_view::npos) return fail("unterminated exemplar label set");
      const std::string_view exemplar_labels = exemplar_text.substr(1, close - 1);
      const std::string_view exemplar_value =
          close + 2 <= exemplar_text.size() ? exemplar_text.substr(close + 2)
                                            : std::string_view{};
      if (!parse_double(std::string(exemplar_value)).ok())
        return fail("unparseable exemplar value '" + std::string(exemplar_value) + "'");
      for (std::string_view label : split(exemplar_labels, ',')) {
        if (label.empty()) continue;
        const std::size_t equals = label.find("=\"");
        if (equals == std::string_view::npos || label.back() != '"')
          return fail("malformed exemplar label '" + std::string(label) + "'");
        if (label.substr(0, equals) == "trace_id") {
          const std::string_view id = label.substr(equals + 2, label.size() - equals - 3);
          if (id.empty()) return fail("empty exemplar trace_id");
          for (char c : id) {
            if (!std::isxdigit(static_cast<unsigned char>(c)))
              return fail("exemplar trace_id '" + std::string(id) + "' is not hex");
          }
          check.exemplar_trace_ids.emplace_back(id);
        }
      }
      ++check.exemplars;
    }
    for (char c : family) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) return fail("invalid character in metric name '" + family + "'");
    }
    ++check.samples;
  }
  if (check.families == 0)
    return Error(ErrorKind::kValidation, "prometheus text has no TYPE declarations");
  std::sort(check.exemplar_trace_ids.begin(), check.exemplar_trace_ids.end());
  check.exemplar_trace_ids.erase(
      std::unique(check.exemplar_trace_ids.begin(), check.exemplar_trace_ids.end()),
      check.exemplar_trace_ids.end());
  return check;
}

Result<MetricsSnapshot> parse_prometheus_text(std::string_view text) {
  auto checked = check_prometheus_text(text);
  if (!checked.ok()) return checked.error();

  MetricsSnapshot snapshot;
  std::unordered_map<std::string, std::string> types;
  // Histogram families under (re)construction: exposition order gives
  // buckets ascending, so cumulative counts un-difference in one pass.
  std::unordered_map<std::string, std::size_t> histogram_index;
  std::unordered_map<std::string, std::uint64_t> histogram_cumulative;
  std::size_t position = 0;
  while (position < text.size()) {
    std::size_t end = text.find('\n', position);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(position, end - position);
    position = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::vector<std::string_view> parts = split(line, ' ');
      if (parts.size() >= 4 && parts[1] == "TYPE") types[std::string(parts[2])] = parts[3];
      continue;
    }
    std::string_view sample = line;
    std::string_view exemplar_text;
    if (const std::size_t hash = line.find(" # "); hash != std::string_view::npos) {
      sample = line.substr(0, hash);
      exemplar_text = line.substr(hash + 3);
    }
    const std::size_t space = sample.rfind(' ');
    const double value = parse_double(std::string(sample.substr(space + 1))).value();
    std::string series(sample.substr(0, space));
    std::string labels;
    if (const std::size_t brace = series.find('{'); brace != std::string::npos) {
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series.resize(brace);
    }

    const auto direct = types.find(series);
    if (direct != types.end() && direct->second == "counter") {
      snapshot.counters.push_back({series, static_cast<std::uint64_t>(value)});
      continue;
    }
    if (direct != types.end() && direct->second == "gauge") {
      snapshot.gauges.push_back({series, value});
      continue;
    }
    // Histogram series: resolve the family through the suffix.
    std::string family;
    std::string_view suffix;
    for (const char* candidate : {"_bucket", "_sum", "_count"}) {
      const std::string_view sv(candidate);
      if (series.size() > sv.size() && series.ends_with(sv)) {
        const std::string base = series.substr(0, series.size() - sv.size());
        if (const auto it = types.find(base); it != types.end() && it->second == "histogram") {
          family = base;
          suffix = sv;
          break;
        }
      }
    }
    if (family.empty())
      return Error(ErrorKind::kParse, "prometheus parse: unclassifiable series '" + series + "'");
    auto [slot, inserted] = histogram_index.try_emplace(family, snapshot.histograms.size());
    if (inserted) snapshot.histograms.push_back({});
    HistogramValue& h = snapshot.histograms[slot->second];
    h.name = family;
    if (suffix == "_sum") {
      h.sum = value;
    } else if (suffix == "_count") {
      h.count = static_cast<std::uint64_t>(value);
    } else {
      const std::size_t le = labels.find("le=\"");
      const std::size_t le_end = labels.find('"', le + 4);
      const std::string bound = labels.substr(le + 4, le_end - le - 4);
      auto& cumulative = histogram_cumulative[family];
      const auto total = static_cast<std::uint64_t>(value);
      h.counts.push_back(total - cumulative);
      cumulative = total;
      if (bound != "+Inf") {
        auto parsed_bound = parse_double(bound);
        if (!parsed_bound.ok())
          return Error(ErrorKind::kParse,
                       "prometheus parse: bad le bound '" + bound + "' for " + family);
        h.bounds.push_back(parsed_bound.value());
      }
      if (!exemplar_text.empty()) {
        HistogramValue::Exemplar exemplar;
        exemplar.bucket = h.counts.size() - 1;
        const std::size_t close = exemplar_text.find('}');
        exemplar.value = parse_double(std::string(exemplar_text.substr(close + 2))).value();
        const std::size_t id = exemplar_text.find("trace_id=\"");
        if (id != std::string_view::npos) {
          const std::size_t id_end = exemplar_text.find('"', id + 10);
          exemplar.trace_id = std::strtoull(
              std::string(exemplar_text.substr(id + 10, id_end - id - 10)).c_str(), nullptr, 16);
        }
        h.exemplars.push_back(exemplar);
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

}  // namespace tsufail::obs
