#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/strings.h"

namespace tsufail::obs {
namespace {

/// Relaxed add on an atomic double (shards are single-writer, so the CAS
/// loop converges immediately; it only guards against torn reads from a
/// concurrent snapshot).
void atomic_add(std::atomic<double>& cell, double delta) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(seen, seen + delta, std::memory_order_relaxed)) {
  }
}

struct HistogramSpec {
  std::string name;
  std::vector<double> bounds;
};

/// Per-thread cells for one histogram: bounds.size() + 1 buckets, plus
/// the running count/sum.  `bounds` points into the registry's
/// stable-address spec, so the hot path never takes the registry lock.
struct HistogramCells {
  explicit HistogramCells(const std::vector<double>* spec_bounds)
      : bounds(spec_bounds), counts(spec_bounds->size() + 1) {}
  const std::vector<double>* bounds;
  std::deque<std::atomic<std::uint64_t>> counts;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

/// One thread's slice of every counter/histogram.  Single writer (the
/// owning thread); the mutex serializes growth against snapshot/reset
/// readers — plain adds go lock-free on the atomics.
struct Shard {
  std::mutex mutex;
  std::deque<std::atomic<std::uint64_t>> counters;
  std::deque<std::unique_ptr<HistogramCells>> histograms;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::vector<std::string> gauge_names;
  std::unordered_map<std::string, std::uint32_t> gauge_ids;
  // Gauges are global (last write wins), not sharded: merging per-thread
  // last-writes would need timestamps for no benefit.
  std::deque<std::atomic<double>> gauge_values;
  std::deque<std::atomic<bool>> gauge_set;
  // unique_ptr: HistogramCells caches a pointer to the bounds vector, so
  // spec addresses must survive later registrations.
  std::vector<std::unique_ptr<HistogramSpec>> histogram_specs;
  std::unordered_map<std::string, std::uint32_t> histogram_ids;
  std::vector<std::shared_ptr<Shard>> shards;
};

// Leaked on purpose: metric handles may fire from detached threads
// during shutdown, and a destructed registry would turn them into UB.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

Shard& local_shard() {
  thread_local Shard* shard = [] {
    auto owned = std::make_shared<Shard>();
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    r.shards.push_back(owned);
    return owned.get();
  }();
  return *shard;
}

/// Grows `cells` under the shard lock until `id` is addressable.
void ensure_counter(Shard& shard, std::uint32_t id) {
  std::lock_guard lock(shard.mutex);
  while (shard.counters.size() <= id) shard.counters.emplace_back(0);
}

void ensure_histogram(Shard& shard, std::uint32_t id) {
  const std::vector<double>* bounds = nullptr;
  {
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    bounds = &r.histogram_specs[id]->bounds;
  }
  std::lock_guard lock(shard.mutex);
  while (shard.histograms.size() <= id) shard.histograms.push_back(nullptr);
  if (shard.histograms[id] == nullptr)
    shard.histograms[id] = std::make_unique<HistogramCells>(bounds);
}

void append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  out += buffer;
}

/// tsufail metric names are dot-separated; Prometheus wants [a-zA-Z0-9_:].
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

namespace detail {

void counter_add(std::uint32_t id, std::uint64_t n) noexcept {
  Shard& shard = local_shard();
  if (shard.counters.size() <= id) ensure_counter(shard, id);
  shard.counters[id].fetch_add(n, std::memory_order_relaxed);
}

void gauge_set(std::uint32_t id, double value) noexcept {
  Registry& r = registry();
  // Gauge ids are handed out only after the deques grew (under the
  // registry lock), so this indexing never races with growth.
  r.gauge_values[id].store(value, std::memory_order_relaxed);
  r.gauge_set[id].store(true, std::memory_order_relaxed);
}

void histogram_observe(std::uint32_t id, double value) noexcept {
  Shard& shard = local_shard();
  if (shard.histograms.size() <= id || shard.histograms[id] == nullptr)
    ensure_histogram(shard, id);
  HistogramCells& cells = *shard.histograms[id];
  const std::vector<double>& bounds = *cells.bounds;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  cells.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cells.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(cells.sum, value);
}

}  // namespace detail

Counter counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto [it, inserted] = r.counter_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.counter_names.size()));
  if (inserted) r.counter_names.emplace_back(name);
  return Counter(it->second);
}

Gauge gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto [it, inserted] = r.gauge_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.gauge_names.size()));
  if (inserted) {
    r.gauge_names.emplace_back(name);
    r.gauge_values.emplace_back(0.0);
    r.gauge_set.emplace_back(false);
  }
  return Gauge(it->second);
}

Histogram histogram(std::string_view name, std::span<const double> bounds) {
  TSUFAIL_REQUIRE(!bounds.empty(), "obs::histogram: empty bucket bounds");
  TSUFAIL_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()) &&
                      std::adjacent_find(bounds.begin(), bounds.end()) == bounds.end(),
                  "obs::histogram: bounds must be strictly increasing");
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto [it, inserted] = r.histogram_ids.try_emplace(
      std::string(name), static_cast<std::uint32_t>(r.histogram_specs.size()));
  if (inserted) {
    r.histogram_specs.push_back(std::make_unique<HistogramSpec>(
        HistogramSpec{std::string(name), {bounds.begin(), bounds.end()}}));
  }
  return Histogram(it->second);
}

std::span<const double> time_buckets_seconds() noexcept {
  static constexpr std::array<double, 9> kBuckets = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                                     0.1,  1.0,  10.0, 100.0};
  return kBuckets;
}

std::uint64_t HistogramValue::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < counts.size(); ++b) total += counts[b];
  return total;
}

double histogram_quantile(const HistogramValue& histogram, double q) {
  if (histogram.count == 0 || histogram.bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
    const std::uint64_t next = cumulative + histogram.counts[b];
    if (static_cast<double>(next) >= rank && histogram.counts[b] > 0) {
      if (b >= histogram.bounds.size()) return histogram.bounds.back();  // +Inf bucket
      const double lower = b == 0 ? 0.0 : histogram.bounds[b - 1];
      const double upper = histogram.bounds[b];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(histogram.counts[b]);
      return lower + (upper - lower) * within;
    }
    cumulative = next;
  }
  return histogram.bounds.back();
}

const CounterValue* MetricsSnapshot::find_counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeValue* MetricsSnapshot::find_gauge(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::find_histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot collect_metrics() {
  Registry& r = registry();
  std::lock_guard registry_lock(r.mutex);

  MetricsSnapshot snapshot;
  snapshot.counters.reserve(r.counter_names.size());
  for (const auto& name : r.counter_names) snapshot.counters.push_back({name, 0});
  for (std::size_t g = 0; g < r.gauge_names.size(); ++g) {
    if (r.gauge_set[g].load(std::memory_order_relaxed))
      snapshot.gauges.push_back({r.gauge_names[g], r.gauge_values[g].load(std::memory_order_relaxed)});
  }
  snapshot.histograms.reserve(r.histogram_specs.size());
  for (const auto& spec : r.histogram_specs) {
    HistogramValue value;
    value.name = spec->name;
    value.bounds = spec->bounds;
    value.counts.assign(spec->bounds.size() + 1, 0);
    snapshot.histograms.push_back(std::move(value));
  }

  for (const auto& shard : r.shards) {
    std::lock_guard shard_lock(shard->mutex);
    for (std::size_t c = 0; c < shard->counters.size() && c < snapshot.counters.size(); ++c)
      snapshot.counters[c].value += shard->counters[c].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < shard->histograms.size() && h < snapshot.histograms.size(); ++h) {
      if (shard->histograms[h] == nullptr) continue;
      const HistogramCells& cells = *shard->histograms[h];
      HistogramValue& merged = snapshot.histograms[h];
      for (std::size_t b = 0; b < merged.counts.size() && b < cells.counts.size(); ++b)
        merged.counts[b] += cells.counts[b].load(std::memory_order_relaxed);
      merged.count += cells.count.load(std::memory_order_relaxed);
      merged.sum += cells.sum.load(std::memory_order_relaxed);
    }
  }

  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard registry_lock(r.mutex);
  for (std::size_t g = 0; g < r.gauge_names.size(); ++g) {
    r.gauge_set[g].store(false, std::memory_order_relaxed);
    r.gauge_values[g].store(0.0, std::memory_order_relaxed);
  }
  for (const auto& shard : r.shards) {
    std::lock_guard shard_lock(shard->mutex);
    for (auto& cell : shard->counters) cell.store(0, std::memory_order_relaxed);
    for (auto& cells : shard->histograms) {
      if (cells == nullptr) continue;
      for (auto& bucket : cells->counts) bucket.store(0, std::memory_order_relaxed);
      cells->count.store(0, std::memory_order_relaxed);
      cells->sum.store(0.0, std::memory_order_relaxed);
    }
  }
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string json = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    json += i == 0 ? "\n    " : ",\n    ";
    append_json_string(json, snapshot.counters[i].name);
    json += ": ";
    append_u64(json, snapshot.counters[i].value);
  }
  json += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    json += i == 0 ? "\n    " : ",\n    ";
    append_json_string(json, snapshot.gauges[i].name);
    json += ": ";
    append_double(json, snapshot.gauges[i].value);
  }
  json += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& h = snapshot.histograms[i];
    json += i == 0 ? "\n    " : ",\n    ";
    append_json_string(json, h.name);
    json += ": {\"count\": ";
    append_u64(json, h.count);
    json += ", \"sum\": ";
    append_double(json, h.sum);
    json += ", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b != 0) json += ", ";
      append_double(json, h.bounds[b]);
    }
    json += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) json += ", ";
      append_u64(json, h.counts[b]);
    }
    json += "]}";
  }
  json += "\n  }\n}\n";
  return json;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    out += "# HELP " + name + " tsufail counter " + c.name + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    append_u64(out, c.value);
    out += "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# HELP " + name + " tsufail gauge " + g.name + "\n";
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    append_double(out, g.value);
    out += "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# HELP " + name + " tsufail histogram " + h.name + "\n";
    out += "# TYPE " + name + " histogram\n";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out += name + "_bucket{le=\"";
      append_double(out, h.bounds[b]);
      out += "\"} ";
      append_u64(out, h.cumulative(b));
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += "\n" + name + "_sum ";
    append_double(out, h.sum);
    out += "\n" + name + "_count ";
    append_u64(out, h.count);
    out += "\n";
  }
  return out;
}

Result<PrometheusCheck> check_prometheus_text(std::string_view text) {
  PrometheusCheck check;
  // name -> declared type; histogram series must resolve through their
  // _bucket/_sum/_count suffixes.
  std::unordered_map<std::string, std::string> types;
  std::unordered_map<std::string, std::uint64_t> last_bucket;  ///< cumulative monotonicity
  std::size_t line_number = 0;
  std::size_t position = 0;
  while (position < text.size()) {
    std::size_t end = text.find('\n', position);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(position, end - position);
    position = end + 1;
    ++line_number;
    const auto fail = [&](const std::string& why) {
      return Error(ErrorKind::kValidation,
                   "prometheus line " + std::to_string(line_number) + ": " + why);
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::vector<std::string_view> parts = split(line, ' ');
      if (parts.size() >= 4 && parts[1] == "TYPE") {
        const std::string family(parts[2]);
        const std::string type(parts[3]);
        if (type != "counter" && type != "gauge" && type != "histogram")
          return fail("unknown TYPE '" + type + "'");
        if (types.contains(family)) return fail("duplicate TYPE for " + family);
        types[family] = type;
        ++check.families;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space + 1 >= line.size())
      return fail("sample line has no value");
    const std::string value_text(line.substr(space + 1));
    auto value = parse_double(value_text);
    if (!value.ok()) return fail("unparseable value '" + value_text + "'");
    std::string series(line.substr(0, space));
    std::string labels;
    if (const std::size_t brace = series.find('{'); brace != std::string::npos) {
      if (series.back() != '}') return fail("unterminated label set");
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series.resize(brace);
    }
    std::string family = series;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string_view sv(suffix);
      if (family.size() > sv.size() && family.ends_with(sv)) {
        const std::string candidate = family.substr(0, family.size() - sv.size());
        if (types.contains(candidate) && types[candidate] == "histogram") {
          family = candidate;
          break;
        }
      }
    }
    const auto type = types.find(family);
    if (type == types.end()) return fail("series '" + series + "' has no TYPE declaration");
    if (type->second == "histogram" && series.ends_with("_bucket")) {
      if (labels.find("le=\"") == std::string::npos)
        return fail("histogram bucket without le label");
      auto& previous = last_bucket[family];
      const auto count = static_cast<std::uint64_t>(value.value());
      if (count < previous) return fail("bucket counts for " + family + " not cumulative");
      previous = count;
    }
    for (char c : family) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) return fail("invalid character in metric name '" + family + "'");
    }
    ++check.samples;
  }
  if (check.families == 0)
    return Error(ErrorKind::kValidation, "prometheus text has no TYPE declarations");
  return check;
}

}  // namespace tsufail::obs
