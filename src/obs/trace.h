// Trace collection and export: per-thread span ring buffers, merged
// snapshots, Chrome-trace/Perfetto JSON, and a self-time profile.
//
// Recording (obs.h's OBS_SPAN) pushes completed spans into a bounded
// per-thread ring; when the ring is full the oldest span is dropped and
// counted, so a long traced run degrades to "most recent window" instead
// of growing without bound.  collect_trace() merges every thread's ring
// into one immutable snapshot; export and aggregation run on snapshots,
// never on live buffers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace tsufail::obs {

/// One completed span.  `name` points at a string literal or interned
/// string (process lifetime), never at freed storage.
struct Span {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t trace_id = 0;  ///< process-unique id; links exemplars to spans

  std::uint64_t duration_ns() const noexcept { return end_ns - start_ns; }
};

/// Canonical rendering of a trace id: 16 lowercase hex digits.  The same
/// form appears in Chrome-trace `args` and Prometheus exemplars, so the
/// two exports can be joined on it.
std::string trace_id_hex(std::uint64_t trace_id);

/// One thread's recorded spans, oldest first (completion order).
struct ThreadTrace {
  std::uint32_t tid = 0;          ///< sequential id, assigned at first span
  std::vector<Span> spans;
  std::uint64_t dropped = 0;      ///< spans evicted by ring overflow
};

/// Immutable merged view of every thread's ring buffer.
struct TraceSnapshot {
  std::vector<ThreadTrace> threads;  ///< ascending by tid

  std::size_t span_count() const noexcept;
  std::uint64_t dropped_total() const noexcept;
  /// Earliest start across all spans (the export epoch); 0 when empty.
  std::uint64_t epoch_ns() const noexcept;
};

/// Capacity (in spans) of each newly created per-thread ring buffer.
/// Existing buffers keep their size.  Default: 1 << 17 spans per thread.
void set_trace_capacity(std::size_t spans);

/// Merges every thread's ring into a snapshot (live threads included;
/// each buffer is locked briefly).
TraceSnapshot collect_trace();

/// Clears every ring buffer and drop counter.  Buffers stay registered,
/// so recording threads are unaffected beyond losing history.
void reset_trace();

/// Chrome-trace ("Trace Event Format") JSON: paired "B"/"E" events per
/// span with microsecond `ts` relative to the snapshot epoch, globally
/// non-decreasing in `ts`, properly nested per `tid`.  Loads in Perfetto
/// (ui.perfetto.dev) and chrome://tracing.
std::string chrome_trace_json(const TraceSnapshot& snapshot);

/// Per-name aggregate over a snapshot.  Self time is wall time not
/// covered by same-thread child spans — the quantity "where does the
/// pipeline actually spend its time" wants.
struct ProfileEntry {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< sum of span durations
  std::uint64_t self_ns = 0;   ///< total minus same-thread child time
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Aggregates a snapshot by span name, sorted by self time descending
/// (ties broken by name, so output is deterministic).
std::vector<ProfileEntry> profile(const TraceSnapshot& snapshot);

/// Renders a profile as the CLI's summary table (top `top` rows by self
/// time, header included).
std::string profile_table(const std::vector<ProfileEntry>& entries, std::size_t top = 15);

/// Structural validation of a Chrome-trace export: the string is valid
/// JSON, `traceEvents` exists, every event has name/ph/ts/pid/tid, `ts`
/// is globally non-decreasing, and per tid every "B" pairs with a
/// same-name "E" (LIFO).  Used by tests and the `obs_check` CI tool.
struct ChromeTraceCheck {
  std::size_t events = 0;       ///< total trace events
  std::size_t begin_events = 0; ///< "B" count (== "E" count when valid)
  std::size_t threads = 0;      ///< distinct tids
  /// Completed-span count per name, ascending by name.
  std::vector<std::pair<std::string, std::size_t>> spans_by_name;
  /// Distinct `args.trace_id` values seen on "B" events, sorted ascending.
  std::vector<std::string> trace_ids;

  bool has_trace_id(std::string_view id) const noexcept;
};
Result<ChromeTraceCheck> check_chrome_trace(std::string_view json);

}  // namespace tsufail::obs
