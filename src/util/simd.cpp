#include "util/simd.h"

#include <atomic>
#include <cstdlib>

#include "util/simd_internal.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace tsufail::simd {
namespace {

// --- Scalar byte kernels ------------------------------------------------
//
// Plain byte-at-a-time loops, deliberately not routed through memchr: the
// scalar level is the honest portable baseline the equivalence suite and
// the bench speedup ratios are measured against.

std::size_t scalar_find_byte(const char* p, std::size_t n, char c) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == c) return i;
  }
  return n;
}

std::size_t scalar_find_any_of4(const char* p, std::size_t n, char c0, char c1, char c2,
                                char c3) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = p[i];
    if (c == c0 || c == c1 || c == c2 || c == c3) return i;
  }
  return n;
}

std::size_t scalar_count_byte(const char* p, std::size_t n, char c) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += p[i] == c;
  return count;
}

constexpr ByteKernels kScalarByteKernels{scalar_find_byte, scalar_find_any_of4,
                                         scalar_count_byte};

// --- SSE2 byte kernels --------------------------------------------------
//
// 16-byte blocks: compare-equal per lane, movemask to a 16-bit mask, then
// count-trailing-zeros for the first hit.  Tails shorter than one block
// fall back to the scalar loop (never reads past the buffer).

#if defined(__SSE2__)

std::size_t sse2_find_byte(const char* p, std::size_t n, char c) noexcept {
  const __m128i needle = _mm_set1_epi8(c);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(block, needle));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
  }
  return i + scalar_find_byte(p + i, n - i, c);
}

std::size_t sse2_find_any_of4(const char* p, std::size_t n, char c0, char c1, char c2,
                              char c3) noexcept {
  const __m128i n0 = _mm_set1_epi8(c0);
  const __m128i n1 = _mm_set1_epi8(c1);
  const __m128i n2 = _mm_set1_epi8(c2);
  const __m128i n3 = _mm_set1_epi8(c3);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i hit = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(block, n0), _mm_cmpeq_epi8(block, n1)),
        _mm_or_si128(_mm_cmpeq_epi8(block, n2), _mm_cmpeq_epi8(block, n3)));
    const int mask = _mm_movemask_epi8(hit);
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
  }
  return i + scalar_find_any_of4(p + i, n - i, c0, c1, c2, c3);
}

std::size_t sse2_count_byte(const char* p, std::size_t n, char c) noexcept {
  const __m128i needle = _mm_set1_epi8(c);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(block, needle));
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  return count + scalar_count_byte(p + i, n - i, c);
}

constexpr ByteKernels kSse2ByteKernels{sse2_find_byte, sse2_find_any_of4, sse2_count_byte};

#endif  // __SSE2__

// --- Level selection ----------------------------------------------------

Level hardware_level() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports runs CPUID once and caches inside libgcc.
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level compiled_level() noexcept {
  if (detail::avx2_byte_kernels() != nullptr) return Level::kAvx2;
#if defined(__SSE2__)
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

Level clamp_to_supported(Level level) noexcept {
  const Level cap = supported_level();
  return static_cast<int>(level) > static_cast<int>(cap) ? cap : level;
}

/// -1 = not yet selected; otherwise the int value of the active Level.
std::atomic<int> g_active_level{-1};

Level select_initial_level() noexcept {
  Level level = supported_level();
  if (const char* env = std::getenv("TSUFAIL_SIMD")) {
    Level requested = level;
    if (parse_level(env, requested)) level = clamp_to_supported(requested);
    // An unrecognized value keeps the detected level: misconfiguration
    // must not silently drop a production box to scalar.
  }
  return level;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

bool parse_level(std::string_view name, Level& out) noexcept {
  if (name == "scalar") {
    out = Level::kScalar;
  } else if (name == "sse2") {
    out = Level::kSse2;
  } else if (name == "avx2") {
    out = Level::kAvx2;
  } else {
    return false;
  }
  return true;
}

Level supported_level() noexcept {
  static const Level kSupported = [] {
    const Level hw = hardware_level();
    const Level compiled = compiled_level();
    return static_cast<int>(hw) < static_cast<int>(compiled) ? hw : compiled;
  }();
  return kSupported;
}

Level active_level() noexcept {
  int level = g_active_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(select_initial_level());
    g_active_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<Level>(level);
}

Level set_active_level(Level level) noexcept {
  const Level applied = clamp_to_supported(level);
  g_active_level.store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

std::vector<Level> available_levels() {
  std::vector<Level> levels{Level::kScalar};
  if (supported_level() >= Level::kSse2) levels.push_back(Level::kSse2);
  if (supported_level() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

const ByteKernels& byte_kernels(Level level) noexcept {
  switch (clamp_to_supported(level)) {
    case Level::kAvx2:
      if (const ByteKernels* avx2 = detail::avx2_byte_kernels()) return *avx2;
      [[fallthrough]];
    case Level::kSse2:
#if defined(__SSE2__)
      return kSse2ByteKernels;
#else
      [[fallthrough]];
#endif
    case Level::kScalar:
      break;
  }
  return kScalarByteKernels;
}

std::size_t find_byte(std::string_view text, char c, std::size_t pos) noexcept {
  if (pos >= text.size()) return std::string_view::npos;
  const std::size_t offset =
      byte_kernels(active_level()).find_byte(text.data() + pos, text.size() - pos, c);
  return offset == text.size() - pos ? std::string_view::npos : pos + offset;
}

std::size_t find_any_of4(std::string_view text, char c0, char c1, char c2, char c3,
                         std::size_t pos) noexcept {
  if (pos >= text.size()) return std::string_view::npos;
  const std::size_t offset = byte_kernels(active_level())
                                 .find_any_of4(text.data() + pos, text.size() - pos, c0, c1, c2, c3);
  return offset == text.size() - pos ? std::string_view::npos : pos + offset;
}

std::size_t count_byte(std::string_view text, char c) noexcept {
  if (text.empty()) return 0;
  return byte_kernels(active_level()).count_byte(text.data(), text.size(), c);
}

}  // namespace tsufail::simd
