// Internal wiring between the dispatch core (simd.cpp) and the
// separately-compiled AVX2 translation unit (simd_avx2.cpp, built with
// -mavx2 when the compiler supports it).  Not installed; include only
// from those two files.
#pragma once

#include "util/simd.h"

namespace tsufail::simd::detail {

/// The AVX2 byte-kernel table, or nullptr when this binary was compiled
/// without AVX2 support (non-x86 target, or a compiler without -mavx2).
const ByteKernels* avx2_byte_kernels() noexcept;

}  // namespace tsufail::simd::detail
