// Small string utilities shared by the CSV layer and log parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace tsufail {

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// Splits on `delimiter`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string join(const std::vector<std::string>& parts, std::string_view separator);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True iff `text` equals `other` ignoring ASCII case.
bool iequals(std::string_view text, std::string_view other) noexcept;

/// Strict full-string integer parse (optional sign, no whitespace).
Result<long long> parse_int(std::string_view text);

/// Strict full-string floating-point parse.
Result<double> parse_double(std::string_view text);

}  // namespace tsufail
