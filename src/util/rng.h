// Deterministic pseudo-random generation for the fleet simulator.
//
// We ship our own generator instead of std::mt19937 because reproducibility
// across standard libraries matters: calibrated synthetic logs and all
// paper-reproduction benches must be bit-identical on every platform.
// The engine is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace tsufail {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
/// Also a fine stateless hash for deriving per-stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless seed fork: the seed for child stream `stream` of `base`.
/// This is THE seed-derivation contract for every stochastic stage in the
/// library: sim::replicate_seed(base, r) is fork_seed(base, r), and
/// ops-layer stages fork again from the replicate seed with a fixed
/// per-stage stream constant.  Golden-ratio stride over the stream index,
/// then a splitmix64 finalizer — stable across releases (tests pin it),
/// uncorrelated between adjacent streams, never equal to `base` itself.
constexpr std::uint64_t fork_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  std::uint64_t state = base ^ ((stream + 1) * 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

/// xoshiro256**: 256-bit state, period 2^256 - 1, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x1234ABCDULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// The raw 256-bit engine state, word order as xoshiro256** defines it.
  /// Exposed for the stats::simd multi-lane engine, which loads four
  /// forked streams into vector lanes, and for tests that pin state
  /// evolution; not useful for drawing variates directly.
  std::array<std::uint64_t, 4> state_words() const noexcept { return state_; }

  /// Derives an independent child generator; `stream` selects the stream.
  /// Used to give each failure category its own reproducible stream, so
  /// adding a category never perturbs the draws of the others.
  Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream * 0x9E3779B97F4A7C15ULL) ^ state_[3];
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  // --- Variates -------------------------------------------------------

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0. Lemire's method.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via the polar (Marsaglia) method.
  double normal() noexcept;
  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept { return mean + sigma * normal(); }

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) noexcept;

  /// Weibull with shape k > 0 and scale lambda > 0.
  double weibull(double shape, double scale) noexcept;

  /// Lognormal: exp(Normal(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log) noexcept;

  /// Gamma with shape k > 0 and scale theta > 0 (Marsaglia-Tsang).
  double gamma(double shape, double scale) noexcept;

  /// Poisson with the given mean >= 0 (inversion for small, PTRS-free
  /// normal approximation with rejection fallback for large means).
  std::uint64_t poisson(double mean) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples indices 0..n-1 with the given relative weights in O(1) per draw
/// (Walker/Vose alias method).  Weights need not be normalized.
class DiscreteSampler {
 public:
  /// Builds the alias table. Errors: empty weights, a negative weight, or
  /// all-zero total weight.
  static Result<DiscreteSampler> create(std::span<const double> weights);

  std::size_t size() const noexcept { return prob_.size(); }

  /// Draws one index according to the weights.
  std::size_t sample(Rng& rng) const noexcept;

  /// Normalized probability of index i (for tests). Precondition: i < size().
  double probability(std::size_t i) const noexcept { return normalized_[i]; }

 private:
  DiscreteSampler() = default;
  std::vector<double> prob_;         // alias acceptance thresholds
  std::vector<std::size_t> alias_;   // alias targets
  std::vector<double> normalized_;   // normalized input weights
};

}  // namespace tsufail
