#include "util/error.h"

namespace tsufail {

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kValidation: return "validation";
    case ErrorKind::kNotFound: return "not-found";
    case ErrorKind::kIo: return "io";
    case ErrorKind::kDomain: return "domain";
    case ErrorKind::kInternal: return "internal";
  }
  return "unknown";
}

namespace detail {

void require_failed(const char* expr, const char* file, int line, const std::string& message) {
  throw std::logic_error(std::string("precondition failed: ") + message + " [" + expr + " at " +
                         file + ":" + std::to_string(line) + "]");
}

}  // namespace detail
}  // namespace tsufail
