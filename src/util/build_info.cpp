#include "util/build_info.h"

#include "util/simd.h"

#ifndef TSUFAIL_VERSION
#define TSUFAIL_VERSION "unknown"
#endif
#ifndef TSUFAIL_BUILD_TYPE
#define TSUFAIL_BUILD_TYPE "unknown"
#endif
#ifndef TSUFAIL_BUILD_FLAGS
#define TSUFAIL_BUILD_FLAGS "unknown"
#endif

namespace tsufail::util {

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{
      "tsufail " TSUFAIL_VERSION,
      __VERSION__,
      TSUFAIL_BUILD_TYPE,
      TSUFAIL_BUILD_FLAGS,
      simd::level_name(simd::supported_level()),
  };
  return info;
}

std::string build_info_text() {
  const BuildInfo& info = build_info();
  std::string out = info.project + "\n";
  out += "compiler:   " + info.compiler + "\n";
  out += "build type: " + info.build_type + "\n";
  out += "flags:      " + info.flags + "\n";
  out += "simd:       " + std::string(simd::level_name(simd::active_level())) +
         " dispatch (max supported: " + info.simd_supported + ")\n";
  return out;
}

}  // namespace tsufail::util
