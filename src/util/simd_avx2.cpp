// AVX2 byte-scanning kernels.  This translation unit is compiled with
// -mavx2 (see util/CMakeLists.txt); nothing here may be called unless
// runtime dispatch selected Level::kAvx2, which requires CPUID support.
// When the compiler cannot target AVX2 the hook returns nullptr and the
// dispatch core clamps the supported level down.
#include "util/simd_internal.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tsufail::simd::detail {

#if defined(__AVX2__)

namespace {

std::size_t tail_find_byte(const char* p, std::size_t n, char c) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] == c) return i;
  }
  return n;
}

std::size_t avx2_find_byte(const char* p, std::size_t n, char c) noexcept {
  const __m256i needle = _mm256_set1_epi8(c);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i block = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(block, needle)));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  return i + tail_find_byte(p + i, n - i, c);
}

std::size_t avx2_find_any_of4(const char* p, std::size_t n, char c0, char c1, char c2,
                              char c3) noexcept {
  const __m256i n0 = _mm256_set1_epi8(c0);
  const __m256i n1 = _mm256_set1_epi8(c1);
  const __m256i n2 = _mm256_set1_epi8(c2);
  const __m256i n3 = _mm256_set1_epi8(c3);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i block = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i hit = _mm256_or_si256(
        _mm256_or_si256(_mm256_cmpeq_epi8(block, n0), _mm256_cmpeq_epi8(block, n1)),
        _mm256_or_si256(_mm256_cmpeq_epi8(block, n2), _mm256_cmpeq_epi8(block, n3)));
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(hit));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  for (std::size_t j = i; j < n; ++j) {
    const char c = p[j];
    if (c == c0 || c == c1 || c == c2 || c == c3) return j;
  }
  return n;
}

std::size_t avx2_count_byte(const char* p, std::size_t n, char c) noexcept {
  const __m256i needle = _mm256_set1_epi8(c);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i block = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(block, needle)));
    count += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) count += p[i] == c;
  return count;
}

constexpr ByteKernels kAvx2ByteKernels{avx2_find_byte, avx2_find_any_of4, avx2_count_byte};

}  // namespace

const ByteKernels* avx2_byte_kernels() noexcept { return &kAvx2ByteKernels; }

#else  // !__AVX2__

const ByteKernels* avx2_byte_kernels() noexcept { return nullptr; }

#endif

}  // namespace tsufail::simd::detail
