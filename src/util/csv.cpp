#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/simd.h"
#include "util/strings.h"

namespace tsufail {
namespace {

/// Incremental RFC-4180 tokenizer over the whole document.
///
/// Structural characters (delimiter, CR, LF, quote) are located with the
/// SIMD block scanner (util/simd.h: 16/32 bytes per probe), and the
/// ordinary bytes between them are bulk-appended — the state machine only
/// steps once per structural character instead of once per byte.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) : text_(text) {}

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  std::size_t line() const noexcept { return line_; }

  /// Parses one record (one logical row, possibly spanning physical lines
  /// inside quotes). Returns an empty optional-like flag via `record.fields`
  /// being empty AND at_end() for trailing blank content.
  Result<CsvRecord> next_record() {
    CsvRecord record;
    record.line_number = line_;
    std::string field;
    bool in_quotes = false;
    bool field_was_quoted = false;

    while (true) {
      if (at_end()) {
        if (in_quotes)
          return Error(ErrorKind::kParse,
                       "unterminated quoted field starting near line " + std::to_string(record.line_number));
        record.fields.push_back(std::move(field));
        return record;
      }
      if (in_quotes) {
        // Inside quotes only '"' and '\n' matter (the latter for line
        // accounting); everything before the next one is field content.
        const std::size_t hit = simd::find_any_of4(text_, '"', '\n', '"', '\n', pos_);
        if (hit == std::string_view::npos) {
          pos_ = text_.size();
          return Error(ErrorKind::kParse,
                       "unterminated quoted field starting near line " + std::to_string(record.line_number));
        }
        field.append(text_, pos_, hit - pos_);
        pos_ = hit + 1;
        if (text_[hit] == '"') {
          if (!at_end() && text_[pos_] == '"') {  // escaped quote
            field += '"';
            ++pos_;
          } else {
            in_quotes = false;
          }
        } else {  // '\n' inside a quoted field stays in the value
          ++line_;
          field += '\n';
        }
        continue;
      }
      const std::size_t hit = simd::find_any_of4(text_, ',', '\r', '\n', '"', pos_);
      if (hit == std::string_view::npos) {
        field.append(text_, pos_, text_.size() - pos_);
        pos_ = text_.size();
        continue;  // the at_end() branch closes out the record
      }
      field.append(text_, pos_, hit - pos_);
      pos_ = hit + 1;
      switch (text_[hit]) {
        case ',':
          record.fields.push_back(std::move(field));
          field.clear();
          field_was_quoted = false;
          break;
        case '\r':
          if (!at_end() && text_[pos_] == '\n') ++pos_;
          [[fallthrough]];
        case '\n':
          ++line_;
          record.fields.push_back(std::move(field));
          return record;
        case '"':
          if (!field.empty() || field_was_quoted)
            return Error(ErrorKind::kParse, "stray quote in field on line " + std::to_string(line_));
          in_quotes = true;
          field_was_quoted = true;
          break;
      }
    }
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

bool is_blank_record(const CsvRecord& record) {
  return record.fields.size() == 1 && trim(record.fields[0]).empty();
}

}  // namespace

Result<CsvDocument> CsvDocument::parse(std::string_view text) {
  // Spreadsheet exports routinely prepend a UTF-8 byte-order mark; left
  // in place it would glue itself onto the first header name and break
  // column lookup.
  constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";
  if (text.substr(0, kUtf8Bom.size()) == kUtf8Bom) text.remove_prefix(kUtf8Bom.size());
  Tokenizer tokenizer(text);
  CsvDocument doc;
  bool have_header = false;
  while (!tokenizer.at_end()) {
    auto record = tokenizer.next_record();
    if (!record.ok()) return record.error();
    if (is_blank_record(record.value())) continue;  // skip blank lines anywhere
    if (!have_header) {
      doc.header_ = std::move(record.value().fields);
      have_header = true;
    } else {
      doc.records_.push_back(std::move(record.value()));
    }
  }
  if (!have_header)
    return Error(ErrorKind::kParse, "CSV document is empty (no header row)");
  return doc;
}

Result<CsvDocument> CsvDocument::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Error(ErrorKind::kIo, "cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad())
    return Error(ErrorKind::kIo, "read error on file: " + path);
  auto doc = parse(buffer.str());
  if (!doc.ok()) return doc.error().with_context(path);
  return doc;
}

Result<std::size_t> CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (iequals(trim(header_[i]), trim(name))) return i;
  }
  return Error(ErrorKind::kNotFound, "no such column: '" + std::string(name) + "'");
}

Result<std::string> CsvDocument::field(const CsvRecord& record, std::string_view column_name) const {
  auto index = column(column_name);
  if (!index.ok()) return index.error();
  if (index.value() >= record.fields.size())
    return Error(ErrorKind::kValidation,
                 "row on line " + std::to_string(record.line_number) + " has " +
                     std::to_string(record.fields.size()) + " fields; column '" +
                     std::string(column_name) + "' is index " + std::to_string(index.value()));
  return record.fields[index.value()];
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

Result<void> write_csv_file(const std::string& path, const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    return Error(ErrorKind::kIo, "cannot open file for writing: " + path);
  CsvWriter writer(out);
  writer.write_row(header);
  for (const auto& row : rows) writer.write_row(row);
  out.flush();
  if (!out)
    return Error(ErrorKind::kIo, "write error on file: " + path);
  return {};
}

}  // namespace tsufail
