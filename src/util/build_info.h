// Build provenance: which compiler, build type, and flags produced this
// binary.
//
// One shared definition feeds both `tsufail --version` and the env block
// bench_common stamps into every BENCH_*.json, so perf records and bug
// reports always describe the same build the same way.
#pragma once

#include <string>

namespace tsufail::util {

struct BuildInfo {
  std::string project;         ///< "tsufail <version>"
  std::string compiler;        ///< the compiler's own __VERSION__ string
  std::string build_type;      ///< CMAKE_BUILD_TYPE ("Release", ...)
  std::string flags;           ///< CXX flags for that configuration
  std::string simd_supported;  ///< best SIMD level this binary+CPU can run
};

/// The one instance, filled at compile time from CMake definitions (the
/// SIMD support field is probed once via CPUID on first call).
const BuildInfo& build_info() noexcept;

/// Multi-line human-readable block (the `tsufail --version` output).
/// Includes the live SIMD dispatch level — after a TSUFAIL_SIMD override
/// the dispatch line reports the level actually in effect.
std::string build_info_text();

}  // namespace tsufail::util
