// RFC-4180 CSV reading and writing.
//
// Failure logs are exchanged as CSV (the Zenodo artifact format).  The
// reader is tolerant of the realities of operator-maintained spreadsheets:
// CRLF and LF line endings, quoted fields with embedded commas/newlines,
// and trailing blank lines.  Structural problems are reported per record
// via Result so one bad row cannot poison a 900-row log.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace tsufail {

/// One parsed CSV record (row) with its 1-based source line number.
struct CsvRecord {
  std::vector<std::string> fields;
  std::size_t line_number = 0;
};

/// A fully parsed CSV document: a header row plus data records.
class CsvDocument {
 public:
  /// Parses an in-memory CSV document.  The first record is the header.
  /// Errors: empty input, unterminated quote, stray quote in unquoted field.
  static Result<CsvDocument> parse(std::string_view text);

  /// Reads and parses a CSV file from disk.
  static Result<CsvDocument> read_file(const std::string& path);

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<CsvRecord>& records() const noexcept { return records_; }

  /// Column index for `name` (case-insensitive), or kNotFound error.
  Result<std::size_t> column(std::string_view name) const;

  /// Field `column_name` of `record`, or an error naming the row/column.
  Result<std::string> field(const CsvRecord& record, std::string_view column_name) const;

 private:
  std::vector<std::string> header_;
  std::vector<CsvRecord> records_;
};

/// Streaming CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields containing ',' '"' '\n' or '\r' are quoted.
  void write_row(const std::vector<std::string>& fields);

  /// Quotes a single field if needed (exposed for tests).
  static std::string escape(std::string_view field);

 private:
  std::ostream& out_;
};

/// Writes an entire document (header + rows) to a file.
Result<void> write_csv_file(const std::string& path, const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows);

}  // namespace tsufail
