// Lightweight error type and Result<T> used across tsufail.
//
// The library is designed for batch log processing, where a malformed input
// line must not abort the whole run.  Recoverable conditions are therefore
// reported by value via Result<T>; programming errors (violated
// preconditions) use TSUFAIL_REQUIRE which throws std::logic_error.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace tsufail {

/// Classification of recoverable errors produced by the library.
enum class ErrorKind {
  kParse,          ///< malformed textual input (CSV field, timestamp, number)
  kValidation,     ///< structurally valid input violating a semantic rule
  kNotFound,       ///< lookup miss (unknown category name, missing column)
  kIo,             ///< file could not be opened / read / written
  kDomain,         ///< numeric argument outside the mathematical domain
  kInternal,       ///< invariant violation that was downgraded to a value
};

/// Human-readable name of an ErrorKind ("parse", "io", ...).
const char* to_string(ErrorKind kind) noexcept;

/// A recoverable error: a kind plus a human-readable message.
///
/// Errors are cheap to construct and copy; they carry no stack traces.
/// Context is added by prepending to the message via with_context().
class [[nodiscard]] Error {
 public:
  Error(ErrorKind kind, std::string message)
      : kind_(kind), message_(std::move(message)) {}

  ErrorKind kind() const noexcept { return kind_; }
  const std::string& message() const noexcept { return message_; }

  /// Returns a copy of this error with `context + ": "` prepended.
  Error with_context(const std::string& context) const {
    return Error(kind_, context + ": " + message_);
  }

  /// "parse: unexpected character 'x'"
  std::string to_string() const {
    return std::string(tsufail::to_string(kind_)) + ": " + message_;
  }

 private:
  ErrorKind kind_;
  std::string message_;
};

/// Result<T>: either a value or an Error.  A minimal std::expected stand-in
/// (the toolchain targets C++20).  Access to value() on an error result
/// throws std::runtime_error, so accidental misuse is loud in tests.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Value access. Precondition: ok().
  const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().to_string());
    return std::get<T>(state_);
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().to_string());
    return std::get<T>(state_);
  }
  T&& value() && {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().to_string());
    return std::get<T>(std::move(state_));
  }

  /// Value or a caller-provided fallback.
  T value_or(T fallback) const& { return ok() ? std::get<T>(state_) : std::move(fallback); }

  /// Error access. Precondition: !ok().
  const Error& error() const& {
    if (ok()) throw std::runtime_error("Result::error on ok result");
    return std::get<Error>(state_);
  }

  /// Applies `fn` to the value, propagating the error unchanged.
  template <typename Fn>
  auto map(Fn&& fn) const& -> Result<decltype(fn(std::declval<const T&>()))> {
    using U = decltype(fn(std::declval<const T&>()));
    if (!ok()) return Result<U>(error());
    return Result<U>(fn(std::get<T>(state_)));
  }

 private:
  std::variant<T, Error> state_;
};

/// Result specialization for operations with no value payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const& {
    if (ok()) throw std::runtime_error("Result<void>::error on ok result");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

namespace detail {
[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& message);
}  // namespace detail

/// Precondition check for programming errors.  Unlike Result, a REQUIRE
/// failure indicates a bug in the caller; it throws std::logic_error.
#define TSUFAIL_REQUIRE(expr, message)                                        \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::tsufail::detail::require_failed(#expr, __FILE__, __LINE__, (message)); \
    }                                                                         \
  } while (false)

}  // namespace tsufail
