// Minimal, dependency-free civil (calendar) time library.
//
// Failure logs carry wall-clock timestamps recorded by operators in local
// time; the study never needs time zones, only calendar arithmetic
// (month-of-year, day ordering) and elapsed-time differences.  We therefore
// model a timestamp as a TimePoint: integral seconds since the Unix epoch of
// the corresponding *civil* (zone-less, proleptic Gregorian) date-time.
//
// Calendar conversions use Howard Hinnant's days_from_civil / civil_from_days
// algorithms, exact over the full proleptic Gregorian calendar.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.h"

namespace tsufail {

/// A broken-down civil date-time (proleptic Gregorian, no time zone).
struct CivilDateTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59 (no leap seconds)

  friend auto operator<=>(const CivilDateTime&, const CivilDateTime&) = default;
};

/// True iff `year` is a Gregorian leap year.
constexpr bool is_leap_year(int year) noexcept {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

/// Number of days in the given month (1..12) of `year`; 0 for invalid month.
constexpr int days_in_month(int year, int month) noexcept {
  constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

/// Days since 1970-01-01 for the civil date {y, m, d}.  Exact for all
/// proleptic Gregorian dates (Hinnant's algorithm).
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil: civil date for `days` since 1970-01-01.
constexpr CivilDateTime civil_from_days(std::int64_t days) noexcept {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);      // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                              // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                      // [1, 31]
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;                         // [1, 12]
  CivilDateTime c;
  c.year = static_cast<int>(y + (m <= 2));
  c.month = static_cast<int>(m);
  c.day = static_cast<int>(d);
  return c;
}

/// An instant: seconds since the Unix epoch of a civil date-time.
/// Strongly typed so timestamps and durations cannot be mixed up.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t seconds_since_epoch) noexcept
      : seconds_(seconds_since_epoch) {}

  /// Builds a TimePoint from broken-down fields. Precondition: fields valid.
  static TimePoint from_civil(const CivilDateTime& c);

  constexpr std::int64_t seconds_since_epoch() const noexcept { return seconds_; }

  /// Broken-down civil representation of this instant.
  CivilDateTime to_civil() const noexcept;

  /// Calendar month (1..12) of this instant; convenience for seasonality.
  int month() const noexcept { return to_civil().month; }
  /// Calendar year of this instant.
  int year() const noexcept { return to_civil().year; }

  friend constexpr auto operator<=>(TimePoint a, TimePoint b) noexcept = default;

  /// Instant shifted forward by fractional hours (rounded to whole seconds).
  constexpr TimePoint plus_hours(double hours) const noexcept {
    return TimePoint(seconds_ + static_cast<std::int64_t>(hours * 3600.0 + (hours >= 0 ? 0.5 : -0.5)));
  }
  constexpr TimePoint plus_seconds(std::int64_t s) const noexcept {
    return TimePoint(seconds_ + s);
  }

 private:
  std::int64_t seconds_ = 0;
};

/// Elapsed time b - a in fractional hours (negative if b precedes a).
constexpr double hours_between(TimePoint a, TimePoint b) noexcept {
  return static_cast<double>(b.seconds_since_epoch() - a.seconds_since_epoch()) / 3600.0;
}

/// Validates every field of a broken-down civil date-time.
Result<void> validate_civil(const CivilDateTime& c);

/// Parses a timestamp.  Accepted formats (the union of formats seen in
/// operator logs):
///   "YYYY-MM-DD HH:MM:SS"    "YYYY-MM-DD HH:MM"    "YYYY-MM-DD"
///   "YYYY/MM/DD HH:MM:SS"    "YYYY/MM/DD HH:MM"    "YYYY/MM/DD"
///   "M/D/YYYY HH:MM:SS"      "M/D/YYYY HH:MM"      "M/D/YYYY"  (US order)
///   ISO-8601 'T' separator is accepted wherever a space is.
Result<TimePoint> parse_time(std::string_view text);

/// Formats as "YYYY-MM-DD HH:MM:SS" (the canonical on-disk format).
std::string format_time(TimePoint t);

/// Formats as "YYYY-MM-DD".
std::string format_date(TimePoint t);

/// English month name ("January".."December"); precondition: 1 <= month <= 12.
std::string_view month_name(int month);

/// Three-letter month abbreviation ("Jan".."Dec"); precondition as above.
std::string_view month_abbrev(int month);

}  // namespace tsufail
