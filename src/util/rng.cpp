#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace tsufail {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: draws pairs of independent standard normals.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::exponential(double mean) noexcept {
  // -mean * log(1 - U); 1 - U avoids log(0) since uniform() < 1.
  return -mean * std::log1p(-uniform());
}

double Rng::weibull(double shape, double scale) noexcept {
  // Inverse transform: scale * (-log(1-U))^(1/shape).
  return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
}

double Rng::lognormal(double mu_log, double sigma_log) noexcept {
  return std::exp(normal(mu_log, sigma_log));
}

double Rng::gamma(double shape, double scale) noexcept {
  // Marsaglia & Tsang (2000).  For shape < 1, boost via Gamma(shape+1)
  // and the U^(1/shape) correction.
  if (shape < 1.0) {
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion in the log domain is unnecessary at this size.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= uniform();
      ++count;
    }
    return count;
  }
  // Large mean: split recursively (Poisson is infinitely divisible), keeping
  // each sub-draw in the fast inversion regime. Depth is O(log(mean)).
  const double half = std::floor(mean / 2.0);
  return poisson(half) + poisson(mean - half);
}

Result<DiscreteSampler> DiscreteSampler::create(std::span<const double> weights) {
  if (weights.empty())
    return Error(ErrorKind::kDomain, "DiscreteSampler: empty weight list");
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w))
      return Error(ErrorKind::kDomain, "DiscreteSampler: weights must be finite and >= 0");
    total += w;
  }
  if (total <= 0.0)
    return Error(ErrorKind::kDomain, "DiscreteSampler: total weight must be positive");

  const std::size_t n = weights.size();
  DiscreteSampler sampler;
  sampler.prob_.assign(n, 0.0);
  sampler.alias_.assign(n, 0);
  sampler.normalized_.resize(n);

  // Vose's stable alias-table construction.
  std::vector<double> scaled(n);
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sampler.normalized_[i] = weights[i] / total;
    scaled[i] = sampler.normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    sampler.prob_[s] = scaled[s];
    sampler.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::size_t i : large) sampler.prob_[i] = 1.0;
  for (std::size_t i : small) sampler.prob_[i] = 1.0;  // numerical leftovers
  return sampler;
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  const std::size_t column = static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace tsufail
