#include "util/civil_time.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace tsufail {
namespace {

/// Parses an unsigned integer of 1..4 digits at the front of `text`,
/// advancing `text` past it.  Returns -1 if no digit is present.
int take_int(std::string_view& text, int max_digits) {
  int value = 0;
  int digits = 0;
  while (digits < max_digits && !text.empty() && text.front() >= '0' && text.front() <= '9') {
    value = value * 10 + (text.front() - '0');
    text.remove_prefix(1);
    ++digits;
  }
  return digits == 0 ? -1 : value;
}

/// Consumes `c` from the front of `text`; returns false if absent.
bool take_char(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}

/// Parses the optional "HH:MM[:SS]" suffix (after a ' ' or 'T' separator)
/// into `c`.  Returns false on malformed time-of-day.
bool parse_time_of_day(std::string_view& text, CivilDateTime& c) {
  if (text.empty()) return true;  // date-only timestamp: midnight
  if (!take_char(text, ' ') && !take_char(text, 'T')) return false;
  c.hour = take_int(text, 2);
  if (c.hour < 0 || !take_char(text, ':')) return false;
  c.minute = take_int(text, 2);
  if (c.minute < 0) return false;
  if (take_char(text, ':')) {
    c.second = take_int(text, 2);
    if (c.second < 0) return false;
  }
  return text.empty();
}

}  // namespace

TimePoint TimePoint::from_civil(const CivilDateTime& c) {
  TSUFAIL_REQUIRE(validate_civil(c).ok(), "from_civil: invalid civil date-time");
  const std::int64_t days = days_from_civil(c.year, c.month, c.day);
  return TimePoint(days * 86400 + c.hour * 3600 + c.minute * 60 + c.second);
}

CivilDateTime TimePoint::to_civil() const noexcept {
  std::int64_t days = seconds_ / 86400;
  std::int64_t rem = seconds_ % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilDateTime c = civil_from_days(days);
  c.hour = static_cast<int>(rem / 3600);
  c.minute = static_cast<int>((rem % 3600) / 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

Result<void> validate_civil(const CivilDateTime& c) {
  if (c.month < 1 || c.month > 12)
    return Error(ErrorKind::kValidation, "month out of range: " + std::to_string(c.month));
  if (c.day < 1 || c.day > days_in_month(c.year, c.month))
    return Error(ErrorKind::kValidation, "day out of range: " + std::to_string(c.day));
  if (c.hour < 0 || c.hour > 23)
    return Error(ErrorKind::kValidation, "hour out of range: " + std::to_string(c.hour));
  if (c.minute < 0 || c.minute > 59)
    return Error(ErrorKind::kValidation, "minute out of range: " + std::to_string(c.minute));
  if (c.second < 0 || c.second > 59)
    return Error(ErrorKind::kValidation, "second out of range: " + std::to_string(c.second));
  return {};
}

Result<TimePoint> parse_time(std::string_view text) {
  const std::string_view original = text;
  CivilDateTime c;

  const int first = take_int(text, 4);
  if (first < 0)
    return Error(ErrorKind::kParse, "timestamp must start with a number: '" + std::string(original) + "'");

  if (take_char(text, '-') || take_char(text, '/')) {
    const char sep = original[text.data() - original.data() - 1];
    const int second_field = take_int(text, 2);
    if (second_field < 0 || !take_char(text, sep))
      return Error(ErrorKind::kParse, "malformed date: '" + std::string(original) + "'");
    const int third_field = take_int(text, 4);
    if (third_field < 0)
      return Error(ErrorKind::kParse, "malformed date: '" + std::string(original) + "'");
    if (first >= 1000) {
      // "YYYY-MM-DD" or "YYYY/MM/DD"
      c.year = first;
      c.month = second_field;
      c.day = third_field;
    } else {
      // US-style "M/D/YYYY"
      if (third_field < 1000)
        return Error(ErrorKind::kParse, "ambiguous two-digit year: '" + std::string(original) + "'");
      c.month = first;
      c.day = second_field;
      c.year = third_field;
    }
  } else {
    return Error(ErrorKind::kParse, "missing date separator: '" + std::string(original) + "'");
  }

  if (!parse_time_of_day(text, c))
    return Error(ErrorKind::kParse, "malformed time of day: '" + std::string(original) + "'");

  if (auto valid = validate_civil(c); !valid.ok())
    return valid.error().with_context("'" + std::string(original) + "'");
  return TimePoint::from_civil(c);
}

std::string format_time(TimePoint t) {
  const CivilDateTime c = t.to_civil();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month, c.day,
                c.hour, c.minute, c.second);
  return buf;
}

std::string format_date(TimePoint t) {
  const CivilDateTime c = t.to_civil();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string_view month_name(int month) {
  static constexpr std::array<std::string_view, 12> kNames = {
      "January", "February", "March",     "April",   "May",      "June",
      "July",    "August",   "September", "October", "November", "December"};
  TSUFAIL_REQUIRE(month >= 1 && month <= 12, "month_name: month out of range");
  return kNames[static_cast<std::size_t>(month - 1)];
}

std::string_view month_abbrev(int month) {
  static constexpr std::array<std::string_view, 12> kAbbrevs = {
      "Jan", "Feb", "Mar", "Apr", "May", "Jun",
      "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  TSUFAIL_REQUIRE(month >= 1 && month <= 12, "month_abbrev: month out of range");
  return kAbbrevs[static_cast<std::size_t>(month - 1)];
}

}  // namespace tsufail
