#include "util/strings.h"

#include <cctype>
#include <charconv>

namespace tsufail {

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) text.remove_suffix(1);
  return text;
}

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view text, std::string_view other) noexcept {
  if (text.size() != other.size()) return false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(other[i])))
      return false;
  }
  return true;
}

Result<long long> parse_int(std::string_view text) {
  long long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    return Error(ErrorKind::kParse, "not an integer: '" + std::string(text) + "'");
  return value;
}

Result<double> parse_double(std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    return Error(ErrorKind::kParse, "not a number: '" + std::string(text) + "'");
  return value;
}

}  // namespace tsufail
