// Runtime SIMD dispatch and byte-scanning kernels.
//
// One process-wide dispatch level — scalar, SSE2, or AVX2 — is selected
// once at startup: the CPU is probed (CPUID via the compiler builtins),
// the result is clamped to what this binary was actually compiled with,
// and an optional TSUFAIL_SIMD=scalar|sse2|avx2 environment override
// (itself clamped to hardware support) lets tests and benches pin the
// level.  Every explicit-SIMD kernel in the library — the byte scanners
// below, the numeric kernels in stats::simd — routes through this single
// level, so `TSUFAIL_SIMD=scalar tsufail ...` exercises the portable
// fallback end to end and `tsufail --version` can state which paths a
// box will take.
//
// The byte kernels live here (not in stats) because the CSV tokenizer is
// part of tsufail_util, the lowest library in the stack: a 16/32-byte
// compare + movemask block scan shared by the CSV parser and the serve
// line-protocol framer.
//
// Determinism contract: for any input, every kernel returns bit-identical
// results at every dispatch level.  The dispatch-equivalence suite
// (tests/stats_simd_test.cpp) enforces this on adversarial inputs, and
// CI runs one job with TSUFAIL_SIMD=scalar plus one -march=x86-64-v3
// build so all levels stay honest.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace tsufail::simd {

/// Dispatch levels, ordered: a level implies all the ones below it.
enum class Level {
  kScalar = 0,  ///< portable C++ loops, no vector instructions required
  kSse2 = 1,    ///< 128-bit integer/double lanes (baseline on x86-64)
  kAvx2 = 2,    ///< 256-bit lanes, vpgather, 4-wide double math
};

/// Human-readable level name: "scalar", "sse2", "avx2".
const char* level_name(Level level) noexcept;

/// Parses a level name (as accepted in TSUFAIL_SIMD). Returns false on an
/// unknown name, leaving `out` untouched.
bool parse_level(std::string_view name, Level& out) noexcept;

/// The best level this binary can run on this CPU: hardware support
/// (CPUID) clamped to what was compiled in (an AVX2 kernel TU only
/// exists when the compiler accepted -mavx2).  Constant per process.
Level supported_level() noexcept;

/// The active dispatch level.  First call: supported_level() clamped by
/// the TSUFAIL_SIMD environment override, then cached.  Every kernel
/// call reads this, so it is cheap (one relaxed atomic load).
Level active_level() noexcept;

/// Overrides the active level (clamped to supported_level(); returns the
/// level actually applied).  For benches and the dispatch-equivalence
/// tests; not thread-safe against concurrent kernel calls mid-switch.
Level set_active_level(Level level) noexcept;

/// All levels this process can actually run, ascending (always starts
/// with kScalar).  The bench and equivalence suites iterate this.
std::vector<Level> available_levels();

// --- Byte-scanning kernels ---------------------------------------------
//
// All return an offset relative to `text.begin() + pos` semantics of
// std::string_view::find: the absolute index of the first match at or
// after `pos`, or std::string_view::npos.

/// First occurrence of `c` at or after `pos` (SIMD memchr).
std::size_t find_byte(std::string_view text, char c, std::size_t pos = 0) noexcept;

/// First occurrence of any of the four bytes at or after `pos`.  Pass a
/// repeated byte to search for fewer than four distinct values.
std::size_t find_any_of4(std::string_view text, char c0, char c1, char c2, char c3,
                         std::size_t pos = 0) noexcept;

/// Number of occurrences of `c` in `text` (SIMD popcount over compare
/// masks).  Used to keep CSV line numbers exact across bulk quoted-field
/// scans.
std::size_t count_byte(std::string_view text, char c) noexcept;

// --- Internal: per-level byte-kernel tables ----------------------------
//
// Raw-pointer kernels behind the wrappers above.  Exposed so the bench
// can time a specific level without flipping the global, and so the
// equivalence suite can diff levels directly.

struct ByteKernels {
  std::size_t (*find_byte)(const char* p, std::size_t n, char c) noexcept;
  std::size_t (*find_any_of4)(const char* p, std::size_t n, char c0, char c1, char c2,
                              char c3) noexcept;
  std::size_t (*count_byte)(const char* p, std::size_t n, char c) noexcept;
};

/// The byte-kernel table for `level` (clamped to supported_level()).
const ByteKernels& byte_kernels(Level level) noexcept;

}  // namespace tsufail::simd
