#include "cli/args.h"

#include <fstream>

#include "util/strings.h"

namespace tsufail::cli {

Result<void> validate_writable_path(const std::string& path) {
  if (path.empty())
    return Error(ErrorKind::kValidation, "output path is empty");
  // Append mode creates a missing file but leaves an existing one intact.
  std::ofstream probe(path, std::ios::binary | std::ios::app);
  if (!probe)
    return Error(ErrorKind::kIo, "cannot open '" + path + "' for writing");
  return {};
}

Result<std::string> ParsedArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end())
    return Error(ErrorKind::kNotFound, "missing required option --" + name);
  return it->second;
}

Result<long long> ParsedArgs::get_int(const std::string& name) const {
  auto text = get(name);
  if (!text.ok()) return text.error();
  auto value = parse_int(text.value());
  if (!value.ok()) return value.error().with_context("--" + name);
  return value;
}

Result<double> ParsedArgs::get_double(const std::string& name) const {
  auto text = get(name);
  if (!text.ok()) return text.error();
  auto value = parse_double(text.value());
  if (!value.ok()) return value.error().with_context("--" + name);
  return value;
}

ArgParser& ArgParser::option(OptionSpec spec) {
  options_.push_back(std::move(spec));
  return *this;
}

ArgParser& ArgParser::positional(PositionalSpec spec) {
  positionals_.push_back(std::move(spec));
  return *this;
}

Result<ParsedArgs> ArgParser::parse(const std::vector<std::string>& args) const {
  ParsedArgs parsed;

  const auto find_option = [&](std::string_view name) -> const OptionSpec* {
    for (const auto& option : options_) {
      if (option.name == name) return &option;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string_view token = args[i];
    if (token.rfind("--", 0) == 0) {
      token.remove_prefix(2);
      std::string name(token);
      std::optional<std::string> inline_value;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name.resize(eq);
      }
      const OptionSpec* spec = find_option(name);
      if (spec == nullptr)
        return Error(ErrorKind::kParse, "unknown option --" + name);
      if (spec->value_hint.empty()) {  // boolean flag
        if (inline_value.has_value())
          return Error(ErrorKind::kParse, "flag --" + name + " takes no value");
        parsed.values_[name] = "true";
        continue;
      }
      if (inline_value.has_value()) {
        parsed.values_[name] = *inline_value;
        continue;
      }
      if (i + 1 >= args.size())
        return Error(ErrorKind::kParse, "option --" + name + " requires a value");
      parsed.values_[name] = args[++i];
      continue;
    }
    parsed.positionals_.push_back(std::string(token));
  }

  for (const auto& option : options_) {
    if (!parsed.values_.contains(option.name) && option.default_value.has_value())
      parsed.values_[option.name] = *option.default_value;
  }

  std::size_t required = 0;
  for (const auto& positional : positionals_) required += positional.required;
  if (parsed.positionals_.size() < required)
    return Error(ErrorKind::kParse,
                 "missing required argument <" + positionals_[parsed.positionals_.size()].name +
                     ">");
  if (parsed.positionals_.size() > positionals_.size())
    return Error(ErrorKind::kParse, "unexpected extra argument '" +
                                        parsed.positionals_[positionals_.size()] + "'");
  return parsed;
}

std::string ArgParser::help() const {
  std::string out = "usage: tsufail " + command_;
  for (const auto& positional : positionals_) {
    out += positional.required ? " <" + positional.name + ">" : " [" + positional.name + "]";
  }
  if (!options_.empty()) out += " [options]";
  out += "\n\n" + description_ + "\n";
  if (!positionals_.empty()) {
    out += "\narguments:\n";
    for (const auto& positional : positionals_) {
      out += "  " + positional.name + "  " + positional.help + "\n";
    }
  }
  if (!options_.empty()) {
    out += "\noptions:\n";
    for (const auto& option : options_) {
      std::string left = "--" + option.name;
      if (!option.value_hint.empty()) left += " <" + option.value_hint + ">";
      out += "  " + left;
      if (left.size() < 28) out.append(28 - left.size(), ' ');
      out += option.help;
      if (option.default_value.has_value()) out += " (default: " + *option.default_value + ")";
      out += "\n";
    }
  }
  return out;
}

}  // namespace tsufail::cli
