// The tsufail command-line tool's subcommands.
//
// Each subcommand is a pure function from parsed arguments to text on a
// stream, so the whole tool is unit-testable without spawning processes.
//
//   tsufail simulate   generate a calibrated synthetic log as CSV
//   tsufail analyze    run the full DSN'21 study on a log
//   tsufail sweep      multi-replicate Monte Carlo study with aggregate CIs
//   tsufail triage     operator report: impact ranking, repeat nodes
//   tsufail figures    export all figure series as CSV
//   tsufail checkpoint Young/Daly checkpoint plan from measured MTBF
//   tsufail spares     spare-pool sizing for one category
//   tsufail predict    node-failure prediction backtest
//   tsufail compare    two-generation comparison of two logs
//   tsufail watch      live-replay a log through the streaming monitor
//   tsufail pack       pack a log into a columnar .tsnap snapshot
//   tsufail unpack     expand a snapshot back to canonical CSV
//
// Every log-consuming command accepts .csv and .tsnap inputs
// interchangeably (sniffed by magic, not extension), and
// `tsufail --version` prints the build-info block (util/build_info.h).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/args.h"

namespace tsufail::cli {

/// One registered subcommand.
struct Command {
  std::string name;
  std::string summary;
  /// Builds the command's parser (for help and for run()).
  ArgParser (*make_parser)();
  /// Executes with already-parsed args, writing human output to `out`.
  Result<void> (*run)(const ParsedArgs& args, std::ostream& out);
};

/// All registered subcommands, in help order.
const std::vector<Command>& commands();

/// Top-level entry: dispatches `argv` (without the program name) to a
/// subcommand; handles "help", "--help", and unknown commands.  Returns
/// the process exit code and writes all output/errors to the streams.
int dispatch(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err);

}  // namespace tsufail::cli
