#include "cli/commands.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <ostream>
#include <thread>

#include "analysis/lead_lag.h"
#include "analysis/node_survival.h"
#include "analysis/rack_distribution.h"
#include "analysis/rolling.h"
#include "analysis/study.h"
#include "data/columnar.h"
#include "data/legacy_import.h"
#include "data/log_index.h"
#include "data/log_io.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "ops/availability.h"
#include "ops/capacity.h"
#include "ops/checkpoint.h"
#include "ops/job_impact.h"
#include "ops/maintenance.h"
#include "ops/repair_sweep.h"
#include "ops/repairshop.h"
#include "ops/spares.h"
#include "predict/evaluate.h"
#include "report/figure_export.h"
#include "report/markdown_report.h"
#include "report/repair_text.h"
#include "report/study_text.h"
#include "report/table.h"
#include "obs/slo.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/top.h"
#include "sim/generator.h"
#include "sim/montecarlo.h"
#include "sim/scaling.h"
#include "sim/tsubame_models.h"
#include "stats/ecdf.h"
#include "stream/alerts.h"
#include "stream/event_stream.h"
#include "stream/health.h"
#include "util/build_info.h"

namespace tsufail::cli {
namespace {

// --- shared helpers ---------------------------------------------------

/// True iff `path` starts with the columnar-snapshot magic (cheap
/// 8-byte sniff; unreadable files report false and fall through to the
/// CSV reader's richer error).
bool is_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char prefix[8] = {};
  if (!in.read(prefix, sizeof prefix)) return false;
  return data::ColumnarSnapshot::sniff({prefix, sizeof prefix});
}

/// Loads a failure log from either accepted on-disk form — the canonical
/// CSV schema or a packed columnar snapshot (detected by magic, not
/// extension) — so every command takes .csv and .tsnap interchangeably.
Result<data::FailureLog> load_log(const ParsedArgs& args, std::size_t position = 0) {
  const std::string& path = args.positionals()[position];
  if (is_snapshot_file(path)) {
    auto snapshot = data::ColumnarSnapshot::open(path);
    if (!snapshot.ok()) return snapshot.error();
    return snapshot.value()->to_log();
  }
  const auto policy = args.flag("strict") ? data::ReadPolicy::kStrict : data::ReadPolicy::kLenient;
  auto report = data::read_log_file(path, policy);
  if (!report.ok()) return report.error();
  return std::move(report.value().log);
}

Result<sim::MachineModel> resolve_model(const ParsedArgs& args) {
  auto machine_name = args.get("machine");
  if (!machine_name.ok()) return machine_name.error();
  auto machine = data::parse_machine(machine_name.value());
  if (!machine.ok()) return machine.error();
  sim::MachineModel model = machine.value() == data::Machine::kTsubame2
                                ? sim::tsubame2_model()
                                : sim::tsubame3_model();
  if (args.has("failures")) {
    auto failures = args.get_int("failures");
    if (!failures.ok()) return failures.error();
    if (failures.value() <= 0)
      return Error(ErrorKind::kDomain, "--failures must be positive");
    model.total_failures = static_cast<std::size_t>(failures.value());
  }
  model.knobs.enable_bursts = !args.flag("no-bursts");
  model.knobs.enable_node_heterogeneity = !args.flag("no-heterogeneity");
  model.knobs.enable_slot_weights = !args.flag("no-slot-weights");
  model.knobs.enable_seasonal = !args.flag("no-seasonal");
  return model;
}

OptionSpec strict_option() {
  return {"strict", "", "fail on the first malformed CSV row instead of skipping", {}};
}

OptionSpec jobs_option() {
  return {"jobs", "N", "worker threads for the study's analyses (0 = all hardware threads)",
          std::string("1")};
}

// --- observability plumbing -------------------------------------------
//
// Commands that can run long accept --trace FILE (Chrome-trace JSON for
// Perfetto) and --metrics FILE (.json -> JSON, anything else ->
// Prometheus text).  resolve_obs() validates both paths up front and, if
// either was given, clears the recorders and flips the runtime switch;
// write_obs_outputs() snapshots and writes after the run.

OptionSpec trace_option() {
  return {"trace", "FILE",
          "record spans and write a Chrome-trace JSON (open in ui.perfetto.dev)", {}};
}

OptionSpec metrics_option() {
  return {"metrics", "FILE",
          "write a metrics snapshot (.json extension = JSON, otherwise Prometheus text)", {}};
}

struct ObsRequest {
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  bool any() const noexcept { return trace_path.has_value() || metrics_path.has_value(); }
};

Result<ObsRequest> resolve_obs(const ParsedArgs& args) {
  ObsRequest request;
  if (args.has("trace")) request.trace_path = args.get("trace").value();
  if (args.has("metrics")) request.metrics_path = args.get("metrics").value();
  if (request.trace_path.has_value()) {
    if (auto ok = validate_writable_path(*request.trace_path); !ok.ok())
      return ok.error().with_context("--trace");
  }
  if (request.metrics_path.has_value()) {
    if (auto ok = validate_writable_path(*request.metrics_path); !ok.ok())
      return ok.error().with_context("--metrics");
  }
  if (request.any()) {
    if (!obs::kCompiledIn)
      return Error(ErrorKind::kInternal,
                   "this build has TSUFAIL_OBS_DISABLE: --trace/--metrics cannot record");
    obs::reset_trace();
    obs::reset_metrics();
    obs::set_enabled(true);
  }
  return request;
}

Result<void> write_text_file(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file)
    return Error(ErrorKind::kIo, "cannot open '" + path + "' for writing");
  file << text;
  if (!file.flush())
    return Error(ErrorKind::kIo, "write error on '" + path + "'");
  return {};
}

bool has_json_extension(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

Result<void> write_obs_outputs(const ObsRequest& request, std::ostream& out) {
  if (!request.any()) return {};
  if (request.trace_path.has_value()) {
    const auto snapshot = obs::collect_trace();
    if (auto w = write_text_file(*request.trace_path, obs::chrome_trace_json(snapshot));
        !w.ok())
      return w.error().with_context("--trace");
    out << "wrote trace (" << snapshot.span_count() << " spans, "
        << snapshot.threads.size() << " threads";
    if (snapshot.dropped_total() > 0) out << ", " << snapshot.dropped_total() << " dropped";
    out << ") to " << *request.trace_path << "\n";
  }
  if (request.metrics_path.has_value()) {
    const auto snapshot = obs::collect_metrics();
    const std::string text = has_json_extension(*request.metrics_path)
                                 ? obs::metrics_json(snapshot)
                                 : obs::prometheus_text(snapshot);
    if (auto w = write_text_file(*request.metrics_path, text); !w.ok())
      return w.error().with_context("--metrics");
    out << "wrote metrics (" << snapshot.counters.size() << " counters, "
        << snapshot.gauges.size() << " gauges, " << snapshot.histograms.size()
        << " histograms) to " << *request.metrics_path << "\n";
  }
  return {};
}

Result<analysis::StudyOptions> resolve_study_options(const ParsedArgs& args) {
  auto jobs = args.get_int("jobs");
  if (!jobs.ok()) return jobs.error();
  if (jobs.value() < 0)
    return Error(ErrorKind::kDomain, "--jobs must be >= 0");
  return analysis::StudyOptions{static_cast<std::size_t>(jobs.value())};
}

// --- simulate -----------------------------------------------------------

ArgParser make_simulate_parser() {
  ArgParser parser("simulate", "Generate a calibrated synthetic failure log as CSV.");
  parser.positional({"out.csv", "output path", true});
  parser.option({"machine", "NAME", "tsubame-2 or tsubame-3", std::string("tsubame-3")});
  parser.option({"seed", "N", "generator seed", std::string("1")});
  parser.option({"failures", "N", "override the calibrated failure count", {}});
  parser.option({"no-bursts", "", "disable temporal burst clustering", {}});
  parser.option({"no-heterogeneity", "", "disable the lemon-node hazard mix", {}});
  parser.option({"no-slot-weights", "", "disable non-uniform GPU slot selection", {}});
  parser.option({"no-seasonal", "", "disable monthly intensity/TTR modulation", {}});
  return parser;
}

Result<void> run_simulate(const ParsedArgs& args, std::ostream& out) {
  auto model = resolve_model(args);
  if (!model.ok()) return model.error();
  auto seed = args.get_int("seed");
  if (!seed.ok()) return seed.error();
  auto log = sim::generate_log(model.value(), static_cast<std::uint64_t>(seed.value()));
  if (!log.ok()) return log.error();
  const std::string& path = args.positionals()[0];
  if (auto written = data::write_log_file(path, log.value()); !written.ok())
    return written.error();
  out << "wrote " << log.value().size() << " failures (" << model.value().spec.name << ", seed "
      << seed.value() << ") to " << path << "\n";
  return {};
}

// --- analyze --------------------------------------------------------------

ArgParser make_analyze_parser() {
  ArgParser parser("analyze", "Run the full DSN'21 study on a failure log.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option(strict_option());
  parser.option(jobs_option());
  parser.option(trace_option());
  parser.option(metrics_option());
  return parser;
}

Result<void> run_analyze(const ParsedArgs& args, std::ostream& out) {
  auto obs_request = resolve_obs(args);
  if (!obs_request.ok()) return obs_request.error();
  obs::SpanScope cli_span("cli.analyze");
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto options = resolve_study_options(args);
  if (!options.ok()) return options.error();
  auto study = analysis::run_study(log.value(), options.value());
  if (!study.ok()) return study.error();
  out << report::render_study_text(log.value(), study.value());
  cli_span.stop();
  return write_obs_outputs(obs_request.value(), out);
}

// --- sweep ------------------------------------------------------------------

ArgParser make_sweep_parser() {
  ArgParser parser("sweep",
                   "Monte Carlo sweep: run many seeded replicates of a calibrated (optionally "
                   "rescaled) machine model and aggregate the study metrics with bootstrap CIs.");
  parser.option({"machine", "NAME", "tsubame-2 or tsubame-3", std::string("tsubame-3")});
  parser.option({"replicates", "N", "replicates (seeds) per variant", std::string("20")});
  parser.option({"jobs", "N",
                 "worker threads across replicates (0 = all hardware threads); aggregates are "
                 "bit-identical for every value",
                 std::string("1")});
  parser.option({"seed", "N", "base seed; replicate r runs on a deterministic (seed, r) fork",
                 std::string("1")});
  parser.option({"gpus-per-node", "N", "add a what-if variant rescaled to N GPUs per node", {}});
  parser.option({"correlated", "",
                 "use the Tsubame-2-like correlated multi-GPU regime for --gpus-per-node", {}});
  parser.option({"nodes", "N", "add a what-if variant rescaled to an N-node fleet", {}});
  parser.option({"failures", "N", "override the calibrated failure count", {}});
  parser.option({"level", "P", "confidence level for the aggregate CIs", std::string("0.95")});
  parser.option({"quick", "", "smoke preset: 4 replicates (overrides --replicates)", {}});
  parser.option({"all-metrics", "", "print every aggregate, including per-category ones", {}});
  parser.option(trace_option());
  parser.option(metrics_option());
  parser.option({"no-bursts", "", "disable temporal burst clustering", {}});
  parser.option({"no-heterogeneity", "", "disable the lemon-node hazard mix", {}});
  parser.option({"no-slot-weights", "", "disable non-uniform GPU slot selection", {}});
  parser.option({"no-seasonal", "", "disable monthly intensity/TTR modulation", {}});
  return parser;
}

Result<void> run_sweep_command(const ParsedArgs& args, std::ostream& out) {
  auto obs_request = resolve_obs(args);
  if (!obs_request.ok()) return obs_request.error();
  obs::SpanScope cli_span("cli.sweep");
  auto model = resolve_model(args);
  if (!model.ok()) return model.error();
  auto replicates_arg = args.get_int("replicates");
  if (!replicates_arg.ok()) return replicates_arg.error();
  const long long replicates = args.flag("quick") ? 4 : replicates_arg.value();
  if (replicates <= 0)
    return Error(ErrorKind::kDomain, "--replicates must be positive");
  auto jobs = args.get_int("jobs");
  if (!jobs.ok()) return jobs.error();
  if (jobs.value() < 0)
    return Error(ErrorKind::kDomain, "--jobs must be >= 0");
  auto seed = args.get_int("seed");
  if (!seed.ok()) return seed.error();
  auto level = args.get_double("level");
  if (!level.ok()) return level.error();

  std::vector<sim::SweepVariant> variants;
  variants.push_back({model.value().spec.name + " (baseline)", model.value()});
  if (args.has("gpus-per-node") || args.has("nodes")) {
    sim::MachineModel scaled = model.value();
    std::string label = "what-if:";
    if (args.has("gpus-per-node")) {
      auto gpus = args.get_int("gpus-per-node");
      if (!gpus.ok()) return gpus.error();
      const auto regime = args.flag("correlated") ? sim::InvolvementRegime::kCorrelated
                                                  : sim::InvolvementRegime::kIndependent;
      auto dense = sim::scale_gpu_density(scaled, static_cast<int>(gpus.value()), regime);
      if (!dense.ok()) return dense.error().with_context("--gpus-per-node");
      scaled = std::move(dense.value());
      label += " " + std::to_string(gpus.value()) + " GPUs/node" +
               (args.flag("correlated") ? " (correlated)" : "");
    }
    if (args.has("nodes")) {
      auto nodes = args.get_int("nodes");
      if (!nodes.ok()) return nodes.error();
      auto fleet = sim::scale_fleet_size(scaled, static_cast<int>(nodes.value()));
      if (!fleet.ok()) return fleet.error().with_context("--nodes");
      scaled = std::move(fleet.value());
      label += " " + std::to_string(nodes.value()) + " nodes";
    }
    variants.push_back({label, std::move(scaled)});
  }

  sim::SweepOptions options;
  options.base_seed = static_cast<std::uint64_t>(seed.value());
  options.replicates = static_cast<std::size_t>(replicates);
  options.jobs = static_cast<std::size_t>(jobs.value());
  options.ci_level = level.value();
  auto sweep = sim::run_sweep(variants, options);
  if (!sweep.ok()) return sweep.error();

  // The headline metrics and their display names, in print order.
  // Per-category aggregates stay behind --all-metrics.
  static constexpr std::pair<const char*, const char*> kHeadlines[] = {
      {"failures", "failures"},
      {"mtbf_hours", "MTBF (h)"},
      {"mttr_hours", "MTTR (h)"},
      {"gpu_share_percent", "GPU share %"},
      {"software_share_percent", "software share %"},
      {"percent_multi_failure_nodes", "multi-failure nodes %"},
      {"multi_gpu_percent", "multi-GPU failures %"},
      {"slot_max_relative_excess", "slot imbalance"},
      {"multi_gpu_gap_cv", "multi-GPU gap CV"},
      {"h2_h1_ttr_ratio", "H2/H1 TTR"},
      {"pflop_hours_per_failure_free_period", "PFlop-h per failure-free period"},
  };

  out << "sweep: " << replicates << " replicates per variant, base seed "
      << seed.value() << ", " << report::fmt_percent(100.0 * level.value(), 0)
      << " bootstrap CIs\n";
  for (const auto& variant : sweep.value().variants) {
    out << "\n== " << variant.label << " ==\n";
    report::Table table({"Metric", "n", "Mean", "Stddev", "CI low", "CI high"});
    table.set_alignment({report::Align::kLeft, report::Align::kRight, report::Align::kRight,
                         report::Align::kRight, report::Align::kRight, report::Align::kRight});
    const auto add_metric = [&table](const std::string& display,
                                     const sim::MetricAggregate& aggregate) {
      table.add_row({display, std::to_string(aggregate.n), report::fmt(aggregate.mean, 3),
                     report::fmt(aggregate.stddev, 3), report::fmt(aggregate.mean_ci.low, 3),
                     report::fmt(aggregate.mean_ci.high, 3)});
    };
    if (args.flag("all-metrics")) {
      for (const auto& aggregate : variant.aggregates) add_metric(aggregate.name, aggregate);
    } else {
      for (const auto& [name, display] : kHeadlines) {
        if (const auto* aggregate = variant.find(name)) add_metric(display, *aggregate);
      }
    }
    out << table.render();
  }
  cli_span.stop();
  return write_obs_outputs(obs_request.value(), out);
}

// --- repairs ----------------------------------------------------------------

Result<std::vector<ops::RepairPolicyVariant>> resolve_repair_policies(const ParsedArgs& args) {
  auto config_text = args.get("config");
  if (!config_text.ok()) return config_text.error();
  auto base = ops::parse_repair_config(config_text.value());
  if (!base.ok()) return base.error().with_context("--config");
  if (args.has("policy")) {
    auto name = args.get("policy");
    if (!name.ok()) return name.error();
    auto policy = ops::parse_repair_policy(name.value());
    if (!policy.ok()) return policy.error().with_context("--policy");
    ops::RepairShopConfig config = base.value();
    config.policy = policy.value();
    std::vector<ops::RepairPolicyVariant> variants;
    variants.push_back({std::string(ops::to_string(policy.value())), std::move(config)});
    return variants;
  }
  return ops::default_policy_variants(base.value());
}

ArgParser make_repairs_parser() {
  ArgParser parser(
      "repairs",
      "Compare repair policies with the discrete-event repair shop.  Without a log, sweeps "
      "seeded replicates of the machine model and reports per-policy bootstrap CIs for "
      "availability and goodput; with a log, schedules it once per policy and prints a "
      "side-by-side summary.");
  parser.positional({"log.csv", "failure log (CSV or snapshot); omit to sweep the model", false});
  parser.option({"machine", "NAME", "tsubame-2 or tsubame-3", std::string("tsubame-3")});
  parser.option({"config", "STR",
                 "shop config: crews=N,policy=P,spares=CAT:N:LEAD;...,throttle=N,boost=F,"
                 "window=OFF/PERIOD/DUR",
                 std::string("crews=2,spares=GPU:2:336,throttle=1,boost=0.95")});
  parser.option({"policy", "NAME",
                 "score one policy (fifo, criticality-first, batched-windows) instead of all", {}});
  parser.option({"replicates", "N", "replicates (seeds) per policy in sweep mode",
                 std::string("20")});
  parser.option({"quick", "", "smoke preset: 4 replicates (overrides --replicates)", {}});
  parser.option({"jobs", "N",
                 "worker threads across replicates (0 = all hardware threads); results are "
                 "bit-identical for every value",
                 std::string("1")});
  parser.option({"seed", "N",
                 "base seed; sweep replicate r runs on a deterministic (seed, r) fork, direct "
                 "mode forks it for the goodput replay",
                 std::string("1")});
  parser.option({"level", "P", "confidence level for the aggregate CIs", std::string("0.95")});
  parser.option({"mix-jobs", "N", "synthetic job-mix size for goodput scoring",
                 std::string("400")});
  parser.option({"failures", "N", "override the calibrated failure count (sweep mode)", {}});
  parser.option(strict_option());
  parser.option(trace_option());
  parser.option(metrics_option());
  parser.option({"no-bursts", "", "disable temporal burst clustering (sweep mode)", {}});
  parser.option({"no-heterogeneity", "", "disable the lemon-node hazard mix (sweep mode)", {}});
  parser.option({"no-slot-weights", "", "disable non-uniform GPU slot selection (sweep mode)", {}});
  parser.option({"no-seasonal", "", "disable monthly intensity/TTR modulation (sweep mode)", {}});
  return parser;
}

Result<void> run_repairs(const ParsedArgs& args, std::ostream& out) {
  auto obs_request = resolve_obs(args);
  if (!obs_request.ok()) return obs_request.error();
  obs::SpanScope cli_span("cli.repairs");
  auto policies = resolve_repair_policies(args);
  if (!policies.ok()) return policies.error();
  auto seed = args.get_int("seed");
  if (!seed.ok()) return seed.error();
  auto mix_jobs = args.get_int("mix-jobs");
  if (!mix_jobs.ok()) return mix_jobs.error();
  if (mix_jobs.value() <= 0)
    return Error(ErrorKind::kDomain, "--mix-jobs must be positive");
  ops::JobMixSpec mix;
  mix.jobs = static_cast<std::size_t>(mix_jobs.value());

  if (!args.positionals().empty()) {
    // Direct mode: schedule the given log once per policy.
    auto log = load_log(args);
    if (!log.ok()) return log.error();
    out << "repair shop on " << log.value().size() << " failures ("
        << log.value().spec().name << ")\n\n";
    report::Table table({"Policy", "Avail", "Eff MTTR (h)", "Mean wait (h)", "Crew util",
                         "Peak queue", "Stockouts", "Unfinished", "Goodput (ckpt)"});
    table.set_alignment({report::Align::kLeft, report::Align::kRight, report::Align::kRight,
                         report::Align::kRight, report::Align::kRight, report::Align::kRight,
                         report::Align::kRight, report::Align::kRight, report::Align::kRight});
    for (const auto& policy : policies.value()) {
      auto shop = ops::run_repair_shop(log.value(), policy.config);
      if (!shop.ok()) return shop.error().with_context("policy '" + policy.label + "'");
      const ops::RepairShopResult& schedule = shop.value();
      const data::FailureLog effective = ops::effective_log(log.value(), schedule);
      double eff_mttr = 0.0;
      if (auto report = ops::analyze_availability(effective); report.ok())
        eff_mttr = report.value().mttr_hours;
      double goodput = 0.0;
      if (auto impact = ops::replay_job_impact(effective, mix,
                                               static_cast<std::uint64_t>(seed.value()));
          impact.ok())
        goodput = impact.value().goodput_ckpt;
      table.add_row({policy.label, report::fmt(schedule.availability, 5),
                     report::fmt(eff_mttr, 2), report::fmt(schedule.mean_wait_hours, 2),
                     report::fmt(schedule.crew_utilization, 3),
                     std::to_string(schedule.peak_queue_depth),
                     std::to_string(schedule.stockouts),
                     std::to_string(schedule.in_flight_at_horizon +
                                    schedule.unstarted_at_horizon),
                     report::fmt(goodput, 5)});
    }
    out << table.render();
    cli_span.stop();
    return write_obs_outputs(obs_request.value(), out);
  }

  // Sweep mode: score each policy over seeded replicates of the model.
  auto model = resolve_model(args);
  if (!model.ok()) return model.error();
  auto replicates_arg = args.get_int("replicates");
  if (!replicates_arg.ok()) return replicates_arg.error();
  const long long replicates = args.flag("quick") ? 4 : replicates_arg.value();
  if (replicates <= 0)
    return Error(ErrorKind::kDomain, "--replicates must be positive");
  auto jobs = args.get_int("jobs");
  if (!jobs.ok()) return jobs.error();
  if (jobs.value() < 0)
    return Error(ErrorKind::kDomain, "--jobs must be >= 0");
  auto level = args.get_double("level");
  if (!level.ok()) return level.error();

  ops::RepairSweepOptions options;
  options.sweep.base_seed = static_cast<std::uint64_t>(seed.value());
  options.sweep.replicates = static_cast<std::size_t>(replicates);
  options.sweep.jobs = static_cast<std::size_t>(jobs.value());
  options.sweep.ci_level = level.value();
  options.job_mix = mix;

  // The base config is what every variant shares; re-parse it for the
  // report header (resolve_repair_policies validated it already).
  auto base = ops::parse_repair_config(args.get("config").value());
  if (!base.ok()) return base.error().with_context("--config");
  auto sweep = ops::run_repair_policy_sweep(model.value(), std::move(policies).value(), options);
  if (!sweep.ok()) return sweep.error();
  out << report::render_repair_comparison(sweep.value(), base.value(), options.sweep);
  cli_span.stop();
  return write_obs_outputs(obs_request.value(), out);
}

// --- triage -----------------------------------------------------------------

ArgParser make_triage_parser() {
  ArgParser parser("triage", "Operator report: impact ranking and repeat-failure nodes.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option(strict_option());
  parser.option({"top", "N", "rows to show per section", std::string("10")});
  return parser;
}

Result<void> run_triage(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto top = args.get_int("top");
  if (!top.ok()) return top.error();
  auto availability = ops::analyze_availability(log.value());
  if (!availability.ok()) return availability.error();

  out << "unit availability " << report::fmt(availability.value().availability, 4) << ", MTTR "
      << report::fmt(availability.value().mttr_hours, 1) << " h, total downtime "
      << report::fmt(availability.value().total_downtime_hours, 0) << " node-hours\n\n";

  report::Table impact({"Category", "Failures", "Downtime share", "Impact ratio", "Worst TTR"});
  impact.set_alignment({report::Align::kLeft, report::Align::kRight, report::Align::kRight,
                        report::Align::kRight, report::Align::kRight});
  std::size_t shown = 0;
  for (const auto& row : availability.value().by_category) {
    if (static_cast<long long>(shown++) >= top.value()) break;
    impact.add_row({std::string(data::to_string(row.category)), std::to_string(row.failures),
                    report::fmt_percent(row.downtime_percent, 1),
                    report::fmt(row.impact_ratio, 2), report::fmt(row.max_ttr_hours, 0) + " h"});
  }
  out << impact.render() << "\n";

  auto survival = analysis::analyze_node_survival(log.value());
  if (survival.ok()) {
    out << "repeat-offender test (log-rank): ";
    if (survival.value().repeat_offender_test.has_value()) {
      out << "p = " << report::fmt(survival.value().repeat_offender_test->p_value, 4)
          << (survival.value().failed_nodes_refail_faster
                  ? " -> failed nodes re-fail significantly faster\n"
                  : " -> no significant repeat-offender effect\n");
    } else {
      out << "not computable on this log\n";
    }
  }

  auto policy = ops::evaluate_quarantine_policy(log.value(), 2);
  if (policy.ok()) {
    out << "servicing nodes after their 2nd failure would have avoided "
        << report::fmt_percent(policy.value().avoided_failure_percent, 1) << " of failures ("
        << report::fmt(policy.value().avoided_downtime_hours, 0) << " node-hours)\n";
  }

  if (auto capacity = ops::forecast_capacity(log.value()); capacity.ok()) {
    out << "capacity: expect " << report::fmt(capacity.value().expected_down_nodes, 1)
        << " nodes down at any time (measured "
        << report::fmt(capacity.value().measured_mean_down_nodes, 1) << ", peak "
        << report::fmt(capacity.value().measured_peak_down_nodes, 0) << "); provision "
        << capacity.value().provision_for_99 << " spares-in-place for 99% coverage\n";
  }
  return {};
}

// --- figures -------------------------------------------------------------

ArgParser make_figures_parser() {
  ArgParser parser("figures", "Export every paper-figure series for a log as CSV files.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"outdir", "DIR", "output directory", std::string("figures")});
  parser.option(strict_option());
  parser.option(jobs_option());
  return parser;
}

Result<void> run_figures(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto outdir = args.get("outdir");
  if (!outdir.ok()) return outdir.error();
  auto options = resolve_study_options(args);
  if (!options.ok()) return options.error();
  auto study = analysis::run_study(log.value(), options.value());
  if (!study.ok()) return study.error();
  const auto& s = study.value();
  std::size_t written = 0;

  const auto emit = [&](const report::FigureData& figure) -> Result<void> {
    auto result = report::export_figure(figure, outdir.value());
    if (!result.ok()) return result;
    ++written;
    return {};
  };

  report::FigureData categories{"categories", {"category", "count", "percent"}, {}};
  for (const auto& share : s.categories.categories) {
    categories.rows.push_back({std::string(data::to_string(share.category)),
                               std::to_string(share.count), report::fmt(share.percent)});
  }
  if (auto r = emit(categories); !r.ok()) return r;

  if (s.tbf.has_value()) {
    report::FigureData tbf{"tbf_cdf", {"tbf_hours", "cdf"}, {}};
    const auto ecdf = stats::Ecdf::create(s.tbf->tbf_hours).value();
    for (const auto& [x, y] : ecdf.curve(100))
      tbf.rows.push_back({report::fmt(x, 3), report::fmt(y, 4)});
    if (auto r = emit(tbf); !r.ok()) return r;
  }

  report::FigureData ttr{"ttr_cdf", {"ttr_hours", "cdf"}, {}};
  const auto ttr_ecdf = stats::Ecdf::create(s.ttr.ttr_hours).value();
  for (const auto& [x, y] : ttr_ecdf.curve(100))
    ttr.rows.push_back({report::fmt(x, 3), report::fmt(y, 4)});
  if (auto r = emit(ttr); !r.ok()) return r;

  report::FigureData nodes{"node_counts", {"failures_per_node", "nodes", "percent"}, {}};
  for (const auto& bucket : s.node_counts.buckets) {
    nodes.rows.push_back({std::to_string(bucket.failures), std::to_string(bucket.nodes),
                          report::fmt(bucket.percent_of_failed)});
  }
  if (auto r = emit(nodes); !r.ok()) return r;

  if (s.gpu_slots.has_value()) {
    report::FigureData slots{"gpu_slots", {"slot", "count", "percent"}, {}};
    for (const auto& slot : s.gpu_slots->slots) {
      slots.rows.push_back({std::to_string(slot.slot), std::to_string(slot.count),
                            report::fmt(slot.percent)});
    }
    if (auto r = emit(slots); !r.ok()) return r;
  }

  report::FigureData monthly{"monthly", {"month", "failures", "median_ttr", "exposure_days"}, {}};
  for (const auto& month : s.seasonal.monthly) {
    monthly.rows.push_back(
        {std::string(month_abbrev(month.month)), std::to_string(month.failures),
         month.box ? report::fmt(month.box->median, 2) : "",
         report::fmt(s.seasonal.exposure_days[static_cast<std::size_t>(month.month - 1)], 1)});
  }
  if (auto r = emit(monthly); !r.ok()) return r;

  out << "wrote " << written << " figure CSVs to " << outdir.value() << "/\n";
  return {};
}

// --- checkpoint ---------------------------------------------------------

ArgParser make_checkpoint_parser() {
  ArgParser parser("checkpoint", "Young/Daly checkpoint plan from a log's measured MTBF.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"cost-hours", "H", "time to write one checkpoint", std::string("0.25")});
  parser.option(strict_option());
  return parser;
}

Result<void> run_checkpoint(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto cost = args.get_double("cost-hours");
  if (!cost.ok()) return cost.error();
  auto tbf = analysis::analyze_tbf(log.value());
  if (!tbf.ok()) return tbf.error();
  auto plan = ops::plan_checkpointing(cost.value(), tbf.value().exposure_mtbf_hours);
  if (!plan.ok()) return plan.error();
  out << "measured MTBF: " << report::fmt(plan.value().mtbf_hours, 1) << " h\n"
      << "checkpoint cost: " << report::fmt(plan.value().checkpoint_cost_hours * 60.0, 0)
      << " min\n"
      << "Young interval: " << report::fmt(plan.value().young_hours, 2) << " h\n"
      << "Daly interval:  " << report::fmt(plan.value().daly_hours, 2) << " h\n"
      << "expected waste at Daly optimum: "
      << report::fmt_percent(100.0 * plan.value().waste_at_daly, 2) << " (efficiency "
      << report::fmt_percent(100.0 * plan.value().efficiency_at_daly, 2) << ")\n";
  return {};
}

// --- spares -----------------------------------------------------------------

ArgParser make_spares_parser() {
  ArgParser parser("spares", "Spare-pool sizing for one failure category.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"category", "NAME", "failure category (e.g. GPU, SSD)", std::string("GPU")});
  parser.option({"lead-days", "D", "restock lead time in days", std::string("14")});
  parser.option({"target", "P", "max acceptable stockout probability", std::string("0.05")});
  parser.option(strict_option());
  return parser;
}

Result<void> run_spares(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto category_name = args.get("category");
  if (!category_name.ok()) return category_name.error();
  auto category = data::parse_category(category_name.value());
  if (!category.ok()) return category.error();
  auto lead = args.get_double("lead-days");
  if (!lead.ok()) return lead.error();
  auto target = args.get_double("target");
  if (!target.ok()) return target.error();

  auto recommended =
      ops::recommend_spares(log.value(), category.value(), target.value(), lead.value() * 24.0);
  if (!recommended.ok()) return recommended.error();
  auto sim = ops::simulate_spares(log.value(), category.value(),
                                  {recommended.value(), lead.value() * 24.0});
  if (!sim.ok()) return sim.error();
  out << data::to_string(category.value()) << ": " << sim.value().demand_events
      << " part demands; keep " << recommended.value() << " spares on site ("
      << report::fmt(lead.value(), 0) << "-day restock) -> stockout probability "
      << report::fmt_percent(100.0 * sim.value().stockout_probability, 1) << ", peak "
      << sim.value().peak_outstanding << " parts on order\n";
  return {};
}

// --- predict ---------------------------------------------------------------

ArgParser make_predict_parser() {
  ArgParser parser("predict", "Backtest node-failure predictors on a log.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"top-k", "K", "watchlist size", std::string("20")});
  parser.option({"warmup", "F", "fraction of the log used as warm-up", std::string("0.3")});
  parser.option(strict_option());
  return parser;
}

Result<void> run_predict(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto top_k = args.get_int("top-k");
  if (!top_k.ok()) return top_k.error();
  auto warmup = args.get_double("warmup");
  if (!warmup.ok()) return warmup.error();
  if (top_k.value() <= 0)
    return Error(ErrorKind::kDomain, "--top-k must be positive");
  auto reports = predict::compare_predictors(log.value(), warmup.value(),
                                             static_cast<std::size_t>(top_k.value()));
  if (!reports.ok()) return reports.error();

  report::Table table({"Predictor", "Queries", "Hit@" + std::to_string(top_k.value()),
                       "Lift over random", "MRR"});
  table.set_alignment({report::Align::kLeft, report::Align::kRight, report::Align::kRight,
                       report::Align::kRight, report::Align::kRight});
  for (const auto& report : reports.value()) {
    table.add_row({report.predictor, std::to_string(report.queries),
                   report::fmt_percent(100.0 * report.hit_rate_at_k, 1),
                   report::fmt(report.lift_at_k, 1) + "x",
                   report::fmt(report.mean_reciprocal_rank, 4)});
  }
  out << table.render();
  out << "\nreading: a top-" << top_k.value() << " watchlist from the best predictor catches "
      << report::fmt_percent(100.0 * reports.value().front().hit_rate_at_k, 1)
      << " of failures before they happen.\n";
  return {};
}

// --- report ----------------------------------------------------------------

ArgParser make_report_parser() {
  ArgParser parser("report", "Render the full study as a markdown report.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"out", "FILE", "write to a file instead of stdout", {}});
  parser.option({"title", "TEXT", "report title", {}});
  parser.option({"no-extensions", "", "omit survival/trends/racks sections", {}});
  parser.option(strict_option());
  parser.option(jobs_option());
  parser.option(trace_option());
  parser.option(metrics_option());
  return parser;
}

Result<void> run_report(const ParsedArgs& args, std::ostream& out) {
  auto obs_request = resolve_obs(args);
  if (!obs_request.ok()) return obs_request.error();
  obs::SpanScope cli_span("cli.report");
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto study_options = resolve_study_options(args);
  if (!study_options.ok()) return study_options.error();
  report::MarkdownOptions options;
  if (args.has("title")) options.title = args.get("title").value();
  options.include_extensions = !args.flag("no-extensions");
  options.jobs = study_options.value().jobs;
  auto markdown = report::render_markdown_report(log.value(), options);
  if (!markdown.ok()) return markdown.error();
  if (args.has("out")) {
    const std::string path = args.get("out").value();
    std::ofstream file(path, std::ios::binary);
    if (!file)
      return Error(ErrorKind::kIo, "cannot open report file: " + path);
    file << markdown.value();
    if (!file.flush())
      return Error(ErrorKind::kIo, "write error on report file: " + path);
    out << "wrote markdown report to " << path << "\n";
  } else {
    out << markdown.value();
  }
  cli_span.stop();
  return write_obs_outputs(obs_request.value(), out);
}

// --- import ----------------------------------------------------------------

ArgParser make_import_parser() {
  ArgParser parser("import",
                   "Convert a legacy-v1 operator log (see src/data/legacy_import.h) to the "
                   "canonical CSV schema.");
  parser.positional({"legacy.log", "legacy-v1 input file", true});
  parser.positional({"out.csv", "canonical CSV output path", true});
  parser.option(strict_option());
  return parser;
}

Result<void> run_import(const ParsedArgs& args, std::ostream& out) {
  const auto policy = args.flag("strict") ? data::ReadPolicy::kStrict : data::ReadPolicy::kLenient;
  auto report = data::import_legacy_v1_file(args.positionals()[0], policy);
  if (!report.ok()) return report.error();
  for (const auto& row_error : report.value().row_errors) {
    out << "warning: skipped line " << row_error.line_number << ": " << row_error.message
        << "\n";
  }
  if (auto written = data::write_log_file(args.positionals()[1], report.value().log);
      !written.ok())
    return written.error();
  out << "imported " << report.value().log.size() << " failures ("
      << report.value().row_errors.size() << " lines skipped) -> " << args.positionals()[1]
      << "\n";
  return {};
}

// --- pack / unpack ---------------------------------------------------------

ArgParser make_pack_parser() {
  ArgParser parser("pack",
                   "Pack a failure log into a columnar .tsnap snapshot: an mmap-able binary "
                   "with per-section checksums that loads orders of magnitude faster than "
                   "CSV and (by default) carries the precomputed analysis index "
                   "(DESIGN.md section 14).");
  parser.positional({"log.csv", "input log: canonical CSV (or an existing snapshot)", true});
  parser.positional({"out.tsnap", "snapshot output path (written atomically)", true});
  parser.option({"no-index", "", "omit the precomputed index sections (records only)", {}});
  parser.option(
      {"verify", "", "re-open the written file and require a byte-identical re-pack", {}});
  parser.option(strict_option());
  return parser;
}

Result<void> run_pack(const ParsedArgs& args, std::ostream& out) {
  const std::string& out_path = args.positionals()[1];
  if (auto ok = validate_writable_path(out_path); !ok.ok()) return ok.error();
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  const bool with_index = !args.flag("no-index");
  std::string bytes;
  if (with_index) {
    const data::LogIndex index(log.value());
    bytes = data::pack_columnar(log.value(), &index);
  } else {
    bytes = data::pack_columnar(log.value());
  }
  if (auto written = data::write_columnar_file(out_path, bytes); !written.ok())
    return written.error();
  out << "packed " << log.value().size() << " failures ("
      << (with_index ? "records + index" : "records only") << ", " << bytes.size()
      << " bytes) -> " << out_path << "\n";
  if (args.flag("verify")) {
    auto reloaded = data::ColumnarSnapshot::open(out_path);
    if (!reloaded.ok()) return reloaded.error().with_context("verify");
    const data::FailureLog roundtrip = reloaded.value()->to_log();
    std::string repacked;
    if (with_index) {
      const data::LogIndex index(roundtrip);
      repacked = data::pack_columnar(roundtrip, &index);
    } else {
      repacked = data::pack_columnar(roundtrip);
    }
    if (repacked != bytes)
      return Error(ErrorKind::kInternal,
                   "verify: re-packing the loaded snapshot did not reproduce the file");
    out << "verify: OK (load -> re-pack is byte-identical, "
        << (reloaded.value()->mapped() ? "mmap" : "stream") << " load)\n";
  }
  return {};
}

ArgParser make_unpack_parser() {
  ArgParser parser("unpack",
                   "Expand a columnar .tsnap snapshot back to the canonical CSV schema.");
  parser.positional({"in.tsnap", "packed snapshot", true});
  parser.positional({"out.csv", "CSV output path", true});
  return parser;
}

Result<void> run_unpack(const ParsedArgs& args, std::ostream& out) {
  if (auto ok = validate_writable_path(args.positionals()[1]); !ok.ok()) return ok.error();
  auto snapshot = data::ColumnarSnapshot::open(args.positionals()[0]);
  if (!snapshot.ok()) return snapshot.error();
  const data::FailureLog log = snapshot.value()->to_log();
  if (auto written = data::write_log_file(args.positionals()[1], log); !written.ok())
    return written.error();
  out << "unpacked " << log.size() << " failures -> " << args.positionals()[1] << "\n";
  return {};
}

// --- trends ----------------------------------------------------------------

ArgParser make_trends_parser() {
  ArgParser parser("trends", "Rolling-window MTBF/MTTR trends over the system lifetime.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"window-days", "D", "rolling window length", std::string("60")});
  parser.option({"step-days", "D", "window step", std::string("30")});
  parser.option(strict_option());
  return parser;
}

Result<void> run_trends(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto window = args.get_double("window-days");
  if (!window.ok()) return window.error();
  auto step = args.get_double("step-days");
  if (!step.ok()) return step.error();
  auto trends = analysis::analyze_rolling_trends(log.value(), window.value(), step.value());
  if (!trends.ok()) return trends.error();

  report::Table table({"Window center", "Failures", "Failures/day", "MTBF", "MTTR"});
  table.set_alignment({report::Align::kLeft, report::Align::kRight, report::Align::kRight,
                       report::Align::kRight, report::Align::kRight});
  for (const auto& w : trends.value().windows) {
    table.add_row({format_date(log.value().spec().log_start.plus_hours(w.center_hours)),
                   std::to_string(w.failures), report::fmt(w.failures_per_day, 2),
                   w.failures > 0 ? report::fmt(w.mtbf_hours, 1) + " h" : "-",
                   w.failures > 0 ? report::fmt(w.mttr_hours, 1) + " h" : "-"});
  }
  out << table.render() << "\n";
  out << "failure-rate trend: " << report::fmt(trends.value().rate_trend.slope * 24.0 * 365.0, 3)
      << " failures/day per year (p = "
      << report::fmt(trends.value().rate_trend.slope_p_value, 3) << ")\n";
  out << "MTTR trend: " << report::fmt(trends.value().mttr_trend.slope * 24.0 * 365.0, 2)
      << " h per year (p = " << report::fmt(trends.value().mttr_trend.slope_p_value, 3) << ")\n";
  out << "early/late quarter failure-rate ratio: "
      << report::fmt(trends.value().early_late_rate_ratio, 2)
      << (trends.value().early_late_rate_ratio > 1.3
              ? " (burn-in: the machine got more reliable)\n"
              : trends.value().early_late_rate_ratio < 0.7
                    ? " (wear-out: the machine is degrading)\n"
                    : " (stationary)\n");
  return {};
}

// --- racks -----------------------------------------------------------------

ArgParser make_racks_parser() {
  ArgParser parser("racks", "Rack-level spatial distribution of failures.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"top", "N", "racks to list", std::string("10")});
  parser.option(strict_option());
  return parser;
}

Result<void> run_racks(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto top = args.get_int("top");
  if (!top.ok()) return top.error();
  auto racks = analysis::analyze_racks(log.value());
  if (!racks.ok()) return racks.error();

  report::Table table({"Rack", "Failures", "Share", "Failures/node"});
  table.set_alignment({report::Align::kRight, report::Align::kRight, report::Align::kRight,
                       report::Align::kRight});
  long long shown = 0;
  for (const auto& rack : racks.value().racks) {
    if (shown++ >= top.value()) break;
    table.add_row({std::to_string(rack.rack), std::to_string(rack.failures),
                   report::fmt_percent(rack.percent, 1), report::fmt(rack.per_node_rate, 3)});
  }
  out << table.render() << "\n";
  out << racks.value().racks_with_failures << " of " << racks.value().total_racks
      << " racks saw failures; " << racks.value().racks_holding_half
      << " racks hold half of them (Gini " << report::fmt(racks.value().gini, 3) << ")\n";
  out << "uniformity chi-square p-value: "
      << report::fmt(racks.value().uniformity_p_value, 4)
      << (racks.value().uniformity_p_value < 0.05 ? " -> spatially non-uniform\n"
                                                  : " -> consistent with uniform\n");
  return {};
}

// --- couplings --------------------------------------------------------------

ArgParser make_couplings_parser() {
  ArgParser parser("couplings",
                   "Cross-category lead-lag couplings: does a failure of one category raise "
                   "the short-term rate of another?");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"window-hours", "H", "post-event window", std::string("72")});
  parser.option({"min-events", "N", "ignore categories with fewer events", std::string("8")});
  parser.option({"top", "N", "pairs to show", std::string("10")});
  parser.option(strict_option());
  return parser;
}

Result<void> run_couplings(const ParsedArgs& args, std::ostream& out) {
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto window = args.get_double("window-hours");
  if (!window.ok()) return window.error();
  auto min_events = args.get_int("min-events");
  if (!min_events.ok()) return min_events.error();
  auto top = args.get_int("top");
  if (!top.ok()) return top.error();
  if (min_events.value() < 1)
    return Error(ErrorKind::kDomain, "--min-events must be >= 1");
  auto analysis = analysis::analyze_lead_lag(log.value(), window.value(),
                                             static_cast<std::size_t>(min_events.value()));
  if (!analysis.ok()) return analysis.error();

  report::Table table({"Leader -> Follower", "Observed", "Expected", "Lift", "z"});
  table.set_alignment({report::Align::kLeft, report::Align::kRight, report::Align::kRight,
                       report::Align::kRight, report::Align::kRight});
  long long shown = 0;
  for (const auto& pair : analysis.value().pairs) {
    if (shown++ >= top.value()) break;
    table.add_row({std::string(data::to_string(pair.leader)) + " -> " +
                       std::string(data::to_string(pair.follower)),
                   report::fmt(pair.observed, 0), report::fmt(pair.expected, 1),
                   report::fmt(pair.lift, 2), report::fmt(pair.z_score, 1)});
  }
  out << table.render();
  out << "\nz > ~3 marks a coupling unlikely under independence; self-pairs measure\n"
         "burstiness of a single category.\n";
  return {};
}

// --- watch ------------------------------------------------------------------

ArgParser make_watch_parser() {
  ArgParser parser("watch",
                   "Replay a failure log through the streaming monitor, printing alerts and "
                   "periodic health summaries.");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option({"reorder-hours", "H", "reorder horizon of the event stream", std::string("24")});
  parser.option({"window-days", "D", "rolling MTBF/MTTR window length", std::string("60")});
  parser.option({"step-days", "D", "rolling window step", std::string("30")});
  parser.option({"rate-tau-days", "D", "EWMA rate time constant", std::string("7")});
  parser.option({"burst-window-hours", "H", "multi-GPU burst detection window",
                 std::string("72")});
  parser.option({"burst-size", "N", "multi-GPU events in the window that raise an alert",
                 std::string("3")});
  parser.option({"expected-failures", "N",
                 "historical failure count calibrating the MTBF/rate baselines "
                 "(default: the machine's paper count)",
                 {}});
  parser.option({"summary-every", "N", "print a health line every N failures (0 = off)",
                 std::string("100")});
  parser.option({"pace-ms", "MS", "replay delay per event in milliseconds (0 = instant)",
                 std::string("0")});
  parser.option({"max-lag-events", "N",
                 "SLO ceiling on alert-engine lag (accepted minus released events); the final "
                 "summary reports the objective's burn state",
                 std::string("512")});
  parser.option(strict_option());
  parser.option(trace_option());
  parser.option(metrics_option());
  return parser;
}

Result<void> run_watch(const ParsedArgs& args, std::ostream& out) {
  auto obs_request = resolve_obs(args);
  if (!obs_request.ok()) return obs_request.error();
  obs::SpanScope cli_span("cli.watch");
  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto reorder = args.get_double("reorder-hours");
  if (!reorder.ok()) return reorder.error();
  auto window_days = args.get_double("window-days");
  if (!window_days.ok()) return window_days.error();
  auto step_days = args.get_double("step-days");
  if (!step_days.ok()) return step_days.error();
  auto rate_tau = args.get_double("rate-tau-days");
  if (!rate_tau.ok()) return rate_tau.error();
  auto burst_window = args.get_double("burst-window-hours");
  if (!burst_window.ok()) return burst_window.error();
  auto burst_size = args.get_int("burst-size");
  if (!burst_size.ok()) return burst_size.error();
  auto summary_every = args.get_int("summary-every");
  if (!summary_every.ok()) return summary_every.error();
  auto pace_ms = args.get_int("pace-ms");
  if (!pace_ms.ok()) return pace_ms.error();
  auto max_lag = args.get_int("max-lag-events");
  if (!max_lag.ok()) return max_lag.error();
  if (max_lag.value() <= 0)
    return Error(ErrorKind::kDomain, "--max-lag-events must be positive");
  if (burst_size.value() <= 0)
    return Error(ErrorKind::kDomain, "--burst-size must be positive");
  if (summary_every.value() < 0 || pace_ms.value() < 0)
    return Error(ErrorKind::kDomain, "--summary-every and --pace-ms must be >= 0");

  const data::MachineSpec& spec = log.value().spec();
  std::size_t expected_failures = stream::paper_expected_failures(spec);
  if (args.has("expected-failures")) {
    auto expected = args.get_int("expected-failures");
    if (!expected.ok()) return expected.error();
    if (expected.value() <= 0)
      return Error(ErrorKind::kDomain, "--expected-failures must be positive");
    expected_failures = static_cast<std::size_t>(expected.value());
  }

  stream::StreamConfig stream_config;
  stream_config.reorder_horizon_hours = reorder.value();
  auto events = stream::EventStream::create(spec, stream_config);
  if (!events.ok()) return events.error();

  stream::MonitorConfig monitor_config;
  monitor_config.window_days = window_days.value();
  monitor_config.step_days = step_days.value();
  monitor_config.rate_tau_hours = rate_tau.value() * 24.0;
  monitor_config.burst_window_hours = burst_window.value();
  auto monitor = stream::HealthMonitor::create(spec, monitor_config);
  if (!monitor.ok()) return monitor.error();

  auto engine = stream::AlertEngine::create(stream::default_rules(
      spec, {expected_failures, static_cast<double>(burst_size.value())}));
  if (!engine.ok()) return engine.error();

  out << "watching " << spec.name << ": " << log.value().size() << " failures, reorder horizon "
      << report::fmt(reorder.value(), 0) << " h, " << engine.value().rules().size()
      << " alert rules\n";

  const auto print_summary = [&](const stream::HealthSnapshot& health) {
    out << "[" << format_time(health.as_of) << "] events=" << health.events
        << " rate=" << report::fmt(health.ewma_failures_per_day, 2) << "/day";
    if (health.window.has_value() && health.window->failures > 0)
      out << " window-mtbf=" << report::fmt(health.window->mtbf_hours, 1) << "h";
    out << " p95-ttr=" << report::fmt(health.ttr_p95_hours, 1) << "h"
        << " burst=" << health.multi_gpu_burst_size << "\n";
  };

  // Current estimator values mirrored as gauges, so `watch --metrics`
  // exports the monitor's live state next to the stream/alert counters.
  static obs::Gauge rate_gauge = obs::gauge("health.ewma_failures_per_day");
  static obs::Gauge p95_gauge = obs::gauge("health.ttr_p95_hours");
  static obs::Gauge burst_gauge = obs::gauge("health.multi_gpu_burst_size");
  static obs::Gauge skew_gauge = obs::gauge("health.slot_skew");
  static obs::Gauge events_gauge = obs::gauge("health.events");
  static obs::Gauge active_gauge = obs::gauge("alerts.active");
  static obs::Gauge lag_gauge = obs::gauge("watch.lag_events");

  // Alert-engine lag (records accepted into the reorder buffer but not
  // yet released to the monitor) as a staleness SLO: any evaluation tick
  // with lag above --max-lag-events burns the budget.
  obs::SloEngine slo;
  {
    obs::SloObjective lag_objective;
    lag_objective.name = "watch.alert_lag";
    lag_objective.kind = obs::SloKind::kStalenessMax;
    lag_objective.metric = "watch.lag_events";
    lag_objective.threshold = static_cast<double>(max_lag.value());
    lag_objective.budget = 0.1;
    slo.add_objective(std::move(lag_objective));
  }
  slo.tick(obs::collect_metrics(), obs::now_ns());  // baseline entry

  std::uint64_t processed = 0;
  const auto consume = [&](const data::FailureRecord& record) {
    OBS_SPAN("watch.consume");
    monitor.value().observe(record);
    const auto health = monitor.value().snapshot();
    for (const auto& alert : engine.value().evaluate(health))
      out << stream::format_alert(alert) << "\n";
    if (obs::enabled()) {
      rate_gauge.set(health.ewma_failures_per_day);
      p95_gauge.set(health.ttr_p95_hours);
      burst_gauge.set(static_cast<double>(health.multi_gpu_burst_size));
      skew_gauge.set(health.slot_skew);
      events_gauge.set(static_cast<double>(health.events));
      active_gauge.set(static_cast<double>(engine.value().active().size()));
      const auto& lag_stats = events.value().stats();
      lag_gauge.set(static_cast<double>(lag_stats.accepted - lag_stats.released));
    }
    ++processed;
    if (summary_every.value() > 0 &&
        processed % static_cast<std::uint64_t>(summary_every.value()) == 0)
      print_summary(health);
  };

  stream::StreamCursor cursor(events.value());
  std::uint64_t offered = 0;
  for (const auto& record : log.value().records()) {
    if (pace_ms.value() > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms.value()));
    auto outcome = events.value().offer(record);
    if (!outcome.ok()) return outcome.error();
    cursor.drain(consume);
    if (++offered % 256 == 0) slo.tick(obs::collect_metrics(), obs::now_ns());
  }
  events.value().finish();
  cursor.drain(consume);
  monitor.value().finish();
  slo.tick(obs::collect_metrics(), obs::now_ns());

  const auto& stats = events.value().stats();
  const auto health = monitor.value().snapshot();
  out << "\n-- final --\n";
  print_summary(health);
  out << "stream: offered=" << stats.offered << " released=" << stats.released
      << " quarantined=" << (stats.quarantined_invalid + stats.quarantined_late)
      << " duplicates=" << stats.rejected_duplicates << "\n";
  for (const auto& entry : events.value().quarantine())
    out << "quarantined: " << entry.error.to_string() << "\n";
  out << "alerts raised: " << engine.value().raised_total() << ", cleared "
      << engine.value().cleared_total();
  const auto active = engine.value().active();
  if (!active.empty()) {
    out << "; still active:";
    for (const auto& name : active) out << " " << name;
  }
  out << "\n";
  const auto rules_view = engine.value().rules();
  const auto activity = engine.value().activity();
  for (std::size_t i = 0; i < rules_view.size(); ++i) {
    if (activity[i].fired == 0 && activity[i].cleared == 0) continue;
    out << "  rule " << rules_view[i].name << ": fired " << activity[i].fired << ", cleared "
        << activity[i].cleared << "\n";
  }
  if (auto trends = monitor.value().trends(); trends.ok()) {
    out << "failure-rate trend: "
        << report::fmt(trends.value().rate_trend.slope * 24.0 * 365.0, 3)
        << " failures/day per year (p = "
        << report::fmt(trends.value().rate_trend.slope_p_value, 3) << ")\n";
  }
  for (const auto& status : slo.evaluate(obs::now_ns()))
    out << "slo " << status.objective << ": " << obs::slo_state_name(status.state) << " ("
        << status.reason << ")\n";
  cli_span.stop();
  return write_obs_outputs(obs_request.value(), out);
}

// --- profile ----------------------------------------------------------------

ArgParser make_profile_parser() {
  ArgParser parser("profile",
                   "Run the study under tracing and print the top spans by self time "
                   "(where the pipeline actually spends its wall clock).");
  parser.positional({"log.csv", "failure log in tsufail CSV format", true});
  parser.option(jobs_option());
  parser.option({"runs", "N", "study repetitions to aggregate", std::string("1")});
  parser.option({"top", "N", "rows in the self-time table", std::string("15")});
  parser.option(strict_option());
  parser.option(trace_option());
  parser.option(metrics_option());
  return parser;
}

Result<void> run_profile(const ParsedArgs& args, std::ostream& out) {
  auto obs_request = resolve_obs(args);
  if (!obs_request.ok()) return obs_request.error();
  auto runs = args.get_int("runs");
  if (!runs.ok()) return runs.error();
  auto top = args.get_int("top");
  if (!top.ok()) return top.error();
  if (runs.value() <= 0 || top.value() <= 0)
    return Error(ErrorKind::kDomain, "--runs and --top must be positive");
  if (!obs::kCompiledIn)
    return Error(ErrorKind::kInternal,
                 "this build has TSUFAIL_OBS_DISABLE: profile cannot record spans");

  // profile records even without --trace/--metrics: the table *is* the
  // product here, so always reset and enable.
  if (!obs_request.value().any()) {
    obs::reset_trace();
    obs::reset_metrics();
    obs::set_enabled(true);
  }
  obs::SpanScope cli_span("cli.profile");

  auto log = load_log(args);
  if (!log.ok()) return log.error();
  auto options = resolve_study_options(args);
  if (!options.ok()) return options.error();
  for (long long run = 0; run < runs.value(); ++run) {
    auto study = analysis::run_study(log.value(), options.value());
    if (!study.ok()) return study.error();
  }
  cli_span.stop();

  const auto snapshot = obs::collect_trace();
  out << "profile: " << log.value().size() << " failures, " << runs.value() << " run"
      << (runs.value() == 1 ? "" : "s") << ", jobs " << options.value().jobs << ", "
      << snapshot.span_count() << " spans\n\n";
  out << obs::profile_table(obs::profile(snapshot), static_cast<std::size_t>(top.value()));
  return write_obs_outputs(obs_request.value(), out);
}

// --- serve ------------------------------------------------------------------

std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) { g_serve_stop.store(true); }

ArgParser make_serve_parser() {
  ArgParser parser("serve",
                   "Run the multi-tenant fleet service: line-protocol + HTTP ingest/query "
                   "daemon with epoch-indexed snapshots and a shared result cache.");
  parser.option({"host", "ADDR", "listen address", std::string("127.0.0.1")});
  parser.option({"port", "N", "TCP port (0 = kernel-assigned, printed on startup)",
                 std::string("0")});
  parser.option({"cache-capacity", "N", "query-cache entries across all tenants (0 = off)",
                 std::string("256")});
  parser.option({"epoch-every", "N",
                 "auto-seal a tenant once N released records are pending (0 = manual SEAL)",
                 std::string("0")});
  parser.option({"reorder-hours", "H", "reorder horizon for every tenant's event stream",
                 std::string("24")});
  parser.option({"slack-hours", "H", "validation slack for ingested records",
                 std::string("0")});
  parser.option(jobs_option());
  parser.option({"max-line-bytes", "N", "longest accepted protocol line",
                 std::string("1048576")});
  parser.option({"no-alerts", "", "disable the per-tenant alert engines", {}});
  parser.option({"data-dir", "DIR",
                 "persist sealed epochs as columnar segments under DIR/<tenant>/ and "
                 "re-mount any fleets already there on startup",
                 std::string("")});
  parser.option({"slo-query-p99", "S", "latency objective for the query SLO (seconds)",
                 std::string("0.1")});
  parser.option({"slo-tick-ms", "MS", "SLO evaluation / exemplar-window period",
                 std::string("1000")});
  parser.option(trace_option());
  return parser;
}

Result<void> run_serve(const ParsedArgs& args, std::ostream& out) {
  auto port = args.get_int("port");
  if (!port.ok()) return port.error();
  auto host = args.get("host");
  if (!host.ok()) return host.error();
  auto cache_capacity = args.get_int("cache-capacity");
  if (!cache_capacity.ok()) return cache_capacity.error();
  auto epoch_every = args.get_int("epoch-every");
  if (!epoch_every.ok()) return epoch_every.error();
  auto reorder = args.get_double("reorder-hours");
  if (!reorder.ok()) return reorder.error();
  auto slack = args.get_double("slack-hours");
  if (!slack.ok()) return slack.error();
  auto jobs = args.get_int("jobs");
  if (!jobs.ok()) return jobs.error();
  auto max_line = args.get_int("max-line-bytes");
  if (!max_line.ok()) return max_line.error();
  if (port.value() < 0 || port.value() > 65535)
    return Error(ErrorKind::kDomain, "--port must be in [0, 65535]");
  if (cache_capacity.value() < 0 || epoch_every.value() < 0 || jobs.value() < 0)
    return Error(ErrorKind::kDomain,
                 "--cache-capacity, --epoch-every and --jobs must be >= 0");
  if (max_line.value() <= 0) return Error(ErrorKind::kDomain, "--max-line-bytes must be positive");
  auto slo_p99 = args.get_double("slo-query-p99");
  if (!slo_p99.ok()) return slo_p99.error();
  auto slo_tick_ms = args.get_int("slo-tick-ms");
  if (!slo_tick_ms.ok()) return slo_tick_ms.error();
  if (slo_p99.value() <= 0.0 || slo_tick_ms.value() <= 0)
    return Error(ErrorKind::kDomain, "--slo-query-p99 and --slo-tick-ms must be positive");
  std::optional<std::string> trace_path;
  if (args.has("trace")) {
    trace_path = args.get("trace").value();
    if (auto ok = validate_writable_path(*trace_path); !ok.ok())
      return ok.error().with_context("--trace");
    if (!obs::kCompiledIn)
      return Error(ErrorKind::kInternal,
                   "this build has TSUFAIL_OBS_DISABLE: --trace cannot record");
    obs::reset_trace();
  }

  // The metrics endpoint is part of the product, so serve always runs
  // with obs enabled (unlike the one-shot commands' --metrics opt-in).
  obs::set_enabled(true);

  serve::ServiceConfig config;
  config.cache_capacity = static_cast<std::size_t>(cache_capacity.value());
  config.study_jobs = static_cast<std::size_t>(jobs.value());
  config.slo.query_p99_seconds = slo_p99.value();
  config.tenant.stream.reorder_horizon_hours = reorder.value();
  config.tenant.slack_hours = slack.value();
  config.tenant.auto_epoch_events = static_cast<std::uint64_t>(epoch_every.value());
  config.tenant.alerts = !args.flag("no-alerts");
  auto data_dir = args.get("data-dir");
  if (!data_dir.ok()) return data_dir.error();
  config.tenant.data_dir = data_dir.value();
  serve::FleetService service(config);

  if (!config.tenant.data_dir.empty()) {
    auto restored = service.restore_tenants();
    if (!restored.ok()) return restored.error();
    if (restored.value() > 0)
      out << "re-mounted " << restored.value() << " tenant"
          << (restored.value() == 1 ? "" : "s") << " from " << config.tenant.data_dir << "\n";
  }

  serve::ServerConfig server_config;
  server_config.host = host.value();
  server_config.port = static_cast<std::uint16_t>(port.value());
  server_config.protocol.max_line_bytes = static_cast<std::size_t>(max_line.value());
  auto server = serve::Server::start(service, server_config);
  if (!server.ok()) return server.error();

  out << "tsufail serve listening on " << host.value() << ":" << server.value()->port() << "\n"
      << "line protocol: OPEN/EVENT/SEAL/QUERY/STATS/ALERTS/TENANTS/KEYS/METRICS/SLO/PING/QUIT\n"
      << "http: /metrics /slo /healthz /tenants /stats/<tenant> /query/<tenant>/<key>\n"
      << std::flush;

  g_serve_stop.store(false);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  // The main thread doubles as the SLO cadence: sleep in 100ms slices
  // for signal responsiveness, tick every --slo-tick-ms.
  const auto tick_period = std::chrono::milliseconds(slo_tick_ms.value());
  auto next_tick = std::chrono::steady_clock::now() + tick_period;
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (std::chrono::steady_clock::now() >= next_tick) {
      service.slo_tick();
      next_tick += tick_period;
    }
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  server.value()->stop();
  service.slo_tick();  // final entry so short-lived runs still evaluate
  if (trace_path.has_value()) {
    if (auto written =
            write_text_file(*trace_path, obs::chrome_trace_json(obs::collect_trace()));
        !written.ok())
      return written.error().with_context("--trace");
    out << "\nwrote trace " << *trace_path << "\n";
  }
  const auto cache = service.cache_stats();
  out << "\nshutting down: " << service.tenant_names().size() << " tenants, cache hits "
      << cache.hits << " / misses " << cache.misses << "\n";
  return {};
}

// --- top --------------------------------------------------------------------

std::atomic<bool> g_top_stop{false};

void top_signal_handler(int) { g_top_stop.store(true); }

ArgParser make_top_parser() {
  ArgParser parser("top",
                   "Live dashboard for a running serve daemon: SLO burn state, fleet query "
                   "latency, and per-tenant ingest counters.");
  parser.option({"connect", "HOST:PORT", "serve daemon address", std::string("127.0.0.1:7070")});
  parser.option({"once", "", "render one plain-text frame and exit (for pipes and tests)", {}});
  parser.option({"interval-ms", "MS", "refresh period in live mode", std::string("2000")});
  parser.option({"frames", "N", "stop live mode after N frames (0 = until SIGINT)",
                 std::string("0")});
  return parser;
}

Result<void> run_top(const ParsedArgs& args, std::ostream& out) {
  auto target = args.get("connect");
  if (!target.ok()) return target.error();
  auto interval = args.get_int("interval-ms");
  if (!interval.ok()) return interval.error();
  auto frames = args.get_int("frames");
  if (!frames.ok()) return frames.error();
  if (interval.value() <= 0) return Error(ErrorKind::kDomain, "--interval-ms must be positive");
  if (frames.value() < 0) return Error(ErrorKind::kDomain, "--frames must be >= 0");
  const std::size_t colon = target.value().rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == target.value().size())
    return Error(ErrorKind::kValidation, "--connect expects HOST:PORT");
  const std::string host = target.value().substr(0, colon);
  const std::string port = target.value().substr(colon + 1);

  serve::LineClient client;
  if (auto connected = client.connect(host, port); !connected.ok()) return connected.error();

  if (args.flag("once")) {
    auto snapshot = serve::fetch_top(client, target.value());
    if (!snapshot.ok()) return snapshot.error();
    out << serve::render_top(snapshot.value(), /*ansi=*/false);
    return {};
  }

  g_top_stop.store(false);
  std::signal(SIGINT, top_signal_handler);
  std::signal(SIGTERM, top_signal_handler);
  long long rendered = 0;
  Result<void> outcome = Result<void>{};
  while (!g_top_stop.load()) {
    auto snapshot = serve::fetch_top(client, target.value());
    if (!snapshot.ok()) {
      outcome = snapshot.error();
      break;
    }
    out << serve::render_top(snapshot.value(), /*ansi=*/true) << std::flush;
    if (frames.value() > 0 && ++rendered >= frames.value()) break;
    // Sleep in slices so Ctrl-C lands within ~100ms, not a full interval.
    for (long long slept = 0; slept < interval.value() && !g_top_stop.load(); slept += 100)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min<long long>(100, interval.value() - slept)));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  if (outcome.ok()) out << "\n";
  return outcome;
}

// --- compare --------------------------------------------------------------

ArgParser make_compare_parser() {
  ArgParser parser("compare", "Cross-generation comparison of two logs (older, newer).");
  parser.positional({"older.csv", "older system's log", true});
  parser.positional({"newer.csv", "newer system's log", true});
  parser.option(strict_option());
  return parser;
}

Result<void> run_compare(const ParsedArgs& args, std::ostream& out) {
  auto older = load_log(args, 0);
  if (!older.ok()) return older.error().with_context("older log");
  auto newer = load_log(args, 1);
  if (!newer.ok()) return newer.error().with_context("newer log");
  auto cmp = analysis::compare_generations(older.value(), newer.value());
  if (!cmp.ok()) return cmp.error();

  report::Table table({"Metric", older.value().spec().name, newer.value().spec().name, "Ratio"});
  table.set_alignment({report::Align::kLeft, report::Align::kRight, report::Align::kRight,
                       report::Align::kRight});
  table.add_row({"failures", std::to_string(older.value().size()),
                 std::to_string(newer.value().size()), ""});
  table.add_row({"Rpeak (PFlop/s)", report::fmt(cmp.value().older.rpeak_pflops, 1),
                 report::fmt(cmp.value().newer.rpeak_pflops, 1),
                 report::fmt(cmp.value().compute_ratio, 2) + "x"});
  table.add_row({"MTBF (h)", report::fmt(cmp.value().older.mtbf_hours, 1),
                 report::fmt(cmp.value().newer.mtbf_hours, 1),
                 report::fmt(cmp.value().mtbf_ratio, 2) + "x"});
  table.add_row({"FLOP x MTBF (PFlop-h)",
                 report::fmt(cmp.value().older.pflop_hours_per_failure_free_period, 0),
                 report::fmt(cmp.value().newer.pflop_hours_per_failure_free_period, 0),
                 report::fmt(cmp.value().metric_ratio, 1) + "x"});
  table.add_row({"GPU+CPU components", std::to_string(cmp.value().older.components),
                 std::to_string(cmp.value().newer.components),
                 report::fmt(1.0 / cmp.value().component_ratio, 2) + "x"});
  out << table.render();
  out << "\nreliability outpaced component shrinkage: "
      << (cmp.value().reliability_outpaced_shrinkage ? "yes" : "no") << "\n";
  return {};
}

}  // namespace

const std::vector<Command>& commands() {
  static const std::vector<Command> kCommands = {
      {"simulate", "generate a calibrated synthetic log", make_simulate_parser, run_simulate},
      {"analyze", "run the full DSN'21 study on a log", make_analyze_parser, run_analyze},
      {"sweep", "multi-replicate Monte Carlo study with aggregate CIs", make_sweep_parser,
       run_sweep_command},
      {"repairs", "repair-policy comparison: discrete-event shop vs sampled TTR",
       make_repairs_parser, run_repairs},
      {"triage", "operator impact report", make_triage_parser, run_triage},
      {"report", "full study as markdown", make_report_parser, run_report},
      {"figures", "export figure series as CSV", make_figures_parser, run_figures},
      {"checkpoint", "checkpoint plan from measured MTBF", make_checkpoint_parser,
       run_checkpoint},
      {"spares", "spare-pool sizing", make_spares_parser, run_spares},
      {"predict", "node-failure prediction backtest", make_predict_parser, run_predict},
      {"import", "convert a legacy-v1 log to canonical CSV", make_import_parser, run_import},
      {"pack", "pack a log into a columnar snapshot (.tsnap)", make_pack_parser, run_pack},
      {"unpack", "expand a snapshot back to canonical CSV", make_unpack_parser, run_unpack},
      {"trends", "rolling MTBF/MTTR trends over lifetime", make_trends_parser, run_trends},
      {"watch", "live-replay a log through the streaming monitor", make_watch_parser, run_watch},
      {"serve", "multi-tenant fleet service (ingest + cached queries)", make_serve_parser,
       run_serve},
      {"top", "live SLO/tenant dashboard for a serve daemon", make_top_parser, run_top},
      {"profile", "span self-time profile of the study pipeline", make_profile_parser,
       run_profile},
      {"racks", "rack-level spatial distribution", make_racks_parser, run_racks},
      {"couplings", "cross-category lead-lag couplings", make_couplings_parser, run_couplings},
      {"compare", "cross-generation comparison", make_compare_parser, run_compare},
  };
  return kCommands;
}

int dispatch(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  const auto print_overview = [&](std::ostream& stream) {
    stream << "tsufail - failure & repair analysis for multi-GPU supercomputers\n\n"
           << "usage: tsufail <command> [args]\n\ncommands:\n";
    for (const auto& command : commands()) {
      stream << "  " << command.name;
      stream << std::string(command.name.size() < 12 ? 12 - command.name.size() : 1, ' ');
      stream << command.summary << "\n";
    }
    stream << "\nprofiling: analyze/report/sweep/watch/profile accept --trace FILE "
              "(Chrome-trace JSON\nfor ui.perfetto.dev) and --metrics FILE (.json = JSON, "
              "otherwise Prometheus text).\n";
    stream << "\nrun 'tsufail <command> --help' for per-command options.\n";
  };

  if (argv.empty() || argv[0] == "help" || argv[0] == "--help") {
    print_overview(out);
    return argv.empty() ? 1 : 0;
  }

  if (argv[0] == "--version" || argv[0] == "version") {
    out << util::build_info_text();
    return 0;
  }

  for (const auto& command : commands()) {
    if (command.name != argv[0]) continue;
    const ArgParser parser = command.make_parser();
    const std::vector<std::string> rest(argv.begin() + 1, argv.end());
    for (const auto& token : rest) {
      if (token == "--help") {
        out << parser.help();
        return 0;
      }
    }
    auto parsed = parser.parse(rest);
    if (!parsed.ok()) {
      err << "error: " << parsed.error().to_string() << "\n\n" << parser.help();
      return 2;
    }
    auto result = command.run(parsed.value(), out);
    if (!result.ok()) {
      err << "error: " << result.error().to_string() << "\n";
      return 1;
    }
    return 0;
  }

  err << "unknown command '" << argv[0] << "'\n\n";
  print_overview(err);
  return 2;
}

}  // namespace tsufail::cli
