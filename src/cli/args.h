// Declarative command-line argument parsing for the tsufail tool.
//
// Deliberately small: long options only (--name value / --name=value /
// boolean --flag), typed accessors with defaults, positional arguments,
// and generated --help text.  No external dependency.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace tsufail::cli {

/// Option declaration.
struct OptionSpec {
  std::string name;         ///< long name without the leading "--"
  std::string value_hint;   ///< e.g. "FILE"; empty = boolean flag
  std::string help;
  std::optional<std::string> default_value;  ///< shown in help; applied if absent
};

/// Positional-argument declaration.
struct PositionalSpec {
  std::string name;
  std::string help;
  bool required = true;
};

/// Parsed result: typed access to options and positionals.
class ParsedArgs {
 public:
  bool has(const std::string& name) const noexcept { return values_.contains(name); }

  /// String value (or declared default). Errors: option absent with no default.
  Result<std::string> get(const std::string& name) const;

  /// Integer value. Errors: absent without default, or not an integer.
  Result<long long> get_int(const std::string& name) const;

  /// Double value. Errors: absent without default, or not a number.
  Result<double> get_double(const std::string& name) const;

  /// True iff the boolean flag was given.
  bool flag(const std::string& name) const noexcept { return has(name); }

  const std::vector<std::string>& positionals() const noexcept { return positionals_; }

 private:
  friend class ArgParser;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

/// Checks that `path` can be opened for writing *now*, without
/// truncating an existing file.  Commands that produce a file at the end
/// of a long run (--trace, --metrics) call this up front so a typo'd
/// directory fails in milliseconds, not after the sweep.
Result<void> validate_writable_path(const std::string& path);

class ArgParser {
 public:
  ArgParser(std::string command, std::string description)
      : command_(std::move(command)), description_(std::move(description)) {}

  ArgParser& option(OptionSpec spec);
  ArgParser& positional(PositionalSpec spec);

  /// Parses argv (excluding the program/command tokens).
  /// Errors: unknown option, missing value, missing required positional,
  /// or excess positionals.
  Result<ParsedArgs> parse(const std::vector<std::string>& args) const;

  /// Usage text for --help.
  std::string help() const;

 private:
  std::string command_;
  std::string description_;
  std::vector<OptionSpec> options_;
  std::vector<PositionalSpec> positionals_;
};

}  // namespace tsufail::cli
