#include "analysis/study.h"

#include <utility>
#include <vector>

#include "analysis/executor.h"
#include "data/log_index.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tsufail::analysis {

Result<StudyReport> run_study(const data::FailureLog& log, const StudyOptions& options) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "run_study: empty log");

  OBS_SPAN("study.run");
  static obs::Counter runs = obs::counter("study.runs");
  runs.add();

  StudyReport report;

  // The index is built by the first task; every analysis depends on it,
  // so the executor's publication order guarantees they see the build.
  std::optional<data::LogIndex> index;

  Executor executor;
  const auto index_task = executor.add("index", [&]() -> Result<void> {
    index.emplace(log);
    return {};
  });

  // Registers one analysis over the shared index: on success the value
  // moves into its report slot, on failure the error reaches the
  // executor.  Tasks only touch their own slot, so parallel runs do not
  // race on the report.
  const auto add_analysis = [&](std::string name, auto analyze, auto& slot) {
    return executor.add(
        std::move(name),
        [&index, analyze, &slot]() -> Result<void> {
          auto result = analyze(*index);
          if (!result.ok()) return result.error();
          slot = std::move(result.value());
          return {};
        },
        {index_task});
  };

  // Registration order mirrors the sequential study; required analyses
  // abort the study on failure, the rest land in report.skipped.
  std::vector<Executor::TaskId> required{index_task};
  required.push_back(add_analysis(
      "categories", [](const data::LogIndex& i) { return analyze_categories(i); },
      report.categories));
  add_analysis(
      "software_loci", [](const data::LogIndex& i) { return analyze_software_loci(i); },
      report.software_loci);
  required.push_back(add_analysis(
      "node_counts", [](const data::LogIndex& i) { return analyze_node_counts(i); },
      report.node_counts));
  add_analysis(
      "gpu_slots", [](const data::LogIndex& i) { return analyze_gpu_slots(i); },
      report.gpu_slots);
  add_analysis(
      "multi_gpu", [](const data::LogIndex& i) { return analyze_multi_gpu(i); },
      report.multi_gpu);
  add_analysis(
      "tbf", [](const data::LogIndex& i) { return analyze_tbf(i); }, report.tbf);
  add_analysis(
      "tbf_by_category", [](const data::LogIndex& i) { return analyze_tbf_by_category(i); },
      report.tbf_by_category);
  add_analysis(
      "multi_gpu_clustering",
      [](const data::LogIndex& i) { return analyze_multi_gpu_clustering(i); },
      report.multi_gpu_clustering);
  required.push_back(add_analysis(
      "ttr", [](const data::LogIndex& i) { return analyze_ttr(i); }, report.ttr));
  add_analysis(
      "ttr_by_category", [](const data::LogIndex& i) { return analyze_ttr_by_category(i); },
      report.ttr_by_category);
  required.push_back(add_analysis(
      "seasonal", [](const data::LogIndex& i) { return analyze_seasonal(i); },
      report.seasonal));
  required.push_back(add_analysis(
      "perf_error_prop", [](const data::LogIndex& i) { return analyze_perf_error_prop(i); },
      report.perf_error_prop));

  const auto outcomes = executor.run(options.jobs);

  for (Executor::TaskId id : required) {
    if (!outcomes[id].ok())
      return outcomes[id].error->with_context("run_study: " + outcomes[id].name);
  }
  for (Executor::TaskId id = 0; id < outcomes.size(); ++id) {
    const auto& outcome = outcomes[id];
    if (outcome.ok()) continue;
    report.skipped.push_back({outcome.name, *outcome.error});
  }
  return report;
}

Result<StudyReport> run_study(const data::FailureLog& log) {
  return run_study(log, StudyOptions{});
}

}  // namespace tsufail::analysis
