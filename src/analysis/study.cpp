#include "analysis/study.h"

namespace tsufail::analysis {

Result<StudyReport> run_study(const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "run_study: empty log");

  StudyReport report;

  auto categories = analyze_categories(log);
  if (!categories.ok()) return categories.error();
  report.categories = std::move(categories.value());

  if (auto loci = analyze_software_loci(log); loci.ok())
    report.software_loci = std::move(loci.value());

  auto nodes = analyze_node_counts(log);
  if (!nodes.ok()) return nodes.error();
  report.node_counts = std::move(nodes.value());

  if (auto slots = analyze_gpu_slots(log); slots.ok())
    report.gpu_slots = std::move(slots.value());

  if (auto involvement = analyze_multi_gpu(log); involvement.ok())
    report.multi_gpu = std::move(involvement.value());

  if (auto tbf = analyze_tbf(log); tbf.ok())
    report.tbf = std::move(tbf.value());

  if (auto by_category = analyze_tbf_by_category(log); by_category.ok())
    report.tbf_by_category = std::move(by_category.value());

  if (auto clustering = analyze_multi_gpu_clustering(log); clustering.ok())
    report.multi_gpu_clustering = std::move(clustering.value());

  auto ttr = analyze_ttr(log);
  if (!ttr.ok()) return ttr.error();
  report.ttr = std::move(ttr.value());

  if (auto by_category = analyze_ttr_by_category(log); by_category.ok())
    report.ttr_by_category = std::move(by_category.value());

  auto seasonal = analyze_seasonal(log);
  if (!seasonal.ok()) return seasonal.error();
  report.seasonal = std::move(seasonal.value());

  auto perf = analyze_perf_error_prop(log);
  if (!perf.ok()) return perf.error();
  report.perf_error_prop = std::move(perf.value());

  return report;
}

}  // namespace tsufail::analysis
