// Rolling-window reliability trends over the system lifetime.
//
// The paper's cross-generation comparison is two snapshots; operators
// also need the within-lifetime view: is MTBF improving as early
// hardware problems are burned in, is MTTR drifting as staff learn the
// machine?  This analyzer slides a window over the log and fits linear
// trends to the per-window failure rate and MTTR.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"
#include "stats/regression.h"

namespace tsufail::analysis {

struct RollingWindow {
  double center_hours = 0.0;   ///< window center, hours since log start
  std::size_t failures = 0;
  double failures_per_day = 0.0;
  double mtbf_hours = 0.0;     ///< window length / failures (0 if none)
  double mttr_hours = 0.0;     ///< mean TTR of the window's failures
};

struct RollingTrends {
  double window_hours = 0.0;
  double step_hours = 0.0;
  std::vector<RollingWindow> windows;
  /// Trend of the failure rate (failures/day) against window center.
  /// Negative significant slope = the machine is getting more reliable.
  stats::LinearFit rate_trend;
  /// Trend of the per-window MTTR against window center.
  stats::LinearFit mttr_trend;
  /// Failure rate of the first quarter of life over the last quarter
  /// (> 1 = infant mortality / burn-in).
  double early_late_rate_ratio = 0.0;
};

/// Slides a `window_days` window by `step_days` over the log.
/// Errors: empty log, non-positive window/step, or fewer than 3 windows
/// (no trend can be fit).
Result<RollingTrends> analyze_rolling_trends(const data::LogIndex& index,
                                             double window_days = 60.0,
                                             double step_days = 30.0);
Result<RollingTrends> analyze_rolling_trends(const data::FailureLog& log,
                                             double window_days = 60.0,
                                             double step_days = 30.0);

}  // namespace tsufail::analysis
