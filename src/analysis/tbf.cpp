#include "analysis/tbf.h"

#include <algorithm>
#include <limits>

#include "stats/kernels.h"

namespace tsufail::analysis {
namespace {

/// Differences an ascending event-hour sequence into gaps (one indexed
/// store per element; see stats::adjacent_deltas).
std::vector<double> gaps_of(const std::vector<double>& event_hours) {
  return stats::adjacent_deltas(event_hours);
}

/// Core TBF computation over an event-hour sample.  Takes ownership of
/// `hours` (the result does not retain it) and sorts defensively, so the
/// function is safe on caller-built samples; index/log streams are
/// already ascending and the sort is a no-op for them.
Result<TbfResult> tbf_from_hours(const data::MachineSpec& spec, std::vector<double> hours) {
  if (hours.size() < 2)
    return Error(ErrorKind::kDomain,
                 "TBF needs at least 2 failures, have " + std::to_string(hours.size()));
  std::sort(hours.begin(), hours.end());

  TbfResult result;
  result.tbf_hours = gaps_of(hours);
  result.mtbf_hours = stats::mean(result.tbf_hours);
  result.exposure_mtbf_hours = spec.window_hours() / static_cast<double>(hours.size());

  // The summary and the family fit both want an ordered sample; sorting
  // the gaps once here lets summarize and the fitter's Ecdf take their
  // sorted fast paths instead of each re-sorting a copy.
  std::vector<double> sorted_gaps = result.tbf_hours;
  std::sort(sorted_gaps.begin(), sorted_gaps.end());
  auto summary = stats::summarize(sorted_gaps);
  if (!summary.ok()) return summary.error();
  result.summary = summary.value();
  result.p75_hours = result.summary.p75;

  // Simultaneous failures produce zero gaps; family fitting requires
  // positive support, so fit on the positive sub-sample — the suffix past
  // the zeros, since the sorted gaps are non-negative.
  const std::vector<double> positive(
      std::upper_bound(sorted_gaps.begin(), sorted_gaps.end(), 0.0), sorted_gaps.end());
  if (positive.size() >= 8) {
    if (auto family = stats::select_family(positive); family.ok())
      result.best_family = family.value();
  }
  return result;
}

std::vector<double> hours_of(const data::MachineSpec& spec,
                             std::span<const data::FailureRecord> records) {
  std::vector<double> hours;
  hours.reserve(records.size());
  for (const auto& record : records) hours.push_back(hours_between(spec.log_start, record.time));
  return hours;
}

}  // namespace

Result<TbfResult> tbf_from_records(const data::MachineSpec& spec,
                                   std::span<const data::FailureRecord> records) {
  return tbf_from_hours(spec, hours_of(spec, records));
}

Result<TbfResult> analyze_tbf(const data::LogIndex& index) {
  const auto hours = index.hours();
  return tbf_from_hours(index.spec(), std::vector<double>(hours.begin(), hours.end()));
}

Result<TbfResult> analyze_tbf(const data::FailureLog& log) {
  return tbf_from_records(log.spec(), log.records());
}

Result<TbfResult> analyze_tbf_category(const data::LogIndex& index, data::Category category) {
  auto result = tbf_from_hours(index.spec(), index.hours_of(index.by_category(category)));
  if (!result.ok())
    return result.error().with_context("category " + std::string(data::to_string(category)));
  return result;
}

Result<TbfResult> analyze_tbf_category(const data::FailureLog& log, data::Category category) {
  return analyze_tbf_category(data::LogIndex(log), category);
}

Result<TbfResult> analyze_tbf_class(const data::LogIndex& index, data::FailureClass cls) {
  auto result = tbf_from_hours(index.spec(), index.hours_of(index.by_class(cls)));
  if (!result.ok())
    return result.error().with_context("class " + std::string(data::to_string(cls)));
  return result;
}

Result<TbfResult> analyze_tbf_class(const data::FailureLog& log, data::FailureClass cls) {
  return analyze_tbf_class(data::LogIndex(log), cls);
}

Result<MtbfInterval> mtbf_confidence_interval(std::size_t failures, double window_hours,
                                              double level) {
  if (failures == 0)
    return Error(ErrorKind::kDomain, "mtbf_confidence_interval: need at least one failure");
  auto rate = stats::poisson_rate_interval(failures, window_hours, level);
  if (!rate.ok()) return rate.error();
  MtbfInterval interval;
  interval.level = level;
  interval.mtbf_hours = 1.0 / rate.value().rate;
  // Rate and MTBF are reciprocal, so the bounds swap roles.
  interval.low_hours = 1.0 / rate.value().high;
  interval.high_hours = rate.value().low > 0.0 ? 1.0 / rate.value().low
                                               : std::numeric_limits<double>::infinity();
  return interval;
}

Result<std::vector<CategoryTbf>> analyze_tbf_by_category(const data::LogIndex& index,
                                                         std::size_t min_failures) {
  std::vector<CategoryTbf> rows;
  for (data::Category category : data::categories_for(index.machine())) {
    const auto positions = index.by_category(category);
    if (positions.size() < std::max<std::size_t>(min_failures, 2)) continue;
    // CategoryTbf keeps only the box and the two MTBF estimators, so the
    // full tbf_from_hours pipeline (summary quantiles, family fitting)
    // would be computed just to be discarded; difference the gaps and box
    // them directly instead.
    auto hours = index.hours_of(positions);
    std::sort(hours.begin(), hours.end());  // no-op: index streams ascend
    const auto gaps = gaps_of(hours);
    auto box = stats::box_stats(gaps);
    if (!box.ok()) continue;
    rows.push_back({category, positions.size(), box.value(), stats::mean(gaps),
                    index.spec().window_hours() / static_cast<double>(hours.size())});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_tbf_by_category: no category has enough failures");
  std::stable_sort(rows.begin(), rows.end(),
                   [](const CategoryTbf& a, const CategoryTbf& b) {
                     return a.mtbf_hours < b.mtbf_hours;
                   });
  return rows;
}

Result<std::vector<CategoryTbf>> analyze_tbf_by_category(const data::FailureLog& log,
                                                         std::size_t min_failures) {
  return analyze_tbf_by_category(data::LogIndex(log), min_failures);
}

}  // namespace tsufail::analysis
