#include "analysis/tbf.h"

#include <algorithm>
#include <limits>

namespace tsufail::analysis {
namespace {

/// Differences an ascending event-hour sequence into gaps.
std::vector<double> gaps_of(const std::vector<double>& event_hours) {
  std::vector<double> gaps;
  if (event_hours.size() < 2) return gaps;
  gaps.reserve(event_hours.size() - 1);
  for (std::size_t i = 1; i < event_hours.size(); ++i)
    gaps.push_back(event_hours[i] - event_hours[i - 1]);
  return gaps;
}

Result<TbfResult> tbf_from_records(const data::MachineSpec& spec,
                                   const std::vector<data::FailureRecord>& records) {
  if (records.size() < 2)
    return Error(ErrorKind::kDomain, "TBF needs at least 2 failures, have " +
                                         std::to_string(records.size()));
  std::vector<double> hours;
  hours.reserve(records.size());
  for (const auto& record : records) hours.push_back(hours_between(spec.log_start, record.time));
  // FailureLog guarantees time order for whole logs; sub-streams inherit it,
  // but sort defensively so the function is safe on caller-built vectors.
  std::sort(hours.begin(), hours.end());

  TbfResult result;
  result.tbf_hours = gaps_of(hours);
  result.mtbf_hours = stats::mean(result.tbf_hours);
  result.exposure_mtbf_hours = spec.window_hours() / static_cast<double>(records.size());
  auto summary = stats::summarize(result.tbf_hours);
  if (!summary.ok()) return summary.error();
  result.summary = summary.value();
  result.p75_hours = result.summary.p75;

  // Simultaneous failures produce zero gaps; family fitting requires
  // positive support, so fit on the positive sub-sample.
  std::vector<double> positive;
  positive.reserve(result.tbf_hours.size());
  for (double g : result.tbf_hours)
    if (g > 0.0) positive.push_back(g);
  if (positive.size() >= 8) {
    if (auto family = stats::select_family(positive); family.ok())
      result.best_family = family.value();
  }
  return result;
}

}  // namespace

Result<TbfResult> analyze_tbf(const data::FailureLog& log) {
  return tbf_from_records(log.spec(),
                          std::vector<data::FailureRecord>(log.records().begin(),
                                                           log.records().end()));
}

Result<TbfResult> analyze_tbf_category(const data::FailureLog& log, data::Category category) {
  auto result = tbf_from_records(log.spec(), log.by_category(category));
  if (!result.ok())
    return result.error().with_context("category " + std::string(data::to_string(category)));
  return result;
}

Result<TbfResult> analyze_tbf_class(const data::FailureLog& log, data::FailureClass cls) {
  auto result = tbf_from_records(log.spec(), log.by_class(cls));
  if (!result.ok())
    return result.error().with_context("class " + std::string(data::to_string(cls)));
  return result;
}

Result<MtbfInterval> mtbf_confidence_interval(std::size_t failures, double window_hours,
                                              double level) {
  if (failures == 0)
    return Error(ErrorKind::kDomain, "mtbf_confidence_interval: need at least one failure");
  auto rate = stats::poisson_rate_interval(failures, window_hours, level);
  if (!rate.ok()) return rate.error();
  MtbfInterval interval;
  interval.level = level;
  interval.mtbf_hours = 1.0 / rate.value().rate;
  // Rate and MTBF are reciprocal, so the bounds swap roles.
  interval.low_hours = 1.0 / rate.value().high;
  interval.high_hours = rate.value().low > 0.0 ? 1.0 / rate.value().low
                                               : std::numeric_limits<double>::infinity();
  return interval;
}

Result<std::vector<CategoryTbf>> analyze_tbf_by_category(const data::FailureLog& log,
                                                         std::size_t min_failures) {
  std::vector<CategoryTbf> rows;
  for (data::Category category : data::categories_for(log.machine())) {
    const auto records = log.by_category(category);
    if (records.size() < std::max<std::size_t>(min_failures, 2)) continue;
    auto tbf = tbf_from_records(log.spec(), records);
    if (!tbf.ok()) continue;
    auto box = stats::box_stats(tbf.value().tbf_hours);
    if (!box.ok()) continue;
    rows.push_back({category, records.size(), box.value(), tbf.value().mtbf_hours,
                    tbf.value().exposure_mtbf_hours});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_tbf_by_category: no category has enough failures");
  std::stable_sort(rows.begin(), rows.end(),
                   [](const CategoryTbf& a, const CategoryTbf& b) {
                     return a.mtbf_hours < b.mtbf_hours;
                   });
  return rows;
}

}  // namespace tsufail::analysis
