// Figures 11-12: seasonal (monthly) behaviour of repairs and failures.
//
// The paper folds the multi-year logs onto calendar months (Jan..Dec),
// plots the TTR distribution per month (Fig 11) and the failure count per
// month (Fig 12), and asks whether months with more failures also repair
// slower.  It finds no such correlation; we compute Pearson and Spearman
// between monthly failure counts and monthly median TTR to make that
// claim testable.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "data/log.h"
#include "data/log_index.h"
#include "stats/descriptive.h"

namespace tsufail::analysis {

struct MonthlyTtr {
  int month = 1;                         ///< 1..12
  std::size_t failures = 0;
  std::optional<stats::BoxStats> box;    ///< absent for 0-failure months
};

struct SeasonalAnalysis {
  std::array<MonthlyTtr, 12> monthly;    ///< index 0 = January
  std::array<std::size_t, 12> failure_counts{};  ///< Figure 12 bars
  /// Days of each calendar month covered by the log window.  Multi-year
  /// windows rarely cover every month equally (Tsubame-2's covers Jan-Jul
  /// twice but Sep-Dec once), so raw counts are exposure-biased.
  std::array<double, 12> exposure_days{};
  /// Exposure-normalized failure density (failures per covered day).
  std::array<double, 12> failures_per_day{};
  double first_half_median_ttr = 0.0;    ///< Jan-Jun pooled median TTR
  double second_half_median_ttr = 0.0;   ///< Jul-Dec pooled median TTR
  /// Correlation of monthly failure DENSITY (exposure-normalized) vs
  /// monthly median TTR across months with failures; the paper's "no
  /// correlation" claim.  Computed on failures_per_day, not raw counts,
  /// precisely because of the exposure bias above.
  std::optional<double> pearson_density_ttr;
  std::optional<double> spearman_density_ttr;
};

/// Computes the Figures 11-12 monthly profiles. Errors: empty log.
Result<SeasonalAnalysis> analyze_seasonal(const data::LogIndex& index);
Result<SeasonalAnalysis> analyze_seasonal(const data::FailureLog& log);

/// Seasonal profile restricted to one failure class (the paper: "We
/// observed similar trends for different failure types as well, but
/// results are not shown for brevity").  Errors: no failures of `cls`.
Result<SeasonalAnalysis> analyze_seasonal_class(const data::FailureLog& log,
                                                data::FailureClass cls);

/// Seasonal profile restricted to one category.  Errors: no such failures.
Result<SeasonalAnalysis> analyze_seasonal_category(const data::FailureLog& log,
                                                   data::Category category);

}  // namespace tsufail::analysis
