#include "analysis/category_breakdown.h"

#include <algorithm>
#include <map>

namespace tsufail::analysis {

double CategoryBreakdown::percent_of(data::Category category) const noexcept {
  for (const auto& share : categories) {
    if (share.category == category) return share.percent;
  }
  return 0.0;
}

double CategoryBreakdown::percent_of(data::FailureClass cls) const noexcept {
  for (const auto& share : classes) {
    if (share.cls == cls) return share.percent;
  }
  return 0.0;
}

Result<CategoryBreakdown> analyze_categories(const data::LogIndex& index) {
  if (index.empty())
    return Error(ErrorKind::kDomain, "analyze_categories: empty log");

  CategoryBreakdown breakdown;
  breakdown.total_failures = index.size();
  const double total = static_cast<double>(index.size());

  // Enum-ordered map of the machine's vocabulary (zero counts included),
  // matching FailureLog::count_by_category's iteration order so the
  // stable sort below breaks count ties identically.
  std::map<data::Category, std::size_t> counts;
  for (data::Category category : data::categories_for(index.machine()))
    counts[category] = index.count(category);
  for (const auto& [category, count] : counts) {
    breakdown.categories.push_back(
        {category, count, 100.0 * static_cast<double>(count) / total});
  }
  std::stable_sort(breakdown.categories.begin(), breakdown.categories.end(),
                   [](const CategoryShare& a, const CategoryShare& b) { return a.count > b.count; });

  for (data::FailureClass cls : {data::FailureClass::kHardware, data::FailureClass::kSoftware,
                                 data::FailureClass::kUnknown}) {
    const std::size_t count = index.by_class(cls).size();
    breakdown.classes.push_back({cls, count, 100.0 * static_cast<double>(count) / total});
  }
  return breakdown;
}

Result<CategoryBreakdown> analyze_categories(const data::FailureLog& log) {
  return analyze_categories(data::LogIndex(log));
}

}  // namespace tsufail::analysis
