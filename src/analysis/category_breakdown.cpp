#include "analysis/category_breakdown.h"

#include <algorithm>

namespace tsufail::analysis {

double CategoryBreakdown::percent_of(data::Category category) const noexcept {
  for (const auto& share : categories) {
    if (share.category == category) return share.percent;
  }
  return 0.0;
}

double CategoryBreakdown::percent_of(data::FailureClass cls) const noexcept {
  for (const auto& share : classes) {
    if (share.cls == cls) return share.percent;
  }
  return 0.0;
}

Result<CategoryBreakdown> analyze_categories(const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "analyze_categories: empty log");

  CategoryBreakdown breakdown;
  breakdown.total_failures = log.size();
  const double total = static_cast<double>(log.size());

  for (const auto& [category, count] : log.count_by_category()) {
    breakdown.categories.push_back(
        {category, count, 100.0 * static_cast<double>(count) / total});
  }
  std::stable_sort(breakdown.categories.begin(), breakdown.categories.end(),
                   [](const CategoryShare& a, const CategoryShare& b) { return a.count > b.count; });

  for (data::FailureClass cls : {data::FailureClass::kHardware, data::FailureClass::kSoftware,
                                 data::FailureClass::kUnknown}) {
    std::size_t count = 0;
    for (const auto& record : log.records()) {
      if (record.failure_class() == cls) ++count;
    }
    breakdown.classes.push_back({cls, count, 100.0 * static_cast<double>(count) / total});
  }
  return breakdown;
}

}  // namespace tsufail::analysis
