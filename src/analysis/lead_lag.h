// Cross-category lead-lag interaction.
//
// The paper suspects multi-GPU failure clustering comes from "interaction
// between application, GPU hardware, and operating conditions".  This
// analyzer makes such couplings measurable for any category pair: does a
// failure of category A raise the short-term rate of category B?  The
// statistic is the observed count of B events within `window_hours` after
// an A event, against the count expected if B were a homogeneous Poisson
// stream (rate_B * exposure), with a Poisson z-score.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct LeadLagPair {
  data::Category leader = data::Category::kUnknown;    ///< A
  data::Category follower = data::Category::kUnknown;  ///< B
  std::size_t leader_events = 0;
  std::size_t follower_events = 0;
  double observed = 0.0;   ///< B events inside the post-A windows
  double expected = 0.0;   ///< under independence
  double lift = 0.0;       ///< observed / expected
  double z_score = 0.0;    ///< (obs - exp) / sqrt(exp)
};

struct LeadLagAnalysis {
  double window_hours = 0.0;
  /// All ordered pairs with enough events, sorted descending by z-score.
  std::vector<LeadLagPair> pairs;
};

/// Computes lead-lag couplings over all ordered category pairs with at
/// least `min_events` occurrences each.  Self-pairs (A -> A) measure
/// self-excitation (burstiness).  Errors: fewer than 2 qualifying
/// categories, or non-positive window.
Result<LeadLagAnalysis> analyze_lead_lag(const data::LogIndex& index,
                                         double window_hours = 72.0,
                                         std::size_t min_events = 8);
Result<LeadLagAnalysis> analyze_lead_lag(const data::FailureLog& log,
                                         double window_hours = 72.0,
                                         std::size_t min_events = 8);

/// One specific ordered pair (no minimum-event gate).
/// Errors: either category has no events, or non-positive window.
Result<LeadLagPair> analyze_lead_lag_pair(const data::LogIndex& index, data::Category leader,
                                          data::Category follower, double window_hours = 72.0);
Result<LeadLagPair> analyze_lead_lag_pair(const data::FailureLog& log, data::Category leader,
                                          data::Category follower, double window_hours = 72.0);

}  // namespace tsufail::analysis
