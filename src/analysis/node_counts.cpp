#include "analysis/node_counts.h"

#include <algorithm>
#include <map>

namespace tsufail::analysis {

double NodeCounts::percent_with(std::size_t k) const noexcept {
  for (const auto& bucket : buckets) {
    if (bucket.failures == k) return bucket.percent_of_failed;
  }
  return 0.0;
}

Result<NodeCounts> analyze_node_counts(const data::LogIndex& index) {
  if (index.empty())
    return Error(ErrorKind::kDomain, "analyze_node_counts: empty log");

  const auto groups = index.nodes();

  NodeCounts result;
  result.failed_nodes = groups.size();
  result.total_nodes = static_cast<std::size_t>(index.spec().node_count);

  std::map<std::size_t, std::size_t> histogram;  // failures -> node count
  for (const auto& group : groups) {
    ++histogram[group.count];
    result.max_failures_on_one_node =
        std::max<std::size_t>(result.max_failures_on_one_node, group.count);
  }

  const double failed = static_cast<double>(result.failed_nodes);
  for (const auto& [failures, nodes] : histogram) {
    result.buckets.push_back({failures, nodes, 100.0 * static_cast<double>(nodes) / failed});
  }
  result.percent_single_failure = result.percent_with(1);
  result.percent_multi_failure = 100.0 - result.percent_single_failure;

  for (const auto& group : groups) {
    if (group.count <= 1) continue;  // repeat-failure nodes only
    for (std::uint32_t position : index.positions_of(group)) {
      switch (index.record(position).failure_class()) {
        case data::FailureClass::kHardware:
          ++result.repeat_node_hardware_failures;
          break;
        case data::FailureClass::kSoftware:
          ++result.repeat_node_software_failures;
          break;
        case data::FailureClass::kUnknown:
          break;  // the paper's 352/1 and 104/95 split covers HW/SW only
      }
    }
  }
  return result;
}

Result<NodeCounts> analyze_node_counts(const data::FailureLog& log) {
  return analyze_node_counts(data::LogIndex(log));
}

}  // namespace tsufail::analysis
