#include "analysis/node_counts.h"

#include <algorithm>
#include <map>
#include <set>

namespace tsufail::analysis {

double NodeCounts::percent_with(std::size_t k) const noexcept {
  for (const auto& bucket : buckets) {
    if (bucket.failures == k) return bucket.percent_of_failed;
  }
  return 0.0;
}

Result<NodeCounts> analyze_node_counts(const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "analyze_node_counts: empty log");

  const auto per_node = log.count_by_node();

  NodeCounts result;
  result.failed_nodes = per_node.size();
  result.total_nodes = static_cast<std::size_t>(log.spec().node_count);

  std::map<std::size_t, std::size_t> histogram;  // failures -> node count
  std::set<int> repeat_nodes;
  for (const auto& [node, count] : per_node) {
    ++histogram[count];
    result.max_failures_on_one_node = std::max(result.max_failures_on_one_node, count);
    if (count > 1) repeat_nodes.insert(node);
  }

  const double failed = static_cast<double>(result.failed_nodes);
  for (const auto& [failures, nodes] : histogram) {
    result.buckets.push_back({failures, nodes, 100.0 * static_cast<double>(nodes) / failed});
  }
  result.percent_single_failure = result.percent_with(1);
  result.percent_multi_failure = 100.0 - result.percent_single_failure;

  for (const auto& record : log.records()) {
    if (!repeat_nodes.contains(record.node)) continue;
    switch (record.failure_class()) {
      case data::FailureClass::kHardware:
        ++result.repeat_node_hardware_failures;
        break;
      case data::FailureClass::kSoftware:
        ++result.repeat_node_software_failures;
        break;
      case data::FailureClass::kUnknown:
        break;  // the paper's 352/1 and 104/95 split covers HW/SW only
    }
  }
  return result;
}

}  // namespace tsufail::analysis
