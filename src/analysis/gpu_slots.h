// Figure 5: spatial distribution of GPU failures across the slots of a
// node (GPU 0 .. GPU N-1, numbered as in the paper's Figure 1 topology).
//
// A failure involving k GPUs contributes one count to each involved slot,
// so the per-slot counts measure slot involvement, which is what the
// paper's "different GPUs experience different numbers of failures" plots.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct SlotShare {
  int slot = 0;
  std::size_t count = 0;       ///< failure involvements of this slot
  double percent = 0.0;        ///< of all slot involvements
  double per_node_average = 0; ///< involvements / node_count
};

struct GpuSlotDistribution {
  std::vector<SlotShare> slots;          ///< one entry per slot, ascending
  std::size_t attributed_failures = 0;   ///< GPU failures with slot info
  std::size_t total_involvements = 0;    ///< sum over slots
  /// Max over slots of (count / mean count) - 1: the paper's "GPU 1 has
  /// ~20% more failures" style imbalance measure.
  double max_relative_excess = 0.0;
  /// Chi-square p-value against a uniform slot distribution; small values
  /// reject spatial uniformity (the paper's conclusion).
  double uniformity_p_value = 1.0;

  double percent_of(int slot) const noexcept;
};

/// Computes the Figure 5 distribution from GPU-related records that carry
/// slot attribution.  Errors: no attributed GPU failures in the log.
Result<GpuSlotDistribution> analyze_gpu_slots(const data::LogIndex& index);
Result<GpuSlotDistribution> analyze_gpu_slots(const data::FailureLog& log);

}  // namespace tsufail::analysis
