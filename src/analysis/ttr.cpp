#include "analysis/ttr.h"

#include <algorithm>

namespace tsufail::analysis {
namespace {

Result<TtrResult> ttr_from_values(std::vector<double> values) {
  if (values.empty())
    return Error(ErrorKind::kDomain, "TTR analysis needs at least one failure");
  TtrResult result;
  result.ttr_hours = std::move(values);
  result.mttr_hours = stats::mean(result.ttr_hours);

  // Sort once; summarize and the fitter's Ecdf both detect sorted input
  // and skip their own O(n log n) passes.
  std::vector<double> sorted = result.ttr_hours;
  std::sort(sorted.begin(), sorted.end());
  auto summary = stats::summarize(sorted);
  if (!summary.ok()) return summary.error();
  result.summary = summary.value();

  // Family fitting requires positive support: the suffix past the
  // zero-TTR records (repair times are non-negative).
  const std::vector<double> positive(std::upper_bound(sorted.begin(), sorted.end(), 0.0),
                                     sorted.end());
  if (positive.size() >= 8) {
    if (auto family = stats::select_family(positive); family.ok())
      result.best_family = family.value();
  }
  return result;
}

}  // namespace

Result<TtrResult> analyze_ttr(const data::LogIndex& index) {
  const auto ttr = index.ttr();
  return ttr_from_values(std::vector<double>(ttr.begin(), ttr.end()));
}

Result<TtrResult> analyze_ttr(const data::FailureLog& log) {
  return ttr_from_values(log.ttr_values());
}

Result<TtrResult> analyze_ttr_category(const data::LogIndex& index, data::Category category) {
  auto result = ttr_from_values(index.ttr_of(index.by_category(category)));
  if (!result.ok())
    return result.error().with_context("category " + std::string(data::to_string(category)));
  return result;
}

Result<TtrResult> analyze_ttr_category(const data::FailureLog& log, data::Category category) {
  return analyze_ttr_category(data::LogIndex(log), category);
}

Result<TtrResult> analyze_ttr_class(const data::LogIndex& index, data::FailureClass cls) {
  auto result = ttr_from_values(index.ttr_of(index.by_class(cls)));
  if (!result.ok())
    return result.error().with_context("class " + std::string(data::to_string(cls)));
  return result;
}

Result<TtrResult> analyze_ttr_class(const data::FailureLog& log, data::FailureClass cls) {
  return analyze_ttr_class(data::LogIndex(log), cls);
}

Result<std::vector<CategoryTtr>> analyze_ttr_by_category(const data::LogIndex& index,
                                                         std::size_t min_failures) {
  std::vector<CategoryTtr> rows;
  const double total = static_cast<double>(index.size());
  for (data::Category category : data::categories_for(index.machine())) {
    const auto positions = index.by_category(category);
    if (positions.size() < std::max<std::size_t>(min_failures, 1)) continue;
    const auto values = index.ttr_of(positions);
    auto box = stats::box_stats(values);
    if (!box.ok()) continue;
    rows.push_back({category, positions.size(),
                    100.0 * static_cast<double>(positions.size()) / total, box.value(),
                    stats::mean(values)});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_ttr_by_category: no category has enough failures");
  std::stable_sort(rows.begin(), rows.end(), [](const CategoryTtr& a, const CategoryTtr& b) {
    return a.mttr_hours < b.mttr_hours;
  });
  return rows;
}

Result<std::vector<CategoryTtr>> analyze_ttr_by_category(const data::FailureLog& log,
                                                         std::size_t min_failures) {
  return analyze_ttr_by_category(data::LogIndex(log), min_failures);
}

}  // namespace tsufail::analysis
