#include "analysis/ttr.h"

#include <algorithm>

namespace tsufail::analysis {
namespace {

Result<TtrResult> ttr_from_values(std::vector<double> values) {
  if (values.empty())
    return Error(ErrorKind::kDomain, "TTR analysis needs at least one failure");
  TtrResult result;
  result.ttr_hours = std::move(values);
  result.mttr_hours = stats::mean(result.ttr_hours);
  auto summary = stats::summarize(result.ttr_hours);
  if (!summary.ok()) return summary.error();
  result.summary = summary.value();

  std::vector<double> positive;
  positive.reserve(result.ttr_hours.size());
  for (double v : result.ttr_hours)
    if (v > 0.0) positive.push_back(v);
  if (positive.size() >= 8) {
    if (auto family = stats::select_family(positive); family.ok())
      result.best_family = family.value();
  }
  return result;
}

std::vector<double> ttr_of(const std::vector<data::FailureRecord>& records) {
  std::vector<double> values;
  values.reserve(records.size());
  for (const auto& record : records) values.push_back(record.ttr_hours);
  return values;
}

}  // namespace

Result<TtrResult> analyze_ttr(const data::FailureLog& log) {
  return ttr_from_values(log.ttr_values());
}

Result<TtrResult> analyze_ttr_category(const data::FailureLog& log, data::Category category) {
  auto result = ttr_from_values(ttr_of(log.by_category(category)));
  if (!result.ok())
    return result.error().with_context("category " + std::string(data::to_string(category)));
  return result;
}

Result<TtrResult> analyze_ttr_class(const data::FailureLog& log, data::FailureClass cls) {
  auto result = ttr_from_values(ttr_of(log.by_class(cls)));
  if (!result.ok())
    return result.error().with_context("class " + std::string(data::to_string(cls)));
  return result;
}

Result<std::vector<CategoryTtr>> analyze_ttr_by_category(const data::FailureLog& log,
                                                         std::size_t min_failures) {
  std::vector<CategoryTtr> rows;
  const double total = static_cast<double>(log.size());
  for (data::Category category : data::categories_for(log.machine())) {
    const auto records = log.by_category(category);
    if (records.size() < std::max<std::size_t>(min_failures, 1)) continue;
    const auto values = ttr_of(records);
    auto box = stats::box_stats(values);
    if (!box.ok()) continue;
    rows.push_back({category, records.size(),
                    100.0 * static_cast<double>(records.size()) / total, box.value(),
                    stats::mean(values)});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_ttr_by_category: no category has enough failures");
  std::stable_sort(rows.begin(), rows.end(), [](const CategoryTtr& a, const CategoryTtr& b) {
    return a.mttr_hours < b.mttr_hours;
  });
  return rows;
}

}  // namespace tsufail::analysis
