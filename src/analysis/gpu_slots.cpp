#include "analysis/gpu_slots.h"

#include <algorithm>

#include "stats/hypothesis.h"

namespace tsufail::analysis {

double GpuSlotDistribution::percent_of(int slot) const noexcept {
  for (const auto& share : slots) {
    if (share.slot == slot) return share.percent;
  }
  return 0.0;
}

Result<GpuSlotDistribution> analyze_gpu_slots(const data::LogIndex& index) {
  const int slots_per_node = index.spec().gpus_per_node;
  std::vector<std::size_t> counts(static_cast<std::size_t>(slots_per_node), 0);

  const auto attributed = index.gpu_attributed();
  for (std::uint32_t position : attributed) {
    for (int slot : index.record(position).gpu_slots) counts[static_cast<std::size_t>(slot)]++;
  }
  if (attributed.empty())
    return Error(ErrorKind::kDomain, "analyze_gpu_slots: no slot-attributed GPU failures");

  GpuSlotDistribution result;
  result.attributed_failures = attributed.size();
  for (std::size_t c : counts) result.total_involvements += c;
  const double total = static_cast<double>(result.total_involvements);
  const double mean_count = total / static_cast<double>(slots_per_node);
  for (int slot = 0; slot < slots_per_node; ++slot) {
    const auto count = counts[static_cast<std::size_t>(slot)];
    result.slots.push_back({slot, count, 100.0 * static_cast<double>(count) / total,
                            static_cast<double>(count) / index.spec().node_count});
    result.max_relative_excess =
        std::max(result.max_relative_excess, static_cast<double>(count) / mean_count - 1.0);
  }

  const std::vector<double> uniform(static_cast<std::size_t>(slots_per_node), 1.0);
  if (auto chi = stats::chi_square_gof(counts, uniform); chi.ok())
    result.uniformity_p_value = chi.value().p_value;
  return result;
}

Result<GpuSlotDistribution> analyze_gpu_slots(const data::FailureLog& log) {
  return analyze_gpu_slots(data::LogIndex(log));
}

}  // namespace tsufail::analysis
