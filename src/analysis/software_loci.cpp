#include "analysis/software_loci.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace tsufail::analysis {
namespace {

bool is_gpu_driver_locus(std::string_view locus) {
  const std::string lower = to_lower(locus);
  return lower.find("driver") != std::string::npos || lower.find("cuda") != std::string::npos ||
         lower.find("gpu direct") != std::string::npos;
}

}  // namespace

double SoftwareLoci::percent_of(std::string_view locus) const noexcept {
  for (const auto& share : top) {
    if (share.locus == locus) return share.percent;
  }
  return 0.0;
}

Result<SoftwareLoci> analyze_software_loci(const data::LogIndex& index, std::size_t top_n) {
  const auto software = index.by_class(data::FailureClass::kSoftware);
  if (software.empty())
    return Error(ErrorKind::kDomain, "analyze_software_loci: no software-class failures in log");

  std::map<std::string, std::size_t> counts;
  std::size_t gpu_driver = 0;
  std::size_t unknown = 0;
  for (std::uint32_t position : software) {
    std::string locus = to_lower(trim(index.record(position).root_locus));
    if (locus.empty() || locus == "unknown") {
      locus = "unknown";
      ++unknown;
    } else if (is_gpu_driver_locus(locus)) {
      ++gpu_driver;
    }
    ++counts[locus];
  }

  SoftwareLoci result;
  result.software_failures = software.size();
  result.distinct_loci = counts.size();
  const double total = static_cast<double>(software.size());
  result.gpu_driver_percent = 100.0 * static_cast<double>(gpu_driver) / total;
  result.unknown_percent = 100.0 * static_cast<double>(unknown) / total;

  for (const auto& [locus, count] : counts) {
    result.top.push_back({locus, count, 100.0 * static_cast<double>(count) / total});
  }
  std::stable_sort(result.top.begin(), result.top.end(),
                   [](const RootLocusShare& a, const RootLocusShare& b) { return a.count > b.count; });
  if (result.top.size() > top_n) result.top.resize(top_n);
  return result;
}

Result<SoftwareLoci> analyze_software_loci(const data::FailureLog& log, std::size_t top_n) {
  return analyze_software_loci(data::LogIndex(log), top_n);
}

}  // namespace tsufail::analysis
