#include "analysis/lead_lag.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace tsufail::analysis {
namespace {

/// Union length of the post-event windows [t_i, t_i + w], clipped to the
/// observation span — the exposure under which follower events count.
double union_window_hours(const std::vector<double>& events, double window, double span) {
  double total = 0.0;
  double covered_until = 0.0;
  for (double t : events) {
    const double start = std::max(t, covered_until);
    const double end = std::min(t + window, span);
    if (end > start) total += end - start;
    covered_until = std::max(covered_until, t + window);
  }
  return total;
}

LeadLagPair compute_pair(const std::vector<double>& leader_hours,
                         const std::vector<double>& follower_hours, double window, double span) {
  LeadLagPair pair;
  pair.leader_events = leader_hours.size();
  pair.follower_events = follower_hours.size();

  // Observed: follower events falling in any post-leader window (counted
  // once).  Zero offsets are skipped and the scan continues backwards:
  // for self-pairs the nearest "leader" at offset 0 is the follower event
  // itself, and the real predecessor sits one position earlier.
  for (double f : follower_hours) {
    auto it = std::upper_bound(leader_hours.begin(), leader_hours.end(), f);
    while (it != leader_hours.begin()) {
      const double offset = f - *(it - 1);
      if (offset > 0.0) {
        if (offset <= window) pair.observed += 1.0;
        break;
      }
      --it;
    }
  }
  const double exposure = union_window_hours(leader_hours, window, span);
  const double follower_rate = static_cast<double>(follower_hours.size()) / span;
  pair.expected = follower_rate * exposure;
  pair.lift = pair.expected > 0.0 ? pair.observed / pair.expected : 0.0;
  pair.z_score =
      pair.expected > 0.0 ? (pair.observed - pair.expected) / std::sqrt(pair.expected) : 0.0;
  return pair;
}

}  // namespace

Result<LeadLagPair> analyze_lead_lag_pair(const data::LogIndex& index, data::Category leader,
                                          data::Category follower, double window_hours) {
  if (!(window_hours > 0.0))
    return Error(ErrorKind::kDomain, "lead-lag window must be positive");
  std::vector<double> leader_hours = index.hours_of(index.by_category(leader));
  std::vector<double> follower_hours = index.hours_of(index.by_category(follower));
  if (leader_hours.empty() || follower_hours.empty())
    return Error(ErrorKind::kDomain, "lead-lag: both categories need events");
  LeadLagPair pair =
      compute_pair(leader_hours, follower_hours, window_hours, index.spec().window_hours());
  pair.leader = leader;
  pair.follower = follower;
  return pair;
}

Result<LeadLagPair> analyze_lead_lag_pair(const data::FailureLog& log, data::Category leader,
                                          data::Category follower, double window_hours) {
  return analyze_lead_lag_pair(data::LogIndex(log), leader, follower, window_hours);
}

Result<LeadLagAnalysis> analyze_lead_lag(const data::LogIndex& index, double window_hours,
                                         std::size_t min_events) {
  if (!(window_hours > 0.0))
    return Error(ErrorKind::kDomain, "lead-lag window must be positive");

  // Enum order over all categories with events, matching the enum-keyed
  // map the record scan used to build, so the pair list's pre-sort order
  // (and hence equal-z tie order) is unchanged.
  std::map<data::Category, std::vector<double>> events;
  for (std::size_t c = 0; c <= static_cast<std::size_t>(data::Category::kUnknown); ++c) {
    const auto category = static_cast<data::Category>(c);
    const auto positions = index.by_category(category);
    if (!positions.empty()) events[category] = index.hours_of(positions);
  }
  std::vector<data::Category> qualifying;
  for (const auto& [category, hours] : events) {
    if (hours.size() >= min_events) qualifying.push_back(category);
  }
  if (qualifying.size() < 2)
    return Error(ErrorKind::kDomain,
                 "lead-lag: need at least 2 categories with >= " + std::to_string(min_events) +
                     " events");

  LeadLagAnalysis analysis;
  analysis.window_hours = window_hours;
  const double span = index.spec().window_hours();
  for (data::Category leader : qualifying) {
    for (data::Category follower : qualifying) {
      LeadLagPair pair =
          compute_pair(events[leader], events[follower], window_hours, span);
      pair.leader = leader;
      pair.follower = follower;
      analysis.pairs.push_back(pair);
    }
  }
  std::sort(analysis.pairs.begin(), analysis.pairs.end(),
            [](const LeadLagPair& a, const LeadLagPair& b) { return a.z_score > b.z_score; });
  return analysis;
}

Result<LeadLagAnalysis> analyze_lead_lag(const data::FailureLog& log, double window_hours,
                                         std::size_t min_events) {
  return analyze_lead_lag(data::LogIndex(log), window_hours, min_events);
}

}  // namespace tsufail::analysis
