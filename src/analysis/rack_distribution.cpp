#include "analysis/rack_distribution.h"

#include <algorithm>
#include <numeric>

#include "stats/hypothesis.h"

namespace tsufail::analysis {

double gini_coefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0.0) return 0.0;
  // G = (2 * sum_i i*x_(i) ) / (n * total) - (n + 1) / n, with 1-based i.
  double weighted = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += static_cast<double>(i + 1) * values[i];
  }
  const auto n = static_cast<double>(values.size());
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

Result<RackDistribution> analyze_racks(const data::LogIndex& index) {
  if (index.empty())
    return Error(ErrorKind::kDomain, "analyze_racks: empty log");
  if (index.spec().nodes_per_rack <= 0)
    return Error(ErrorKind::kDomain, "analyze_racks: machine spec has no rack layout");

  const int rack_count = index.spec().rack_count();
  std::vector<std::size_t> counts(static_cast<std::size_t>(rack_count), 0);
  for (const auto& group : index.nodes()) {
    counts[static_cast<std::size_t>(index.spec().rack_of(group.node))] += group.count;
  }

  RackDistribution result;
  result.total_racks = static_cast<std::size_t>(rack_count);
  const double total = static_cast<double>(index.size());

  std::vector<double> expected;  // rack sizes (the last rack may be partial)
  for (int rack = 0; rack < rack_count; ++rack) {
    const int first = rack * index.spec().nodes_per_rack;
    const int size = std::min(index.spec().nodes_per_rack, index.spec().node_count - first);
    expected.push_back(static_cast<double>(size));
    const auto count = counts[static_cast<std::size_t>(rack)];
    result.racks_with_failures += count > 0;
    result.racks.push_back({rack, count, 100.0 * static_cast<double>(count) / total,
                            static_cast<double>(count) / static_cast<double>(size)});
  }
  std::stable_sort(result.racks.begin(), result.racks.end(),
                   [](const RackShare& a, const RackShare& b) { return a.failures > b.failures; });

  if (auto chi = stats::chi_square_gof(counts, expected); chi.ok())
    result.uniformity_p_value = chi.value().p_value;

  std::vector<double> rates;
  rates.reserve(result.racks.size());
  for (const auto& rack : result.racks) rates.push_back(static_cast<double>(rack.failures));
  result.gini = gini_coefficient(std::move(rates));

  std::size_t cumulative = 0;
  for (const auto& rack : result.racks) {  // already descending
    cumulative += rack.failures;
    ++result.racks_holding_half;
    if (static_cast<double>(cumulative) >= total / 2.0) break;
  }
  return result;
}

Result<RackDistribution> analyze_racks(const data::FailureLog& log) {
  return analyze_racks(data::LogIndex(log));
}

}  // namespace tsufail::analysis
