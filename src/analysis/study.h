// StudyReport: every analysis in the paper, computed in one call.
//
// This is the convenience entry point for downstream users ("run the
// DSN'21 study on my log").  The log is indexed once (data::LogIndex) and
// the independent analyses are dispatched over it through the Executor,
// optionally in parallel (StudyOptions::jobs); the assembled report is
// identical for any thread count.  Analyses that are undefined for a
// given log (e.g. multi-GPU clustering on a log with no multi-GPU
// failures) are carried as std::optional and simply absent, with the
// reason recorded in StudyReport::skipped.
#pragma once

#include <optional>
#include <string>

#include "analysis/category_breakdown.h"
#include "analysis/gpu_slots.h"
#include "analysis/multi_gpu.h"
#include "analysis/node_counts.h"
#include "analysis/perf_error_prop.h"
#include "analysis/seasonal.h"
#include "analysis/software_loci.h"
#include "analysis/tbf.h"
#include "analysis/temporal_cluster.h"
#include "analysis/ttr.h"

namespace tsufail::analysis {

struct StudyOptions {
  /// Worker threads for the independent analyses: 1 (the default) runs
  /// everything serially on the calling thread, 0 uses one worker per
  /// hardware thread, n > 1 uses n workers.  The report is bit-identical
  /// for every value.
  std::size_t jobs = 1;
};

/// An optional analysis that could not be computed for this log, and why.
struct SkippedAnalysis {
  std::string analysis;  ///< analysis name, e.g. "multi_gpu_clustering"
  Error error;           ///< the domain error that made it undefined
};

struct StudyReport {
  CategoryBreakdown categories;                       // Fig 2
  std::optional<SoftwareLoci> software_loci;          // Fig 3
  NodeCounts node_counts;                             // Fig 4
  std::optional<GpuSlotDistribution> gpu_slots;       // Fig 5
  std::optional<MultiGpuInvolvement> multi_gpu;       // Table III
  std::optional<TbfResult> tbf;                       // Fig 6
  std::vector<CategoryTbf> tbf_by_category;           // Fig 7
  std::optional<TemporalClustering> multi_gpu_clustering;  // Fig 8
  TtrResult ttr;                                      // Fig 9
  std::vector<CategoryTtr> ttr_by_category;           // Fig 10
  SeasonalAnalysis seasonal;                          // Fig 11-12
  PerfErrorProportionality perf_error_prop;           // RQ4 metric
  /// Optional analyses that were undefined for this log, in the order the
  /// study runs them, each with the error explaining why.
  std::vector<SkippedAnalysis> skipped;
};

/// Runs the full study on one log.  Errors only on conditions that make
/// the whole study meaningless (empty log, or a required analysis
/// failing); per-analysis impossibilities yield absent optionals / empty
/// vectors and an entry in StudyReport::skipped instead.
Result<StudyReport> run_study(const data::FailureLog& log, const StudyOptions& options);
Result<StudyReport> run_study(const data::FailureLog& log);

}  // namespace tsufail::analysis
