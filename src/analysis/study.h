// StudyReport: every analysis in the paper, computed in one call.
//
// This is the convenience entry point for downstream users ("run the
// DSN'21 study on my log").  Analyses that are undefined for a given log
// (e.g. multi-GPU clustering on a log with no multi-GPU failures) are
// carried as std::optional and simply absent.
#pragma once

#include <optional>

#include "analysis/category_breakdown.h"
#include "analysis/gpu_slots.h"
#include "analysis/multi_gpu.h"
#include "analysis/node_counts.h"
#include "analysis/perf_error_prop.h"
#include "analysis/seasonal.h"
#include "analysis/software_loci.h"
#include "analysis/tbf.h"
#include "analysis/temporal_cluster.h"
#include "analysis/ttr.h"

namespace tsufail::analysis {

struct StudyReport {
  CategoryBreakdown categories;                       // Fig 2
  std::optional<SoftwareLoci> software_loci;          // Fig 3
  NodeCounts node_counts;                             // Fig 4
  std::optional<GpuSlotDistribution> gpu_slots;       // Fig 5
  std::optional<MultiGpuInvolvement> multi_gpu;       // Table III
  std::optional<TbfResult> tbf;                       // Fig 6
  std::vector<CategoryTbf> tbf_by_category;           // Fig 7
  std::optional<TemporalClustering> multi_gpu_clustering;  // Fig 8
  TtrResult ttr;                                      // Fig 9
  std::vector<CategoryTtr> ttr_by_category;           // Fig 10
  SeasonalAnalysis seasonal;                          // Fig 11-12
  PerfErrorProportionality perf_error_prop;           // RQ4 metric
};

/// Runs the full study on one log.  Errors only on conditions that make
/// the whole study meaningless (empty log); per-analysis impossibilities
/// yield absent optionals / empty vectors instead.
Result<StudyReport> run_study(const data::FailureLog& log);

}  // namespace tsufail::analysis
