#include "analysis/query.h"

#include <cstdio>
#include <vector>

#include "analysis/category_breakdown.h"
#include "analysis/gpu_slots.h"
#include "analysis/multi_gpu.h"
#include "analysis/node_counts.h"
#include "analysis/perf_error_prop.h"
#include "analysis/seasonal.h"
#include "analysis/software_loci.h"
#include "analysis/tbf.h"
#include "analysis/temporal_cluster.h"
#include "analysis/ttr.h"

namespace tsufail::analysis {
namespace {

// Fragments are "key: value" lines.  %.10g keeps the text readable while
// still exposing any drift between the incremental and batch index paths
// well below the oracle's ULP tiers.
void kv(std::string& out, std::string_view key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out.append(key).append(": ").append(buffer).push_back('\n');
}

void kv(std::string& out, std::string_view key, std::size_t value) {
  out.append(key).append(": ").append(std::to_string(value)).push_back('\n');
}

void kv(std::string& out, std::string_view key, std::string_view value) {
  out.append(key).append(": ").append(value).push_back('\n');
}

void summary_lines(std::string& out, std::string_view prefix, const stats::Summary& s) {
  std::string p(prefix);
  kv(out, p + ".count", s.count);
  kv(out, p + ".mean", s.mean);
  kv(out, p + ".median", s.median);
  kv(out, p + ".p95", s.p95);
  kv(out, p + ".max", s.max);
}

Result<std::string> query_summary(const data::LogIndex& index) {
  std::string out;
  kv(out, "machine", index.spec().name);
  kv(out, "failures", index.size());
  kv(out, "window_hours", index.spec().window_hours());
  auto tbf = analyze_tbf(index);
  if (tbf.ok()) {
    kv(out, "mtbf_hours", tbf.value().exposure_mtbf_hours);
  } else {
    kv(out, "mtbf_hours", "undefined (" + tbf.error().message() + ")");
  }
  auto ttr = analyze_ttr(index);
  if (ttr.ok()) kv(out, "mttr_hours", ttr.value().mttr_hours);
  auto nodes = analyze_node_counts(index);
  if (nodes.ok()) {
    kv(out, "failed_nodes", nodes.value().failed_nodes);
    kv(out, "total_nodes", nodes.value().total_nodes);
  }
  return out;
}

Result<std::string> query_categories(const data::LogIndex& index) {
  auto breakdown = analyze_categories(index);
  if (!breakdown.ok()) return breakdown.error();
  std::string out;
  kv(out, "total_failures", breakdown.value().total_failures);
  for (const auto& share : breakdown.value().categories) {
    if (share.count == 0) continue;
    std::string key = "category.";
    key += data::to_string(share.category);
    kv(out, key + ".count", share.count);
    kv(out, key + ".percent", share.percent);
  }
  return out;
}

Result<std::string> query_software_loci(const data::LogIndex& index) {
  auto loci = analyze_software_loci(index);
  if (!loci.ok()) return loci.error();
  std::string out;
  kv(out, "software_failures", loci.value().software_failures);
  kv(out, "distinct_loci", loci.value().distinct_loci);
  kv(out, "gpu_driver_percent", loci.value().gpu_driver_percent);
  kv(out, "unknown_percent", loci.value().unknown_percent);
  return out;
}

Result<std::string> query_node_counts(const data::LogIndex& index) {
  auto nodes = analyze_node_counts(index);
  if (!nodes.ok()) return nodes.error();
  std::string out;
  kv(out, "failed_nodes", nodes.value().failed_nodes);
  kv(out, "total_nodes", nodes.value().total_nodes);
  kv(out, "percent_single_failure", nodes.value().percent_single_failure);
  kv(out, "percent_multi_failure", nodes.value().percent_multi_failure);
  kv(out, "max_failures_on_one_node", nodes.value().max_failures_on_one_node);
  return out;
}

Result<std::string> query_gpu_slots(const data::LogIndex& index) {
  auto slots = analyze_gpu_slots(index);
  if (!slots.ok()) return slots.error();
  std::string out;
  kv(out, "attributed_failures", slots.value().attributed_failures);
  kv(out, "total_involvements", slots.value().total_involvements);
  kv(out, "max_relative_excess", slots.value().max_relative_excess);
  kv(out, "uniformity_p_value", slots.value().uniformity_p_value);
  return out;
}

Result<std::string> query_multi_gpu(const data::LogIndex& index) {
  auto multi = analyze_multi_gpu(index);
  if (!multi.ok()) return multi.error();
  std::string out;
  kv(out, "attributed_failures", multi.value().attributed_failures);
  kv(out, "percent_multi", multi.value().percent_multi);
  return out;
}

Result<std::string> query_tbf(const data::LogIndex& index) {
  auto tbf = analyze_tbf(index);
  if (!tbf.ok()) return tbf.error();
  std::string out;
  kv(out, "mtbf_hours", tbf.value().mtbf_hours);
  kv(out, "exposure_mtbf_hours", tbf.value().exposure_mtbf_hours);
  kv(out, "p75_hours", tbf.value().p75_hours);
  summary_lines(out, "tbf", tbf.value().summary);
  return out;
}

Result<std::string> query_tbf_by_category(const data::LogIndex& index) {
  auto tbf = analyze_tbf_by_category(index);
  if (!tbf.ok()) return tbf.error();
  std::string out;
  for (const auto& category : tbf.value()) {
    std::string key = "tbf.";
    key += data::to_string(category.category);
    kv(out, key + ".failures", category.failures);
    kv(out, key + ".mtbf_hours", category.mtbf_hours);
  }
  return out;
}

Result<std::string> query_clustering(const data::LogIndex& index) {
  auto clustering = analyze_multi_gpu_clustering(index);
  if (!clustering.ok()) return clustering.error();
  std::string out;
  kv(out, "events", clustering.value().events);
  kv(out, "cv", clustering.value().cv);
  kv(out, "burstiness", clustering.value().burstiness);
  kv(out, "follow_probability", clustering.value().follow_probability);
  kv(out, "clustered", std::string_view(clustering.value().clustered ? "true" : "false"));
  return out;
}

Result<std::string> query_ttr(const data::LogIndex& index) {
  auto ttr = analyze_ttr(index);
  if (!ttr.ok()) return ttr.error();
  std::string out;
  kv(out, "mttr_hours", ttr.value().mttr_hours);
  summary_lines(out, "ttr", ttr.value().summary);
  return out;
}

Result<std::string> query_ttr_by_category(const data::LogIndex& index) {
  auto ttr = analyze_ttr_by_category(index);
  if (!ttr.ok()) return ttr.error();
  std::string out;
  for (const auto& category : ttr.value()) {
    std::string key = "ttr.";
    key += data::to_string(category.category);
    kv(out, key + ".failures", category.failures);
    kv(out, key + ".mttr_hours", category.mttr_hours);
  }
  return out;
}

Result<std::string> query_seasonal(const data::LogIndex& index) {
  auto seasonal = analyze_seasonal(index);
  if (!seasonal.ok()) return seasonal.error();
  std::string out;
  for (int month = 0; month < 12; ++month) {
    std::string key = "month." + std::to_string(month + 1);
    kv(out, key + ".failures", seasonal.value().failure_counts[month]);
    kv(out, key + ".failures_per_day", seasonal.value().failures_per_day[month]);
  }
  kv(out, "first_half_median_ttr", seasonal.value().first_half_median_ttr);
  kv(out, "second_half_median_ttr", seasonal.value().second_half_median_ttr);
  return out;
}

Result<std::string> query_perf_error(const data::LogIndex& index) {
  auto perf = analyze_perf_error_prop(index);
  if (!perf.ok()) return perf.error();
  std::string out;
  kv(out, "mtbf_hours", perf.value().mtbf_hours);
  kv(out, "rpeak_pflops", perf.value().rpeak_pflops);
  kv(out, "pflop_hours_per_failure_free_period",
     perf.value().pflop_hours_per_failure_free_period);
  kv(out, "pflop_hours_per_component", perf.value().pflop_hours_per_component);
  return out;
}

using QueryFn = Result<std::string> (*)(const data::LogIndex&);

struct QueryEntry {
  QueryKey key;
  QueryFn run;
};

const QueryEntry kQueries[] = {
    {{"summary", "headline counts, MTBF, MTTR, failed nodes"}, query_summary},
    {{"categories", "per-category counts and shares (Fig 2)"}, query_categories},
    {{"software-loci", "software root-locus breakdown (Fig 3)"}, query_software_loci},
    {{"node-counts", "per-node failure distribution (Fig 4)"}, query_node_counts},
    {{"gpu-slots", "GPU slot distribution and uniformity (Fig 5)"}, query_gpu_slots},
    {{"multi-gpu", "multi-GPU involvement (Table III)"}, query_multi_gpu},
    {{"tbf", "time-between-failures statistics (Fig 6)"}, query_tbf},
    {{"tbf-by-category", "per-category TBF (Fig 7)"}, query_tbf_by_category},
    {{"clustering", "multi-GPU temporal clustering (Fig 8)"}, query_clustering},
    {{"ttr", "time-to-recovery statistics (Fig 9)"}, query_ttr},
    {{"ttr-by-category", "per-category TTR (Fig 10)"}, query_ttr_by_category},
    {{"seasonal", "monthly failure counts and TTR (Fig 11-12)"}, query_seasonal},
    {{"perf-error", "performance-error proportionality (RQ4)"}, query_perf_error},
};

}  // namespace

std::span<const QueryKey> query_keys() noexcept {
  static const std::vector<QueryKey>* keys = [] {
    auto* out = new std::vector<QueryKey>();
    for (const auto& entry : kQueries) out->push_back(entry.key);
    return out;
  }();
  return {keys->data(), keys->size()};
}

bool is_query_key(std::string_view key) noexcept {
  for (const auto& entry : kQueries) {
    if (entry.key.key == key) return true;
  }
  return false;
}

Result<std::string> run_query(std::string_view key, const data::LogIndex& index) {
  for (const auto& entry : kQueries) {
    if (entry.key.key == key) return entry.run(index);
  }
  return Error(ErrorKind::kNotFound, "unknown query key '" + std::string(key) + "'");
}

}  // namespace tsufail::analysis
