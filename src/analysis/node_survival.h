// Node survival analysis: a censoring-aware extension of RQ2.
//
// Figure 4 counts failures per node but ignores time: a node that failed
// once on the last day had no chance to become a repeat offender.  The
// survival view fixes that: time-to-first-failure across all nodes
// (never-failed nodes right-censored at window end), time from first to
// second failure across failed nodes, and a log-rank test of the paper's
// repeat-failure claim — "a node that has failed fails again sooner than
// a fresh node fails at all".
#pragma once

#include <optional>

#include "data/log.h"
#include "data/log_index.h"
#include "stats/survival.h"

namespace tsufail::analysis {

struct NodeSurvival {
  /// Time (hours since window start... per node: hours until its first
  /// failure), censored at the window end for nodes that never failed.
  stats::SurvivalCurve first_failure;
  double fraction_never_failed = 0.0;
  /// Median time to first failure, absent when > 50% of nodes never fail
  /// inside the window (the common case on healthy fleets).
  std::optional<double> median_first_failure_hours;

  /// Time from a node's first failure to its second, censored at the
  /// window end; defined over nodes with >= 1 failure.
  stats::SurvivalCurve refailure;
  std::optional<double> median_refailure_hours;

  /// Log-rank test: refailure times vs first-failure times.  A small
  /// p-value with negative observed-minus-expected for the first-failure
  /// group means failed nodes re-fail significantly faster — the
  /// statistical form of the paper's lemon-node observation.
  std::optional<stats::LogRankResult> repeat_offender_test;
  bool failed_nodes_refail_faster = false;
};

/// Computes the node survival view. Errors: empty log.
Result<NodeSurvival> analyze_node_survival(const data::LogIndex& index);
Result<NodeSurvival> analyze_node_survival(const data::FailureLog& log);

}  // namespace tsufail::analysis
