// RQ3 / Table III: how many GPUs are involved per GPU failure.
//
// Counts slot-attributed GPU-hardware failures by the number of GPUs
// involved (1 .. gpus_per_node), mirroring the paper's Table III where
// ~70% of Tsubame-2 GPU failures hit multiple GPUs but > 92% of
// Tsubame-3's hit exactly one.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct InvolvementBucket {
  int gpus = 0;            ///< exactly this many GPUs involved
  std::size_t count = 0;
  double percent = 0.0;    ///< of attributed GPU failures
};

struct MultiGpuInvolvement {
  std::size_t attributed_failures = 0;    ///< Table III "Total" row
  std::vector<InvolvementBucket> buckets; ///< 1 .. gpus_per_node, all present
  double percent_multi = 0.0;             ///< failures involving >= 2 GPUs

  double percent_with(int gpus) const noexcept;
  std::size_t count_with(int gpus) const noexcept;
};

/// Computes Table III from slot-attributed GPU failures.
/// Errors: no attributed GPU failures.
Result<MultiGpuInvolvement> analyze_multi_gpu(const data::LogIndex& index);
Result<MultiGpuInvolvement> analyze_multi_gpu(const data::FailureLog& log);

}  // namespace tsufail::analysis
