#include "analysis/node_survival.h"

#include <vector>

namespace tsufail::analysis {

Result<NodeSurvival> analyze_node_survival(const data::LogIndex& index) {
  if (index.empty())
    return Error(ErrorKind::kDomain, "analyze_node_survival: empty log");

  const double window = index.spec().window_hours();

  // Node groups are ascending by node id and each group's positions are
  // time-sorted, so positions[0]/positions[1] are the first and second
  // failure instants.  A cursor walk pairs groups with the 0..node_count
  // sweep without a per-node lookup.
  const auto groups = index.nodes();
  std::size_t cursor = 0;

  std::vector<stats::SurvivalObservation> first, refail;
  first.reserve(static_cast<std::size_t>(index.spec().node_count));
  for (int node = 0; node < index.spec().node_count; ++node) {
    if (cursor == groups.size() || groups[cursor].node != node) {
      first.push_back({window, /*event=*/false});  // never failed: censored
      continue;
    }
    const auto positions = index.positions_of(groups[cursor]);
    ++cursor;
    const double first_hours = index.hours()[positions[0]];
    first.push_back({first_hours, /*event=*/true});
    if (positions.size() >= 2) {
      refail.push_back({index.hours()[positions[1]] - first_hours, /*event=*/true});
    } else {
      refail.push_back({window - first_hours, /*event=*/false});
    }
  }

  NodeSurvival result;
  auto first_curve = stats::SurvivalCurve::fit(first);
  if (!first_curve.ok()) return first_curve.error().with_context("first-failure curve");
  result.first_failure = std::move(first_curve.value());
  result.fraction_never_failed =
      static_cast<double>(result.first_failure.censored()) /
      static_cast<double>(result.first_failure.observations());
  if (auto median = result.first_failure.quantile(0.5); median.ok())
    result.median_first_failure_hours = median.value();

  auto refail_curve = stats::SurvivalCurve::fit(refail);
  if (!refail_curve.ok()) return refail_curve.error().with_context("refailure curve");
  result.refailure = std::move(refail_curve.value());
  if (auto median = result.refailure.quantile(0.5); median.ok())
    result.median_refailure_hours = median.value();

  if (auto test = stats::log_rank_test(refail, first); test.ok()) {
    result.repeat_offender_test = test.value();
    // Group A is the refailure sample: more events than expected under a
    // shared hazard means failed nodes re-fail faster.
    result.failed_nodes_refail_faster =
        test.value().observed_minus_expected_a > 0.0 && test.value().p_value < 0.05;
  }
  return result;
}

Result<NodeSurvival> analyze_node_survival(const data::FailureLog& log) {
  return analyze_node_survival(data::LogIndex(log));
}

}  // namespace tsufail::analysis
