#include "analysis/node_survival.h"

#include <map>
#include <vector>

namespace tsufail::analysis {

Result<NodeSurvival> analyze_node_survival(const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "analyze_node_survival: empty log");

  const double window = log.spec().window_hours();

  // First and second failure instants per node (records are time-sorted).
  std::map<int, std::vector<double>> failure_hours;
  for (const auto& record : log.records()) {
    auto& hours = failure_hours[record.node];
    if (hours.size() < 2) hours.push_back(hours_between(log.spec().log_start, record.time));
  }

  std::vector<stats::SurvivalObservation> first, refail;
  first.reserve(static_cast<std::size_t>(log.spec().node_count));
  for (int node = 0; node < log.spec().node_count; ++node) {
    const auto it = failure_hours.find(node);
    if (it == failure_hours.end()) {
      first.push_back({window, /*event=*/false});  // never failed: censored
      continue;
    }
    first.push_back({it->second[0], /*event=*/true});
    if (it->second.size() >= 2) {
      refail.push_back({it->second[1] - it->second[0], /*event=*/true});
    } else {
      refail.push_back({window - it->second[0], /*event=*/false});
    }
  }

  NodeSurvival result;
  auto first_curve = stats::SurvivalCurve::fit(first);
  if (!first_curve.ok()) return first_curve.error().with_context("first-failure curve");
  result.first_failure = std::move(first_curve.value());
  result.fraction_never_failed =
      static_cast<double>(result.first_failure.censored()) /
      static_cast<double>(result.first_failure.observations());
  if (auto median = result.first_failure.quantile(0.5); median.ok())
    result.median_first_failure_hours = median.value();

  auto refail_curve = stats::SurvivalCurve::fit(refail);
  if (!refail_curve.ok()) return refail_curve.error().with_context("refailure curve");
  result.refailure = std::move(refail_curve.value());
  if (auto median = result.refailure.quantile(0.5); median.ok())
    result.median_refailure_hours = median.value();

  if (auto test = stats::log_rank_test(refail, first); test.ok()) {
    result.repeat_offender_test = test.value();
    // Group A is the refailure sample: more events than expected under a
    // shared hazard means failed nodes re-fail faster.
    result.failed_nodes_refail_faster =
        test.value().observed_minus_expected_a > 0.0 && test.value().p_value < 0.05;
  }
  return result;
}

}  // namespace tsufail::analysis
