// Figure 3: root loci of software failures on Tsubame-3.
//
// The paper breaks the "Software" category's 171 reported root loci into
// the top-16 causes; ~43% are GPU-driver-related and ~20% have no known
// cause.  A "root locus" here is the free-text label the operators
// recorded; records without one are counted as "unknown".
#pragma once

#include <string>
#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct RootLocusShare {
  std::string locus;       ///< normalized label ("unknown" if none recorded)
  std::size_t count = 0;
  double percent = 0.0;    ///< of all software-class failures
};

struct SoftwareLoci {
  std::size_t software_failures = 0;    ///< software-class records considered
  std::size_t distinct_loci = 0;        ///< distinct labels (incl. "unknown")
  std::vector<RootLocusShare> top;      ///< descending by count, truncated
  double gpu_driver_percent = 0.0;      ///< loci containing "driver" or "cuda"
  double unknown_percent = 0.0;         ///< unlabelled records

  double percent_of(std::string_view locus) const noexcept;
};

/// Computes the Figure 3 breakdown over software-class failures.
/// `top_n` truncates the list (16 in the paper).  Errors: the log has no
/// software-class failures.
Result<SoftwareLoci> analyze_software_loci(const data::LogIndex& index, std::size_t top_n = 16);
Result<SoftwareLoci> analyze_software_loci(const data::FailureLog& log, std::size_t top_n = 16);

}  // namespace tsufail::analysis
