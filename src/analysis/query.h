// Cacheable analysis queries: a stable key vocabulary over the indexed
// analyses, each rendering a deterministic plain-text fragment.
//
// The fleet service caches query results by (tenant, epoch, key), so two
// contracts matter here: the key set is append-only and spelled once
// (query_keys()), and run_query is a pure function of the index — the
// same snapshot and key always produce the same bytes, making a cached
// fragment indistinguishable from a recomputed one.  Analyses that are
// undefined for a log (e.g. TBF with < 2 failures) return their domain
// error; the service maps that to an error response rather than caching
// it.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "data/log_index.h"
#include "util/error.h"

namespace tsufail::analysis {

/// One cacheable query: the cache-key token plus a help one-liner.
struct QueryKey {
  std::string_view key;
  std::string_view summary;
};

/// The stable vocabulary, in help order.  "study" (the full analyze
/// text) is handled one layer up, in the serve query engine, because its
/// rendering lives in tsufail_report; everything here depends only on
/// the analysis layer.
std::span<const QueryKey> query_keys() noexcept;

/// True iff `key` is in query_keys().
bool is_query_key(std::string_view key) noexcept;

/// Runs one keyed analysis over an indexed log.  Errors: unknown key
/// (kNotFound) or the analysis's own domain error for this log.
Result<std::string> run_query(std::string_view key, const data::LogIndex& index);

}  // namespace tsufail::analysis
