// RQ5 / Figures 9-10: time to recovery.
//
// TTR is directly recorded per failure, so unlike TBF no differencing is
// involved; the analysis is distributional: MTTR, the full CDF (Figure 9),
// and per-category boxes sorted by mean (Figure 10).  The paper's
// "impact" observation — infrequent categories can still hurt via long
// repairs — is captured by `CategoryTtr::share_percent` next to `box.max`.
#pragma once

#include <optional>
#include <vector>

#include "data/log.h"
#include "data/log_index.h"
#include "stats/descriptive.h"
#include "stats/fit.h"

namespace tsufail::analysis {

struct TtrResult {
  std::vector<double> ttr_hours;     ///< per-failure repair times
  double mttr_hours = 0.0;
  stats::Summary summary;
  std::optional<stats::FamilyChoice> best_family;
};

/// System-wide TTR. Errors: empty log.
Result<TtrResult> analyze_ttr(const data::LogIndex& index);
Result<TtrResult> analyze_ttr(const data::FailureLog& log);

/// TTR restricted to one category. Errors: no such failures.
Result<TtrResult> analyze_ttr_category(const data::LogIndex& index, data::Category category);
Result<TtrResult> analyze_ttr_category(const data::FailureLog& log, data::Category category);

/// TTR restricted to one failure class. Errors: no such failures.
Result<TtrResult> analyze_ttr_class(const data::LogIndex& index, data::FailureClass cls);
Result<TtrResult> analyze_ttr_class(const data::FailureLog& log, data::FailureClass cls);

struct CategoryTtr {
  data::Category category = data::Category::kUnknown;
  std::size_t failures = 0;
  double share_percent = 0.0;  ///< category's share of all failures
  stats::BoxStats box;         ///< Figure 10's per-type box
  double mttr_hours = 0.0;
};

/// Per-category TTR boxes (Figure 10), ascending by mean TTR.
/// Categories with fewer than `min_failures` records are skipped.
/// Errors: no category reaches `min_failures`.
Result<std::vector<CategoryTtr>> analyze_ttr_by_category(const data::LogIndex& index,
                                                         std::size_t min_failures = 2);
Result<std::vector<CategoryTtr>> analyze_ttr_by_category(const data::FailureLog& log,
                                                         std::size_t min_failures = 2);

}  // namespace tsufail::analysis
