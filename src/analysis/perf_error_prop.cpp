#include "analysis/perf_error_prop.h"

namespace tsufail::analysis {

Result<PerfErrorProportionality> analyze_perf_error_prop(const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "analyze_perf_error_prop: empty log");
  PerfErrorProportionality result;
  result.mtbf_hours = log.spec().window_hours() / static_cast<double>(log.size());
  result.rpeak_pflops = log.spec().rpeak_pflops;
  result.pflop_hours_per_failure_free_period = result.rpeak_pflops * result.mtbf_hours;
  result.components = log.spec().total_gpu_cpu_components();
  result.pflop_hours_per_component =
      result.pflop_hours_per_failure_free_period / static_cast<double>(result.components);
  return result;
}

Result<GenerationComparison> compare_generations(const data::FailureLog& older,
                                                 const data::FailureLog& newer) {
  auto older_metric = analyze_perf_error_prop(older);
  if (!older_metric.ok()) return older_metric.error().with_context("older system");
  auto newer_metric = analyze_perf_error_prop(newer);
  if (!newer_metric.ok()) return newer_metric.error().with_context("newer system");

  GenerationComparison cmp;
  cmp.older = older_metric.value();
  cmp.newer = newer_metric.value();
  cmp.compute_ratio = cmp.newer.rpeak_pflops / cmp.older.rpeak_pflops;
  cmp.mtbf_ratio = cmp.newer.mtbf_hours / cmp.older.mtbf_hours;
  cmp.metric_ratio = cmp.newer.pflop_hours_per_failure_free_period /
                     cmp.older.pflop_hours_per_failure_free_period;
  cmp.component_ratio =
      static_cast<double>(cmp.older.components) / static_cast<double>(cmp.newer.components);
  cmp.reliability_outpaced_shrinkage = cmp.mtbf_ratio > cmp.component_ratio;
  return cmp;
}

}  // namespace tsufail::analysis
