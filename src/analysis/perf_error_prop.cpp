#include "analysis/perf_error_prop.h"

namespace tsufail::analysis {

namespace {

Result<PerfErrorProportionality> perf_error_prop(const data::MachineSpec& spec,
                                                 std::size_t failures) {
  if (failures == 0)
    return Error(ErrorKind::kDomain, "analyze_perf_error_prop: empty log");
  PerfErrorProportionality result;
  result.mtbf_hours = spec.window_hours() / static_cast<double>(failures);
  result.rpeak_pflops = spec.rpeak_pflops;
  result.pflop_hours_per_failure_free_period = result.rpeak_pflops * result.mtbf_hours;
  result.components = spec.total_gpu_cpu_components();
  result.pflop_hours_per_component =
      result.pflop_hours_per_failure_free_period / static_cast<double>(result.components);
  return result;
}

}  // namespace

Result<PerfErrorProportionality> analyze_perf_error_prop(const data::LogIndex& index) {
  return perf_error_prop(index.spec(), index.size());
}

Result<PerfErrorProportionality> analyze_perf_error_prop(const data::FailureLog& log) {
  return perf_error_prop(log.spec(), log.size());
}

Result<GenerationComparison> compare_generations(const data::FailureLog& older,
                                                 const data::FailureLog& newer) {
  auto older_metric = analyze_perf_error_prop(older);
  if (!older_metric.ok()) return older_metric.error().with_context("older system");
  auto newer_metric = analyze_perf_error_prop(newer);
  if (!newer_metric.ok()) return newer_metric.error().with_context("newer system");

  GenerationComparison cmp;
  cmp.older = older_metric.value();
  cmp.newer = newer_metric.value();
  cmp.compute_ratio = cmp.newer.rpeak_pflops / cmp.older.rpeak_pflops;
  cmp.mtbf_ratio = cmp.newer.mtbf_hours / cmp.older.mtbf_hours;
  cmp.metric_ratio = cmp.newer.pflop_hours_per_failure_free_period /
                     cmp.older.pflop_hours_per_failure_free_period;
  cmp.component_ratio =
      static_cast<double>(cmp.older.components) / static_cast<double>(cmp.newer.components);
  cmp.reliability_outpaced_shrinkage = cmp.mtbf_ratio > cmp.component_ratio;
  return cmp;
}

}  // namespace tsufail::analysis
