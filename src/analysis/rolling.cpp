#include "analysis/rolling.h"

#include <algorithm>
#include <cstdint>

#include "stats/simd.h"

namespace tsufail::analysis {

Result<RollingTrends> analyze_rolling_trends(const data::LogIndex& index, double window_days,
                                             double step_days) {
  if (index.empty())
    return Error(ErrorKind::kDomain, "analyze_rolling_trends: empty log");
  if (!(window_days > 0.0) || !(step_days > 0.0))
    return Error(ErrorKind::kDomain, "analyze_rolling_trends: window and step must be positive");

  const double total_hours = index.spec().window_hours();
  const double window_hours = window_days * 24.0;
  const double step_hours = step_days * 24.0;
  if (window_hours > total_hours)
    return Error(ErrorKind::kDomain, "analyze_rolling_trends: window exceeds the log span");

  const auto event_hours = index.hours();
  const auto ttr = index.ttr();  // same order as records/event_hours

  RollingTrends trends;
  trends.window_hours = window_hours;
  trends.step_hours = step_hours;

  // All window bounds up front, so the per-window binary searches run as
  // two lane-parallel batches (stats::simd) instead of 2 searches per
  // window: lo = first event >= start (lower_bound), hi = first event >
  // end (upper_bound) — the same positions the per-window searches found.
  std::vector<double> starts, ends;
  for (double start = 0.0; start + window_hours <= total_hours + 1e-9; start += step_hours) {
    starts.push_back(start);
    ends.push_back(start + window_hours);
  }
  std::vector<std::uint32_t> lo_counts(starts.size()), hi_counts(starts.size());
  stats::simd::lower_bound_many(event_hours, starts, lo_counts);
  stats::simd::upper_bound_many(event_hours, ends, hi_counts);

  for (std::size_t w = 0; w < starts.size(); ++w) {
    RollingWindow window;
    window.center_hours = (starts[w] + ends[w]) / 2.0;
    window.failures = hi_counts[w] - lo_counts[w];
    // Left-to-right accumulation, deliberately NOT a prefix-sum subtraction:
    // prefix[hi] - prefix[lo] reassociates the additions and would break
    // bit-identity with the original per-window sweep.
    double ttr_sum = 0.0;
    for (std::size_t i = lo_counts[w]; i < hi_counts[w]; ++i) ttr_sum += ttr[i];
    window.failures_per_day = static_cast<double>(window.failures) / window_days;
    if (window.failures > 0) {
      window.mtbf_hours = window_hours / static_cast<double>(window.failures);
      window.mttr_hours = ttr_sum / static_cast<double>(window.failures);
    }
    trends.windows.push_back(window);
  }
  if (trends.windows.size() < 3)
    return Error(ErrorKind::kDomain,
                 "analyze_rolling_trends: fewer than 3 windows; shrink window/step");

  std::vector<double> centers, rates, mttrs_x, mttrs_y;
  for (const auto& window : trends.windows) {
    centers.push_back(window.center_hours);
    rates.push_back(window.failures_per_day);
    if (window.failures > 0) {
      mttrs_x.push_back(window.center_hours);
      mttrs_y.push_back(window.mttr_hours);
    }
  }
  auto rate_fit = stats::linear_fit(centers, rates);
  if (!rate_fit.ok()) return rate_fit.error().with_context("rate trend");
  trends.rate_trend = rate_fit.value();
  if (auto mttr_fit = stats::linear_fit(mttrs_x, mttrs_y); mttr_fit.ok())
    trends.mttr_trend = mttr_fit.value();

  // Early-vs-late quarter comparison on raw events (not windows), so the
  // ratio is step/window independent.
  const double quarter = total_hours / 4.0;
  std::size_t early = 0, late = 0;
  for (double h : event_hours) {
    if (h < quarter) ++early;
    if (h > total_hours - quarter) ++late;
  }
  trends.early_late_rate_ratio =
      late == 0 ? static_cast<double>(early) : static_cast<double>(early) / late;
  return trends;
}

Result<RollingTrends> analyze_rolling_trends(const data::FailureLog& log, double window_days,
                                             double step_days) {
  return analyze_rolling_trends(data::LogIndex(log), window_days, step_days);
}

}  // namespace tsufail::analysis
