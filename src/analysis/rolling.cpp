#include "analysis/rolling.h"

#include <algorithm>

namespace tsufail::analysis {

Result<RollingTrends> analyze_rolling_trends(const data::LogIndex& index, double window_days,
                                             double step_days) {
  if (index.empty())
    return Error(ErrorKind::kDomain, "analyze_rolling_trends: empty log");
  if (!(window_days > 0.0) || !(step_days > 0.0))
    return Error(ErrorKind::kDomain, "analyze_rolling_trends: window and step must be positive");

  const double total_hours = index.spec().window_hours();
  const double window_hours = window_days * 24.0;
  const double step_hours = step_days * 24.0;
  if (window_hours > total_hours)
    return Error(ErrorKind::kDomain, "analyze_rolling_trends: window exceeds the log span");

  const auto event_hours = index.hours();
  const auto ttr = index.ttr();  // same order as records/event_hours

  RollingTrends trends;
  trends.window_hours = window_hours;
  trends.step_hours = step_hours;

  for (double start = 0.0; start + window_hours <= total_hours + 1e-9; start += step_hours) {
    const double end = start + window_hours;
    RollingWindow window;
    window.center_hours = (start + end) / 2.0;
    double ttr_sum = 0.0;
    // event_hours is ascending: binary-search the window bounds.
    const auto lo = std::lower_bound(event_hours.begin(), event_hours.end(), start);
    const auto hi = std::upper_bound(event_hours.begin(), event_hours.end(), end);
    for (auto it = lo; it != hi; ++it) {
      ++window.failures;
      ttr_sum += ttr[static_cast<std::size_t>(it - event_hours.begin())];
    }
    window.failures_per_day = static_cast<double>(window.failures) / window_days;
    if (window.failures > 0) {
      window.mtbf_hours = window_hours / static_cast<double>(window.failures);
      window.mttr_hours = ttr_sum / static_cast<double>(window.failures);
    }
    trends.windows.push_back(window);
  }
  if (trends.windows.size() < 3)
    return Error(ErrorKind::kDomain,
                 "analyze_rolling_trends: fewer than 3 windows; shrink window/step");

  std::vector<double> centers, rates, mttrs_x, mttrs_y;
  for (const auto& window : trends.windows) {
    centers.push_back(window.center_hours);
    rates.push_back(window.failures_per_day);
    if (window.failures > 0) {
      mttrs_x.push_back(window.center_hours);
      mttrs_y.push_back(window.mttr_hours);
    }
  }
  auto rate_fit = stats::linear_fit(centers, rates);
  if (!rate_fit.ok()) return rate_fit.error().with_context("rate trend");
  trends.rate_trend = rate_fit.value();
  if (auto mttr_fit = stats::linear_fit(mttrs_x, mttrs_y); mttr_fit.ok())
    trends.mttr_trend = mttr_fit.value();

  // Early-vs-late quarter comparison on raw events (not windows), so the
  // ratio is step/window independent.
  const double quarter = total_hours / 4.0;
  std::size_t early = 0, late = 0;
  for (double h : event_hours) {
    if (h < quarter) ++early;
    if (h > total_hours - quarter) ++late;
  }
  trends.early_late_rate_ratio =
      late == 0 ? static_cast<double>(early) : static_cast<double>(early) / late;
  return trends;
}

Result<RollingTrends> analyze_rolling_trends(const data::FailureLog& log, double window_days,
                                             double step_days) {
  return analyze_rolling_trends(data::LogIndex(log), window_days, step_days);
}

}  // namespace tsufail::analysis
