#include "analysis/temporal_cluster.h"

#include <algorithm>
#include <cmath>

namespace tsufail::analysis {

Result<TemporalClustering> analyze_event_clustering(std::vector<double> event_hours,
                                                    double follow_window_hours) {
  if (event_hours.size() < 3)
    return Error(ErrorKind::kDomain, "clustering needs at least 3 events, have " +
                                         std::to_string(event_hours.size()));
  if (follow_window_hours < 0.0)
    return Error(ErrorKind::kDomain, "follow window must be non-negative");
  std::sort(event_hours.begin(), event_hours.end());

  TemporalClustering result;
  result.events = event_hours.size();
  result.event_hours = std::move(event_hours);
  result.follow_window_hours = follow_window_hours;

  result.gaps_hours.reserve(result.events - 1);
  for (std::size_t i = 1; i < result.events; ++i)
    result.gaps_hours.push_back(result.event_hours[i] - result.event_hours[i - 1]);

  auto summary = stats::summarize(result.gaps_hours);
  if (!summary.ok()) return summary.error();
  result.gap_summary = summary.value();

  const double mean_gap = result.gap_summary.mean;
  if (mean_gap <= 0.0)
    return Error(ErrorKind::kDomain, "all events are simultaneous; clustering undefined");
  if (follow_window_hours == 0.0) {
    // Auto window: half a mean gap keeps the Poisson baseline near
    // 1 - e^{-1/2} ~ 0.39 regardless of stream rate; cap at a week so the
    // number stays interpretable as "close-by in time".
    follow_window_hours = std::min(0.5 * mean_gap, 168.0);
    result.follow_window_hours = follow_window_hours;
  }
  result.cv = result.gap_summary.stddev / mean_gap;
  result.burstiness = (result.cv - 1.0) / (result.cv + 1.0);

  std::size_t followed = 0;
  for (double gap : result.gaps_hours) {
    if (gap <= follow_window_hours) ++followed;
  }
  result.follow_probability =
      static_cast<double>(followed) / static_cast<double>(result.gaps_hours.size());
  // A Poisson process with the same rate has exponential gaps:
  // P[gap <= w] = 1 - exp(-w / mean_gap).
  result.poisson_follow_probability = -std::expm1(-follow_window_hours / mean_gap);
  result.clustered =
      result.cv > 1.0 && result.follow_probability > result.poisson_follow_probability;
  return result;
}

Result<std::vector<CategoryBurstiness>> analyze_category_burstiness(
    const data::LogIndex& index, std::size_t min_failures) {
  std::vector<CategoryBurstiness> rows;
  for (data::Category category : data::categories_for(index.machine())) {
    std::vector<double> hours = index.hours_of(index.by_category(category));
    if (hours.size() < std::max<std::size_t>(min_failures, 3)) continue;
    auto clustering = analyze_event_clustering(std::move(hours));
    if (!clustering.ok()) continue;
    rows.push_back({category, clustering.value().events, clustering.value().cv,
                    clustering.value().burstiness});
  }
  if (rows.empty())
    return Error(ErrorKind::kDomain, "analyze_category_burstiness: no category has enough events");
  std::sort(rows.begin(), rows.end(),
            [](const CategoryBurstiness& a, const CategoryBurstiness& b) {
              return a.burstiness > b.burstiness;
            });
  return rows;
}

Result<std::vector<CategoryBurstiness>> analyze_category_burstiness(
    const data::FailureLog& log, std::size_t min_failures) {
  return analyze_category_burstiness(data::LogIndex(log), min_failures);
}

Result<TemporalClustering> analyze_multi_gpu_clustering(const data::LogIndex& index,
                                                        double follow_window_hours) {
  auto result =
      analyze_event_clustering(index.hours_of(index.multi_gpu()), follow_window_hours);
  if (!result.ok()) return result.error().with_context("multi-GPU failure stream");
  return result;
}

Result<TemporalClustering> analyze_multi_gpu_clustering(const data::FailureLog& log,
                                                        double follow_window_hours) {
  return analyze_multi_gpu_clustering(data::LogIndex(log), follow_window_hours);
}

}  // namespace tsufail::analysis
