// Rack-level spatial distribution of failures.
//
// The paper's generalizability discussion: "the non-uniform distribution
// of failures among racks is also present in multi-GPU-per-node systems
// and can become particularly challenging."  This analyzer aggregates
// failures per rack, tests uniformity, and summarizes concentration with
// a Gini coefficient — directly usable for spare placement and cooling
// investigations.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct RackShare {
  int rack = 0;
  std::size_t failures = 0;
  double percent = 0.0;
  double per_node_rate = 0.0;  ///< failures / nodes in this rack
};

struct RackDistribution {
  std::vector<RackShare> racks;      ///< descending by failure count
  std::size_t total_racks = 0;
  std::size_t racks_with_failures = 0;
  /// Chi-square p-value against a uniform per-node hazard (expected
  /// counts proportional to rack sizes); small = spatially non-uniform.
  double uniformity_p_value = 1.0;
  /// Gini coefficient of per-rack failure counts (0 = perfectly even,
  /// -> 1 = concentrated on few racks).
  double gini = 0.0;
  /// Smallest number of racks holding >= half of all failures.
  std::size_t racks_holding_half = 0;
};

/// Computes the rack view. Errors: empty log or spec without rack info.
Result<RackDistribution> analyze_racks(const data::LogIndex& index);
Result<RackDistribution> analyze_racks(const data::FailureLog& log);

/// Gini coefficient of a non-negative sample (exposed for tests).
double gini_coefficient(std::vector<double> values);

}  // namespace tsufail::analysis
