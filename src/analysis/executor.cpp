#include "analysis/executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tsufail::analysis {
namespace {

obs::Counter& tasks_run_counter() {
  static obs::Counter c = obs::counter("study.tasks_run");
  return c;
}

obs::Counter& tasks_failed_counter() {
  static obs::Counter c = obs::counter("study.tasks_failed");
  return c;
}

/// Time a ready task waited before a worker picked it up.  Timing-valued,
/// so (per the obs determinism contract) exempt from jobs-invariance.
obs::Histogram& queue_wait_histogram() {
  static obs::Histogram h =
      obs::histogram("study.queue_wait_seconds", obs::time_buckets_seconds());
  return h;
}

/// Span name for one executor task ("study.tbf").  Interned only while
/// obs is enabled, so the disabled path never allocates.
const char* task_span_name(const std::string& task) {
  if (!obs::enabled()) return nullptr;
  return obs::intern(("study." + task).c_str());
}

/// Runs one task function, downgrading anything it throws to an Error so
/// a worker thread can never escape via an exception.  (Not named
/// `invoke`: ADL on std::function would prefer std::invoke.)
std::optional<Error> run_task(const Executor::TaskFn& fn) {
  try {
    auto result = fn();
    if (!result.ok()) return result.error();
    return std::nullopt;
  } catch (const std::exception& e) {
    return Error(ErrorKind::kInternal, std::string("task threw: ") + e.what());
  } catch (...) {
    return Error(ErrorKind::kInternal, "task threw a non-exception");
  }
}

Error dependency_error(const std::string& dependency) {
  return Error(ErrorKind::kInternal, "dependency failed: " + dependency);
}

}  // namespace

Executor::TaskId Executor::add(std::string name, TaskFn fn, std::vector<TaskId> deps) {
  TSUFAIL_REQUIRE(!ran_, "Executor::add after run()");
  const TaskId id = tasks_.size();
  for (TaskId dep : deps) {
    TSUFAIL_REQUIRE(dep < id, "Executor::add: dependency must be an earlier task");
    tasks_[dep].dependents.push_back(id);
  }
  tasks_.push_back({std::move(name), std::move(fn), std::move(deps), {}});
  return id;
}

std::vector<TaskOutcome> Executor::run(std::size_t jobs) {
  TSUFAIL_REQUIRE(!ran_, "Executor::run may be called once");
  ran_ = true;
  if (jobs == 0) jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  jobs = std::min(jobs, tasks_.size());
  return jobs <= 1 ? run_serial() : run_parallel(jobs);
}

std::vector<TaskOutcome> Executor::run_serial() {
  // Registration order is topological (deps point backwards), so a single
  // in-order sweep sees every dependency's outcome before its dependents.
  std::vector<TaskOutcome> outcomes(tasks_.size());
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    auto& outcome = outcomes[id];
    outcome.name = tasks_[id].name;
    for (TaskId dep : tasks_[id].deps) {
      if (!outcomes[dep].ok()) {
        outcome.dependency_failed = true;
        outcome.error = dependency_error(tasks_[dep].name);
        break;
      }
    }
    if (!outcome.dependency_failed) {
      obs::SpanScope span(task_span_name(tasks_[id].name));
      outcome.error = run_task(tasks_[id].fn);
      tasks_run_counter().add();
      if (outcome.error.has_value()) tasks_failed_counter().add();
    }
  }
  return outcomes;
}

std::vector<TaskOutcome> Executor::run_parallel(std::size_t jobs) {
  std::vector<TaskOutcome> outcomes(tasks_.size());
  std::vector<std::size_t> pending_deps(tasks_.size());
  std::vector<TaskId> poisoned_by(tasks_.size(), tasks_.size());  // sentinel: not poisoned

  std::mutex mutex;
  std::condition_variable ready_cv;
  std::deque<TaskId> ready;
  std::size_t completed = 0;

  // When obs is enabled, ready_at_ns[id] stamps the instant a task became
  // runnable so the pickup delay lands in study.queue_wait_seconds.
  const bool traced = obs::enabled();
  std::vector<std::uint64_t> ready_at_ns(traced ? tasks_.size() : 0, 0);

  for (TaskId id = 0; id < tasks_.size(); ++id) {
    outcomes[id].name = tasks_[id].name;
    pending_deps[id] = tasks_[id].deps.size();
    if (pending_deps[id] == 0) {
      ready.push_back(id);
      if (traced) ready_at_ns[id] = obs::now_ns();
    }
  }

  // Called under the lock when `id` has finished (ran or was skipped):
  // publishes its outcome to dependents and releases the ones that became
  // runnable.  Holding the lock here is what gives dependents a
  // happens-before edge on everything their dependencies wrote.
  const auto complete = [&](TaskId id) {
    ++completed;
    for (TaskId dependent : tasks_[id].dependents) {
      if (!outcomes[id].ok() && poisoned_by[dependent] == tasks_.size())
        poisoned_by[dependent] = id;
      if (--pending_deps[dependent] == 0) {
        ready.push_back(dependent);
        if (traced) ready_at_ns[dependent] = obs::now_ns();
      }
    }
    ready_cv.notify_all();
  };

  const auto worker = [&] {
    std::unique_lock lock(mutex);
    for (;;) {
      ready_cv.wait(lock, [&] { return !ready.empty() || completed == tasks_.size(); });
      if (ready.empty()) return;  // all done
      const TaskId id = ready.front();
      ready.pop_front();
      if (poisoned_by[id] != tasks_.size()) {
        outcomes[id].dependency_failed = true;
        outcomes[id].error = dependency_error(tasks_[poisoned_by[id]].name);
        complete(id);
        continue;
      }
      lock.unlock();
      if (traced)
        queue_wait_histogram().observe(
            static_cast<double>(obs::now_ns() - ready_at_ns[id]) * 1e-9);
      std::optional<Error> error;
      {
        obs::SpanScope span(task_span_name(tasks_[id].name));
        error = run_task(tasks_[id].fn);
        tasks_run_counter().add();
        if (error.has_value()) tasks_failed_counter().add();
      }
      lock.lock();
      outcomes[id].error = std::move(error);
      complete(id);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return outcomes;
}

}  // namespace tsufail::analysis
