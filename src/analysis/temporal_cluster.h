// Figure 8: temporal clustering of multi-GPU failures.
//
// The paper observes that failures involving multiple GPUs on one node
// tend to arrive close together in time.  We quantify "clustered" three
// ways, all standard for point processes:
//   * coefficient of variation (CV) of inter-arrival gaps — a Poisson
//     (memoryless) stream has CV = 1, bursty streams CV > 1;
//   * burstiness index B = (CV - 1) / (CV + 1) in (-1, 1), 0 for Poisson;
//   * follow-up probability: the fraction of events followed by another
//     within `follow_window_hours`, next to the probability a Poisson
//     process of the same rate would achieve.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"
#include "stats/descriptive.h"

namespace tsufail::analysis {

struct TemporalClustering {
  std::size_t events = 0;                  ///< multi-GPU failures considered
  std::vector<double> event_hours;         ///< hours since window start
  std::vector<double> gaps_hours;          ///< inter-arrival gaps
  stats::Summary gap_summary;
  double cv = 0.0;                         ///< stddev(gaps) / mean(gaps)
  double burstiness = 0.0;                 ///< (CV-1)/(CV+1)
  double follow_window_hours = 0.0;
  double follow_probability = 0.0;         ///< empirical P[next within window]
  double poisson_follow_probability = 0.0; ///< same-rate Poisson baseline
  bool clustered = false;                  ///< CV > 1 and follow prob above baseline
};

/// Clustering statistics of the multi-GPU failure stream (records whose
/// slot list names >= 2 GPUs).  `follow_window_hours = 0` (the default)
/// auto-selects half the stream's mean gap, capped at one week, so the
/// follow-up probability is informative for dense and sparse streams
/// alike.  Errors: fewer than 3 such events.
Result<TemporalClustering> analyze_multi_gpu_clustering(const data::LogIndex& index,
                                                        double follow_window_hours = 0.0);
Result<TemporalClustering> analyze_multi_gpu_clustering(const data::FailureLog& log,
                                                        double follow_window_hours = 0.0);

/// Same statistics over an arbitrary caller-selected event stream (hours
/// since an arbitrary origin, ascending or not).  `follow_window_hours`
/// auto-selects as above when 0.  Errors: fewer than 3 events.
Result<TemporalClustering> analyze_event_clustering(std::vector<double> event_hours,
                                                    double follow_window_hours = 0.0);

struct CategoryBurstiness {
  data::Category category = data::Category::kUnknown;
  std::size_t failures = 0;
  double cv = 0.0;           ///< inter-arrival coefficient of variation
  double burstiness = 0.0;   ///< (CV-1)/(CV+1): 0 Poisson, >0 bursty
};

/// Inter-arrival burstiness per category — the quantitative form of
/// Figure 7's "relative spread" observation.  Categories with fewer than
/// `min_failures` events are skipped; sorted descending by burstiness.
/// Errors: no category qualifies.
Result<std::vector<CategoryBurstiness>> analyze_category_burstiness(
    const data::LogIndex& index, std::size_t min_failures = 5);
Result<std::vector<CategoryBurstiness>> analyze_category_burstiness(
    const data::FailureLog& log, std::size_t min_failures = 5);

}  // namespace tsufail::analysis
