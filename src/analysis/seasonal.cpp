#include "analysis/seasonal.h"

#include <algorithm>

#include "stats/correlation.h"

namespace tsufail::analysis {

namespace {

/// Days of each calendar month covered by [start, end): walks month
/// boundaries exactly (partial months contribute fractional days).
std::array<double, 12> month_exposure_days(TimePoint start, TimePoint end) {
  std::array<double, 12> days{};
  TimePoint cursor = start;
  while (cursor < end) {
    const CivilDateTime civil = cursor.to_civil();
    CivilDateTime next{civil.year, civil.month, 1, 0, 0, 0};
    if (++next.month > 12) {
      next.month = 1;
      ++next.year;
    }
    TimePoint month_end = TimePoint::from_civil(next);
    if (month_end > end) month_end = end;
    days[static_cast<std::size_t>(civil.month - 1)] += hours_between(cursor, month_end) / 24.0;
    cursor = month_end;
  }
  return days;
}

}  // namespace

Result<SeasonalAnalysis> analyze_seasonal(const data::LogIndex& index) {
  if (index.empty())
    return Error(ErrorKind::kDomain, "analyze_seasonal: empty log");

  // Month spans preserve record order, so each bucket holds the same TTR
  // sequence the record scan used to produce.
  std::array<std::vector<double>, 12> ttr_by_month;
  for (int month = 1; month <= 12; ++month)
    ttr_by_month[static_cast<std::size_t>(month - 1)] = index.ttr_of(index.by_month(month));

  SeasonalAnalysis result;
  result.exposure_days = month_exposure_days(index.spec().log_start, index.spec().log_end);
  std::vector<double> densities, medians;  // months with >= 1 failure
  std::vector<double> first_half, second_half;
  for (int month = 1; month <= 12; ++month) {
    const auto idx = static_cast<std::size_t>(month - 1);
    auto& slot = result.monthly[idx];
    slot.month = month;
    slot.failures = ttr_by_month[idx].size();
    result.failure_counts[idx] = slot.failures;
    if (result.exposure_days[idx] > 0.0) {
      result.failures_per_day[idx] =
          static_cast<double>(slot.failures) / result.exposure_days[idx];
    }
    if (!ttr_by_month[idx].empty()) {
      slot.box = stats::box_stats(ttr_by_month[idx]).value();
      densities.push_back(result.failures_per_day[idx]);
      medians.push_back(slot.box->median);
    }
    auto& half = month <= 6 ? first_half : second_half;
    half.insert(half.end(), ttr_by_month[idx].begin(), ttr_by_month[idx].end());
  }

  if (!first_half.empty())
    result.first_half_median_ttr = stats::quantile(first_half, 0.5).value();
  if (!second_half.empty())
    result.second_half_median_ttr = stats::quantile(second_half, 0.5).value();

  if (densities.size() >= 3) {
    if (auto r = stats::pearson(densities, medians); r.ok())
      result.pearson_density_ttr = r.value();
    if (auto rho = stats::spearman(densities, medians); rho.ok())
      result.spearman_density_ttr = rho.value();
  }
  return result;
}

Result<SeasonalAnalysis> analyze_seasonal(const data::FailureLog& log) {
  return analyze_seasonal(data::LogIndex(log));
}

Result<SeasonalAnalysis> analyze_seasonal_class(const data::FailureLog& log,
                                                data::FailureClass cls) {
  auto sub = log.sublog(log.by_class(cls));
  if (!sub.ok()) return sub.error();
  auto result = analyze_seasonal(sub.value());
  if (!result.ok())
    return result.error().with_context("class " + std::string(data::to_string(cls)));
  return result;
}

Result<SeasonalAnalysis> analyze_seasonal_category(const data::FailureLog& log,
                                                   data::Category category) {
  auto sub = log.sublog(log.by_category(category));
  if (!sub.ok()) return sub.error();
  auto result = analyze_seasonal(sub.value());
  if (!result.ok())
    return result.error().with_context("category " + std::string(data::to_string(category)));
  return result;
}

}  // namespace tsufail::analysis
