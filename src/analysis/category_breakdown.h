// RQ1 / Figure 2: distribution of failures over reported categories, and
// the hardware/software/unknown class split.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct CategoryShare {
  data::Category category = data::Category::kUnknown;
  std::size_t count = 0;
  double percent = 0.0;  ///< of all failures in the log
};

struct ClassShare {
  data::FailureClass cls = data::FailureClass::kUnknown;
  std::size_t count = 0;
  double percent = 0.0;
};

struct CategoryBreakdown {
  std::size_t total_failures = 0;
  /// Categories sorted by descending count (the Figure 2 bar order);
  /// zero-count categories from the machine vocabulary are included last.
  std::vector<CategoryShare> categories;
  /// Hardware / software / unknown totals.
  std::vector<ClassShare> classes;

  /// Share of one category (0 if absent). Convenience for benches/tests.
  double percent_of(data::Category category) const noexcept;
  /// Share of one class (0 if absent).
  double percent_of(data::FailureClass cls) const noexcept;
};

/// Computes the Figure 2 breakdown. Errors: empty log.
Result<CategoryBreakdown> analyze_categories(const data::LogIndex& index);
Result<CategoryBreakdown> analyze_categories(const data::FailureLog& log);

}  // namespace tsufail::analysis
