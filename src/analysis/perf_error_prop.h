// Performance-error-proportionality (RQ4, Section III).
//
// The paper proposes benchmarking systems by "useful work done per
// failure-free period": total FLOP per MTBF, i.e. Rpeak x MTBF.  This
// analyzer computes the metric for one machine and the cross-generation
// comparison the paper walks through (compute ratio vs MTBF ratio vs the
// combined metric, and the per-component normalization argument).
#pragma once

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct PerfErrorProportionality {
  double mtbf_hours = 0.0;            ///< exposure MTBF (window / failures)
  double rpeak_pflops = 0.0;
  /// Rpeak x MTBF: peak FLOP achievable in a mean failure-free period,
  /// in units of PFlop-hours (1 PFlop-hour = 3.6e18 FLOP).
  double pflop_hours_per_failure_free_period = 0.0;
  /// Same metric normalized by GPU+CPU component count, exposing whether
  /// reliability kept pace with density.
  double pflop_hours_per_component = 0.0;
  int components = 0;
};

struct GenerationComparison {
  PerfErrorProportionality older;     ///< e.g. Tsubame-2
  PerfErrorProportionality newer;     ///< e.g. Tsubame-3
  double compute_ratio = 0.0;         ///< newer Rpeak / older Rpeak (~8x)
  double mtbf_ratio = 0.0;            ///< newer MTBF / older MTBF (~4x)
  double metric_ratio = 0.0;          ///< combined FLOP-per-MTBF ratio
  double component_ratio = 0.0;       ///< older components / newer (~2.2x)
  /// True iff MTBF improved more than the component count shrank — the
  /// paper's "not simply a side-effect of fewer components" argument.
  bool reliability_outpaced_shrinkage = false;
};

/// Metric for one log. Errors: empty log.
Result<PerfErrorProportionality> analyze_perf_error_prop(const data::LogIndex& index);
Result<PerfErrorProportionality> analyze_perf_error_prop(const data::FailureLog& log);

/// Cross-generation comparison. Errors: either log empty.
Result<GenerationComparison> compare_generations(const data::FailureLog& older,
                                                 const data::FailureLog& newer);

}  // namespace tsufail::analysis
