#include "analysis/multi_gpu.h"

namespace tsufail::analysis {

double MultiGpuInvolvement::percent_with(int gpus) const noexcept {
  for (const auto& bucket : buckets) {
    if (bucket.gpus == gpus) return bucket.percent;
  }
  return 0.0;
}

std::size_t MultiGpuInvolvement::count_with(int gpus) const noexcept {
  for (const auto& bucket : buckets) {
    if (bucket.gpus == gpus) return bucket.count;
  }
  return 0;
}

Result<MultiGpuInvolvement> analyze_multi_gpu(const data::LogIndex& index) {
  const int slots_per_node = index.spec().gpus_per_node;
  std::vector<std::size_t> counts(static_cast<std::size_t>(slots_per_node) + 1, 0);

  const auto attributed = index.gpu_attributed();
  for (std::uint32_t position : attributed) ++counts[index.record(position).gpu_slots.size()];
  if (attributed.empty())
    return Error(ErrorKind::kDomain, "analyze_multi_gpu: no slot-attributed GPU failures");

  MultiGpuInvolvement result;
  result.attributed_failures = attributed.size();
  const double total = static_cast<double>(attributed.size());
  for (int gpus = 1; gpus <= slots_per_node; ++gpus) {
    const auto count = counts[static_cast<std::size_t>(gpus)];
    const double percent = 100.0 * static_cast<double>(count) / total;
    result.buckets.push_back({gpus, count, percent});
    if (gpus >= 2) result.percent_multi += percent;
  }
  return result;
}

Result<MultiGpuInvolvement> analyze_multi_gpu(const data::FailureLog& log) {
  return analyze_multi_gpu(data::LogIndex(log));
}

}  // namespace tsufail::analysis
