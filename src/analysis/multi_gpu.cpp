#include "analysis/multi_gpu.h"

namespace tsufail::analysis {

double MultiGpuInvolvement::percent_with(int gpus) const noexcept {
  for (const auto& bucket : buckets) {
    if (bucket.gpus == gpus) return bucket.percent;
  }
  return 0.0;
}

std::size_t MultiGpuInvolvement::count_with(int gpus) const noexcept {
  for (const auto& bucket : buckets) {
    if (bucket.gpus == gpus) return bucket.count;
  }
  return 0;
}

Result<MultiGpuInvolvement> analyze_multi_gpu(const data::FailureLog& log) {
  const int slots_per_node = log.spec().gpus_per_node;
  std::vector<std::size_t> counts(static_cast<std::size_t>(slots_per_node) + 1, 0);

  std::size_t attributed = 0;
  for (const auto& record : log.records()) {
    if (!record.gpu_related() || record.gpu_slots.empty()) continue;
    ++attributed;
    ++counts[record.gpu_slots.size()];
  }
  if (attributed == 0)
    return Error(ErrorKind::kDomain, "analyze_multi_gpu: no slot-attributed GPU failures");

  MultiGpuInvolvement result;
  result.attributed_failures = attributed;
  const double total = static_cast<double>(attributed);
  for (int gpus = 1; gpus <= slots_per_node; ++gpus) {
    const auto count = counts[static_cast<std::size_t>(gpus)];
    const double percent = 100.0 * static_cast<double>(count) / total;
    result.buckets.push_back({gpus, count, percent});
    if (gpus >= 2) result.percent_multi += percent;
  }
  return result;
}

}  // namespace tsufail::analysis
