// Executor: a small dependency-aware task runner for analysis pipelines.
//
// run_study dispatches a dozen independent analyses over one shared
// LogIndex; the executor gives that dispatch a deterministic shape: tasks
// are registered with explicit dependency edges (a task may only depend
// on earlier registrations, so the graph is acyclic by construction),
// run() executes them on a bounded thread pool, and outcomes come back in
// registration order regardless of scheduling.  A failed task never takes
// the process down — its error is captured by value, and transitive
// dependents are marked dependency_failed instead of running.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace tsufail::analysis {

/// Result of one task, reported in registration order.
struct TaskOutcome {
  std::string name;
  /// The task's error (or a captured exception, downgraded to
  /// ErrorKind::kInternal).  Absent = the task ran and succeeded.
  std::optional<Error> error;
  /// True iff the task never ran because a (transitive) dependency
  /// failed; `error` then names the failed dependency.
  bool dependency_failed = false;

  bool ok() const noexcept { return !error.has_value(); }
};

class Executor {
 public:
  using TaskFn = std::function<Result<void>()>;
  using TaskId = std::size_t;

  /// Registers a task.  `deps` must be ids returned by earlier add()
  /// calls (TSUFAIL_REQUIRE), which makes registration order a valid
  /// topological order of the graph.
  TaskId add(std::string name, TaskFn fn, std::vector<TaskId> deps = {});

  std::size_t task_count() const noexcept { return tasks_.size(); }

  /// Runs every task, honouring dependency edges, on up to `jobs`
  /// worker threads: 1 (the default) runs inline on the calling thread,
  /// 0 uses one worker per hardware thread.  Deterministic: the outcome
  /// vector is indexed by TaskId, and each task function sees all writes
  /// of its dependencies (completion is published under the scheduler
  /// lock).  May be called once per Executor (TSUFAIL_REQUIRE).
  std::vector<TaskOutcome> run(std::size_t jobs = 1);

 private:
  struct Task {
    std::string name;
    TaskFn fn;
    std::vector<TaskId> deps;
    std::vector<TaskId> dependents;
  };

  std::vector<TaskOutcome> run_serial();
  std::vector<TaskOutcome> run_parallel(std::size_t jobs);

  std::vector<Task> tasks_;
  bool ran_ = false;
};

}  // namespace tsufail::analysis
