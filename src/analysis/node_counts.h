// RQ2 / Figure 4: how failures are distributed across nodes.
//
// The paper reports, over nodes that failed at least once, the share that
// failed exactly k times (k = 1, 2, 3, >= 4), plus the hardware/software
// split of failures on repeat-failure nodes (nodes with more than one
// failure): 352 hardware + 1 software on Tsubame-2, 104 + 95 on Tsubame-3.
#pragma once

#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::analysis {

struct NodeCountBucket {
  std::size_t failures = 0;      ///< exactly this many failures per node
  std::size_t nodes = 0;         ///< nodes in this bucket
  double percent_of_failed = 0;  ///< of nodes with >= 1 failure
};

struct NodeCounts {
  std::size_t failed_nodes = 0;           ///< nodes with >= 1 failure
  std::size_t total_nodes = 0;            ///< machine size
  std::vector<NodeCountBucket> buckets;   ///< ascending by failure count
  double percent_single_failure = 0.0;    ///< Fig 4's headline number
  double percent_multi_failure = 0.0;     ///< nodes with > 1 failure
  std::size_t max_failures_on_one_node = 0;

  /// Failures on repeat-failure nodes, split by class (the 352/1 & 104/95
  /// numbers in the paper).
  std::size_t repeat_node_hardware_failures = 0;
  std::size_t repeat_node_software_failures = 0;

  /// Percent of failed nodes with exactly `k` failures (0 if none).
  double percent_with(std::size_t k) const noexcept;
};

/// Computes the Figure 4 distribution. Errors: empty log.
Result<NodeCounts> analyze_node_counts(const data::LogIndex& index);
Result<NodeCounts> analyze_node_counts(const data::FailureLog& log);

}  // namespace tsufail::analysis
