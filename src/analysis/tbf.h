// RQ4 / Figures 6-7: time between failures.
//
// TBF is the wall-clock gap between consecutive failures *system-wide*
// (the operator's view of how often the machine is interrupted).  The
// per-category variant restricts the event stream to one category before
// differencing, which is also how the paper derives "MTBF for GPU
// failures".  Two MTBF estimators are provided:
//   * mean of the inter-arrival sample (what Figure 6's CDF averages), and
//   * exposure MTBF = observation-window hours / failure count, which is
//     robust to censoring at the window edges.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "data/log.h"
#include "data/log_index.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/fit.h"
#include "stats/hypothesis.h"

namespace tsufail::analysis {

struct TbfResult {
  std::vector<double> tbf_hours;     ///< inter-arrival sample (size n-1)
  double mtbf_hours = 0.0;           ///< mean of tbf_hours
  double exposure_mtbf_hours = 0.0;  ///< window / count
  stats::Summary summary;            ///< quantiles of tbf_hours
  double p75_hours = 0.0;            ///< the paper's "75% within X hours"
  std::optional<stats::FamilyChoice> best_family;  ///< best-fit family, if fittable
};

/// System-wide TBF. Errors: fewer than 2 failures.
Result<TbfResult> analyze_tbf(const data::LogIndex& index);
Result<TbfResult> analyze_tbf(const data::FailureLog& log);

/// TBF restricted to one category's event stream.
/// Errors: fewer than 2 failures of that category.
Result<TbfResult> analyze_tbf_category(const data::LogIndex& index, data::Category category);
Result<TbfResult> analyze_tbf_category(const data::FailureLog& log, data::Category category);

/// TBF restricted to one failure class.
Result<TbfResult> analyze_tbf_class(const data::LogIndex& index, data::FailureClass cls);
Result<TbfResult> analyze_tbf_class(const data::FailureLog& log, data::FailureClass cls);

/// TBF of an arbitrary record stream measured against `spec`'s window
/// (no copy is taken; records need not be pre-sorted).
/// Errors: fewer than 2 records.
Result<TbfResult> tbf_from_records(const data::MachineSpec& spec,
                                   std::span<const data::FailureRecord> records);

struct MtbfInterval {
  double mtbf_hours = 0.0;
  double low_hours = 0.0;
  double high_hours = 0.0;
  double level = 0.95;
};

/// Exact (Garwood/Poisson) confidence interval for an exposure MTBF given
/// `failures` over `window_hours`.  Headline MTBFs in field studies are
/// single realizations; this is their honest uncertainty statement.
/// Errors: zero failures, non-positive window, level outside (0,1).
Result<MtbfInterval> mtbf_confidence_interval(std::size_t failures, double window_hours,
                                              double level = 0.95);

struct CategoryTbf {
  data::Category category = data::Category::kUnknown;
  std::size_t failures = 0;
  stats::BoxStats box;               ///< Figure 7's per-type box
  double mtbf_hours = 0.0;
  double exposure_mtbf_hours = 0.0;
};

/// Per-category TBF boxes (Figure 7), sorted ascending by mean TBF as in
/// the paper.  Categories with fewer than `min_failures` events are
/// skipped (a 2-event category has one gap — not a distribution).
/// Errors: no category reaches `min_failures`.
Result<std::vector<CategoryTbf>> analyze_tbf_by_category(const data::LogIndex& index,
                                                         std::size_t min_failures = 3);
Result<std::vector<CategoryTbf>> analyze_tbf_by_category(const data::FailureLog& log,
                                                         std::size_t min_failures = 3);

}  // namespace tsufail::analysis
