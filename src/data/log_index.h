// LogIndex: a build-once, immutable indexed view over a FailureLog.
//
// Every analyzer in src/analysis/ used to re-scan (and often re-copy and
// re-sort) the flat record vector to carve out its event stream.  The
// index does that work exactly once: records keep their time order, hour
// offsets from the window start and TTR values are precomputed into
// dense arrays, and the common groupings — category, hardware/software
// class, node, calendar month, GPU attribution — are materialized as
// position spans into one shared arena.  Analyses then read spans instead
// of filtering, and a whole-study run touches each record O(1) times.
//
// Invariants (asserted by tests/data_index_test.cpp):
//   * positions are indices into records(), and every group span is
//     strictly ascending — so iterating a span preserves time order;
//   * hours()[i] == hours_between(spec().log_start, records()[i].time)
//     and ttr()[i] == records()[i].ttr_hours, bit-identical;
//   * category/class/month/node groups partition the record positions;
//   * multi_gpu() is a subset of gpu_attributed().
//
// The index borrows the log (no record copies); the log must outlive it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/log.h"
#include "util/error.h"

namespace tsufail::data {

class ColumnarSnapshot;

class LogIndex {
 public:
  /// Builds the index in one pass over `log` (plus one calendar
  /// conversion per record for the month groups).
  explicit LogIndex(const FailureLog& log);

  /// Delta-merge: indexes `log` — which must hold `base.log()`'s records
  /// as an identical prefix (the append-only shape a sealed epoch
  /// produces) — by copying `base`'s derived arrays and computing only
  /// the appended suffix.  The result is bit-identical to
  /// `LogIndex(log)` built from scratch (asserted by
  /// tests/data_index_test.cpp and the differential oracle); both paths
  /// run through the same builder.  Precondition (REQUIREd):
  /// log.size() >= base.size() and the logs share a machine spec.
  static LogIndex extend(const LogIndex& base, const FailureLog& log);

  /// Adopts the precomputed index sections of a loaded columnar
  /// snapshot: the hours/TTR/arena spans point straight into the
  /// snapshot's (checksummed, structurally validated) memory — zero
  /// copy — while the small range tables are re-derived from its flat
  /// ranges stream.  `log` must be the snapshot's materialized log and
  /// must outlive the index; the snapshot itself is retained by
  /// refcount.  The result is bit-identical to `LogIndex(log)` (gated by
  /// the differential oracle's snapshot_roundtrip check).  Errors: the
  /// snapshot has no index sections or disagrees with `log` on size.
  static Result<LogIndex> from_columnar(const FailureLog& log,
                                        std::shared_ptr<const ColumnarSnapshot> snapshot);

  const FailureLog& log() const noexcept { return *log_; }
  const MachineSpec& spec() const noexcept { return log_->spec(); }
  Machine machine() const noexcept { return log_->machine(); }
  std::span<const FailureRecord> records() const noexcept { return log_->records(); }
  std::size_t size() const noexcept { return log_->size(); }
  bool empty() const noexcept { return log_->empty(); }

  /// Hours since spec().log_start per record, ascending, aligned with
  /// records().
  std::span<const double> hours() const noexcept { return hours_; }
  /// TTR per record, aligned with records().
  std::span<const double> ttr() const noexcept { return ttr_; }

  /// Record positions of one category, in time order.
  std::span<const std::uint32_t> by_category(Category category) const noexcept {
    return resolve(categories_[static_cast<std::size_t>(category)]);
  }
  /// Record positions of one hardware/software class, in time order.
  std::span<const std::uint32_t> by_class(FailureClass cls) const noexcept {
    return resolve(classes_[static_cast<std::size_t>(cls)]);
  }
  /// Positions of GPU-related records that carry slot attribution
  /// (the Figure 5 / Table III population).
  std::span<const std::uint32_t> gpu_attributed() const noexcept {
    return resolve(gpu_attributed_);
  }
  /// Positions of records naming >= 2 GPU slots (the Figure 8 stream).
  std::span<const std::uint32_t> multi_gpu() const noexcept { return resolve(multi_gpu_); }
  /// Positions falling in one calendar month (1..12), in time order.
  std::span<const std::uint32_t> by_month(int month) const noexcept {
    return resolve(months_[static_cast<std::size_t>(month - 1)]);
  }

  /// One node's failures: the node id and its record positions.
  struct NodeGroup {
    int node = 0;
    std::uint32_t begin = 0;  ///< arena offset (use positions_of)
    std::uint32_t count = 0;
  };
  /// Nodes with >= 1 failure, ascending by node id.
  std::span<const NodeGroup> nodes() const noexcept { return node_groups_; }
  /// Record positions of one node group, in time order.
  std::span<const std::uint32_t> positions_of(const NodeGroup& group) const noexcept {
    return {arena_.data() + group.begin, group.count};
  }

  /// Number of records in one category (vocabulary-independent: 0 for
  /// categories the machine never reports).
  std::size_t count(Category category) const noexcept { return by_category(category).size(); }

  const FailureRecord& record(std::uint32_t position) const noexcept {
    return log_->records()[position];
  }

  /// Gathers hours() values for a position span (time order preserved).
  std::vector<double> hours_of(std::span<const std::uint32_t> positions) const;
  /// Gathers ttr() values for a position span (record order preserved).
  std::vector<double> ttr_of(std::span<const std::uint32_t> positions) const;

 private:
  struct ExtendTag {};
  LogIndex(const FailureLog& log, ExtendTag) : log_(&log) {}

  /// The one builder behind both construction paths: computes derived
  /// arrays for records [base->size(), n) and lays every group out in
  /// the canonical arena order, seeding the prefix from `base` (nullptr
  /// = batch build from record 0).
  void build_from(const LogIndex* base);

  struct Range {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };
  std::span<const std::uint32_t> resolve(const Range& range) const noexcept {
    return {arena_.data() + range.begin, range.count};
  }

  static constexpr std::size_t kCategories = static_cast<std::size_t>(Category::kUnknown) + 1;
  static constexpr std::size_t kClasses = static_cast<std::size_t>(FailureClass::kUnknown) + 1;

  /// The dense arrays a from-scratch (or extend) build produces.  They
  /// live behind `backing_` so the hot accessors are plain spans whether
  /// the storage is owned here or borrowed zero-copy from a mapped
  /// ColumnarSnapshot.
  struct Arrays {
    std::vector<double> hours;
    std::vector<double> ttr;
    std::vector<std::uint32_t> arena;
  };

  const FailureLog* log_;
  /// Keeps the bytes behind the spans alive: an owned Arrays built here,
  /// or an adopted ColumnarSnapshot.  Copying the index bumps one
  /// refcount, so accessors never dangle and copies stay cheap.
  std::shared_ptr<const void> backing_;
  std::span<const double> hours_;
  std::span<const double> ttr_;
  /// One arena for all groups: ranges index into it.
  std::span<const std::uint32_t> arena_;
  std::array<Range, kCategories> categories_{};
  std::array<Range, kClasses> classes_{};
  std::array<Range, 12> months_{};
  Range gpu_attributed_{};
  Range multi_gpu_{};
  std::vector<NodeGroup> node_groups_;
};

}  // namespace tsufail::data
