#include "data/log_index.h"

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tsufail::data {

LogIndex::LogIndex(const FailureLog& log) : log_(&log) {
  OBS_SPAN("index.build");
  static obs::Counter builds = obs::counter("index.builds");
  static obs::Counter indexed = obs::counter("index.records");
  builds.add();
  indexed.add(log.size());

  const auto records = log.records();
  const auto n = records.size();
  hours_.reserve(n);
  ttr_.reserve(n);

  obs::SpanScope pass1("index.count");
  // Pass 1: dense per-record arrays, group sizes, and the month of each
  // record (cached so pass 2 does not repeat the calendar conversion).
  std::array<std::uint32_t, kCategories> category_sizes{};
  std::array<std::uint32_t, kClasses> class_sizes{};
  std::array<std::uint32_t, 12> month_sizes{};
  std::uint32_t gpu_size = 0;
  std::uint32_t multi_size = 0;
  // Node ids are validated to [0, node_count), so dense counters beat a
  // map: two O(log nodes) lookups per record would otherwise dominate the
  // whole build.
  std::vector<std::uint32_t> node_sizes(
      static_cast<std::size_t>(log.spec().node_count), 0);
  std::vector<std::uint8_t> month_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FailureRecord& record = records[i];
    hours_.push_back(hours_between(log.spec().log_start, record.time));
    ttr_.push_back(record.ttr_hours);
    ++category_sizes[static_cast<std::size_t>(record.category)];
    ++class_sizes[static_cast<std::size_t>(record.failure_class())];
    month_of[i] = static_cast<std::uint8_t>(record.time.month() - 1);
    ++month_sizes[month_of[i]];
    ++node_sizes[static_cast<std::size_t>(record.node)];
    if (record.gpu_related() && !record.gpu_slots.empty()) {
      ++gpu_size;
      if (record.multi_gpu()) ++multi_size;
    }
  }
  pass1.stop();

  obs::SpanScope pass2("index.fill");
  // Lay the groups out back-to-back in one arena.
  std::uint32_t offset = 0;
  const auto reserve_range = [&offset](Range& range, std::uint32_t size) {
    range.begin = offset;
    range.count = 0;  // used as a write cursor in pass 2
    offset += size;
  };
  for (std::size_t c = 0; c < kCategories; ++c) reserve_range(categories_[c], category_sizes[c]);
  for (std::size_t c = 0; c < kClasses; ++c) reserve_range(classes_[c], class_sizes[c]);
  for (std::size_t m = 0; m < 12; ++m) reserve_range(months_[m], month_sizes[m]);
  reserve_range(gpu_attributed_, gpu_size);
  reserve_range(multi_gpu_, multi_size);
  std::vector<std::uint32_t> node_slot(node_sizes.size(), 0);
  for (std::size_t node = 0; node < node_sizes.size(); ++node) {  // ascending node id
    if (node_sizes[node] == 0) continue;
    node_slot[node] = static_cast<std::uint32_t>(node_groups_.size());
    node_groups_.push_back({static_cast<int>(node), offset, 0});
    offset += node_sizes[node];
  }
  arena_.resize(offset);

  // Pass 2: fill every group in record (= time) order, so each span is
  // strictly ascending.
  const auto push = [this](Range& range, std::uint32_t position) {
    arena_[range.begin + range.count++] = position;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const FailureRecord& record = records[i];
    const auto position = static_cast<std::uint32_t>(i);
    push(categories_[static_cast<std::size_t>(record.category)], position);
    push(classes_[static_cast<std::size_t>(record.failure_class())], position);
    push(months_[month_of[i]], position);
    NodeGroup& group = node_groups_[node_slot[static_cast<std::size_t>(record.node)]];
    arena_[group.begin + group.count++] = position;
    if (record.gpu_related() && !record.gpu_slots.empty()) {
      push(gpu_attributed_, position);
      if (record.multi_gpu()) push(multi_gpu_, position);
    }
  }
}

std::vector<double> LogIndex::hours_of(std::span<const std::uint32_t> positions) const {
  std::vector<double> out;
  out.reserve(positions.size());
  for (std::uint32_t position : positions) out.push_back(hours_[position]);
  return out;
}

std::vector<double> LogIndex::ttr_of(std::span<const std::uint32_t> positions) const {
  std::vector<double> out;
  out.reserve(positions.size());
  for (std::uint32_t position : positions) out.push_back(ttr_[position]);
  return out;
}

}  // namespace tsufail::data
