#include "data/log_index.h"

#include <algorithm>
#include <utility>

#include "data/columnar.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "stats/kernels.h"

namespace tsufail::data {

LogIndex::LogIndex(const FailureLog& log) : log_(&log) { build_from(nullptr); }

LogIndex LogIndex::extend(const LogIndex& base, const FailureLog& log) {
  TSUFAIL_REQUIRE(log.size() >= base.size(),
                  "LogIndex::extend: log must contain the base records as a prefix");
  TSUFAIL_REQUIRE(log.spec().machine == base.spec().machine &&
                      log.spec().node_count == base.spec().node_count,
                  "LogIndex::extend: base and extended log disagree on the machine spec");
  LogIndex index(log, ExtendTag{});
  index.build_from(&base);
  return index;
}

Result<LogIndex> LogIndex::from_columnar(const FailureLog& log,
                                         std::shared_ptr<const ColumnarSnapshot> snapshot) {
  if (snapshot == nullptr || !snapshot->has_index())
    return Error(ErrorKind::kValidation,
                 "LogIndex::from_columnar: snapshot carries no index sections");
  if (snapshot->size() != log.size())
    return Error(ErrorKind::kValidation,
                 "LogIndex::from_columnar: snapshot and log disagree on record count");
  OBS_SPAN("index.adopt");
  static obs::Counter adopts = obs::counter("index.adopts");
  adopts.add();

  LogIndex index(log, ExtendTag{});
  // Zero-copy: the hot arrays are the snapshot's own (validated,
  // checksummed) sections; only the small range tables are re-derived.
  index.hours_ = snapshot->hours();
  index.ttr_ = snapshot->ttr();
  index.arena_ = snapshot->index_arena();
  const auto ranges = snapshot->index_ranges();
  std::size_t cursor = 0;
  const auto next_range = [&ranges, &cursor]() {
    Range range{ranges[cursor], ranges[cursor + 1]};
    cursor += 2;
    return range;
  };
  for (std::size_t c = 0; c < kCategories; ++c) index.categories_[c] = next_range();
  for (std::size_t c = 0; c < kClasses; ++c) index.classes_[c] = next_range();
  for (std::size_t m = 0; m < 12; ++m) index.months_[m] = next_range();
  index.gpu_attributed_ = next_range();
  index.multi_gpu_ = next_range();
  const auto groups = snapshot->node_groups();
  index.node_groups_.assign(groups.begin(), groups.end());
  index.backing_ = std::move(snapshot);
  return index;
}

void LogIndex::build_from(const LogIndex* base) {
  OBS_SPAN(base == nullptr ? "index.build" : "index.merge");
  static obs::Counter builds = obs::counter("index.builds");
  static obs::Counter merges = obs::counter("index.merges");
  static obs::Counter indexed = obs::counter("index.records");
  const auto records = log_->records();
  const auto n = records.size();
  const std::size_t from = base == nullptr ? 0 : base->size();
  (base == nullptr ? builds : merges).add();
  indexed.add(n - from);

  // Build into a fresh Arrays, then publish it behind the shared backing
  // (the spans the accessors read are set once at the end).
  Arrays arrays;
  std::vector<double>& hours = arrays.hours;
  std::vector<double>& ttr = arrays.ttr;
  std::vector<std::uint32_t>& arena = arrays.arena;
  hours.reserve(n);
  ttr.reserve(n);
  if (base != nullptr) {
    // The prefix's derived values are position-for-position identical to
    // what a batch build would recompute, so copy instead of recompute.
    hours.assign(base->hours_.begin(), base->hours_.end());
    ttr.assign(base->ttr_.begin(), base->ttr_.end());
  }

  obs::SpanScope pass1("index.count");
  // Pass 1 over the new records only: dense per-record arrays, group
  // sizes, and the month of each record (cached so pass 2 does not
  // repeat the calendar conversion).
  std::array<std::uint32_t, kCategories> category_sizes{};
  std::array<std::uint32_t, kClasses> class_sizes{};
  std::array<std::uint32_t, 12> month_sizes{};
  std::uint32_t gpu_size = 0;
  std::uint32_t multi_size = 0;
  // Node ids are validated to [0, node_count), so dense counters beat a
  // map: two O(log nodes) lookups per record would otherwise dominate the
  // whole build.
  std::vector<std::uint32_t> node_sizes(
      static_cast<std::size_t>(log_->spec().node_count), 0);
  std::vector<std::uint8_t> month_of(n - from);
  for (std::size_t i = from; i < n; ++i) {
    const FailureRecord& record = records[i];
    hours.push_back(hours_between(log_->spec().log_start, record.time));
    ttr.push_back(record.ttr_hours);
    ++category_sizes[static_cast<std::size_t>(record.category)];
    ++class_sizes[static_cast<std::size_t>(record.failure_class())];
    month_of[i - from] = static_cast<std::uint8_t>(record.time.month() - 1);
    ++month_sizes[month_of[i - from]];
    ++node_sizes[static_cast<std::size_t>(record.node)];
    if (record.gpu_related() && !record.gpu_slots.empty()) {
      ++gpu_size;
      if (record.multi_gpu()) ++multi_size;
    }
  }
  // Fold the base group sizes in, so the layout below sees totals.
  if (base != nullptr) {
    for (std::size_t c = 0; c < kCategories; ++c)
      category_sizes[c] += base->categories_[c].count;
    for (std::size_t c = 0; c < kClasses; ++c) class_sizes[c] += base->classes_[c].count;
    for (std::size_t m = 0; m < 12; ++m) month_sizes[m] += base->months_[m].count;
    gpu_size += base->gpu_attributed_.count;
    multi_size += base->multi_gpu_.count;
    for (const NodeGroup& group : base->node_groups_)
      node_sizes[static_cast<std::size_t>(group.node)] += group.count;
  }
  pass1.stop();

  obs::SpanScope pass2("index.fill");
  // Lay the groups out back-to-back in one arena.
  std::uint32_t offset = 0;
  const auto reserve_range = [&offset](Range& range, std::uint32_t size) {
    range.begin = offset;
    range.count = 0;  // used as a write cursor in pass 2
    offset += size;
  };
  for (std::size_t c = 0; c < kCategories; ++c) reserve_range(categories_[c], category_sizes[c]);
  for (std::size_t c = 0; c < kClasses; ++c) reserve_range(classes_[c], class_sizes[c]);
  for (std::size_t m = 0; m < 12; ++m) reserve_range(months_[m], month_sizes[m]);
  reserve_range(gpu_attributed_, gpu_size);
  reserve_range(multi_gpu_, multi_size);
  std::vector<std::uint32_t> node_slot(node_sizes.size(), 0);
  for (std::size_t node = 0; node < node_sizes.size(); ++node) {  // ascending node id
    if (node_sizes[node] == 0) continue;
    node_slot[node] = static_cast<std::uint32_t>(node_groups_.size());
    node_groups_.push_back({static_cast<int>(node), offset, 0});
    offset += node_sizes[node];
  }
  arena.resize(offset);

  // Seed each span with the base's contents: prefix positions are
  // unchanged by an append, and every span fills in time order, so the
  // base entries are exactly the first base->count entries a batch build
  // would have written.
  if (base != nullptr) {
    const auto copy_range = [&arena, base](Range& dst, const Range& src) {
      std::copy_n(base->arena_.data() + src.begin, src.count, arena.data() + dst.begin);
      dst.count = src.count;  // the pass-2 cursor resumes after the prefix
    };
    for (std::size_t c = 0; c < kCategories; ++c)
      copy_range(categories_[c], base->categories_[c]);
    for (std::size_t c = 0; c < kClasses; ++c) copy_range(classes_[c], base->classes_[c]);
    for (std::size_t m = 0; m < 12; ++m) copy_range(months_[m], base->months_[m]);
    copy_range(gpu_attributed_, base->gpu_attributed_);
    copy_range(multi_gpu_, base->multi_gpu_);
    for (const NodeGroup& group : base->node_groups_) {
      NodeGroup& dst = node_groups_[node_slot[static_cast<std::size_t>(group.node)]];
      std::copy_n(base->arena_.data() + group.begin, group.count, arena.data() + dst.begin);
      dst.count = group.count;
    }
  }

  // Pass 2: fill every group with the new positions in record (= time)
  // order, so each span stays strictly ascending.
  const auto push = [&arena](Range& range, std::uint32_t position) {
    arena[range.begin + range.count++] = position;
  };
  for (std::size_t i = from; i < n; ++i) {
    const FailureRecord& record = records[i];
    const auto position = static_cast<std::uint32_t>(i);
    push(categories_[static_cast<std::size_t>(record.category)], position);
    push(classes_[static_cast<std::size_t>(record.failure_class())], position);
    push(months_[month_of[i - from]], position);
    NodeGroup& group = node_groups_[node_slot[static_cast<std::size_t>(record.node)]];
    arena[group.begin + group.count++] = position;
    if (record.gpu_related() && !record.gpu_slots.empty()) {
      push(gpu_attributed_, position);
      if (record.multi_gpu()) push(multi_gpu_, position);
    }
  }
  pass2.stop();

  auto owned = std::make_shared<const Arrays>(std::move(arrays));
  hours_ = owned->hours;
  ttr_ = owned->ttr;
  arena_ = owned->arena;
  backing_ = std::move(owned);
}

std::vector<double> LogIndex::hours_of(std::span<const std::uint32_t> positions) const {
  return stats::gather(hours_, positions);
}

std::vector<double> LogIndex::ttr_of(std::span<const std::uint32_t> positions) const {
  return stats::gather(ttr_, positions);
}

}  // namespace tsufail::data
