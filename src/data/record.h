// FailureRecord: one row of a failure log.
//
// This is the atom of the whole library.  A record is what the operator
// wrote down: when something failed, on which node, what category it was
// assigned, how long the repair took, which GPU slots were involved (for
// GPU-related failures), and — for Tsubame-3 software failures — the root
// locus string the operators recorded (Figure 3's vocabulary).
#pragma once

#include <string>
#include <vector>

#include "data/category.h"
#include "data/machine.h"
#include "util/civil_time.h"

namespace tsufail::data {

struct FailureRecord {
  TimePoint time;              ///< failure occurrence instant
  int node = 0;                ///< node index, 0-based within the machine
  Category category = Category::kUnknown;
  double ttr_hours = 0.0;      ///< time to recovery, fractional hours
  std::vector<int> gpu_slots;  ///< 0-based GPU slots involved; empty unless GPU-related
  std::string root_locus;      ///< software root-locus label; empty if none recorded

  FailureClass failure_class() const noexcept { return classify(category); }
  bool gpu_related() const noexcept { return is_gpu_related(category); }
  /// True iff the record names more than one GPU slot (Table III's
  /// "multi-GPU failure").
  bool multi_gpu() const noexcept { return gpu_slots.size() > 1; }
};

/// Validates one record against its machine's spec: category vocabulary,
/// node range, slot range/uniqueness, non-negative TTR, and time within
/// the log window (with `slack_hours` of tolerance at the edges, since
/// repairs may complete after the window closes).
Result<void> validate_record(const FailureRecord& record, const MachineSpec& spec,
                             double slack_hours = 0.0);

}  // namespace tsufail::data
