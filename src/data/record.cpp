#include "data/record.h"

#include <algorithm>
#include <cmath>

namespace tsufail::data {

Result<void> validate_record(const FailureRecord& record, const MachineSpec& spec,
                             double slack_hours) {
  if (!valid_for(record.category, spec.machine))
    return Error(ErrorKind::kValidation,
                 "category '" + std::string(to_string(record.category)) + "' is not in the " +
                     spec.name + " vocabulary");
  if (record.node < 0 || record.node >= spec.node_count)
    return Error(ErrorKind::kValidation, "node index " + std::to_string(record.node) +
                                             " outside [0, " + std::to_string(spec.node_count) +
                                             ")");
  if (!(record.ttr_hours >= 0.0) || !std::isfinite(record.ttr_hours))
    return Error(ErrorKind::kValidation, "time to recovery must be finite and >= 0");

  const TimePoint earliest = spec.log_start.plus_hours(-slack_hours);
  const TimePoint latest = spec.log_end.plus_hours(slack_hours);
  if (record.time < earliest || record.time > latest)
    return Error(ErrorKind::kValidation,
                 "failure time " + format_time(record.time) + " outside the log window " +
                     format_date(spec.log_start) + " .. " + format_date(spec.log_end));

  std::vector<int> slots = record.gpu_slots;
  std::sort(slots.begin(), slots.end());
  if (std::adjacent_find(slots.begin(), slots.end()) != slots.end())
    return Error(ErrorKind::kValidation, "duplicate GPU slot in record");
  for (int slot : slots) {
    if (slot < 0 || slot >= spec.gpus_per_node)
      return Error(ErrorKind::kValidation, "GPU slot " + std::to_string(slot) + " outside [0, " +
                                               std::to_string(spec.gpus_per_node) + ")");
  }
  if (!record.gpu_slots.empty() && !record.gpu_related())
    return Error(ErrorKind::kValidation,
                 "GPU slots listed on a non-GPU-related category '" +
                     std::string(to_string(record.category)) + "'");
  return {};
}

}  // namespace tsufail::data
