// Machine (system) descriptions for the two studied supercomputers.
//
// Every analysis is parameterized by the machine it runs on: the number of
// nodes and GPUs fixes the denominators for per-node and per-slot rates,
// Rpeak feeds the performance-error-proportionality metric, and the log
// observation window fixes exposure time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/civil_time.h"
#include "util/error.h"

namespace tsufail::data {

enum class Machine {
  kTsubame2,
  kTsubame3,
};

/// "Tsubame-2" / "Tsubame-3".
std::string_view to_string(Machine machine) noexcept;

/// Parses a machine name ("tsubame-2", "Tsubame2", "t2", ... accepted).
Result<Machine> parse_machine(std::string_view name);

/// Static configuration of one system (Table I of the paper).
struct MachineSpec {
  Machine machine = Machine::kTsubame2;
  std::string name;
  int node_count = 0;
  int gpus_per_node = 0;
  int cpus_per_node = 0;
  int nodes_per_rack = 0;          ///< rack granularity for spatial analyses
  double rpeak_pflops = 0.0;       ///< theoretical peak, PFlop/s
  double power_mw = 0.0;           ///< facility power, MW
  TimePoint log_start;             ///< first instant covered by the log
  TimePoint log_end;               ///< last instant covered by the log

  int total_gpus() const noexcept { return node_count * gpus_per_node; }
  int total_cpus() const noexcept { return node_count * cpus_per_node; }
  /// Rack of a node (0-based); precondition: nodes_per_rack > 0.
  int rack_of(int node) const noexcept { return node / nodes_per_rack; }
  /// Number of racks (last rack may be partial).
  int rack_count() const noexcept {
    return (node_count + nodes_per_rack - 1) / nodes_per_rack;
  }
  /// GPU + CPU component count (the paper's "7040 for Tsubame-2,
  /// 3240 for Tsubame-3" comparison).
  int total_gpu_cpu_components() const noexcept { return total_gpus() + total_cpus(); }
  double window_hours() const noexcept { return hours_between(log_start, log_end); }
};

/// Tsubame-2: 1408 nodes x (3 K20X GPUs + 2 Westmere CPUs), Rpeak 2.3 PF,
/// log window 2012-01-07 .. 2013-08-01 (897 failures in the paper).
const MachineSpec& tsubame2_spec();

/// Tsubame-3: 540 nodes x (4 P100 GPUs + 2 Broadwell CPUs), Rpeak 12.1 PF,
/// log window 2017-05-09 .. 2020-02-22 (338 failures in the paper).
/// Node count is derived from the paper's component total: 540*(4+2)=3240.
const MachineSpec& tsubame3_spec();

/// Spec for a machine enum value.
const MachineSpec& spec_for(Machine machine);

}  // namespace tsufail::data
