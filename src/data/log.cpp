#include "data/log.h"

#include <algorithm>

namespace tsufail::data {

Result<FailureLog> FailureLog::create(MachineSpec spec, std::vector<FailureRecord> records,
                                      double slack_hours) {
  std::stable_sort(records.begin(), records.end(),
                   [](const FailureRecord& a, const FailureRecord& b) { return a.time < b.time; });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (auto valid = validate_record(records[i], spec, slack_hours); !valid.ok())
      return valid.error().with_context("record " + std::to_string(i));
  }
  return FailureLog(std::move(spec), std::move(records));
}

FailureLog FailureLog::from_sorted(MachineSpec spec, std::vector<FailureRecord> records) {
  TSUFAIL_REQUIRE(
      std::is_sorted(records.begin(), records.end(),
                     [](const FailureRecord& a, const FailureRecord& b) { return a.time < b.time; }),
      "FailureLog::from_sorted: records must be ascending by time");
  return FailureLog(std::move(spec), std::move(records));
}

Result<FailureLog> FailureLog::append(const FailureLog& base, std::vector<FailureRecord> suffix,
                                      double slack_hours) {
  std::stable_sort(suffix.begin(), suffix.end(),
                   [](const FailureRecord& a, const FailureRecord& b) { return a.time < b.time; });
  if (!base.empty() && !suffix.empty() && suffix.front().time < base.records_.back().time)
    return Error(ErrorKind::kValidation,
                 "append: suffix record predates the base log's last record");
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (auto valid = validate_record(suffix[i], base.spec_, slack_hours); !valid.ok())
      return valid.error().with_context("suffix record " + std::to_string(i));
  }
  std::vector<FailureRecord> records;
  records.reserve(base.records_.size() + suffix.size());
  records.insert(records.end(), base.records_.begin(), base.records_.end());
  records.insert(records.end(), std::make_move_iterator(suffix.begin()),
                 std::make_move_iterator(suffix.end()));
  return FailureLog(base.spec_, std::move(records));
}

std::vector<FailureRecord> FailureLog::filter(
    const std::function<bool(const FailureRecord&)>& predicate) const {
  std::vector<FailureRecord> out;
  for (const auto& record : records_) {
    if (predicate(record)) out.push_back(record);
  }
  return out;
}

std::vector<FailureRecord> FailureLog::by_category(Category category) const {
  return filter([category](const FailureRecord& r) { return r.category == category; });
}

std::vector<FailureRecord> FailureLog::by_class(FailureClass cls) const {
  return filter([cls](const FailureRecord& r) { return r.failure_class() == cls; });
}

std::vector<FailureRecord> FailureLog::gpu_related() const {
  return filter([](const FailureRecord& r) { return r.gpu_related(); });
}

std::vector<FailureRecord> FailureLog::in_window(TimePoint from, TimePoint to) const {
  return filter([from, to](const FailureRecord& r) { return r.time >= from && r.time <= to; });
}

std::map<Category, std::size_t> FailureLog::count_by_category() const {
  std::map<Category, std::size_t> counts;
  for (Category c : categories_for(spec_.machine)) counts[c] = 0;
  for (const auto& record : records_) ++counts[record.category];
  return counts;
}

std::map<int, std::size_t> FailureLog::count_by_node() const {
  std::map<int, std::size_t> counts;
  for (const auto& record : records_) ++counts[record.node];
  return counts;
}

std::vector<double> FailureLog::failure_hours_since_start() const {
  std::vector<double> hours;
  hours.reserve(records_.size());
  for (const auto& record : records_) hours.push_back(hours_between(spec_.log_start, record.time));
  return hours;
}

std::vector<double> FailureLog::ttr_values() const {
  std::vector<double> values;
  values.reserve(records_.size());
  for (const auto& record : records_) values.push_back(record.ttr_hours);
  return values;
}

Result<FailureLog> FailureLog::sublog(std::vector<FailureRecord> records) const {
  return create(spec_, std::move(records), /*slack_hours=*/24.0 * 14);
}

}  // namespace tsufail::data
