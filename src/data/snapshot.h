// LogSnapshot: an immutable, shareable (log + index + epoch) triple.
//
// The serve layer swaps a tenant's current snapshot pointer on every
// epoch refresh; readers that grabbed the previous pointer keep a fully
// consistent view for as long as they hold it, so queries never block
// ingest and ingest never invalidates a query mid-flight.  The snapshot
// owns its FailureLog and the LogIndex borrows it in place, which keeps
// the index's no-copy contract while making lifetime management a
// shared_ptr refcount instead of a discipline.
//
// Epoch 0 is the snapshot built from the initial (possibly empty) log;
// extend() produces epoch n+1 by delta-merging newly sealed records
// through FailureLog::append + LogIndex::extend, so a refresh costs
// O(new records) derived-data work instead of a full rebuild while
// staying bit-identical to one (the equivalence is gated by
// tests/data_index_test.cpp and the differential oracle).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::data {

class ColumnarSnapshot;
class LogSnapshot;

/// How snapshots are passed around: immutable and refcounted.
using SnapshotPtr = std::shared_ptr<const LogSnapshot>;

class LogSnapshot {
 public:
  /// Builds epoch `epoch` (default 0) from a complete log.
  static Result<SnapshotPtr> build(FailureLog log, std::uint64_t epoch = 0);

  /// Delta-merge: a new snapshot whose log is `base`'s log plus
  /// `appended` (time-ordered at the seam; validated against the spec
  /// with `slack_hours`), at epoch base.epoch() + 1.  The index is
  /// extended incrementally from `base`'s.
  static Result<SnapshotPtr> extend(const LogSnapshot& base,
                                    std::vector<FailureRecord> appended,
                                    double slack_hours = 0.0);

  /// Re-mounts a packed snapshot at `epoch`: materializes the log from
  /// the columns and — when the snapshot carries index sections — adopts
  /// the index zero-copy (LogIndex::from_columnar) instead of rebuilding
  /// it.  The columnar snapshot is retained by refcount for as long as
  /// the adopted spans need it.
  static Result<SnapshotPtr> from_columnar(std::shared_ptr<const ColumnarSnapshot> columnar,
                                           std::uint64_t epoch = 0);

  const FailureLog& log() const noexcept { return log_; }
  const LogIndex& index() const noexcept { return *index_; }
  const MachineSpec& spec() const noexcept { return log_.spec(); }
  std::uint64_t epoch() const noexcept { return epoch_; }
  std::size_t size() const noexcept { return log_.size(); }
  bool empty() const noexcept { return log_.empty(); }

  LogSnapshot(const LogSnapshot&) = delete;
  LogSnapshot& operator=(const LogSnapshot&) = delete;

 private:
  LogSnapshot(FailureLog log, std::uint64_t epoch)
      : log_(std::move(log)), epoch_(epoch) {}

  FailureLog log_;
  /// Borrows log_ (stable address: snapshots are heap-only and pinned).
  std::unique_ptr<LogIndex> index_;
  std::uint64_t epoch_;
};

}  // namespace tsufail::data
