// FailureLog: an immutable, time-sorted collection of failure records for
// one machine, plus the query API every analyzer is built on.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "data/machine.h"
#include "data/record.h"
#include "util/error.h"

namespace tsufail::data {

class FailureLog {
 public:
  /// Builds a log, sorting records by time and validating each against the
  /// spec.  Errors name the offending record index.  `slack_hours` relaxes
  /// the window check (generated logs may slightly overshoot the window).
  static Result<FailureLog> create(MachineSpec spec, std::vector<FailureRecord> records,
                                   double slack_hours = 0.0);

  const MachineSpec& spec() const noexcept { return spec_; }
  Machine machine() const noexcept { return spec_.machine; }
  std::span<const FailureRecord> records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  // --- Queries ---------------------------------------------------------

  /// Records satisfying an arbitrary predicate, in time order.
  std::vector<FailureRecord> filter(
      const std::function<bool(const FailureRecord&)>& predicate) const;

  /// Records of one category.
  std::vector<FailureRecord> by_category(Category category) const;

  /// Records of one hardware/software class.
  std::vector<FailureRecord> by_class(FailureClass cls) const;

  /// GPU-related records (GPU hardware + GPU driver).
  std::vector<FailureRecord> gpu_related() const;

  /// Records within [from, to] inclusive.
  std::vector<FailureRecord> in_window(TimePoint from, TimePoint to) const;

  /// Failure count per category, in the machine's Table II order
  /// (categories with zero occurrences included).
  std::map<Category, std::size_t> count_by_category() const;

  /// Failure count per node, only nodes with >= 1 failure.
  std::map<int, std::size_t> count_by_node() const;

  /// Distinct failure times as fractional hours since the log window start,
  /// for inter-arrival analysis.
  std::vector<double> failure_hours_since_start() const;

  /// All time-to-recovery values in record order.
  std::vector<double> ttr_values() const;

  /// A new log containing only `records` (keeps this log's spec).
  /// Used to derive per-category sub-logs.
  Result<FailureLog> sublog(std::vector<FailureRecord> records) const;

  /// A new log holding `base`'s records followed by `suffix` — the
  /// append-only shape a sealed stream epoch produces.  Only the suffix
  /// is sorted and validated; the base records ride along untouched, so
  /// the result is value-identical to re-creating the log from the full
  /// concatenation while doing O(suffix) new work (plus the prefix
  /// copy).  Errors: a suffix record fails validation, or the earliest
  /// suffix record predates `base`'s last record.
  static Result<FailureLog> append(const FailureLog& base, std::vector<FailureRecord> suffix,
                                   double slack_hours = 0.0);

  /// Adopts records that are already time-sorted and already validated —
  /// the shape a checksummed columnar snapshot materializes — skipping
  /// create()'s stable_sort and per-record checks.  Record order is
  /// preserved exactly (ties included), so a snapshot round-trip is
  /// order-identical to the log it was packed from.  Precondition
  /// (REQUIREd): records ascending by time.
  static FailureLog from_sorted(MachineSpec spec, std::vector<FailureRecord> records);

  /// Moves the record storage out of a finished log, so batch drivers
  /// (sim::run_sweep) can recycle one allocation across many generated
  /// logs instead of reallocating per replicate.  The log is left empty.
  static std::vector<FailureRecord> take_records(FailureLog&& log) noexcept {
    return std::move(log.records_);
  }

 private:
  FailureLog(MachineSpec spec, std::vector<FailureRecord> records)
      : spec_(std::move(spec)), records_(std::move(records)) {}

  MachineSpec spec_;
  std::vector<FailureRecord> records_;  // invariant: ascending by time
};

}  // namespace tsufail::data
