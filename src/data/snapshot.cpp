#include "data/snapshot.h"

#include <utility>

#include "data/columnar.h"

namespace tsufail::data {

Result<SnapshotPtr> LogSnapshot::build(FailureLog log, std::uint64_t epoch) {
  // Two-phase: the index borrows the log member, so it can only be built
  // once the log has its final (heap) address.
  std::shared_ptr<LogSnapshot> snapshot(new LogSnapshot(std::move(log), epoch));
  snapshot->index_ = std::make_unique<LogIndex>(snapshot->log_);
  return SnapshotPtr(std::move(snapshot));
}

Result<SnapshotPtr> LogSnapshot::from_columnar(
    std::shared_ptr<const ColumnarSnapshot> columnar, std::uint64_t epoch) {
  if (columnar == nullptr)
    return Error(ErrorKind::kValidation, "LogSnapshot::from_columnar: null snapshot");
  std::shared_ptr<LogSnapshot> snapshot(new LogSnapshot(columnar->to_log(), epoch));
  if (columnar->has_index()) {
    auto index = LogIndex::from_columnar(snapshot->log_, std::move(columnar));
    if (!index.ok()) return index.error().with_context("snapshot from_columnar");
    snapshot->index_ = std::make_unique<LogIndex>(std::move(index).value());
  } else {
    snapshot->index_ = std::make_unique<LogIndex>(snapshot->log_);
  }
  return SnapshotPtr(std::move(snapshot));
}

Result<SnapshotPtr> LogSnapshot::extend(const LogSnapshot& base,
                                        std::vector<FailureRecord> appended,
                                        double slack_hours) {
  auto merged = FailureLog::append(base.log_, std::move(appended), slack_hours);
  if (!merged.ok()) return merged.error().with_context("snapshot extend");
  std::shared_ptr<LogSnapshot> snapshot(
      new LogSnapshot(std::move(merged).value(), base.epoch_ + 1));
  snapshot->index_ =
      std::make_unique<LogIndex>(LogIndex::extend(base.index(), snapshot->log_));
  return SnapshotPtr(std::move(snapshot));
}

}  // namespace tsufail::data
