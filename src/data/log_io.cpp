#include "data/log_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "util/csv.h"
#include "util/strings.h"

namespace tsufail::data {
namespace {

constexpr const char* kColumns[] = {"machine",   "timestamp", "node",      "category",
                                    "ttr_hours", "gpu_slots", "root_locus"};

/// Parses the seven canonical field strings into a record (shared by the
/// header-driven document reader and the headerless single-row parser).
/// `get(column)` resolves one canonical column name to its text.
template <typename FieldFn>
Result<std::pair<Machine, FailureRecord>> parse_record_from_fields(const FieldFn& get) {
  auto machine_text = get("machine");
  if (!machine_text.ok()) return machine_text.error();
  auto machine = parse_machine(machine_text.value());
  if (!machine.ok()) return machine.error();

  FailureRecord record;

  auto time_text = get("timestamp");
  if (!time_text.ok()) return time_text.error();
  auto time = parse_time(trim(time_text.value()));
  if (!time.ok()) return time.error();
  record.time = time.value();

  auto node_text = get("node");
  if (!node_text.ok()) return node_text.error();
  auto node = parse_int(trim(node_text.value()));
  if (!node.ok()) return node.error().with_context("node");
  record.node = static_cast<int>(node.value());

  auto category_text = get("category");
  if (!category_text.ok()) return category_text.error();
  auto category = parse_category(category_text.value());
  if (!category.ok()) return category.error();
  record.category = category.value();

  auto ttr_text = get("ttr_hours");
  if (!ttr_text.ok()) return ttr_text.error();
  auto ttr = parse_double(trim(ttr_text.value()));
  if (!ttr.ok()) return ttr.error().with_context("ttr_hours");
  record.ttr_hours = ttr.value();

  auto slots_text = get("gpu_slots");
  if (!slots_text.ok()) return slots_text.error();
  auto slots = parse_gpu_slots(slots_text.value());
  if (!slots.ok()) return slots.error();
  record.gpu_slots = std::move(slots.value());

  auto locus = get("root_locus");
  if (!locus.ok()) return locus.error();
  record.root_locus = std::string(trim(locus.value()));

  return std::pair<Machine, FailureRecord>(machine.value(), std::move(record));
}

/// Parses one CSV record into a FailureRecord; also reports the machine
/// declared on the row so the caller can enforce uniformity.
Result<std::pair<Machine, FailureRecord>> parse_row(const CsvDocument& doc,
                                                    const CsvRecord& row) {
  return parse_record_from_fields(
      [&](const char* column) -> Result<std::string> { return doc.field(row, column); });
}

/// Splits one line into RFC-4180 fields (quoted fields may hold commas
/// and doubled quotes; embedded newlines cannot occur in a single line).
Result<std::vector<std::string>> split_row_fields(std::string_view row) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const char c = row[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < row.size() && row[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      if (!field.empty())
        return Error(ErrorKind::kParse, "stray quote in unquoted field");
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (quoted) return Error(ErrorKind::kParse, "unterminated quote");
  fields.push_back(std::move(field));
  return fields;
}

std::string format_ttr(double ttr_hours) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", ttr_hours);
  return buf;
}

}  // namespace

Result<std::pair<Machine, FailureRecord>> parse_record_row(std::string_view row) {
  if (!row.empty() && row.back() == '\r') row.remove_suffix(1);
  auto fields = split_row_fields(row);
  if (!fields.ok()) return fields.error();
  constexpr std::size_t kColumnCount = std::size(kColumns);
  if (fields.value().size() != kColumnCount)
    return Error(ErrorKind::kParse, "expected " + std::to_string(kColumnCount) +
                                        " fields, got " +
                                        std::to_string(fields.value().size()));
  return parse_record_from_fields([&](const char* column) -> Result<std::string> {
    for (std::size_t i = 0; i < kColumnCount; ++i) {
      if (std::string_view(kColumns[i]) == column) return fields.value()[i];
    }
    return Error(ErrorKind::kNotFound, "unknown column '" + std::string(column) + "'");
  });
}

std::string format_gpu_slots(const std::vector<int>& slots) {
  std::string out;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != 0) out += '|';
    out += std::to_string(slots[i]);
  }
  return out;
}

Result<std::vector<int>> parse_gpu_slots(std::string_view text) {
  std::vector<int> slots;
  text = trim(text);
  if (text.empty()) return slots;
  for (std::string_view part : split(text, '|')) {
    auto value = parse_int(trim(part));
    if (!value.ok()) return value.error().with_context("gpu_slots");
    slots.push_back(static_cast<int>(value.value()));
  }
  return slots;
}

Result<ReadReport> read_log_csv(std::string_view text, ReadPolicy policy) {
  auto doc = CsvDocument::parse(text);
  if (!doc.ok()) return doc.error();

  for (const char* column : kColumns) {
    if (auto idx = doc.value().column(column); !idx.ok())
      return Error(ErrorKind::kValidation,
                   "log CSV is missing required column '" + std::string(column) + "'");
  }

  std::vector<FailureRecord> records;
  std::vector<RowError> row_errors;
  std::optional<Machine> machine;

  for (const auto& row : doc.value().records()) {
    auto parsed = parse_row(doc.value(), row);
    if (!parsed.ok()) {
      if (policy == ReadPolicy::kStrict)
        return parsed.error().with_context("line " + std::to_string(row.line_number));
      row_errors.push_back({row.line_number, parsed.error().to_string()});
      continue;
    }
    const auto& [row_machine, record] = parsed.value();
    if (!machine.has_value()) {
      machine = row_machine;
    } else if (*machine != row_machine) {
      const Error mixed(ErrorKind::kValidation, "mixed machines in one log file");
      if (policy == ReadPolicy::kStrict)
        return mixed.with_context("line " + std::to_string(row.line_number));
      row_errors.push_back({row.line_number, mixed.to_string()});
      continue;
    }
    // Semantic validation per row, so one bad record is skippable under
    // the lenient policy instead of poisoning the whole load.
    if (auto valid = validate_record(record, spec_for(row_machine), /*slack_hours=*/24.0 * 14);
        !valid.ok()) {
      if (policy == ReadPolicy::kStrict)
        return valid.error().with_context("line " + std::to_string(row.line_number));
      row_errors.push_back({row.line_number, valid.error().to_string()});
      continue;
    }
    records.push_back(record);
  }

  if (!machine.has_value())
    return Error(ErrorKind::kValidation, "log CSV contains no parsable data rows");

  // Generated/operator logs can record repairs finishing past the window;
  // allow two weeks of slack on the window check.
  auto log = FailureLog::create(spec_for(*machine), std::move(records), /*slack_hours=*/24.0 * 14);
  if (!log.ok()) {
    if (policy == ReadPolicy::kStrict) return log.error();
    return log.error();  // structural validation failures are never skippable
  }
  return ReadReport{std::move(log.value()), std::move(row_errors)};
}

Result<ReadReport> read_log_file(const std::string& path, ReadPolicy policy) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Error(ErrorKind::kIo, "cannot open log file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto report = read_log_csv(buffer.str(), policy);
  if (!report.ok()) return report.error().with_context(path);
  return report;
}

std::string write_log_csv(const FailureLog& log) {
  std::ostringstream out;
  CsvWriter writer(out);
  std::vector<std::string> row(std::begin(kColumns), std::end(kColumns));
  writer.write_row(row);
  const std::string machine_name(to_string(log.machine()));
  for (const auto& record : log.records()) {
    row[0] = machine_name;
    row[1] = format_time(record.time);
    row[2] = std::to_string(record.node);
    row[3] = std::string(to_string(record.category));
    row[4] = format_ttr(record.ttr_hours);
    row[5] = format_gpu_slots(record.gpu_slots);
    row[6] = record.root_locus;
    writer.write_row(row);
  }
  return out.str();
}

Result<void> write_log_file(const std::string& path, const FailureLog& log) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    return Error(ErrorKind::kIo, "cannot open log file for writing: " + path);
  out << write_log_csv(log);
  out.flush();
  if (!out)
    return Error(ErrorKind::kIo, "write error on log file: " + path);
  return {};
}

}  // namespace tsufail::data
