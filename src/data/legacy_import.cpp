#include "data/legacy_import.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace tsufail::data {
namespace {

constexpr std::string_view kHeaderTag = "#legacy-v1";

/// Parses "D/M/Y;HH:MM" (two already-split fields) into a TimePoint.
Result<TimePoint> parse_legacy_time(std::string_view date, std::string_view time_of_day) {
  const auto date_parts = split(trim(date), '/');
  if (date_parts.size() != 3)
    return Error(ErrorKind::kParse, "legacy date must be D/M/Y: '" + std::string(date) + "'");
  auto day = parse_int(trim(date_parts[0]));
  auto month = parse_int(trim(date_parts[1]));
  auto year = parse_int(trim(date_parts[2]));
  if (!day.ok() || !month.ok() || !year.ok())
    return Error(ErrorKind::kParse, "legacy date must be numeric: '" + std::string(date) + "'");
  if (year.value() < 1000)
    return Error(ErrorKind::kParse, "legacy date needs a 4-digit year: '" + std::string(date) + "'");

  const auto time_parts = split(trim(time_of_day), ':');
  if (time_parts.size() != 2)
    return Error(ErrorKind::kParse, "legacy time must be HH:MM: '" + std::string(time_of_day) + "'");
  auto hour = parse_int(trim(time_parts[0]));
  auto minute = parse_int(trim(time_parts[1]));
  if (!hour.ok() || !minute.ok())
    return Error(ErrorKind::kParse, "legacy time must be numeric: '" + std::string(time_of_day) + "'");

  CivilDateTime civil{static_cast<int>(year.value()), static_cast<int>(month.value()),
                      static_cast<int>(day.value()), static_cast<int>(hour.value()),
                      static_cast<int>(minute.value()), 0};
  if (auto valid = validate_civil(civil); !valid.ok()) return valid.error();
  return TimePoint::from_civil(civil);
}

/// Parses "G0+G3" / "-" into a slot list.
Result<std::vector<int>> parse_legacy_slots(std::string_view text) {
  std::vector<int> slots;
  text = trim(text);
  if (text.empty() || text == "-") return slots;
  for (std::string_view part : split(text, '+')) {
    part = trim(part);
    if (part.size() < 2 || (part.front() != 'G' && part.front() != 'g'))
      return Error(ErrorKind::kParse, "legacy slot must look like G0: '" + std::string(part) + "'");
    auto slot = parse_int(part.substr(1));
    if (!slot.ok()) return slot.error().with_context("legacy slot");
    slots.push_back(static_cast<int>(slot.value()));
  }
  return slots;
}

Result<FailureRecord> parse_legacy_line(std::string_view line, const MachineSpec& spec) {
  const auto fields = split(line, ';');
  if (fields.size() < 6)
    return Error(ErrorKind::kParse, "legacy line needs at least 6 ;-fields");

  FailureRecord record;
  auto time = parse_legacy_time(fields[0], fields[1]);
  if (!time.ok()) return time.error();
  record.time = time.value();

  auto node = parse_legacy_node_name(trim(fields[2]), spec);
  if (!node.ok()) return node.error();
  record.node = node.value();

  auto category = parse_category(fields[3]);
  if (!category.ok()) return category.error();
  record.category = category.value();

  auto downtime_days = parse_double(trim(fields[4]));
  if (!downtime_days.ok()) return downtime_days.error().with_context("downtime days");
  record.ttr_hours = downtime_days.value() * 24.0;

  auto slots = parse_legacy_slots(fields[5]);
  if (!slots.ok()) return slots.error();
  record.gpu_slots = std::move(slots.value());

  if (fields.size() >= 7 && record.failure_class() == FailureClass::kSoftware) {
    record.root_locus = std::string(trim(fields[6]));
  }
  return record;
}

}  // namespace

Result<int> parse_legacy_node_name(std::string_view name, const MachineSpec& spec) {
  // "rNNnMM": rack number then within-rack index, both decimal.
  if (name.size() < 4 || (name.front() != 'r' && name.front() != 'R'))
    return Error(ErrorKind::kParse, "legacy node name must be rNNnMM: '" + std::string(name) + "'");
  const auto n_pos = name.find_first_of("nN", 1);
  if (n_pos == std::string_view::npos)
    return Error(ErrorKind::kParse, "legacy node name must be rNNnMM: '" + std::string(name) + "'");
  auto rack = parse_int(name.substr(1, n_pos - 1));
  auto index = parse_int(name.substr(n_pos + 1));
  if (!rack.ok() || !index.ok())
    return Error(ErrorKind::kParse, "legacy node name must be rNNnMM: '" + std::string(name) + "'");
  if (spec.nodes_per_rack <= 0)
    return Error(ErrorKind::kValidation, "machine spec has no rack layout");
  if (rack.value() < 0 || rack.value() >= spec.rack_count())
    return Error(ErrorKind::kValidation, "rack out of range in '" + std::string(name) + "'");
  if (index.value() < 0 || index.value() >= spec.nodes_per_rack)
    return Error(ErrorKind::kValidation, "node index out of range in '" + std::string(name) + "'");
  const int node = static_cast<int>(rack.value()) * spec.nodes_per_rack +
                   static_cast<int>(index.value());
  if (node >= spec.node_count)
    return Error(ErrorKind::kValidation, "node beyond fleet size in '" + std::string(name) + "'");
  return node;
}

Result<ReadReport> import_legacy_v1(std::string_view text, ReadPolicy policy) {
  std::vector<std::string_view> lines = split(text, '\n');
  if (lines.empty() || trim(lines[0]).substr(0, kHeaderTag.size()) != kHeaderTag)
    return Error(ErrorKind::kParse, "missing '#legacy-v1 <machine>' header");
  auto machine = parse_machine(trim(trim(lines[0]).substr(kHeaderTag.size())));
  if (!machine.ok()) return machine.error().with_context("legacy header");
  const MachineSpec& spec = spec_for(machine.value());

  std::vector<FailureRecord> records;
  std::vector<RowError> row_errors;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    if (line.empty() || line.front() == '#') continue;
    auto record = parse_legacy_line(line, spec);
    if (record.ok()) {
      if (auto valid = validate_record(record.value(), spec, /*slack_hours=*/24.0 * 14);
          valid.ok()) {
        records.push_back(std::move(record.value()));
        continue;
      } else if (policy == ReadPolicy::kStrict) {
        return valid.error().with_context("line " + std::to_string(i + 1));
      } else {
        row_errors.push_back({i + 1, valid.error().to_string()});
        continue;
      }
    }
    if (policy == ReadPolicy::kStrict)
      return record.error().with_context("line " + std::to_string(i + 1));
    row_errors.push_back({i + 1, record.error().to_string()});
  }
  if (records.empty())
    return Error(ErrorKind::kValidation, "legacy log contains no parsable data lines");

  auto log = FailureLog::create(spec, std::move(records), /*slack_hours=*/24.0 * 14);
  if (!log.ok()) return log.error();
  return ReadReport{std::move(log.value()), std::move(row_errors)};
}

Result<ReadReport> import_legacy_v1_file(const std::string& path, ReadPolicy policy) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Error(ErrorKind::kIo, "cannot open legacy log: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto report = import_legacy_v1(buffer.str(), policy);
  if (!report.ok()) return report.error().with_context(path);
  return report;
}

std::string export_legacy_v1(const FailureLog& log) {
  std::string out = std::string(kHeaderTag) + " " + std::string(to_string(log.machine())) + "\n";
  for (const auto& record : log.records()) {
    const CivilDateTime c = record.time.to_civil();
    char line[64];
    std::snprintf(line, sizeof(line), "%02d/%02d/%04d;%02d:%02d;r%02dn%02d;", c.day, c.month,
                  c.year, c.hour, c.minute, log.spec().rack_of(record.node),
                  record.node % log.spec().nodes_per_rack);
    out += line;
    out += std::string(to_string(record.category)) + ";";
    char days[32];
    std::snprintf(days, sizeof(days), "%.6f;", record.ttr_hours / 24.0);
    out += days;
    if (record.gpu_slots.empty()) {
      out += "-";
    } else {
      for (std::size_t i = 0; i < record.gpu_slots.size(); ++i) {
        if (i != 0) out += '+';
        out += "G" + std::to_string(record.gpu_slots[i]);
      }
    }
    if (!record.root_locus.empty()) out += ";" + record.root_locus;
    out += "\n";
  }
  return out;
}

}  // namespace tsufail::data
