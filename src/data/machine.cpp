#include "data/machine.h"

#include "util/strings.h"

namespace tsufail::data {

std::string_view to_string(Machine machine) noexcept {
  switch (machine) {
    case Machine::kTsubame2: return "Tsubame-2";
    case Machine::kTsubame3: return "Tsubame-3";
  }
  return "unknown";
}

Result<Machine> parse_machine(std::string_view name) {
  const std::string lower = to_lower(trim(name));
  if (lower == "tsubame-2" || lower == "tsubame2" || lower == "t2") return Machine::kTsubame2;
  if (lower == "tsubame-3" || lower == "tsubame3" || lower == "t3") return Machine::kTsubame3;
  return Error(ErrorKind::kNotFound, "unknown machine: '" + std::string(name) + "'");
}

const MachineSpec& tsubame2_spec() {
  static const MachineSpec spec = [] {
    MachineSpec s;
    s.machine = Machine::kTsubame2;
    s.name = "Tsubame-2";
    s.node_count = 1408;
    s.gpus_per_node = 3;
    s.cpus_per_node = 2;
    s.nodes_per_rack = 32;  // 44 racks of thin nodes
    s.rpeak_pflops = 2.3;
    s.power_mw = 1.4;
    s.log_start = TimePoint::from_civil({2012, 1, 7, 0, 0, 0});
    s.log_end = TimePoint::from_civil({2013, 8, 1, 0, 0, 0});
    return s;
  }();
  return spec;
}

const MachineSpec& tsubame3_spec() {
  static const MachineSpec spec = [] {
    MachineSpec s;
    s.machine = Machine::kTsubame3;
    s.name = "Tsubame-3";
    s.node_count = 540;
    s.gpus_per_node = 4;
    s.cpus_per_node = 2;
    s.nodes_per_rack = 36;  // 15 racks of SXM2 nodes
    s.rpeak_pflops = 12.1;
    s.power_mw = 0.792;
    s.log_start = TimePoint::from_civil({2017, 5, 9, 0, 0, 0});
    s.log_end = TimePoint::from_civil({2020, 2, 22, 0, 0, 0});
    return s;
  }();
  return spec;
}

const MachineSpec& spec_for(Machine machine) {
  return machine == Machine::kTsubame2 ? tsubame2_spec() : tsubame3_spec();
}

}  // namespace tsufail::data
