#include "data/category.h"

#include <array>
#include <cctype>
#include <string>
#include <vector>

namespace tsufail::data {
namespace {

struct CategoryInfo {
  Category category;
  std::string_view name;         // canonical (Table II) spelling
  FailureClass cls;
  bool on_tsubame2;
  bool on_tsubame3;
  bool gpu_related;
};

constexpr std::array<CategoryInfo, 29> kCategoryTable = {{
    // category, name, class, T2, T3, gpu
    {Category::kBoot, "Boot", FailureClass::kSoftware, true, false, false},
    {Category::kCpu, "CPU", FailureClass::kHardware, true, true, false},
    {Category::kDisk, "Disk", FailureClass::kHardware, true, true, false},
    {Category::kDown, "Down", FailureClass::kUnknown, true, false, false},
    {Category::kFan, "FAN", FailureClass::kHardware, true, false, false},
    {Category::kGpu, "GPU", FailureClass::kHardware, true, true, true},
    {Category::kInfiniband, "IB", FailureClass::kHardware, true, false, false},
    {Category::kMemory, "Memory", FailureClass::kHardware, true, true, false},
    {Category::kNetwork, "Network", FailureClass::kHardware, true, false, false},
    {Category::kOtherHw, "OtherHW", FailureClass::kHardware, true, false, false},
    {Category::kOtherSw, "OtherSW", FailureClass::kSoftware, true, false, false},
    {Category::kPbs, "PBS", FailureClass::kSoftware, true, false, false},
    {Category::kPsu, "PSU", FailureClass::kHardware, true, false, false},
    {Category::kRack, "Rack", FailureClass::kHardware, true, false, false},
    {Category::kSsd, "SSD", FailureClass::kHardware, true, false, false},
    {Category::kSystemBoard, "System Board", FailureClass::kHardware, true, false, false},
    {Category::kVm, "VM", FailureClass::kSoftware, true, false, false},
    {Category::kCrc, "CRC", FailureClass::kHardware, false, true, false},
    {Category::kGpuDriver, "GPUDriver", FailureClass::kSoftware, false, true, true},
    {Category::kIpMotherboard, "IP Motherboard", FailureClass::kHardware, false, true, false},
    {Category::kLedFrontPanel, "Led Front Panel", FailureClass::kHardware, false, true, false},
    {Category::kLustre, "Lustre", FailureClass::kSoftware, false, true, false},
    {Category::kOmniPath, "Omni-Path", FailureClass::kHardware, false, true, false},
    {Category::kPowerBoard, "Power-Board", FailureClass::kHardware, false, true, false},
    {Category::kRibbonCable, "Ribbon Cable", FailureClass::kHardware, false, true, false},
    {Category::kSoftware, "Software", FailureClass::kSoftware, false, true, false},
    {Category::kSxm2Cable, "SXM2_Cable", FailureClass::kHardware, false, true, false},
    {Category::kSxm2Board, "SXM2-Board", FailureClass::kHardware, false, true, false},
    {Category::kUnknown, "Unknown", FailureClass::kUnknown, false, true, false},
}};

const CategoryInfo& info(Category category) noexcept {
  for (const auto& row : kCategoryTable) {
    if (row.category == category) return row;
  }
  return kCategoryTable.back();  // unreachable for valid enum values
}

/// Normalizes a name for matching: lowercase alphanumerics only.
std::string normalize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::string_view to_string(Category category) noexcept { return info(category).name; }

std::string_view to_string(FailureClass cls) noexcept {
  switch (cls) {
    case FailureClass::kHardware: return "hardware";
    case FailureClass::kSoftware: return "software";
    case FailureClass::kUnknown: return "unknown";
  }
  return "unknown";
}

FailureClass classify(Category category) noexcept { return info(category).cls; }

bool is_gpu_related(Category category) noexcept { return info(category).gpu_related; }

bool valid_for(Category category, Machine machine) noexcept {
  const auto& row = info(category);
  return machine == Machine::kTsubame2 ? row.on_tsubame2 : row.on_tsubame3;
}

std::span<const Category> categories_for(Machine machine) noexcept {
  static const auto t2 = [] {
    std::vector<Category> v;
    for (const auto& row : kCategoryTable)
      if (row.on_tsubame2) v.push_back(row.category);
    return v;
  }();
  static const auto t3 = [] {
    std::vector<Category> v;
    for (const auto& row : kCategoryTable)
      if (row.on_tsubame3) v.push_back(row.category);
    return v;
  }();
  return machine == Machine::kTsubame2 ? std::span<const Category>(t2)
                                       : std::span<const Category>(t3);
}

Result<Category> parse_category(std::string_view name) {
  const std::string key = normalize(name);
  if (key.empty())
    return Error(ErrorKind::kParse, "empty category name");
  for (const auto& row : kCategoryTable) {
    if (normalize(row.name) == key) return row.category;
  }
  // Aliases seen in raw logs and in the paper's prose.
  if (key == "infiniband") return Category::kInfiniband;
  if (key == "fan") return Category::kFan;
  if (key == "powersupplyunit") return Category::kPsu;
  if (key == "portablebatchsystem") return Category::kPbs;
  if (key == "virtualmachine") return Category::kVm;
  if (key == "systemboard") return Category::kSystemBoard;
  if (key == "omnipath") return Category::kOmniPath;
  if (key == "powerboard") return Category::kPowerBoard;
  if (key == "sxm2cable") return Category::kSxm2Cable;
  if (key == "sxm2board") return Category::kSxm2Board;
  if (key == "ipmotherboard" || key == "ip") return Category::kIpMotherboard;
  if (key == "ledfrontpanel") return Category::kLedFrontPanel;
  if (key == "cyclicredundancycheck") return Category::kCrc;
  if (key == "gpudriverrelated" || key == "driver") return Category::kGpuDriver;
  return Error(ErrorKind::kNotFound, "unknown failure category: '" + std::string(name) + "'");
}

}  // namespace tsufail::data
