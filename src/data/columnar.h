// ColumnarSnapshot: the on-disk/binary form of a FailureLog (+ optional
// LogIndex) as sorted column arrays behind a versioned, checksummed,
// mmap-able header.
//
// Motivation: every entry point used to re-parse CSV per run.  A packed
// snapshot turns "load a tenant's history" into an mmap + checksum sweep
// + O(n) materialization — no tokenizing, no timestamp parsing, no
// re-sort (the columns are stored in the log's canonical time order) —
// and, when the index sections are present, LogIndex adoption is
// zero-copy: its hours/TTR/arena spans point straight into the mapped
// bytes.  bench_pack gates the >= 20x load-vs-parse bar on the Tsubame
// presets; the differential oracle's snapshot_roundtrip check and the
// golden byte gates pin pack -> load -> analyze == parse -> analyze.
//
// Layout (version 1, all integers in host byte order — see below):
//
//   header   48 B   magic "TSNAPCOL", format version, endianness tag
//                   0x01020304, record count, section count, flags
//                   (bit 0 = index sections present), 64-bit xor-multiply checksum
//                   of the section table
//   table    32 B x section count   {id, reserved, offset, byte size,
//                   64-bit xor-multiply checksum of the section bytes}
//   sections ...    each 8-byte aligned, zero-padded between
//
// Sections (fixed ids; unknown ids are rejected — the format is
// versioned, not self-describing):
//
//   spec           serialized MachineSpec (machine, geometry, Rpeak,
//                  power, log window, name) — snapshots of scaled /
//                  simulated machines round-trip exactly
//   times          i64[n]   seconds since epoch, ascending
//   nodes          i32[n]
//   categories     u8[n]
//   ttr            f64[n]   (doubles as the index's TTR column)
//   slot_offsets   u32[n+1] CSR offsets into slot_data
//   slot_data      i32[sum] GPU slots, record-major
//   locus_offsets  u32[n+1] CSR offsets into locus_data
//   locus_data     bytes    root-locus strings, record-major
//   hours          f64[n]            ┐
//   arena          u32[a]            │ index sections, present iff
//   ranges         u32 pairs         │ flags bit 0 (see LogIndex)
//   node_groups    {u32 node,begin,count}[g] ┘
//
// Versioning / endianness rules: `version` bumps on any layout change —
// there are no minor/feature bits, a reader accepts exactly the versions
// it knows.  Integers are written in host byte order and the header
// carries the 0x01020304 tag; a foreign-endian file is *rejected*, not
// swapped (the zero-copy contract is pointer casts into the mapped
// bytes, and the fleets this serves are homogeneous little-endian).
// Every section is independently checksummed (64-bit xor-multiply) and verified at
// load, so truncation, bit rot, and torn writes fail loudly before any
// analysis sees a byte.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/log.h"
#include "data/log_index.h"

namespace tsufail::data {

class ColumnarSnapshot;

/// How snapshots are passed around: immutable and refcounted (a mapped
/// snapshot backs zero-copy LogIndex spans, so its lifetime must cover
/// every reader's).
using ColumnarSnapshotPtr = std::shared_ptr<const ColumnarSnapshot>;

/// How ColumnarSnapshot::open brings the bytes in.
enum class SnapshotLoadMode {
  kAuto,    ///< mmap where the platform supports it, else streamed read
  kMap,     ///< mmap only; error if unavailable
  kStream,  ///< read into an owned (aligned) buffer
};

/// Serializes `records` (which must be time-sorted — the FailureLog
/// invariant) and, when non-null, `index` into one snapshot byte buffer.
/// Precondition (REQUIREd): index->size() == records.size().
std::string pack_columnar(const MachineSpec& spec, std::span<const FailureRecord> records,
                          const LogIndex* index = nullptr);

/// Packs a whole log; include the index to make loads adopt it zero-copy.
std::string pack_columnar(const FailureLog& log, const LogIndex* index = nullptr);

/// Writes `bytes` to `path` atomically (temp file + rename), so readers
/// never observe a torn snapshot.  Errors: kIo.
Result<void> write_columnar_file(const std::string& path, std::string_view bytes);

class ColumnarSnapshot {
 public:
  static constexpr std::string_view kMagic = "TSNAPCOL";
  static constexpr std::uint32_t kFormatVersion = 1;

  /// True iff `prefix` (>= 8 bytes of a file) starts with the snapshot
  /// magic — the cheap sniff the CLI uses to accept .tsnap and .csv
  /// interchangeably.
  static bool sniff(std::string_view prefix) noexcept;

  /// Loads and fully validates a snapshot file: magic/version/endianness,
  /// section table bounds + alignment, per-section checksums, and the
  /// structural invariants of every column (ascending times, node ids
  /// within the spec, category bytes within the vocabulary, monotone CSR
  /// offsets, index ranges within the arena).  kAuto maps the file where
  /// mmap exists and falls back to a streamed read.
  static Result<ColumnarSnapshotPtr> open(const std::string& path,
                                          SnapshotLoadMode mode = SnapshotLoadMode::kAuto);

  /// Same validation over an in-memory buffer (copied into aligned owned
  /// storage) — the pack-side of tests and the oracle's roundtrip check.
  static Result<ColumnarSnapshotPtr> from_bytes(std::string_view bytes);

  const MachineSpec& spec() const noexcept { return spec_; }
  std::size_t size() const noexcept { return record_count_; }
  bool empty() const noexcept { return record_count_ == 0; }
  /// True when the index sections are present (pack saw a LogIndex).
  bool has_index() const noexcept { return has_index_; }
  /// True when the views are zero-copy over an mmap (vs an owned buffer).
  bool mapped() const noexcept { return mapped_; }
  std::size_t byte_size() const noexcept { return byte_size_; }

  // --- Zero-copy column views (valid while this snapshot lives) -------
  std::span<const std::int64_t> times() const noexcept { return times_; }
  std::span<const std::int32_t> nodes() const noexcept { return nodes_; }
  std::span<const std::uint8_t> categories() const noexcept { return categories_; }
  std::span<const double> ttr() const noexcept { return ttr_; }
  /// GPU slots of record `i` (CSR row; usually empty).
  std::span<const std::int32_t> gpu_slots_of(std::uint32_t i) const noexcept {
    return {slot_data_.data() + slot_offsets_[i], slot_offsets_[i + 1] - slot_offsets_[i]};
  }
  /// Root-locus label of record `i` (CSR row; usually empty).
  std::string_view root_locus_of(std::uint32_t i) const noexcept {
    return locus_data_.substr(locus_offsets_[i], locus_offsets_[i + 1] - locus_offsets_[i]);
  }

  // --- Index sections (empty spans unless has_index()) ----------------
  std::span<const double> hours() const noexcept { return hours_; }
  std::span<const std::uint32_t> index_arena() const noexcept { return arena_; }
  /// The flat {begin, count} pair stream in LogIndex's canonical group
  /// order: categories, classes, months 1..12, gpu-attributed, multi-GPU.
  std::span<const std::uint32_t> index_ranges() const noexcept { return ranges_; }
  /// Per-node groups, ascending by node id (begin/count into the arena).
  std::span<const LogIndex::NodeGroup> node_groups() const noexcept { return node_groups_; }

  /// Materializes record `i` (allocates for slots/locus — prefer the
  /// column views in hot paths).
  FailureRecord record_at(std::uint32_t i) const;

  /// Materializes the whole log.  The records were validated when the
  /// source log was created and the columns re-validated structurally at
  /// load, so this skips create()'s re-sort + per-record checks (the
  /// columns are stored in canonical order; order is preserved exactly,
  /// ties included).
  FailureLog to_log() const;

  ~ColumnarSnapshot();
  ColumnarSnapshot(const ColumnarSnapshot&) = delete;
  ColumnarSnapshot& operator=(const ColumnarSnapshot&) = delete;

 private:
  ColumnarSnapshot() = default;

  /// Parses + validates `data_`/`byte_size_`; fills every view.
  Result<void> parse();

  // Backing storage: exactly one of these is active.
  std::vector<std::uint64_t> owned_;  ///< streamed read (8-byte aligned)
  void* map_addr_ = nullptr;          ///< mmap base (unmapped in dtor)
  std::size_t map_len_ = 0;

  const char* data_ = nullptr;
  std::size_t byte_size_ = 0;
  bool mapped_ = false;

  MachineSpec spec_;
  std::size_t record_count_ = 0;
  bool has_index_ = false;

  std::span<const std::int64_t> times_;
  std::span<const std::int32_t> nodes_;
  std::span<const std::uint8_t> categories_;
  std::span<const double> ttr_;
  std::span<const std::uint32_t> slot_offsets_;
  std::span<const std::int32_t> slot_data_;
  std::span<const std::uint32_t> locus_offsets_;
  std::string_view locus_data_;
  std::span<const double> hours_;
  std::span<const std::uint32_t> arena_;
  std::span<const std::uint32_t> ranges_;
  std::vector<LogIndex::NodeGroup> node_groups_;  ///< parsed copy (small)
};

}  // namespace tsufail::data
