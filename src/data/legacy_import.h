// Importer for the "legacy v1" operator log format.
//
// Operations teams rarely start from a clean schema; this adapter ingests
// a semicolon-separated format modeled on hand-maintained repair sheets
// and converts it to FailureRecords:
//
//   #legacy-v1 Tsubame-3            <- header: format tag + machine
//   # free-form comment lines
//   07/05/2018;13:45;r02n11;GPU;1.25;G0+G3;fell off the bus
//   ^date D/M/Y ^time  ^node  ^cat  ^days  ^slots ^note
//
// Differences from the canonical CSV handled here: semicolon separators,
// day-first dates, rack-qualified node names (rNNnMM -> rack * rack_size
// + index), downtime in fractional DAYS, "G"-prefixed "+"-joined slot
// lists ("-" = none), and a free-text note that becomes the root locus
// for software-class records.
#pragma once

#include <string>
#include <string_view>

#include "data/log_io.h"

namespace tsufail::data {

/// Parses legacy-v1 text.  Lenient policy collects bad lines as row
/// errors; strict fails on the first.  Errors: missing/unknown header,
/// or (strict) any malformed line.
Result<ReadReport> import_legacy_v1(std::string_view text,
                                    ReadPolicy policy = ReadPolicy::kLenient);

/// Reads a legacy-v1 file from disk.
Result<ReadReport> import_legacy_v1_file(const std::string& path,
                                         ReadPolicy policy = ReadPolicy::kLenient);

/// Parses an "rNNnMM" node name against a machine's rack layout.
/// Errors: malformed name or out-of-range rack/index.
Result<int> parse_legacy_node_name(std::string_view name, const MachineSpec& spec);

/// Serializes a log INTO the legacy format (round-trip support for teams
/// still consuming the old sheets).
std::string export_legacy_v1(const FailureLog& log);

}  // namespace tsufail::data
