// On-disk CSV schema for failure logs.
//
// Schema (header required, column order free, names case-insensitive):
//   machine     "Tsubame-2" | "Tsubame-3"   (must be uniform per file)
//   timestamp   "YYYY-MM-DD HH:MM:SS" (other formats per parse_time)
//   node        0-based integer node index
//   category    Table II name (aliases accepted per parse_category)
//   ttr_hours   non-negative decimal hours to recovery
//   gpu_slots   ""  or "|"-separated 0-based slot list, e.g. "0|2"
//   root_locus  free text; empty unless a software root locus was recorded
//
// Reading is lenient by policy choice: structurally broken rows are
// collected into `ReadReport::row_errors` and the rest of the log loads.
// A strict mode turns any row error into a load failure.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "data/log.h"
#include "util/error.h"

namespace tsufail::data {

struct RowError {
  std::size_t line_number = 0;
  std::string message;
};

struct ReadReport {
  FailureLog log;
  std::vector<RowError> row_errors;  ///< rows skipped under lenient policy
};

enum class ReadPolicy {
  kLenient,  ///< skip malformed rows, report them
  kStrict,   ///< any malformed row fails the load
};

/// Parses a CSV log document from text.
Result<ReadReport> read_log_csv(std::string_view text, ReadPolicy policy = ReadPolicy::kLenient);

/// Reads a CSV log from a file.
Result<ReadReport> read_log_file(const std::string& path,
                                 ReadPolicy policy = ReadPolicy::kLenient);

/// Serializes a log to CSV text (canonical column order and formats;
/// read_log_csv(write_log_csv(log)) round-trips exactly to the second).
std::string write_log_csv(const FailureLog& log);

/// Writes a log to a file.
Result<void> write_log_file(const std::string& path, const FailureLog& log);

/// Parses one headerless data row in the canonical column order
/// (machine,timestamp,node,category,ttr_hours,gpu_slots,root_locus) —
/// the shape write_log_csv emits row-for-row and the serve ingest
/// protocol accepts one event at a time.  RFC-4180 quoting is honored;
/// embedded newlines are not (a row is one line by definition here).
Result<std::pair<Machine, FailureRecord>> parse_record_row(std::string_view row);

/// Formats a slot list as the on-disk "0|2" form.
std::string format_gpu_slots(const std::vector<int>& slots);

/// Parses the "0|2" slot-list form ("" -> empty).
Result<std::vector<int>> parse_gpu_slots(std::string_view text);

}  // namespace tsufail::data
