// Failure-category taxonomy (Table II of the paper).
//
// The two systems report different category vocabularies; we model the
// union as one enum so cross-system analyses (e.g. "GPU MTBF on both
// machines") can compare like with like, and tag each category with the
// machine(s) it appears on plus its hardware/software classification.
#pragma once

#include <span>
#include <string_view>

#include "data/machine.h"
#include "util/error.h"

namespace tsufail::data {

/// Union of the Tsubame-2 and Tsubame-3 failure categories.
enum class Category {
  // --- Tsubame-2 vocabulary ---
  kBoot,
  kCpu,          // shared with Tsubame-3
  kDisk,         // shared with Tsubame-3
  kDown,
  kFan,
  kGpu,          // shared with Tsubame-3
  kInfiniband,
  kMemory,       // shared with Tsubame-3
  kNetwork,
  kOtherHw,
  kOtherSw,
  kPbs,
  kPsu,
  kRack,
  kSsd,
  kSystemBoard,
  kVm,
  // --- Tsubame-3 vocabulary ---
  kCrc,
  kGpuDriver,
  kIpMotherboard,
  kLedFrontPanel,
  kLustre,
  kOmniPath,
  kPowerBoard,
  kRibbonCable,
  kSoftware,
  kSxm2Cable,
  kSxm2Board,
  kUnknown,
};

/// Broad failure class used throughout the paper's hardware-vs-software
/// comparisons.
enum class FailureClass {
  kHardware,
  kSoftware,
  kUnknown,
};

/// Canonical display name, matching the paper's Table II spelling.
std::string_view to_string(Category category) noexcept;

/// "hardware" / "software" / "unknown".
std::string_view to_string(FailureClass cls) noexcept;

/// Hardware/software classification of a category.
FailureClass classify(Category category) noexcept;

/// True iff the category is GPU-related (GPU hardware or GPU driver) —
/// the paper's GPU-failure analyses (Figures 5, 8; Table III) select these.
bool is_gpu_related(Category category) noexcept;

/// True iff this category is part of `machine`'s reported vocabulary.
bool valid_for(Category category, Machine machine) noexcept;

/// All categories reported on the given machine, in Table II order.
std::span<const Category> categories_for(Machine machine) noexcept;

/// Parses a category name; accepts canonical names plus the common log
/// aliases ("IB", "PBS", "PSU", "System Board", "Power-Board", ...).
/// Matching is case-insensitive and ignores spaces, dashes, underscores.
Result<Category> parse_category(std::string_view name);

}  // namespace tsufail::data
