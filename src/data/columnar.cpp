#include "data/columnar.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#define TSUFAIL_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TSUFAIL_HAS_MMAP 0
#endif

namespace tsufail::data {
namespace {

// --- Format constants --------------------------------------------------

constexpr std::size_t kHeaderBytes = 48;
constexpr std::size_t kTableEntryBytes = 32;
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kFlagHasIndex = 1u << 0;
constexpr std::size_t kMaxSections = 64;       // sanity bound, not a format limit
constexpr std::size_t kMaxNameBytes = 4096;    // sanity bound on spec name

enum SectionId : std::uint32_t {
  kSecSpec = 1,
  kSecTimes = 2,
  kSecNodes = 3,
  kSecCategories = 4,
  kSecTtr = 5,
  kSecSlotOffsets = 6,
  kSecSlotData = 7,
  kSecLocusOffsets = 8,
  kSecLocusData = 9,
  kSecHours = 10,
  kSecArena = 11,
  kSecRanges = 12,
  kSecNodeGroups = 13,
};
constexpr std::uint32_t kMaxSectionId = kSecNodeGroups;

constexpr std::size_t kCategoryCount = static_cast<std::size_t>(Category::kUnknown) + 1;
constexpr std::size_t kClassCount = static_cast<std::size_t>(FailureClass::kUnknown) + 1;
/// Group count in the flat ranges stream: categories + classes +
/// months + gpu-attributed + multi-GPU (node groups travel separately).
constexpr std::size_t kRangeGroups = kCategoryCount + kClassCount + 12 + 2;

/// Section checksum: xor-multiply over 8-byte words, four independent
/// lanes so the multiply latency stays off the critical path (the
/// byte-serial FNV it replaced cost more than the rest of the load path
/// combined).  Integrity detection only — not cryptographic, and the
/// value is part of format v1: changing this function is a format bump.
std::uint64_t section_checksum(const char* data, std::size_t size) noexcept {
  constexpr std::uint64_t kMul = 0x9E3779B97F4A7C15ull;  // 2^64 / phi
  std::uint64_t lane[4] = {0xcbf29ce484222325ull ^ size, 0x84222325cbf29ce4ull,
                           0x100000001b3ull, 0xc2b2ae3d27d4eb4full};
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    for (int w = 0; w < 4; ++w) {
      std::uint64_t word;
      std::memcpy(&word, data + i + 8 * w, sizeof word);
      lane[w] = (lane[w] ^ word) * kMul;
    }
  }
  for (int w = 0; i + 8 <= size; i += 8, w = (w + 1) & 3) {
    std::uint64_t word;
    std::memcpy(&word, data + i, sizeof word);
    lane[w] = (lane[w] ^ word) * kMul;
  }
  if (i < size) {  // tail < 8 bytes, zero-padded into one word
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, size - i);
    lane[0] = (lane[0] ^ word ^ (size - i)) * kMul;
  }
  std::uint64_t hash = lane[0];
  for (int w = 1; w < 4; ++w) hash = (hash ^ lane[w]) * kMul;
  hash ^= hash >> 29;  // finalizer (splitmix64 shape)
  hash *= 0xbf58476d1ce4e5b9ull;
  hash ^= hash >> 32;
  return hash;
}

// --- Little serialization helpers (host byte order throughout) ---------

void append_raw(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void append_pod(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_raw(out, &value, sizeof value);
}

template <typename T>
void append_vec(std::string& out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_raw(out, values.data(), values.size() * sizeof(T));
}

template <typename T>
T read_pod(const char* data) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, data, sizeof value);
  return value;
}

std::string pack_spec(const MachineSpec& spec) {
  std::string out;
  append_pod(out, static_cast<std::uint32_t>(spec.machine));
  append_pod(out, static_cast<std::int32_t>(spec.node_count));
  append_pod(out, static_cast<std::int32_t>(spec.gpus_per_node));
  append_pod(out, static_cast<std::int32_t>(spec.cpus_per_node));
  append_pod(out, static_cast<std::int32_t>(spec.nodes_per_rack));
  append_pod(out, spec.rpeak_pflops);
  append_pod(out, spec.power_mw);
  append_pod(out, spec.log_start.seconds_since_epoch());
  append_pod(out, spec.log_end.seconds_since_epoch());
  append_pod(out, static_cast<std::uint32_t>(spec.name.size()));
  append_raw(out, spec.name.data(), spec.name.size());
  return out;
}

Result<MachineSpec> parse_spec(const char* data, std::size_t size) {
  constexpr std::size_t kFixed = 4 + 4 * 4 + 8 * 2 + 8 * 2 + 4;
  if (size < kFixed)
    return Error(ErrorKind::kParse, "snapshot spec section truncated");
  MachineSpec spec;
  const char* p = data;
  const auto machine = read_pod<std::uint32_t>(p);
  p += 4;
  if (machine > static_cast<std::uint32_t>(Machine::kTsubame3))
    return Error(ErrorKind::kParse,
                 "snapshot spec names unknown machine id " + std::to_string(machine));
  spec.machine = static_cast<Machine>(machine);
  spec.node_count = read_pod<std::int32_t>(p);
  p += 4;
  spec.gpus_per_node = read_pod<std::int32_t>(p);
  p += 4;
  spec.cpus_per_node = read_pod<std::int32_t>(p);
  p += 4;
  spec.nodes_per_rack = read_pod<std::int32_t>(p);
  p += 4;
  spec.rpeak_pflops = read_pod<double>(p);
  p += 8;
  spec.power_mw = read_pod<double>(p);
  p += 8;
  spec.log_start = TimePoint(read_pod<std::int64_t>(p));
  p += 8;
  spec.log_end = TimePoint(read_pod<std::int64_t>(p));
  p += 8;
  const auto name_len = read_pod<std::uint32_t>(p);
  p += 4;
  if (name_len > kMaxNameBytes || kFixed + name_len != size)
    return Error(ErrorKind::kParse, "snapshot spec name length disagrees with section size");
  spec.name.assign(p, name_len);
  if (spec.node_count < 0 || spec.gpus_per_node < 0 || spec.cpus_per_node < 0 ||
      spec.nodes_per_rack < 0)
    return Error(ErrorKind::kValidation, "snapshot spec has negative machine geometry");
  return spec;
}

struct SectionOut {
  std::uint32_t id = 0;
  std::string bytes;
};

/// Serializes the index's derived arrays through its public span API, so
/// the format stays decoupled from LogIndex's private layout.  The walk
/// order is the canonical group order the reader (LogIndex::from_columnar)
/// re-assumes: categories, classes, months 1..12, gpu-attributed,
/// multi-GPU, then the per-node groups.
void pack_index_sections(const LogIndex& index, std::vector<SectionOut>& sections) {
  std::vector<std::uint32_t> arena;
  std::vector<std::uint32_t> ranges;
  ranges.reserve(kRangeGroups * 2);
  const auto append_group = [&](std::span<const std::uint32_t> positions) {
    ranges.push_back(static_cast<std::uint32_t>(arena.size()));
    ranges.push_back(static_cast<std::uint32_t>(positions.size()));
    arena.insert(arena.end(), positions.begin(), positions.end());
  };
  for (std::size_t c = 0; c < kCategoryCount; ++c)
    append_group(index.by_category(static_cast<Category>(c)));
  for (std::size_t c = 0; c < kClassCount; ++c)
    append_group(index.by_class(static_cast<FailureClass>(c)));
  for (int m = 1; m <= 12; ++m) append_group(index.by_month(m));
  append_group(index.gpu_attributed());
  append_group(index.multi_gpu());

  std::vector<std::uint32_t> groups;
  groups.reserve(index.nodes().size() * 3);
  for (const LogIndex::NodeGroup& group : index.nodes()) {
    groups.push_back(static_cast<std::uint32_t>(group.node));
    groups.push_back(static_cast<std::uint32_t>(arena.size()));
    groups.push_back(group.count);
    const auto positions = index.positions_of(group);
    arena.insert(arena.end(), positions.begin(), positions.end());
  }

  const auto hours = index.hours();
  const auto ttr_span = index.ttr();
  (void)ttr_span;  // shared with the record ttr section; nothing extra to write
  SectionOut hours_out{kSecHours, {}};
  append_raw(hours_out.bytes, hours.data(), hours.size() * sizeof(double));
  sections.push_back(std::move(hours_out));
  SectionOut arena_out{kSecArena, {}};
  append_vec(arena_out.bytes, arena);
  sections.push_back(std::move(arena_out));
  SectionOut ranges_out{kSecRanges, {}};
  append_vec(ranges_out.bytes, ranges);
  sections.push_back(std::move(ranges_out));
  SectionOut groups_out{kSecNodeGroups, {}};
  append_vec(groups_out.bytes, groups);
  sections.push_back(std::move(groups_out));
}

constexpr std::size_t align8(std::size_t offset) noexcept { return (offset + 7) & ~std::size_t{7}; }

}  // namespace

std::string pack_columnar(const MachineSpec& spec, std::span<const FailureRecord> records,
                          const LogIndex* index) {
  TSUFAIL_REQUIRE(index == nullptr || index->size() == records.size(),
                  "pack_columnar: index and records disagree on size");
  OBS_SPAN("columnar.pack");
  static obs::Counter packs = obs::counter("columnar.packs");
  packs.add();

  const std::size_t n = records.size();
  std::vector<SectionOut> sections;
  sections.reserve(13);
  sections.push_back({kSecSpec, pack_spec(spec)});

  // Record columns, stored in the log's canonical (time-sorted) order so
  // loads need no re-sort and duplicate-time ordering round-trips exactly.
  std::vector<std::int64_t> times(n);
  std::vector<std::int32_t> nodes(n);
  std::vector<std::uint8_t> categories(n);
  std::vector<double> ttr(n);
  std::vector<std::uint32_t> slot_offsets(n + 1, 0);
  std::vector<std::int32_t> slot_data;
  std::vector<std::uint32_t> locus_offsets(n + 1, 0);
  std::string locus_data;
  for (std::size_t i = 0; i < n; ++i) {
    const FailureRecord& record = records[i];
    times[i] = record.time.seconds_since_epoch();
    nodes[i] = record.node;
    categories[i] = static_cast<std::uint8_t>(record.category);
    ttr[i] = record.ttr_hours;
    slot_data.insert(slot_data.end(), record.gpu_slots.begin(), record.gpu_slots.end());
    slot_offsets[i + 1] = static_cast<std::uint32_t>(slot_data.size());
    locus_data.append(record.root_locus);
    locus_offsets[i + 1] = static_cast<std::uint32_t>(locus_data.size());
  }
  const auto add_vec = [&sections](std::uint32_t id, const auto& values) {
    SectionOut out{id, {}};
    append_vec(out.bytes, values);
    sections.push_back(std::move(out));
  };
  add_vec(kSecTimes, times);
  add_vec(kSecNodes, nodes);
  add_vec(kSecCategories, categories);
  add_vec(kSecTtr, ttr);
  add_vec(kSecSlotOffsets, slot_offsets);
  add_vec(kSecSlotData, slot_data);
  add_vec(kSecLocusOffsets, locus_offsets);
  sections.push_back({kSecLocusData, std::move(locus_data)});

  if (index != nullptr) pack_index_sections(*index, sections);

  // Assemble: header, table (checksummed), then 8-aligned payloads.
  const std::size_t table_bytes = sections.size() * kTableEntryBytes;
  std::string table;
  table.reserve(table_bytes);
  std::size_t offset = kHeaderBytes + table_bytes;  // both multiples of 8
  for (const SectionOut& section : sections) {
    append_pod(table, section.id);
    append_pod(table, std::uint32_t{0});
    append_pod(table, static_cast<std::uint64_t>(offset));
    append_pod(table, static_cast<std::uint64_t>(section.bytes.size()));
    append_pod(table, section_checksum(section.bytes.data(), section.bytes.size()));
    offset = align8(offset + section.bytes.size());
  }

  std::string out;
  out.reserve(offset);
  append_raw(out, ColumnarSnapshot::kMagic.data(), ColumnarSnapshot::kMagic.size());
  append_pod(out, ColumnarSnapshot::kFormatVersion);
  append_pod(out, kEndianTag);
  append_pod(out, static_cast<std::uint64_t>(n));
  append_pod(out, static_cast<std::uint32_t>(sections.size()));
  append_pod(out, index != nullptr ? kFlagHasIndex : std::uint32_t{0});
  append_pod(out, section_checksum(table.data(), table.size()));
  append_pod(out, std::uint64_t{0});  // reserved
  out += table;
  for (const SectionOut& section : sections) {
    out += section.bytes;
    out.append(align8(out.size()) - out.size(), '\0');
  }
  return out;
}

std::string pack_columnar(const FailureLog& log, const LogIndex* index) {
  return pack_columnar(log.spec(), log.records(), index);
}

Result<void> write_columnar_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return Error(ErrorKind::kIo, "cannot open '" + tmp + "' for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Error(ErrorKind::kIo, "short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Error(ErrorKind::kIo, "cannot rename '" + tmp + "' to '" + path + "'");
  }
  return {};
}

// --- Loading -----------------------------------------------------------

bool ColumnarSnapshot::sniff(std::string_view prefix) noexcept {
  return prefix.size() >= kMagic.size() && prefix.substr(0, kMagic.size()) == kMagic;
}

ColumnarSnapshot::~ColumnarSnapshot() {
#if TSUFAIL_HAS_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
#endif
}

Result<ColumnarSnapshotPtr> ColumnarSnapshot::from_bytes(std::string_view bytes) {
  std::shared_ptr<ColumnarSnapshot> snapshot(new ColumnarSnapshot());
  // Owned storage is a word vector so the base stays 8-byte aligned and
  // the zero-copy pointer casts below are valid for every column type.
  snapshot->owned_.resize((bytes.size() + 7) / 8, 0);
  std::memcpy(snapshot->owned_.data(), bytes.data(), bytes.size());
  snapshot->data_ = reinterpret_cast<const char*>(snapshot->owned_.data());
  snapshot->byte_size_ = bytes.size();
  if (auto parsed = snapshot->parse(); !parsed.ok()) return parsed.error();
  return ColumnarSnapshotPtr(std::move(snapshot));
}

Result<ColumnarSnapshotPtr> ColumnarSnapshot::open(const std::string& path,
                                                   SnapshotLoadMode mode) {
  OBS_SPAN("columnar.open");
  static obs::Counter opens = obs::counter("columnar.opens");
  opens.add();
#if TSUFAIL_HAS_MMAP
  if (mode != SnapshotLoadMode::kStream) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size >= static_cast<off_t>(kHeaderBytes)) {
        const auto len = static_cast<std::size_t>(st.st_size);
        void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (addr != MAP_FAILED) {
          std::shared_ptr<ColumnarSnapshot> snapshot(new ColumnarSnapshot());
          snapshot->map_addr_ = addr;
          snapshot->map_len_ = len;
          snapshot->data_ = static_cast<const char*>(addr);
          snapshot->byte_size_ = len;
          snapshot->mapped_ = true;
          if (auto parsed = snapshot->parse(); !parsed.ok())
            return parsed.error().with_context("snapshot '" + path + "'");
          return ColumnarSnapshotPtr(std::move(snapshot));
        }
      } else {
        ::close(fd);
        return Error(ErrorKind::kParse,
                     "'" + path + "' is too small to be a columnar snapshot");
      }
    }
    if (mode == SnapshotLoadMode::kMap)
      return Error(ErrorKind::kIo, "cannot mmap snapshot '" + path + "'");
  }
#else
  if (mode == SnapshotLoadMode::kMap)
    return Error(ErrorKind::kIo, "mmap is unavailable on this platform");
#endif
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    return Error(ErrorKind::kIo, "cannot open snapshot '" + path + "'");
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::shared_ptr<ColumnarSnapshot> snapshot(new ColumnarSnapshot());
  snapshot->owned_.resize((size + 7) / 8, 0);
  if (!in.read(reinterpret_cast<char*>(snapshot->owned_.data()),
               static_cast<std::streamsize>(size)))
    return Error(ErrorKind::kIo, "cannot read snapshot '" + path + "'");
  snapshot->data_ = reinterpret_cast<const char*>(snapshot->owned_.data());
  snapshot->byte_size_ = size;
  if (auto parsed = snapshot->parse(); !parsed.ok())
    return parsed.error().with_context("snapshot '" + path + "'");
  return ColumnarSnapshotPtr(std::move(snapshot));
}

Result<void> ColumnarSnapshot::parse() {
  OBS_SPAN("columnar.parse");
  if (byte_size_ < kHeaderBytes || !sniff({data_, byte_size_}))
    return Error(ErrorKind::kParse, "not a columnar snapshot (bad magic)");
  const auto version = read_pod<std::uint32_t>(data_ + 8);
  if (version != kFormatVersion)
    return Error(ErrorKind::kParse, "unsupported snapshot format version " +
                                        std::to_string(version) + " (reader speaks " +
                                        std::to_string(kFormatVersion) + ")");
  if (read_pod<std::uint32_t>(data_ + 12) != kEndianTag)
    return Error(ErrorKind::kParse,
                 "snapshot was written on a foreign-endian machine; re-pack from CSV");
  const auto record_count = read_pod<std::uint64_t>(data_ + 16);
  const auto section_count = read_pod<std::uint32_t>(data_ + 24);
  const auto flags = read_pod<std::uint32_t>(data_ + 28);
  const auto table_checksum = read_pod<std::uint64_t>(data_ + 32);
  if (section_count == 0 || section_count > kMaxSections)
    return Error(ErrorKind::kParse, "implausible snapshot section count " +
                                        std::to_string(section_count));
  if (record_count > std::numeric_limits<std::uint32_t>::max())
    return Error(ErrorKind::kParse, "snapshot record count exceeds the u32 position space");
  const std::size_t table_bytes = section_count * kTableEntryBytes;
  if (byte_size_ < kHeaderBytes + table_bytes)
    return Error(ErrorKind::kParse, "snapshot truncated inside the section table");
  if (section_checksum(data_ + kHeaderBytes, table_bytes) != table_checksum)
    return Error(ErrorKind::kValidation, "snapshot section table checksum mismatch");

  record_count_ = static_cast<std::size_t>(record_count);
  has_index_ = (flags & kFlagHasIndex) != 0;
  const std::size_t n = record_count_;

  // Section table: bounds, alignment, uniqueness, checksums.
  struct SectionView {
    const char* data = nullptr;
    std::size_t size = 0;
    bool present = false;
  };
  std::array<SectionView, kMaxSectionId + 1> views{};
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const char* entry = data_ + kHeaderBytes + s * kTableEntryBytes;
    const auto id = read_pod<std::uint32_t>(entry);
    const auto offset = read_pod<std::uint64_t>(entry + 8);
    const auto size = read_pod<std::uint64_t>(entry + 16);
    const auto checksum = read_pod<std::uint64_t>(entry + 24);
    if (id == 0 || id > kMaxSectionId)
      return Error(ErrorKind::kParse, "snapshot carries unknown section id " +
                                          std::to_string(id) +
                                          " (format version mismatch?)");
    if (views[id].present)
      return Error(ErrorKind::kParse, "duplicate snapshot section id " + std::to_string(id));
    if (offset % 8 != 0 || offset > byte_size_ || size > byte_size_ - offset)
      return Error(ErrorKind::kParse, "snapshot section " + std::to_string(id) +
                                          " is out of bounds (truncated file?)");
    if (section_checksum(data_ + offset, static_cast<std::size_t>(size)) != checksum)
      return Error(ErrorKind::kValidation,
                   "snapshot section " + std::to_string(id) + " checksum mismatch");
    views[id] = {data_ + offset, static_cast<std::size_t>(size), true};
  }

  const auto require = [&views](std::uint32_t id, std::size_t bytes,
                                const char* what) -> Result<SectionView> {
    const SectionView& view = views[id];
    if (!view.present)
      return Error(ErrorKind::kParse, std::string("snapshot is missing the ") + what +
                                          " section");
    if (view.size != bytes)
      return Error(ErrorKind::kParse, std::string("snapshot ") + what +
                                          " section has the wrong size");
    return view;
  };
  const auto span_of = [](const SectionView& view, auto tag) {
    using T = decltype(tag);
    return std::span<const T>(reinterpret_cast<const T*>(view.data), view.size / sizeof(T));
  };

  // --- Record columns --------------------------------------------------
  const SectionView& spec_view = views[kSecSpec];
  if (!spec_view.present)
    return Error(ErrorKind::kParse, "snapshot is missing the spec section");
  auto spec = parse_spec(spec_view.data, spec_view.size);
  if (!spec.ok()) return spec.error();
  spec_ = std::move(spec).value();

  auto times = require(kSecTimes, n * 8, "times");
  if (!times.ok()) return times.error();
  times_ = span_of(times.value(), std::int64_t{});
  auto nodes = require(kSecNodes, n * 4, "nodes");
  if (!nodes.ok()) return nodes.error();
  nodes_ = span_of(nodes.value(), std::int32_t{});
  auto categories = require(kSecCategories, n, "categories");
  if (!categories.ok()) return categories.error();
  categories_ = span_of(categories.value(), std::uint8_t{});
  auto ttr = require(kSecTtr, n * 8, "ttr");
  if (!ttr.ok()) return ttr.error();
  ttr_ = span_of(ttr.value(), double{});

  auto slot_offsets = require(kSecSlotOffsets, (n + 1) * 4, "slot_offsets");
  if (!slot_offsets.ok()) return slot_offsets.error();
  slot_offsets_ = span_of(slot_offsets.value(), std::uint32_t{});
  if (!views[kSecSlotData].present)
    return Error(ErrorKind::kParse, "snapshot is missing the slot_data section");
  slot_data_ = span_of(views[kSecSlotData], std::int32_t{});
  auto locus_offsets = require(kSecLocusOffsets, (n + 1) * 4, "locus_offsets");
  if (!locus_offsets.ok()) return locus_offsets.error();
  locus_offsets_ = span_of(locus_offsets.value(), std::uint32_t{});
  if (!views[kSecLocusData].present)
    return Error(ErrorKind::kParse, "snapshot is missing the locus_data section");
  locus_data_ = std::string_view(views[kSecLocusData].data, views[kSecLocusData].size);

  // Structural invariants.  Checksums catch corruption; these checks make
  // even a hand-crafted snapshot memory-safe to analyze (no reference
  // through any offset can leave its section).
  for (std::size_t i = 1; i < n; ++i)
    if (times_[i] < times_[i - 1])
      return Error(ErrorKind::kValidation, "snapshot times are not sorted ascending");
  for (std::size_t i = 0; i < n; ++i) {
    if (nodes_[i] < 0 || nodes_[i] >= spec_.node_count)
      return Error(ErrorKind::kValidation,
                   "snapshot record " + std::to_string(i) + " names node " +
                       std::to_string(nodes_[i]) + " outside [0, " +
                       std::to_string(spec_.node_count) + ")");
    if (categories_[i] >= kCategoryCount)
      return Error(ErrorKind::kValidation,
                   "snapshot record " + std::to_string(i) + " has category byte " +
                       std::to_string(categories_[i]) + " outside the vocabulary");
    if (!(ttr_[i] >= 0.0) || ttr_[i] > 1e12)
      return Error(ErrorKind::kValidation,
                   "snapshot record " + std::to_string(i) + " has invalid TTR");
  }
  const auto check_csr = [n](std::span<const std::uint32_t> offsets, std::size_t data_size,
                             const char* what) -> Result<void> {
    if (offsets[0] != 0)
      return Error(ErrorKind::kValidation,
                   std::string("snapshot ") + what + " offsets do not start at 0");
    for (std::size_t i = 0; i < n; ++i)
      if (offsets[i + 1] < offsets[i])
        return Error(ErrorKind::kValidation,
                     std::string("snapshot ") + what + " offsets are not monotone");
    if (offsets[n] != data_size)
      return Error(ErrorKind::kValidation, std::string("snapshot ") + what +
                                               " offsets disagree with the data section");
    return {};
  };
  if (auto r = check_csr(slot_offsets_, slot_data_.size(), "slot"); !r.ok()) return r.error();
  if (auto r = check_csr(locus_offsets_, locus_data_.size(), "locus"); !r.ok())
    return r.error();
  for (std::size_t i = 0; i < n; ++i) {
    const auto slots = gpu_slots_of(static_cast<std::uint32_t>(i));
    for (std::size_t a = 0; a < slots.size(); ++a) {
      if (slots[a] < 0 || slots[a] >= spec_.gpus_per_node)
        return Error(ErrorKind::kValidation, "snapshot record " + std::to_string(i) +
                                                 " names a GPU slot outside the machine");
      for (std::size_t b = a + 1; b < slots.size(); ++b)
        if (slots[a] == slots[b])
          return Error(ErrorKind::kValidation, "snapshot record " + std::to_string(i) +
                                                   " repeats a GPU slot");
    }
  }

  // --- Index sections --------------------------------------------------
  if (!has_index_) {
    if (views[kSecHours].present || views[kSecArena].present || views[kSecRanges].present ||
        views[kSecNodeGroups].present)
      return Error(ErrorKind::kParse,
                   "snapshot carries index sections but the header flag is clear");
    return {};
  }
  auto hours = require(kSecHours, n * 8, "hours");
  if (!hours.ok()) return hours.error();
  hours_ = span_of(hours.value(), double{});
  // The hours column must be *bit-identical* to what LogIndex computes
  // from the times column — adopted and rebuilt indexes are interchangeable
  // everywhere downstream, including byte-exact golden reports.
  for (std::size_t i = 0; i < n; ++i) {
    const double expect = hours_between(spec_.log_start, TimePoint(times_[i]));
    if (std::memcmp(&expect, &hours_[i], sizeof expect) != 0)
      return Error(ErrorKind::kValidation,
                   "snapshot hours column disagrees with the times column");
  }
  if (!views[kSecArena].present)
    return Error(ErrorKind::kParse, "snapshot is missing the arena section");
  if (views[kSecArena].size % 4 != 0)
    return Error(ErrorKind::kParse, "snapshot arena section has the wrong size");
  arena_ = span_of(views[kSecArena], std::uint32_t{});
  auto ranges = require(kSecRanges, kRangeGroups * 2 * 4, "ranges");
  if (!ranges.ok()) return ranges.error();
  ranges_ = span_of(ranges.value(), std::uint32_t{});
  if (!views[kSecNodeGroups].present)
    return Error(ErrorKind::kParse, "snapshot is missing the node_groups section");
  if (views[kSecNodeGroups].size % 12 != 0)
    return Error(ErrorKind::kParse, "snapshot node_groups section has the wrong size");
  const auto group_words = span_of(views[kSecNodeGroups], std::uint32_t{});

  for (std::uint32_t position : arena_)
    if (position >= n)
      return Error(ErrorKind::kValidation, "snapshot arena position out of range");
  const auto check_range = [this](std::uint32_t begin, std::uint32_t count,
                                  const char* what) -> Result<void> {
    if (begin > arena_.size() || count > arena_.size() - begin)
      return Error(ErrorKind::kValidation,
                   std::string("snapshot index ") + what + " range leaves the arena");
    for (std::uint32_t i = begin + 1; i < begin + count; ++i)
      if (arena_[i] <= arena_[i - 1])
        return Error(ErrorKind::kValidation,
                     std::string("snapshot index ") + what + " span is not ascending");
    return {};
  };
  for (std::size_t g = 0; g < kRangeGroups; ++g)
    if (auto r = check_range(ranges_[2 * g], ranges_[2 * g + 1], "group"); !r.ok())
      return r.error();
  node_groups_.clear();
  node_groups_.reserve(group_words.size() / 3);
  std::int64_t previous_node = -1;
  for (std::size_t g = 0; g < group_words.size(); g += 3) {
    const std::uint32_t node = group_words[g];
    const std::uint32_t begin = group_words[g + 1];
    const std::uint32_t count = group_words[g + 2];
    if (node >= static_cast<std::uint32_t>(spec_.node_count) ||
        static_cast<std::int64_t>(node) <= previous_node)
      return Error(ErrorKind::kValidation,
                   "snapshot node_groups are not ascending node ids within the machine");
    previous_node = node;
    if (count == 0)
      return Error(ErrorKind::kValidation, "snapshot node_groups contain an empty group");
    if (auto r = check_range(begin, count, "node"); !r.ok()) return r.error();
    node_groups_.push_back({static_cast<int>(node), begin, count});
  }
  return {};
}

FailureRecord ColumnarSnapshot::record_at(std::uint32_t i) const {
  FailureRecord record;
  record.time = TimePoint(times_[i]);
  record.node = nodes_[i];
  record.category = static_cast<Category>(categories_[i]);
  record.ttr_hours = ttr_[i];
  const auto slots = gpu_slots_of(i);
  record.gpu_slots.assign(slots.begin(), slots.end());
  record.root_locus = std::string(root_locus_of(i));
  return record;
}

FailureLog ColumnarSnapshot::to_log() const {
  OBS_SPAN("columnar.to_log");
  std::vector<FailureRecord> records(record_count_);
  for (std::size_t i = 0; i < record_count_; ++i) {
    FailureRecord& record = records[i];
    record.time = TimePoint(times_[i]);
    record.node = nodes_[i];
    record.category = static_cast<Category>(categories_[i]);
    record.ttr_hours = ttr_[i];
    const auto slots = gpu_slots_of(static_cast<std::uint32_t>(i));
    record.gpu_slots.assign(slots.begin(), slots.end());
    const auto locus = root_locus_of(static_cast<std::uint32_t>(i));
    record.root_locus.assign(locus.data(), locus.size());
  }
  return FailureLog::from_sorted(spec_, std::move(records));
}

}  // namespace tsufail::data
