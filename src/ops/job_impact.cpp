#include "ops/job_impact.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace tsufail::ops {
namespace {

Result<void> validate(const JobMixSpec& spec, const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "job impact: empty log");
  if (spec.jobs == 0)
    return Error(ErrorKind::kDomain, "job impact: need at least one job");
  if (spec.min_nodes < 1 || spec.max_nodes < spec.min_nodes ||
      spec.max_nodes > log.spec().node_count)
    return Error(ErrorKind::kDomain, "job impact: invalid node range");
  if (!(spec.mean_duration_hours > 0.0))
    return Error(ErrorKind::kDomain, "job impact: duration must be positive");
  if (!(spec.checkpoint_interval_hours > 0.0) || spec.restart_cost_hours < 0.0)
    return Error(ErrorKind::kDomain, "job impact: invalid checkpoint parameters");
  return {};
}

}  // namespace

Result<JobImpactResult> replay_job_impact(const data::FailureLog& log, const JobMixSpec& spec,
                                          Rng& rng) {
  if (auto ok = validate(spec, log); !ok.ok()) return ok.error();

  // Per-node ascending failure times (hours since window start).
  std::map<int, std::vector<double>> node_failures;
  for (const auto& record : log.records()) {
    node_failures[record.node].push_back(hours_between(log.spec().log_start, record.time));
  }

  const double window = log.spec().window_hours();
  JobImpactResult result;
  result.jobs = spec.jobs;

  std::size_t total_hits = 0;
  for (std::size_t j = 0; j < spec.jobs; ++j) {
    // Node count log-uniform in [min, max]: small jobs common, big rare.
    const double log_min = std::log(static_cast<double>(spec.min_nodes));
    const double log_max = std::log(static_cast<double>(spec.max_nodes) + 1.0);
    const int width = std::clamp(
        static_cast<int>(std::exp(rng.uniform(log_min, log_max))), spec.min_nodes,
        spec.max_nodes);
    const double duration = std::max(0.1, rng.exponential(spec.mean_duration_hours));
    const double start = rng.uniform(0.0, std::max(1e-9, window - duration));
    const double end = start + duration;

    // Contiguous node block starting at a random node (how schedulers
    // typically allocate); wraps at the fleet edge.
    const int first_node =
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(log.spec().node_count)));

    // Earliest failure hitting any of the job's nodes during its run.
    double first_hit = -1.0;
    std::size_t hits = 0;
    for (int k = 0; k < width; ++k) {
      const int node = (first_node + k) % log.spec().node_count;
      const auto it = node_failures.find(node);
      if (it == node_failures.end()) continue;
      auto lower = std::lower_bound(it->second.begin(), it->second.end(), start);
      for (; lower != it->second.end() && *lower < end; ++lower) {
        ++hits;
        if (first_hit < 0.0 || *lower < first_hit) first_hit = *lower;
      }
    }
    total_hits += hits;

    result.total_node_hours += duration * width;
    if (first_hit >= 0.0) {
      ++result.interrupted_jobs;
      const double elapsed = first_hit - start;
      // Without checkpointing the whole partial run is redone.
      result.lost_node_hours_no_ckpt += elapsed * width;
      // With checkpointing only the last segment plus the restart is lost.
      const double lost =
          std::min(elapsed, spec.checkpoint_interval_hours) + spec.restart_cost_hours;
      result.lost_node_hours_ckpt += lost * width;
    }
  }

  result.interrupted_fraction =
      static_cast<double>(result.interrupted_jobs) / static_cast<double>(result.jobs);
  result.mean_hits_per_job =
      static_cast<double>(total_hits) / static_cast<double>(result.jobs);
  result.goodput_no_ckpt =
      result.total_node_hours / (result.total_node_hours + result.lost_node_hours_no_ckpt);
  result.goodput_ckpt =
      result.total_node_hours / (result.total_node_hours + result.lost_node_hours_ckpt);
  return result;
}

Result<JobImpactResult> replay_job_impact(const data::FailureLog& log, const JobMixSpec& spec,
                                          std::uint64_t seed) {
  Rng rng(fork_seed(seed, kJobImpactSeedStream));
  return replay_job_impact(log, spec, rng);
}

}  // namespace tsufail::ops
