// Spare-parts provisioning simulation.
//
// The paper: "longer recovery times highlight the need for appropriate
// spare provisioning of parts."  This module replays a failure log's
// hardware events against a spare pool with a restock lead time and
// reports stockouts and the extra waiting they would add, then searches
// for the smallest pool meeting a target stockout probability.
#pragma once

#include <vector>

#include "data/log.h"
#include "util/rng.h"

namespace tsufail::ops {

struct SparePolicy {
  std::size_t initial_spares = 2;
  double restock_lead_time_hours = 336.0;  ///< 2 weeks procurement
};

struct SpareSimResult {
  std::size_t demand_events = 0;      ///< hardware failures needing a part
  std::size_t stockouts = 0;          ///< demands that found the pool empty
  double stockout_probability = 0.0;
  double added_wait_hours_total = 0.0;///< extra downtime while waiting
  double added_wait_hours_mean = 0.0; ///< over stockout events
  std::size_t peak_outstanding = 0;   ///< max parts simultaneously on order
};

/// Replays the category's failures against the pool.  Each failure
/// consumes a spare at its failure time and triggers a restock order that
/// arrives lead-time later.  Errors: no failures of that category.
Result<SpareSimResult> simulate_spares(const data::FailureLog& log, data::Category category,
                                       const SparePolicy& policy);

/// Smallest initial pool with stockout probability <= target, searching
/// 0..max_spares.  Errors: no failures of that category, or even
/// max_spares cannot meet the target.
Result<std::size_t> recommend_spares(const data::FailureLog& log, data::Category category,
                                     double target_stockout_probability,
                                     double restock_lead_time_hours, std::size_t max_spares = 64);

}  // namespace tsufail::ops
