#include "ops/capacity.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace tsufail::ops {

std::size_t poisson_upper_quantile(double mean, double epsilon) {
  if (mean <= 0.0) return 0;
  // Walk the CDF; occupancy means here are tiny (a few nodes), so the
  // direct recurrence is exact and fast.
  double pmf = std::exp(-mean);
  double cdf = pmf;
  std::size_t k = 0;
  while (1.0 - cdf > epsilon && k < 1000000) {
    ++k;
    pmf *= mean / static_cast<double>(k);
    cdf += pmf;
  }
  return k;
}

Result<CapacityForecast> forecast_capacity(const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "forecast_capacity: empty log");

  CapacityForecast forecast;
  const double window = log.spec().window_hours();
  forecast.failure_rate_per_hour = static_cast<double>(log.size()) / window;
  double ttr_sum = 0.0;
  for (const auto& record : log.records()) ttr_sum += record.ttr_hours;
  forecast.mean_repair_hours = ttr_sum / static_cast<double>(log.size());
  forecast.expected_down_nodes =
      forecast.failure_rate_per_hour * forecast.mean_repair_hours;
  forecast.expected_down_fraction =
      forecast.expected_down_nodes / static_cast<double>(log.spec().node_count);
  forecast.provision_for_99 = poisson_upper_quantile(forecast.expected_down_nodes, 0.01);
  forecast.provision_for_999 = poisson_upper_quantile(forecast.expected_down_nodes, 0.001);

  // Replay cross-check: sweep the (start, end) outage intervals.
  struct Edge {
    double hours;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(2 * log.size());
  for (const auto& record : log.records()) {
    const double start = hours_between(log.spec().log_start, record.time);
    edges.push_back({start, +1});
    edges.push_back({start + record.ttr_hours, -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) {
              return a.hours != b.hours ? a.hours < b.hours : a.delta < b.delta;
            });
  double area = 0.0;
  double prev = 0.0;
  int down = 0;
  int peak = 0;
  for (const auto& edge : edges) {
    area += static_cast<double>(down) * (edge.hours - prev);
    prev = edge.hours;
    down += edge.delta;
    peak = std::max(peak, down);
  }
  // Normalize over the observation window (repairs can spill past its
  // end; the spill area is real downtime and stays in the numerator,
  // matching how operators account it).
  forecast.measured_mean_down_nodes = area / window;
  forecast.measured_peak_down_nodes = static_cast<double>(peak);
  return forecast;
}

}  // namespace tsufail::ops
