#include "ops/repairshop.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <queue>
#include <string>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tsufail::ops {
namespace {

// One unit = one GPU's worth of capacity.  A whole node is G units.
int degradation_units(const data::FailureRecord& record, int gpus_per_node) {
  const int g = std::max(1, gpus_per_node);
  if (record.category == data::Category::kGpu && gpus_per_node > 0) {
    const int slots = static_cast<int>(record.gpu_slots.size());
    return std::min(g, std::max(1, slots));
  }
  return g;
}

// Half-open window membership [offset + k*period, offset + k*period +
// duration).  The reference simulator uses this same function.
bool in_maintenance_window(const MaintenanceWindows& w, double t) {
  if (w.duration_hours >= w.period_hours) return true;
  if (t < w.offset_hours) return false;
  const double k = std::floor((t - w.offset_hours) / w.period_hours);
  return t - (w.offset_hours + k * w.period_hours) < w.duration_hours;
}

// First window start strictly after t (the wake time for a closed-window
// stall).
double next_window_start(const MaintenanceWindows& w, double t) {
  if (t < w.offset_hours) return w.offset_hours;
  const double k = std::floor((t - w.offset_hours) / w.period_hours);
  double start = w.offset_hours + (k + 1.0) * w.period_hours;
  if (start <= t) start += w.period_hours;  // guard FP round-down
  return start;
}

struct Job {
  double arrival = 0.0;
  double service = 0.0;
  int units = 0;
  int node = 0;
  int pool = -1;  ///< index into config.spare_pools, -1 = no part needed
};

// Event kinds in intra-tick application order.
enum EventKind : int { kSpareArrival = 0, kCompletion = 1, kArrival = 2, kWake = 3 };

struct Event {
  double time = 0.0;
  int kind = kWake;
  std::size_t seq = 0;  ///< failure index (completion/arrival) or pool index
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.seq > b.seq;
  }
};

bool parse_number(std::string_view text, double& out) {
  if (text.empty() || text.size() > 64) return false;
  std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  if (!std::isfinite(value)) return false;
  out = value;
  return true;
}

bool parse_count(std::string_view text, std::size_t& out) {
  double value = 0.0;
  if (!parse_number(text, value)) return false;
  if (value < 0.0 || value > 1e9 || value != std::floor(value)) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

Error domain_error(std::string message) { return Error(ErrorKind::kDomain, std::move(message)); }

}  // namespace

std::string_view to_string(RepairPolicy policy) noexcept {
  switch (policy) {
    case RepairPolicy::kFifo: return "fifo";
    case RepairPolicy::kCriticalityFirst: return "criticality-first";
    case RepairPolicy::kBatchedWindows: return "batched-windows";
  }
  return "fifo";
}

Result<RepairPolicy> parse_repair_policy(std::string_view name) {
  std::string folded;
  folded.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ') continue;
    folded.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (folded == "fifo") return RepairPolicy::kFifo;
  if (folded == "critical" || folded == "criticality" || folded == "criticalityfirst") {
    return RepairPolicy::kCriticalityFirst;
  }
  if (folded == "batched" || folded == "batchedwindows" || folded == "windows") {
    return RepairPolicy::kBatchedWindows;
  }
  return Error(ErrorKind::kNotFound,
               "unknown repair policy '" + std::string(name) +
                   "' (expected fifo, criticality-first, or batched-windows)");
}

Result<void> validate_repair_config(const RepairShopConfig& config) {
  if (config.crews < 1 || config.crews > 1'000'000) {
    return domain_error("crews must be in [1, 1000000], got " + std::to_string(config.crews));
  }
  if (config.spare_pools.size() > 64) {
    return domain_error("too many spare pools (max 64)");
  }
  for (std::size_t i = 0; i < config.spare_pools.size(); ++i) {
    const SparePoolConfig& pool = config.spare_pools[i];
    for (std::size_t j = 0; j < i; ++j) {
      if (config.spare_pools[j].category == pool.category) {
        return domain_error("duplicate spare pool for category '" +
                            std::string(data::to_string(pool.category)) + "'");
      }
    }
    if (pool.policy.initial_spares > 1'000'000) {
      return domain_error("initial spares must be <= 1000000");
    }
    const double lead = pool.policy.restock_lead_time_hours;
    if (!(lead >= 0.0) || lead > 1e6) {
      return domain_error("restock lead time must be in [0, 1e6] hours");
    }
  }
  if (config.throttle.max_active > 1'000'000) {
    return domain_error("throttle max_active must be <= 1000000");
  }
  const double boost = config.throttle.boost_below_capacity;
  if (!(boost >= 0.0 && boost <= 1.0)) {
    return domain_error("throttle boost threshold must be in [0, 1]");
  }
  const MaintenanceWindows& w = config.windows;
  if (!(w.offset_hours >= 0.0) || w.offset_hours > 1e6) {
    return domain_error("window offset must be in [0, 1e6] hours");
  }
  if (!(w.period_hours >= 0.5) || w.period_hours > 1e6) {
    return domain_error("window period must be in [0.5, 1e6] hours");
  }
  if (!(w.duration_hours > 0.0) || w.duration_hours > w.period_hours) {
    return domain_error("window duration must be in (0, period] hours");
  }
  if (!(config.horizon_slack_hours >= 0.0) || config.horizon_slack_hours > 1e7) {
    return domain_error("horizon slack must be in [0, 1e7] hours");
  }
  return {};
}

std::string describe_repair_config(const RepairShopConfig& config) {
  std::string out = "crews=" + std::to_string(config.crews);
  out += ", policy=" + std::string(to_string(config.policy));
  if (!config.spare_pools.empty()) {
    out += ", spares=";
    for (std::size_t p = 0; p < config.spare_pools.size(); ++p) {
      if (p > 0) out += ';';
      const SparePoolConfig& pool = config.spare_pools[p];
      out += std::string(data::to_string(pool.category)) + ":" +
             std::to_string(pool.policy.initial_spares) + ":" +
             std::to_string(static_cast<long long>(pool.policy.restock_lead_time_hours));
    }
  }
  if (config.throttle.max_active > 0) {
    out += ", throttle=" + std::to_string(config.throttle.max_active);
    if (config.throttle.boost_below_capacity > 0.0) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%g", config.throttle.boost_below_capacity);
      out += ", boost=" + std::string(buffer);
    }
  }
  if (config.policy == RepairPolicy::kBatchedWindows) {
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, ", window=%g/%g/%g", config.windows.offset_hours,
                  config.windows.period_hours, config.windows.duration_hours);
    out += buffer;
  }
  return out;
}

Result<RepairShopConfig> parse_repair_config(std::string_view text) {
  RepairShopConfig config;
  for (std::string_view entry : split(text, ',')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Error(ErrorKind::kParse, "expected key=value, got '" + std::string(entry) + "'");
    }
    const std::string_view key = trim(entry.substr(0, eq));
    const std::string_view value = trim(entry.substr(eq + 1));
    if (key == "crews") {
      if (!parse_count(value, config.crews)) {
        return Error(ErrorKind::kParse, "bad crews count '" + std::string(value) + "'");
      }
    } else if (key == "policy") {
      auto policy = parse_repair_policy(value);
      if (!policy.ok()) return policy.error();
      config.policy = policy.value();
    } else if (key == "throttle") {
      if (!parse_count(value, config.throttle.max_active)) {
        return Error(ErrorKind::kParse, "bad throttle count '" + std::string(value) + "'");
      }
    } else if (key == "boost") {
      if (!parse_number(value, config.throttle.boost_below_capacity)) {
        return Error(ErrorKind::kParse, "bad boost threshold '" + std::string(value) + "'");
      }
    } else if (key == "window") {
      const auto parts = split(value, '/');
      if (parts.size() != 3 || !parse_number(trim(parts[0]), config.windows.offset_hours) ||
          !parse_number(trim(parts[1]), config.windows.period_hours) ||
          !parse_number(trim(parts[2]), config.windows.duration_hours)) {
        return Error(ErrorKind::kParse,
                     "bad window spec '" + std::string(value) + "' (expected offset/period/duration)");
      }
    } else if (key == "horizon-slack" || key == "horizon_slack") {
      if (!parse_number(value, config.horizon_slack_hours)) {
        return Error(ErrorKind::kParse, "bad horizon slack '" + std::string(value) + "'");
      }
    } else if (key == "spares") {
      for (std::string_view pool_text : split(value, ';')) {
        pool_text = trim(pool_text);
        if (pool_text.empty()) continue;
        const auto fields = split(pool_text, ':');
        if (fields.size() != 3) {
          return Error(ErrorKind::kParse, "bad spare pool '" + std::string(pool_text) +
                                              "' (expected CATEGORY:count:lead_hours)");
        }
        SparePoolConfig pool;
        auto category = data::parse_category(trim(fields[0]));
        if (!category.ok()) return category.error();
        pool.category = category.value();
        if (!parse_count(trim(fields[1]), pool.policy.initial_spares)) {
          return Error(ErrorKind::kParse, "bad spare count '" + std::string(fields[1]) + "'");
        }
        if (!parse_number(trim(fields[2]), pool.policy.restock_lead_time_hours)) {
          return Error(ErrorKind::kParse, "bad restock lead '" + std::string(fields[2]) + "'");
        }
        config.spare_pools.push_back(pool);
      }
    } else {
      return Error(ErrorKind::kParse, "unknown repair config key '" + std::string(key) + "'");
    }
  }
  if (auto valid = validate_repair_config(config); !valid.ok()) return valid.error();
  return config;
}

Result<RepairShopResult> run_repair_shop(const data::FailureLog& log,
                                         const RepairShopConfig& config) {
  OBS_SPAN("repairshop.run");
  static obs::Counter runs = obs::counter("repairshop.runs");
  static obs::Counter stockout_counter = obs::counter("repairshop.stockouts");
  static obs::Gauge queue_gauge = obs::gauge("repairshop.queue_depth");
  static constexpr double kWaitBounds[] = {0.1, 1.0, 4.0, 12.0, 24.0, 72.0, 168.0, 720.0};
  static constexpr double kUtilizationBounds[] = {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  static obs::Histogram wait_histogram = obs::histogram("repairshop.wait_hours", kWaitBounds);
  static obs::Histogram utilization_histogram =
      obs::histogram("repairshop.crew_utilization", kUtilizationBounds);
  runs.add();

  if (auto valid = validate_repair_config(config); !valid.ok()) return valid.error();
  const data::MachineSpec& spec = log.spec();
  for (const SparePoolConfig& pool : config.spare_pools) {
    if (!data::valid_for(pool.category, spec.machine)) {
      return Error(ErrorKind::kValidation,
                   "spare pool category '" + std::string(data::to_string(pool.category)) +
                       "' is not in " + spec.name + "'s vocabulary");
    }
  }

  const int g = std::max(1, spec.gpus_per_node);
  const long long total_units = static_cast<long long>(std::max(1, spec.node_count)) * g;

  // --- Precompute per-failure jobs ------------------------------------
  const auto records = log.records();
  const std::size_t n = records.size();
  std::vector<Job> jobs(n);
  double last_arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Job& job = jobs[i];
    job.arrival = hours_between(spec.log_start, records[i].time);
    job.service = records[i].ttr_hours;
    job.units = degradation_units(records[i], spec.gpus_per_node);
    job.node = records[i].node;
    for (std::size_t p = 0; p < config.spare_pools.size(); ++p) {
      if (config.spare_pools[p].category == records[i].category) {
        job.pool = static_cast<int>(p);
        break;
      }
    }
    last_arrival = std::max(last_arrival, job.arrival);
  }
  const double horizon =
      std::max(spec.window_hours(), last_arrival) + config.horizon_slack_hours;

  RepairShopResult result;
  result.assignments.resize(n);
  result.horizon_hours = horizon;
  result.crew_busy_hours.assign(config.crews, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    result.assignments[i].arrival_hours = jobs[i].arrival;
    result.assignments[i].degradation_units = jobs[i].units;
  }

  // --- Simulation state ------------------------------------------------
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  for (std::size_t i = 0; i < n; ++i) {
    events.push(Event{jobs[i].arrival, kArrival, i});
  }
  std::vector<std::size_t> pools(config.spare_pools.size());
  for (std::size_t p = 0; p < pools.size(); ++p) {
    pools[p] = config.spare_pools[p].policy.initial_spares;
  }
  std::priority_queue<std::size_t, std::vector<std::size_t>, std::greater<>> free_crews;
  for (std::size_t c = 0; c < config.crews; ++c) free_crews.push(c);
  std::vector<std::size_t> waiting;  // failure indices, kept in index order
  std::map<int, int> node_units;     // node -> capacity units currently lost
  long long lost_units = 0;
  std::size_t active = 0;
  double now = 0.0;
  double degraded_units_hours = 0.0;
  double last_wake = -1.0;  // dedup for window wake events

  const auto add_units = [&](const Job& job, int sign) {
    int& current = node_units[job.node];
    const int before = std::min(g, current);
    current += sign * job.units;
    lost_units += std::min(g, current) - before;
  };

  // Effective concurrency cap for the current degradation level.  Both
  // simulators evaluate this identical expression, so the FP compare is
  // reproducible.
  const auto active_cap = [&]() -> std::size_t {
    if (config.throttle.max_active == 0) return config.crews;
    if (config.throttle.boost_below_capacity > 0.0) {
      const double healthy =
          static_cast<double>(total_units - lost_units) / static_cast<double>(total_units);
      if (healthy < config.throttle.boost_below_capacity) return config.crews;
    }
    return std::min(config.throttle.max_active, config.crews);
  };

  // Window admission for one waiting job under the active policy.
  const auto window_admits = [&](const Job& job, double t) {
    if (config.policy != RepairPolicy::kBatchedWindows) return true;
    if (job.units >= g) return true;  // whole-node failure: emergency path
    return in_maintenance_window(config.windows, t);
  };

  const auto policy_prefers = [&](std::size_t a, std::size_t b) {
    if (config.policy == RepairPolicy::kCriticalityFirst) {
      if (jobs[a].units != jobs[b].units) return jobs[a].units > jobs[b].units;
      if (jobs[a].service != jobs[b].service) return jobs[a].service < jobs[b].service;
    }
    return a < b;  // FIFO / batched: arrival (= record index) order
  };

  // --- Event loop ------------------------------------------------------
  std::vector<std::size_t> tick_spares, tick_completions, tick_arrivals;
  while (!events.empty() && events.top().time <= horizon) {
    const double t = events.top().time;
    degraded_units_hours += static_cast<double>(lost_units) * (t - now);
    now = t;

    // The tick loop: zero-service completions and zero-lead restocks
    // scheduled by the dispatch below land back at time t and re-enter.
    while (!events.empty() && events.top().time == t) {
      tick_spares.clear();
      tick_completions.clear();
      tick_arrivals.clear();
      while (!events.empty() && events.top().time == t) {
        const Event event = events.top();
        events.pop();
        switch (event.kind) {
          case kSpareArrival: tick_spares.push_back(event.seq); break;
          case kCompletion: tick_completions.push_back(event.seq); break;
          case kArrival: tick_arrivals.push_back(event.seq); break;
          case kWake: break;
        }
      }
      for (std::size_t p : tick_spares) ++pools[p];
      std::sort(tick_completions.begin(), tick_completions.end());
      for (std::size_t i : tick_completions) {
        add_units(jobs[i], -1);
        free_crews.push(result.assignments[i].crew);
        --active;
        ++result.completed;
      }
      std::sort(tick_arrivals.begin(), tick_arrivals.end());
      for (std::size_t i : tick_arrivals) {
        add_units(jobs[i], +1);
        waiting.insert(std::upper_bound(waiting.begin(), waiting.end(), i), i);
      }

      // Dispatch: start the policy-best eligible repair until crews, the
      // throttle cap, spares, or the window gate say stop.
      while (!free_crews.empty() && active < active_cap()) {
        std::size_t best = n;
        for (std::size_t i : waiting) {
          if (!window_admits(jobs[i], t)) continue;
          if (jobs[i].pool >= 0 && pools[static_cast<std::size_t>(jobs[i].pool)] == 0) continue;
          if (best == n || policy_prefers(i, best)) best = i;
        }
        if (best == n) break;
        waiting.erase(std::find(waiting.begin(), waiting.end(), best));
        RepairAssignment& assignment = result.assignments[best];
        assignment.crew = free_crews.top();
        free_crews.pop();
        assignment.start_hours = t;
        assignment.completion_hours = t + jobs[best].service;
        if (jobs[best].pool >= 0) {
          const auto p = static_cast<std::size_t>(jobs[best].pool);
          --pools[p];
          assignment.consumed_spare = true;
          ++result.spare_demands;
          events.push(
              Event{t + config.spare_pools[p].policy.restock_lead_time_hours, kSpareArrival, p});
        }
        events.push(Event{assignment.completion_hours, kCompletion, best});
        ++active;
        result.peak_active = std::max(result.peak_active, active);
      }
    }

    // End-of-tick bookkeeping: stockout flags, queue depth, window wakes.
    const bool crew_and_cap_free = !free_crews.empty() && active < active_cap();
    bool stalled_on_window = false;
    for (std::size_t i : waiting) {
      if (!window_admits(jobs[i], t)) {
        stalled_on_window = true;
        continue;
      }
      if (crew_and_cap_free && jobs[i].pool >= 0 &&
          pools[static_cast<std::size_t>(jobs[i].pool)] == 0) {
        result.assignments[i].waited_for_spare = true;
      }
    }
    result.peak_queue_depth = std::max(result.peak_queue_depth, waiting.size());
    if (stalled_on_window) {
      const double wake = next_window_start(config.windows, t);
      if (wake > t && wake <= horizon && wake != last_wake) {
        events.push(Event{wake, kWake, 0});
        last_wake = wake;
      }
    }
  }
  degraded_units_hours += static_cast<double>(lost_units) * (horizon - now);

  // --- Summary ---------------------------------------------------------
  std::size_t started = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const RepairAssignment& assignment = result.assignments[i];
    if (!assignment.started()) {
      ++result.unstarted_at_horizon;
      continue;
    }
    ++started;
    if (assignment.completion_hours > horizon) ++result.in_flight_at_horizon;
    const double clipped_completion = std::min(assignment.completion_hours, horizon);
    result.crew_busy_hours[assignment.crew] += clipped_completion - assignment.start_hours;
    result.makespan_hours = std::max(result.makespan_hours, clipped_completion);
    const double wait = assignment.start_hours - assignment.arrival_hours;
    result.total_wait_hours += wait;
    result.max_wait_hours = std::max(result.max_wait_hours, wait);
    wait_histogram.observe(wait);
    if (assignment.waited_for_spare) ++result.stockouts;
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Flagged-but-never-started repairs are stockouts too.
    if (!result.assignments[i].started() && result.assignments[i].waited_for_spare) {
      ++result.stockouts;
    }
  }
  result.mean_wait_hours = started > 0 ? result.total_wait_hours / static_cast<double>(started) : 0.0;
  double busy_total = 0.0;
  for (double busy : result.crew_busy_hours) busy_total += busy;
  result.crew_utilization =
      result.makespan_hours > 0.0
          ? busy_total / (static_cast<double>(config.crews) * result.makespan_hours)
          : 0.0;
  result.final_pool_counts = pools;
  result.degraded_node_hours = degraded_units_hours / static_cast<double>(g);
  const double exposure = static_cast<double>(spec.node_count) * spec.window_hours();
  result.availability =
      exposure > 0.0 ? std::clamp(1.0 - result.degraded_node_hours / exposure, 0.0, 1.0) : 1.0;

  stockout_counter.add(result.stockouts);
  queue_gauge.set(static_cast<double>(result.peak_queue_depth));
  utilization_histogram.observe(result.crew_utilization);
  return result;
}

data::FailureLog effective_log(const data::FailureLog& log, const RepairShopResult& result) {
  TSUFAIL_REQUIRE(result.assignments.size() == log.size(),
                  "effective_log: result does not match log");
  std::vector<data::FailureRecord> records(log.records().begin(), log.records().end());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RepairAssignment& assignment = result.assignments[i];
    const double downtime = assignment.started()
                                ? assignment.completion_hours - assignment.arrival_hours
                                : result.horizon_hours - assignment.arrival_hours;
    records[i].ttr_hours = std::max(0.0, downtime);
  }
  return data::FailureLog::from_sorted(log.spec(), std::move(records));
}

}  // namespace tsufail::ops
