// Checkpoint-interval optimization driven by measured MTBF.
//
// The paper's implications section points at checkpointing as the main
// software mitigation for GPU failures.  This module implements the
// classic Young and Daly optimal-interval formulas plus the first-order
// waste model, so a user can turn the library's measured MTBF directly
// into a checkpoint policy and quantify the efficiency left on the table
// by failures (the operational face of performance-error-proportionality).
#pragma once

#include "util/error.h"

namespace tsufail::ops {

/// Young's first-order optimum: tau = sqrt(2 * C * M) where C is the
/// checkpoint write cost and M the MTBF (both hours).
/// Errors: non-positive cost or MTBF.
Result<double> young_interval_hours(double checkpoint_cost_hours, double mtbf_hours);

/// Daly's higher-order optimum, more accurate when C is not << M:
/// tau = sqrt(2 C M) * [1 + 1/3 sqrt(C/(2M)) + (1/9)(C/(2M))] - C,
/// clamped below by C.  Errors: non-positive cost or MTBF.
Result<double> daly_interval_hours(double checkpoint_cost_hours, double mtbf_hours);

/// Expected fraction of wall-clock time wasted when checkpointing every
/// `interval` hours on a machine with the given MTBF, first-order model:
/// waste = C/tau + tau/(2M) (+ the re-work term tau/(2M) dominating).
/// Errors: non-positive arguments.
Result<double> waste_fraction(double checkpoint_cost_hours, double interval_hours,
                              double mtbf_hours);

/// Machine efficiency (1 - waste), clamped to [0, 1].
Result<double> efficiency(double checkpoint_cost_hours, double interval_hours,
                          double mtbf_hours);

struct CheckpointPlan {
  double mtbf_hours = 0.0;
  double checkpoint_cost_hours = 0.0;
  double young_hours = 0.0;
  double daly_hours = 0.0;
  double waste_at_daly = 0.0;       ///< waste fraction at the Daly optimum
  double efficiency_at_daly = 0.0;
};

/// Computes the full plan for one (cost, MTBF) pair.
Result<CheckpointPlan> plan_checkpointing(double checkpoint_cost_hours, double mtbf_hours);

}  // namespace tsufail::ops
