#include "ops/checkpoint_sim.h"

#include <algorithm>
#include <cmath>

namespace tsufail::ops {
namespace {

Result<void> validate(const CheckpointSimConfig& config) {
  if (!(config.work_hours > 0.0))
    return Error(ErrorKind::kDomain, "checkpoint sim: work must be positive");
  if (!(config.interval_hours > 0.0))
    return Error(ErrorKind::kDomain, "checkpoint sim: interval must be positive");
  if (config.checkpoint_cost_hours < 0.0 || config.restart_cost_hours < 0.0)
    return Error(ErrorKind::kDomain, "checkpoint sim: costs must be >= 0");
  return {};
}

}  // namespace

Result<CheckpointSimResult> simulate_checkpointed_job(const CheckpointSimConfig& config,
                                                      const FailureSampler& next_failure,
                                                      Rng& rng) {
  if (auto ok = validate(config); !ok.ok()) return ok.error();

  CheckpointSimResult result;
  double committed = 0.0;         // work protected by the last checkpoint
  double segment_done = 0.0;      // useful work since the last checkpoint
  double until_failure = next_failure(rng);
  if (!(until_failure > 0.0))
    return Error(ErrorKind::kDomain, "checkpoint sim: sampler must return positive gaps");

  // The loop advances through "phases" (useful work, checkpoint writes,
  // restarts); a failure can strike during any phase.
  const auto advance = [&](double duration, bool useful) -> bool {
    // Returns true if a failure interrupted the phase; updates clocks.
    if (until_failure > duration) {
      until_failure -= duration;
      result.wall_hours += duration;
      if (useful) segment_done += duration;
      return false;
    }
    result.wall_hours += until_failure;
    if (useful) segment_done += until_failure;
    until_failure = next_failure(rng);
    return true;
  };

  // Guard against pathological configurations that cannot make progress
  // (e.g. MTBF far below the checkpoint cost): bound the failure count.
  const std::size_t failure_limit =
      1000000 + static_cast<std::size_t>(config.work_hours / config.interval_hours) * 100;

  while (committed < config.work_hours) {
    const double segment_target =
        std::min(config.interval_hours, config.work_hours - committed);
    // Phase 1: useful work until the next checkpoint (or completion).
    if (advance(segment_target - segment_done, /*useful=*/true)) {
      ++result.failures;
      result.lost_hours += segment_done + config.restart_cost_hours;
      result.wall_hours += config.restart_cost_hours;
      segment_done = 0.0;
      if (result.failures > failure_limit)
        return Error(ErrorKind::kDomain, "checkpoint sim: no forward progress (MTBF << costs)");
      continue;
    }
    // Segment finished.  The final segment needs no checkpoint.
    committed += segment_done;
    segment_done = 0.0;
    if (committed >= config.work_hours) break;
    // Phase 2: write the checkpoint; a failure here loses the (already
    // committed-in-RAM) segment... the checkpoint is not durable until
    // the write completes, so roll back to the previous checkpoint.
    if (advance(config.checkpoint_cost_hours, /*useful=*/false)) {
      ++result.failures;
      committed -= config.interval_hours;  // the segment just computed
      committed = std::max(0.0, committed);
      result.lost_hours += config.interval_hours + config.restart_cost_hours;
      result.wall_hours += config.restart_cost_hours;
      if (result.failures > failure_limit)
        return Error(ErrorKind::kDomain, "checkpoint sim: no forward progress (MTBF << costs)");
      continue;
    }
    ++result.checkpoints;
    result.checkpoint_hours += config.checkpoint_cost_hours;
  }

  result.useful_hours = config.work_hours;
  result.waste_fraction = 1.0 - result.useful_hours / result.wall_hours;
  return result;
}

Result<CheckpointSimResult> simulate_checkpointed_job_exponential(
    const CheckpointSimConfig& config, double mtbf_hours, Rng& rng,
    std::size_t replications) {
  if (!(mtbf_hours > 0.0))
    return Error(ErrorKind::kDomain, "checkpoint sim: MTBF must be positive");
  if (replications == 0)
    return Error(ErrorKind::kDomain, "checkpoint sim: need at least one replication");

  const FailureSampler sampler = [mtbf_hours](Rng& r) { return r.exponential(mtbf_hours); };
  CheckpointSimResult mean;
  for (std::size_t i = 0; i < replications; ++i) {
    auto run = simulate_checkpointed_job(config, sampler, rng);
    if (!run.ok()) return run.error();
    const double w = 1.0 / static_cast<double>(replications);
    mean.wall_hours += run.value().wall_hours * w;
    mean.useful_hours += run.value().useful_hours * w;
    mean.checkpoint_hours += run.value().checkpoint_hours * w;
    mean.lost_hours += run.value().lost_hours * w;
    mean.failures += run.value().failures;
    mean.checkpoints += run.value().checkpoints;
  }
  mean.failures /= replications;
  mean.checkpoints /= replications;
  mean.waste_fraction = 1.0 - mean.useful_hours / mean.wall_hours;
  return mean;
}

Result<CheckpointSimResult> simulate_checkpointed_job_exponential(
    const CheckpointSimConfig& config, double mtbf_hours, std::uint64_t seed,
    std::size_t replications) {
  Rng rng(fork_seed(seed, kCheckpointSimSeedStream));
  return simulate_checkpointed_job_exponential(config, mtbf_hours, rng, replications);
}

}  // namespace tsufail::ops
