#include "ops/maintenance.h"

#include <map>

namespace tsufail::ops {

Result<MaintenancePolicyResult> evaluate_quarantine_policy(const data::FailureLog& log,
                                                           std::size_t threshold) {
  if (threshold == 0)
    return Error(ErrorKind::kDomain, "quarantine threshold must be >= 1");
  if (log.empty())
    return Error(ErrorKind::kDomain, "evaluate_quarantine_policy: empty log");

  MaintenancePolicyResult result;
  result.threshold = threshold;

  double total_downtime = 0.0;
  std::map<int, std::size_t> seen;  // node -> failures so far (in time order)
  for (const auto& record : log.records()) {
    total_downtime += record.ttr_hours;
    const std::size_t count = ++seen[record.node];
    if (count == threshold) ++result.serviced_nodes;
    if (count > threshold) {
      ++result.avoided_failures;
      result.avoided_downtime_hours += record.ttr_hours;
    }
  }
  result.avoided_failure_percent =
      100.0 * static_cast<double>(result.avoided_failures) / static_cast<double>(log.size());
  result.avoided_downtime_percent =
      total_downtime > 0.0 ? 100.0 * result.avoided_downtime_hours / total_downtime : 0.0;
  return result;
}

Result<std::vector<MaintenancePolicyResult>> sweep_quarantine_policies(
    const data::FailureLog& log, std::size_t max_threshold) {
  if (max_threshold == 0)
    return Error(ErrorKind::kDomain, "max_threshold must be >= 1");
  std::vector<MaintenancePolicyResult> results;
  results.reserve(max_threshold);
  for (std::size_t threshold = 1; threshold <= max_threshold; ++threshold) {
    auto result = evaluate_quarantine_policy(log, threshold);
    if (!result.ok()) return result.error();
    results.push_back(result.value());
  }
  return results;
}

}  // namespace tsufail::ops
