// ops::repair_sweep — repair-policy comparison through the Monte Carlo
// engine.
//
// One SweepVariant per candidate policy, all sharing the same machine
// model: run_sweep's common-random-numbers contract then hands every
// policy the *same* generated failure log per replicate, so cross-policy
// deltas in availability and goodput are pure scheduling effects, not
// sampling noise.  Each cell runs the repair shop on the replicate's
// log, rescores the schedule's effective downtime with the existing
// availability and job-impact models, and emits scalar metrics that the
// engine bootstraps into per-policy CIs.
//
// Determinism: the repair shop draws no randomness, and the job-impact
// replay inside the stage uses the seed-contract overload
// (fork_seed(replicate_seed, kJobImpactSeedStream)), so the sweep is
// bit-identical at any jobs count — bench_repairshop gates this.
#pragma once

#include <string>
#include <vector>

#include "ops/job_impact.h"
#include "ops/repairshop.h"
#include "sim/montecarlo.h"

namespace tsufail::ops {

/// One candidate repair-shop configuration to score.
struct RepairPolicyVariant {
  std::string label;
  RepairShopConfig config;
};

/// The three stock candidates compared by `tsufail repairs` and the
/// golden report: FIFO, criticality-first, and batched weekly windows,
/// all over `base` (crews/spares/throttle reused; only policy and, for
/// the batched arm, the window cadence differ).
std::vector<RepairPolicyVariant> default_policy_variants(const RepairShopConfig& base);

struct RepairSweepOptions {
  sim::SweepOptions sweep;  ///< seeds, replicates, jobs, CI settings
  JobMixSpec job_mix;       ///< goodput scoring mix
  /// Also replay job impact on the *raw* sampled-TTR log (metrics
  /// "goodput_ckpt_sampled", ...) so every policy's schedule can be read
  /// against the paper's no-contention model.
  bool score_sampled_baseline = true;
};

/// The per-replicate metric names a policy cell emits, in order:
/// availability, mttr_effective_hours, mean_wait_hours, max_wait_hours,
/// crew_utilization, peak_queue_depth, stockouts, unfinished,
/// degraded_node_hours, interrupted_fraction, goodput_ckpt,
/// goodput_no_ckpt (+ *_sampled baselines when enabled).
sim::ReplicateStage make_repair_stage(const RepairShopConfig& config,
                                      const RepairSweepOptions& options);

/// Scores every policy variant over `options.sweep.replicates` generated
/// logs of `model`.  Result variants are labelled by policy.  Errors:
/// invalid configs, duplicate labels, or any cell failing.
Result<sim::SweepResult> run_repair_policy_sweep(const sim::MachineModel& model,
                                                 std::vector<RepairPolicyVariant> policies,
                                                 const RepairSweepOptions& options);

}  // namespace tsufail::ops
