// Availability and failure-impact accounting.
//
// The paper argues operators should weigh failure types by *impact*
// (frequency x repair time), not frequency alone: Tsubame-3's power-board
// failures are ~1% of events but cost up to 230 hours each.  This module
// turns a log into exactly that ranking, plus the steady-state
// availability numbers MTBF/(MTBF + MTTR).
#pragma once

#include <vector>

#include "data/log.h"

namespace tsufail::ops {

struct CategoryImpact {
  data::Category category = data::Category::kUnknown;
  std::size_t failures = 0;
  double share_percent = 0.0;        ///< of all failures (frequency view)
  double downtime_hours = 0.0;       ///< sum of TTR over the category
  double downtime_percent = 0.0;     ///< of all downtime (impact view)
  double mean_ttr_hours = 0.0;
  double max_ttr_hours = 0.0;
  /// downtime share / frequency share: > 1 means the category hurts more
  /// than its frequency suggests (the paper's power-board/SSD story).
  double impact_ratio = 0.0;
};

struct AvailabilityReport {
  double mtbf_hours = 0.0;               ///< exposure MTBF
  double mttr_hours = 0.0;
  /// Steady-state availability of the failing unit: MTBF/(MTBF+MTTR).
  double availability = 0.0;
  double total_downtime_hours = 0.0;     ///< sum of all repairs
  /// Downtime as a fraction of total node-hours in the window (repairs
  /// take out one node each; the machine keeps running).
  double node_hour_loss_fraction = 0.0;
  std::vector<CategoryImpact> by_category;  ///< descending by downtime
};

/// Computes availability and per-category impact. Errors: empty log.
Result<AvailabilityReport> analyze_availability(const data::FailureLog& log);

}  // namespace tsufail::ops
