// Steady-state capacity forecasting from measured failure/repair rates.
//
// Each failure takes one node out for its repair duration; with failures
// arriving at rate lambda and repairs lasting S hours on average, the
// long-run number of concurrently-down nodes is lambda * E[S] (Little's
// law / M/G/infinity: the result needs only the MEAN repair time, not its
// distribution).  This converts the paper's MTBF/MTTR tables into the
// number operators actually budget: how many nodes are down right now,
// and how many must be over-provisioned to honour a capacity commitment.
#pragma once

#include "data/log.h"

namespace tsufail::ops {

struct CapacityForecast {
  double failure_rate_per_hour = 0.0;   ///< lambda (fleet-wide)
  double mean_repair_hours = 0.0;       ///< E[S]
  double expected_down_nodes = 0.0;     ///< lambda * E[S]
  double expected_down_fraction = 0.0;  ///< of the fleet
  /// Nodes to over-provision so that P[down > provision] <= epsilon,
  /// using the Poisson tail of the M/G/inf occupancy distribution.
  std::size_t provision_for_99 = 0;     ///< epsilon = 1%
  std::size_t provision_for_999 = 0;    ///< epsilon = 0.1%
  /// Replay cross-check: time-averaged concurrently-down nodes measured
  /// directly from the log's (failure, repair) intervals.
  double measured_mean_down_nodes = 0.0;
  double measured_peak_down_nodes = 0.0;
};

/// Computes the forecast and the replay cross-check. Errors: empty log.
Result<CapacityForecast> forecast_capacity(const data::FailureLog& log);

/// Smallest k with P[Poisson(mean) > k] <= epsilon (exposed for tests).
std::size_t poisson_upper_quantile(double mean, double epsilon);

}  // namespace tsufail::ops
