#include "ops/repair_sweep.h"

#include <utility>

#include "obs/obs.h"
#include "ops/availability.h"

namespace tsufail::ops {

std::vector<RepairPolicyVariant> default_policy_variants(const RepairShopConfig& base) {
  std::vector<RepairPolicyVariant> variants;
  RepairShopConfig fifo = base;
  fifo.policy = RepairPolicy::kFifo;
  variants.push_back({"fifo", fifo});
  RepairShopConfig critical = base;
  critical.policy = RepairPolicy::kCriticalityFirst;
  variants.push_back({"criticality-first", critical});
  RepairShopConfig batched = base;
  batched.policy = RepairPolicy::kBatchedWindows;
  batched.windows = MaintenanceWindows{};  // weekly, 24 h open
  variants.push_back({"batched-windows", batched});
  return variants;
}

sim::ReplicateStage make_repair_stage(const RepairShopConfig& config,
                                      const RepairSweepOptions& options) {
  // The stage closure owns copies: run_sweep calls it from worker threads
  // after the caller's frame may be gone.
  return [config, job_mix = options.job_mix, sampled = options.score_sampled_baseline](
             const data::FailureLog& log,
             std::uint64_t seed) -> Result<std::vector<sim::MetricSample>> {
    OBS_SPAN("repairshop.stage");
    auto shop = run_repair_shop(log, config);
    if (!shop.ok()) return shop.error();
    const RepairShopResult& schedule = shop.value();

    std::vector<sim::MetricSample> metrics;
    const auto emit = [&metrics](std::string name, double value) {
      metrics.push_back({std::move(name), value});
    };
    emit("availability", schedule.availability);
    emit("mean_wait_hours", schedule.mean_wait_hours);
    emit("max_wait_hours", schedule.max_wait_hours);
    emit("crew_utilization", schedule.crew_utilization);
    emit("peak_queue_depth", static_cast<double>(schedule.peak_queue_depth));
    emit("stockouts", static_cast<double>(schedule.stockouts));
    emit("unfinished", static_cast<double>(schedule.in_flight_at_horizon +
                                           schedule.unstarted_at_horizon));
    emit("degraded_node_hours", schedule.degraded_node_hours);

    // Rescore the schedule's effective downtime with the existing models.
    const data::FailureLog effective = effective_log(log, schedule);
    if (auto report = analyze_availability(effective); report.ok()) {
      emit("mttr_effective_hours", report.value().mttr_hours);
      emit("availability_mtbf_mttr", report.value().availability);
    }
    if (auto impact = replay_job_impact(effective, job_mix, seed); impact.ok()) {
      emit("interrupted_fraction", impact.value().interrupted_fraction);
      emit("goodput_ckpt", impact.value().goodput_ckpt);
      emit("goodput_no_ckpt", impact.value().goodput_no_ckpt);
    }
    if (sampled) {
      // Same seed on purpose: the baseline replays the identical job mix
      // against the raw sampled-TTR log, so the delta to goodput_ckpt is
      // the scheduling effect alone.
      if (auto impact = replay_job_impact(log, job_mix, seed); impact.ok()) {
        emit("goodput_ckpt_sampled", impact.value().goodput_ckpt);
        emit("goodput_no_ckpt_sampled", impact.value().goodput_no_ckpt);
      }
    }
    return metrics;
  };
}

Result<sim::SweepResult> run_repair_policy_sweep(const sim::MachineModel& model,
                                                 std::vector<RepairPolicyVariant> policies,
                                                 const RepairSweepOptions& options) {
  if (policies.empty()) {
    return Error(ErrorKind::kDomain, "run_repair_policy_sweep: no policy variants");
  }
  for (const RepairPolicyVariant& policy : policies) {
    if (auto valid = validate_repair_config(policy.config); !valid.ok()) {
      return valid.error().with_context("policy '" + policy.label + "'");
    }
  }
  std::vector<sim::SweepVariant> variants;
  variants.reserve(policies.size());
  for (RepairPolicyVariant& policy : policies) {
    sim::SweepVariant variant;
    variant.label = std::move(policy.label);
    variant.model = model;  // same model everywhere: common random numbers
    variant.stage = make_repair_stage(policy.config, options);
    variants.push_back(std::move(variant));
  }
  return sim::run_sweep(variants, options.sweep);
}

}  // namespace tsufail::ops
