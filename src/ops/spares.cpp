#include "ops/spares.h"

#include <algorithm>
#include <queue>

namespace tsufail::ops {

Result<SpareSimResult> simulate_spares(const data::FailureLog& log, data::Category category,
                                       const SparePolicy& policy) {
  const auto records = log.by_category(category);
  if (records.empty())
    return Error(ErrorKind::kDomain, "simulate_spares: no failures of category " +
                                         std::string(data::to_string(category)));
  if (!(policy.restock_lead_time_hours >= 0.0))
    return Error(ErrorKind::kDomain, "simulate_spares: negative lead time");

  SpareSimResult result;
  result.demand_events = records.size();

  std::size_t in_stock = policy.initial_spares;
  // Restock arrival times (hours since window start), earliest first.
  std::priority_queue<double, std::vector<double>, std::greater<>> arrivals;

  for (const auto& record : records) {
    const double now = hours_between(log.spec().log_start, record.time);
    // Receive every restock that has arrived by now.
    while (!arrivals.empty() && arrivals.top() <= now) {
      arrivals.pop();
      ++in_stock;
    }
    result.peak_outstanding = std::max(result.peak_outstanding, arrivals.size() + 1);

    if (in_stock > 0) {
      --in_stock;
    } else {
      ++result.stockouts;
      // The repair waits for the earliest outstanding restock (or a fresh
      // order if none is in flight).
      const double available_at =
          arrivals.empty() ? now + policy.restock_lead_time_hours : arrivals.top();
      if (!arrivals.empty()) arrivals.pop();  // that unit is consumed on arrival
      result.added_wait_hours_total += std::max(0.0, available_at - now);
    }
    // One-for-one replenishment: every consumption triggers an order.
    arrivals.push(now + policy.restock_lead_time_hours);
  }

  result.stockout_probability =
      static_cast<double>(result.stockouts) / static_cast<double>(result.demand_events);
  if (result.stockouts > 0)
    result.added_wait_hours_mean =
        result.added_wait_hours_total / static_cast<double>(result.stockouts);
  return result;
}

Result<std::size_t> recommend_spares(const data::FailureLog& log, data::Category category,
                                     double target_stockout_probability,
                                     double restock_lead_time_hours, std::size_t max_spares) {
  if (!(target_stockout_probability >= 0.0 && target_stockout_probability <= 1.0))
    return Error(ErrorKind::kDomain, "target stockout probability must be in [0,1]");
  for (std::size_t spares = 0; spares <= max_spares; ++spares) {
    auto sim = simulate_spares(log, category, {spares, restock_lead_time_hours});
    if (!sim.ok()) return sim.error();
    if (sim.value().stockout_probability <= target_stockout_probability) return spares;
  }
  return Error(ErrorKind::kDomain,
               "even " + std::to_string(max_spares) + " spares cannot meet the target");
}

}  // namespace tsufail::ops
