#include "ops/availability.h"

#include <algorithm>

namespace tsufail::ops {

Result<AvailabilityReport> analyze_availability(const data::FailureLog& log) {
  if (log.empty())
    return Error(ErrorKind::kDomain, "analyze_availability: empty log");

  AvailabilityReport report;
  const double window = log.spec().window_hours();
  report.mtbf_hours = window / static_cast<double>(log.size());

  double total_ttr = 0.0;
  for (const auto& record : log.records()) total_ttr += record.ttr_hours;
  report.mttr_hours = total_ttr / static_cast<double>(log.size());
  report.availability = report.mtbf_hours / (report.mtbf_hours + report.mttr_hours);
  report.total_downtime_hours = total_ttr;
  report.node_hour_loss_fraction =
      total_ttr / (window * static_cast<double>(log.spec().node_count));

  const double total_failures = static_cast<double>(log.size());
  for (data::Category category : data::categories_for(log.machine())) {
    const auto records = log.by_category(category);
    if (records.empty()) continue;
    CategoryImpact impact;
    impact.category = category;
    impact.failures = records.size();
    impact.share_percent = 100.0 * static_cast<double>(records.size()) / total_failures;
    for (const auto& record : records) {
      impact.downtime_hours += record.ttr_hours;
      impact.max_ttr_hours = std::max(impact.max_ttr_hours, record.ttr_hours);
    }
    impact.downtime_percent = 100.0 * impact.downtime_hours / total_ttr;
    impact.mean_ttr_hours = impact.downtime_hours / static_cast<double>(records.size());
    impact.impact_ratio = impact.downtime_percent / impact.share_percent;
    report.by_category.push_back(impact);
  }
  std::stable_sort(report.by_category.begin(), report.by_category.end(),
                   [](const CategoryImpact& a, const CategoryImpact& b) {
                     return a.downtime_hours > b.downtime_hours;
                   });
  return report;
}

}  // namespace tsufail::ops
