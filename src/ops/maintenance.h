// Proactive-maintenance policy evaluation by log replay.
//
// The paper suggests operators act on spatial non-uniformity: repeat-
// failure ("lemon") nodes concentrate a large share of failures, so
// servicing a node after its k-th failure could avoid the rest.  This
// module replays a log under a "quarantine after k failures" policy and
// reports the avoidable failures and downtime — an upper bound, since it
// assumes the serviced node never fails again.
#pragma once

#include <vector>

#include "data/log.h"

namespace tsufail::ops {

struct MaintenancePolicyResult {
  std::size_t threshold = 0;           ///< quarantine after this many failures
  std::size_t serviced_nodes = 0;      ///< nodes that hit the threshold
  std::size_t avoided_failures = 0;    ///< failures after the threshold
  double avoided_failure_percent = 0;  ///< of all failures in the log
  double avoided_downtime_hours = 0;   ///< their summed TTR
  double avoided_downtime_percent = 0; ///< of all downtime
};

/// Evaluates "service a node after its `threshold`-th failure" against the
/// log.  Errors: threshold == 0 or empty log.
Result<MaintenancePolicyResult> evaluate_quarantine_policy(const data::FailureLog& log,
                                                           std::size_t threshold);

/// Sweeps thresholds 1..max_threshold (1 = replace on first failure).
Result<std::vector<MaintenancePolicyResult>> sweep_quarantine_policies(
    const data::FailureLog& log, std::size_t max_threshold = 6);

}  // namespace tsufail::ops
