#include "ops/checkpoint.h"

#include <algorithm>
#include <cmath>

namespace tsufail::ops {
namespace {

Result<void> check_args(double cost, double mtbf) {
  if (!(cost > 0.0) || !std::isfinite(cost))
    return Error(ErrorKind::kDomain, "checkpoint cost must be positive and finite");
  if (!(mtbf > 0.0) || !std::isfinite(mtbf))
    return Error(ErrorKind::kDomain, "MTBF must be positive and finite");
  return {};
}

}  // namespace

Result<double> young_interval_hours(double checkpoint_cost_hours, double mtbf_hours) {
  if (auto ok = check_args(checkpoint_cost_hours, mtbf_hours); !ok.ok()) return ok.error();
  return std::sqrt(2.0 * checkpoint_cost_hours * mtbf_hours);
}

Result<double> daly_interval_hours(double checkpoint_cost_hours, double mtbf_hours) {
  if (auto ok = check_args(checkpoint_cost_hours, mtbf_hours); !ok.ok()) return ok.error();
  const double c = checkpoint_cost_hours;
  const double m = mtbf_hours;
  const double base = std::sqrt(2.0 * c * m);
  const double ratio = std::sqrt(c / (2.0 * m));
  const double tau = base * (1.0 + ratio / 3.0 + (c / (2.0 * m)) / 9.0) - c;
  return std::max(tau, c);
}

Result<double> waste_fraction(double checkpoint_cost_hours, double interval_hours,
                              double mtbf_hours) {
  if (auto ok = check_args(checkpoint_cost_hours, mtbf_hours); !ok.ok()) return ok.error();
  if (!(interval_hours > 0.0))
    return Error(ErrorKind::kDomain, "checkpoint interval must be positive");
  // First-order: checkpoint overhead + expected lost re-work after a
  // failure (half a segment, plus the checkpoint just taken).
  const double waste = checkpoint_cost_hours / interval_hours +
                       (interval_hours + checkpoint_cost_hours) / (2.0 * mtbf_hours);
  return std::min(waste, 1.0);
}

Result<double> efficiency(double checkpoint_cost_hours, double interval_hours,
                          double mtbf_hours) {
  auto waste = waste_fraction(checkpoint_cost_hours, interval_hours, mtbf_hours);
  if (!waste.ok()) return waste;
  return std::clamp(1.0 - waste.value(), 0.0, 1.0);
}

Result<CheckpointPlan> plan_checkpointing(double checkpoint_cost_hours, double mtbf_hours) {
  auto young = young_interval_hours(checkpoint_cost_hours, mtbf_hours);
  if (!young.ok()) return young.error();
  auto daly = daly_interval_hours(checkpoint_cost_hours, mtbf_hours);
  if (!daly.ok()) return daly.error();

  CheckpointPlan plan;
  plan.mtbf_hours = mtbf_hours;
  plan.checkpoint_cost_hours = checkpoint_cost_hours;
  plan.young_hours = young.value();
  plan.daly_hours = daly.value();
  plan.waste_at_daly = waste_fraction(checkpoint_cost_hours, plan.daly_hours, mtbf_hours).value();
  plan.efficiency_at_daly = 1.0 - plan.waste_at_daly;
  return plan;
}

}  // namespace tsufail::ops
