// Job-impact replay: what the failure log means for applications.
//
// The paper defines a failure as an error that crashes the application,
// and motivates performance-error-proportionality as "useful work done
// per failure-free period".  This module makes that concrete: replay a
// synthetic job mix against the log's failures and measure interrupted
// jobs, lost node-hours, and goodput — with and without checkpointing —
// turning MTBF/MTTR statistics into application-visible cost.
#pragma once

#include <cstdint>

#include "data/log.h"
#include "util/rng.h"

namespace tsufail::ops {

/// Synthetic job-mix parameters (drawn per job).
struct JobMixSpec {
  std::size_t jobs = 1000;
  int min_nodes = 1;
  int max_nodes = 32;               ///< node count ~ log-uniform in range
  double mean_duration_hours = 12.0;///< duration ~ exponential(mean), min 0.1 h
  /// Checkpoint interval for the checkpointed variant of the replay;
  /// lost work per kill is capped at interval + restart.
  double checkpoint_interval_hours = 4.0;
  double restart_cost_hours = 0.25;
};

struct JobImpactResult {
  std::size_t jobs = 0;
  std::size_t interrupted_jobs = 0;      ///< hit by >= 1 failure
  double interrupted_fraction = 0.0;
  double total_node_hours = 0.0;         ///< submitted useful work
  double lost_node_hours_no_ckpt = 0.0;  ///< work redone, no checkpointing
  double lost_node_hours_ckpt = 0.0;     ///< with the spec's checkpointing
  double goodput_no_ckpt = 0.0;          ///< useful / (useful + lost)
  double goodput_ckpt = 0.0;
  /// Expected node-failure encounters per job (diagnostic).
  double mean_hits_per_job = 0.0;
};

/// Replays `spec.jobs` random jobs against the log's failures.
/// Jobs start uniformly in the window, occupy a random node set, and are
/// killed by any failure on one of their nodes.  Errors: empty log or
/// invalid spec.
Result<JobImpactResult> replay_job_impact(const data::FailureLog& log, const JobMixSpec& spec,
                                          Rng& rng);

}  // namespace tsufail::ops
