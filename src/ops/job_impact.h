// Job-impact replay: what the failure log means for applications.
//
// The paper defines a failure as an error that crashes the application,
// and motivates performance-error-proportionality as "useful work done
// per failure-free period".  This module makes that concrete: replay a
// synthetic job mix against the log's failures and measure interrupted
// jobs, lost node-hours, and goodput — with and without checkpointing —
// turning MTBF/MTTR statistics into application-visible cost.
#pragma once

#include <cstdint>

#include "data/log.h"
#include "util/rng.h"

namespace tsufail::ops {

/// Synthetic job-mix parameters (drawn per job).
struct JobMixSpec {
  std::size_t jobs = 1000;
  int min_nodes = 1;
  int max_nodes = 32;               ///< node count ~ log-uniform in range
  double mean_duration_hours = 12.0;///< duration ~ exponential(mean), min 0.1 h
  /// Checkpoint interval for the checkpointed variant of the replay;
  /// lost work per kill is capped at interval + restart.
  double checkpoint_interval_hours = 4.0;
  double restart_cost_hours = 0.25;
};

struct JobImpactResult {
  std::size_t jobs = 0;
  std::size_t interrupted_jobs = 0;      ///< hit by >= 1 failure
  double interrupted_fraction = 0.0;
  double total_node_hours = 0.0;         ///< submitted useful work
  double lost_node_hours_no_ckpt = 0.0;  ///< work redone, no checkpointing
  double lost_node_hours_ckpt = 0.0;     ///< with the spec's checkpointing
  double goodput_no_ckpt = 0.0;          ///< useful / (useful + lost)
  double goodput_ckpt = 0.0;
  /// Expected node-failure encounters per job (diagnostic).
  double mean_hits_per_job = 0.0;
};

/// Replays `spec.jobs` random jobs against the log's failures.
/// Jobs start uniformly in the window, occupy a random node set, and are
/// killed by any failure on one of their nodes.  Errors: empty log or
/// invalid spec.
Result<JobImpactResult> replay_job_impact(const data::FailureLog& log, const JobMixSpec& spec,
                                          Rng& rng);

/// The fixed fork_seed stream of the job-impact stage (see util/rng.h:
/// every ops-layer stochastic entry point draws from its own fork of the
/// caller's seed, so stages sharing one replicate seed never share a
/// stream and reordering stages never perturbs draws).
inline constexpr std::uint64_t kJobImpactSeedStream = 0x10B5EED1ULL;

/// Seed-contract overload: draws from Rng(fork_seed(seed,
/// kJobImpactSeedStream)).  Same value for the same (log, spec, seed)
/// regardless of what else the caller has sampled — the form sweep
/// stages must use.
Result<JobImpactResult> replay_job_impact(const data::FailureLog& log, const JobMixSpec& spec,
                                          std::uint64_t seed);

}  // namespace tsufail::ops
