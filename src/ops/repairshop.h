// ops::repairshop — deterministic discrete-event repair orchestration.
//
// The paper samples a TTR per failure and calls that downtime.  Its
// implications section argues the opposite: at multi-GPU-node scale,
// *repair scheduling* — how many crews are on shift, whether the part is
// in stock, which broken node gets serviced first — is what determines
// fleet availability.  This module replaces the sampled-TTR model with a
// discrete-event simulator: each failure is a repair *job* whose service
// content is the log's TTR, and its actual downtime is queueing (crew
// contention, spare stockouts, maintenance-window batching, throttling)
// plus service.
//
// Model semantics (the contract both this engine and the naive reference
// simulator in testkit/repair_reference.h implement, diffed event-for-
// event by the differential oracle):
//
//   * Failure i (log record order; ties share a timestamp but keep their
//     record index) arrives at a_i = hours since log start, with service
//     content s_i = the record's ttr_hours.
//   * Degradation units: on a machine with G GPUs/node, a GPU-hardware
//     failure naming k slots costs min(G, max(1, k)) units on its node
//     (the node keeps serving on its remaining GPUs); every other
//     category costs G units (whole node down).  A node's loss is capped
//     at G no matter how many failures pile onto it.  Degradation runs
//     from *arrival* to *repair completion* — waiting in the queue is
//     real downtime, which is the whole point.
//   * Crews: `crews` identical servers; a repair occupies one crew for
//     exactly s_i hours, no preemption.  Starts assign the lowest-index
//     free crew.
//   * Spares: per-category pools (extending ops::spares semantics).  A
//     repair of a pooled category consumes one spare *at start* and
//     triggers a one-for-one restock arriving lead-time later.  An empty
//     pool blocks the start until a restock arrives.
//   * Throttling vs cluster load: when `max_active` > 0, at most that
//     many repairs may be in service at once (SNS-repair style: bound
//     repair's impact on production traffic) — unless the fleet's healthy
//     capacity fraction has dropped below `boost_below_capacity`, in
//     which case the cap is lifted to the crew count (urgency overrides
//     politeness).
//   * Policies decide the order in which waiting repairs start:
//       - FIFO: arrival order (record index).
//       - criticality-first: most degradation units first, then shortest
//         service, then arrival order.
//       - batched windows: partial-degradation repairs may only *start*
//         inside periodic maintenance windows; whole-node failures are
//         emergencies and start any time.  FIFO order within a window.
//   * Event processing: time advances tick by tick.  Within one tick at
//     time t, state changes apply in a fixed order — spare arrivals,
//     then completions (by failure index), then arrivals (by failure
//     index) — followed by a dispatch loop that repeatedly starts the
//     policy-best eligible waiting repair until crews, spares, the
//     throttle cap, or the window gate say stop.  Zero-service repairs
//     complete inside the same tick (the completion re-enters the tick
//     loop), so chains of instant repairs drain through one crew at one
//     instant deterministically.
//
// Everything is exact integer/double arithmetic on the same formulas in
// engine and reference, so the oracle compares start/completion times
// for equality, not tolerance.  The orchestrator draws no random
// numbers: given a log and a config the schedule is a pure function, and
// policy sweeps stay bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/log.h"
#include "ops/spares.h"

namespace tsufail::ops {

/// Scheduling discipline for the waiting queue.
enum class RepairPolicy {
  kFifo,              ///< arrival order
  kCriticalityFirst,  ///< most capacity lost first, then shortest service
  kBatchedWindows,    ///< partials wait for maintenance windows; full-node
                      ///< failures start immediately
};

std::string_view to_string(RepairPolicy policy) noexcept;
/// Parses "fifo" / "critical" / "criticality-first" / "batched" /
/// "batched-windows" (case-insensitive, dashes/underscores ignored).
Result<RepairPolicy> parse_repair_policy(std::string_view name);

/// One per-category spare pool (ops::spares semantics: one-for-one
/// restock with a procurement lead time).  Categories without a pool
/// need no part.
struct SparePoolConfig {
  data::Category category = data::Category::kGpu;
  SparePolicy policy;  ///< initial_spares + restock_lead_time_hours
};

/// Periodic maintenance windows [offset + k*period, offset + k*period +
/// duration), k = 0, 1, ...  Only consulted by kBatchedWindows.
struct MaintenanceWindows {
  double offset_hours = 0.0;
  double period_hours = 168.0;   ///< weekly
  double duration_hours = 24.0;  ///< window length; == period means always open
};

/// Concurrency throttle against production load.
struct RepairThrottle {
  /// Max repairs in service at once; 0 = no throttle (crews still bound).
  std::size_t max_active = 0;
  /// When healthy capacity fraction drops strictly below this, the
  /// throttle lifts to the crew count.  0 = never lift.
  double boost_below_capacity = 0.0;
};

struct RepairShopConfig {
  std::size_t crews = 4;
  RepairPolicy policy = RepairPolicy::kFifo;
  std::vector<SparePoolConfig> spare_pools;  ///< at most one per category
  RepairThrottle throttle;
  MaintenanceWindows windows;
  /// Simulation horizon: last arrival (or window end, whichever is
  /// later) plus this slack.  Repairs not finished by then are reported
  /// unfinished and their downtime runs to the horizon.
  double horizon_slack_hours = 24.0 * 365.0;
};

/// Bounds-checks a config (crews in [1, 1e6], pools unique with sane
/// sizes/leads, throttle boost in [0, 1], windows with period in
/// [0.5 h, 1e6 h] and 0 < duration <= period, slack in [0, 1e7 h]).
Result<void> validate_repair_config(const RepairShopConfig& config);

/// One-line human rendering of a config, in the same key=value shape the
/// parser accepts ("crews=4, policy=fifo, spares=GPU:2:336, ...").
std::string describe_repair_config(const RepairShopConfig& config);

/// Parses a compact "key=value,key=value" shop description:
///   crews=4,policy=critical,spares=GPU:2:336;Memory:1:168,
///   throttle=2,boost=0.9,window=0/168/24,horizon-slack=8760
/// Unknown keys, malformed numbers, and out-of-range values are domain
/// errors, never crashes (the fuzz suite feeds this garbage).
Result<RepairShopConfig> parse_repair_config(std::string_view text);

/// The schedule for one failure.  Times are hours since log start;
/// kNever marks a repair still waiting at the horizon.
struct RepairAssignment {
  static constexpr double kNever = -1.0;
  double arrival_hours = 0.0;
  double start_hours = kNever;       ///< kNever = never started
  double completion_hours = kNever;  ///< known at start (start + service)
  std::size_t crew = SIZE_MAX;       ///< SIZE_MAX = never assigned
  int degradation_units = 0;         ///< capacity units lost while open
  bool consumed_spare = false;
  bool waited_for_spare = false;     ///< blocked by an empty pool >= 1 tick

  bool started() const noexcept { return start_hours >= 0.0; }
  double wait_hours(double horizon) const noexcept {
    return (started() ? start_hours : horizon) - arrival_hours;
  }
};

struct RepairShopResult {
  std::vector<RepairAssignment> assignments;  ///< by failure index
  std::size_t completed = 0;            ///< completion <= horizon
  std::size_t in_flight_at_horizon = 0; ///< started, completes later
  std::size_t unstarted_at_horizon = 0;
  double horizon_hours = 0.0;
  double makespan_hours = 0.0;          ///< last completion (or horizon)

  double total_wait_hours = 0.0;  ///< queue time (start - arrival)
  double mean_wait_hours = 0.0;
  double max_wait_hours = 0.0;
  std::size_t peak_queue_depth = 0;  ///< waiting repairs after any tick
  std::size_t peak_active = 0;       ///< concurrent in-service repairs

  std::vector<double> crew_busy_hours;  ///< service hours per crew
  double crew_utilization = 0.0;        ///< sum busy / (crews * makespan)

  std::size_t spare_demands = 0;  ///< starts that consumed a pooled part
  std::size_t stockouts = 0;      ///< repairs that waited on an empty pool
  std::vector<std::size_t> final_pool_counts;  ///< per config pool, at end

  /// Integral of lost capacity over time, node-capped, in node-hours.
  double degraded_node_hours = 0.0;
  /// 1 - degraded_node_hours / (nodes * log window), clamped to [0, 1]:
  /// the fleet capacity actually served, repair contention included.
  double availability = 0.0;
};

/// Runs the orchestrator over a log.  Deterministic: no RNG, and the
/// result is a pure function of (log, config).  Errors: invalid config
/// or a pool category outside the machine's vocabulary.
Result<RepairShopResult> run_repair_shop(const data::FailureLog& log,
                                         const RepairShopConfig& config);

/// The log with every record's ttr_hours replaced by its *effective*
/// downtime under the schedule (completion - arrival; horizon - arrival
/// for unfinished repairs), so the existing availability / job-impact
/// models score the schedule instead of the sampled TTR.
/// Precondition: `result` came from run_repair_shop on `log`.
data::FailureLog effective_log(const data::FailureLog& log, const RepairShopResult& result);

}  // namespace tsufail::ops
