// Discrete-event simulation of a checkpointed job under failures.
//
// The Young/Daly formulas in checkpoint.h are first-order analytic
// approximations; this simulator is the ground truth they approximate —
// a long-running job writes checkpoints every `interval`, failures
// arrive from a caller-supplied inter-arrival sampler, and each failure
// rolls the job back to its last checkpoint plus a restart penalty.
// Benches/tests use it to verify the analytic optimum really is optimal
// and to quantify where the approximation degrades (interval ~ MTBF).
#pragma once

#include <functional>

#include "util/error.h"
#include "util/rng.h"

namespace tsufail::ops {

struct CheckpointSimConfig {
  double work_hours = 0.0;         ///< useful compute the job must finish
  double interval_hours = 0.0;     ///< checkpoint period (useful time between writes)
  double checkpoint_cost_hours = 0.0;
  double restart_cost_hours = 0.0; ///< reboot/requeue cost after a failure
};

struct CheckpointSimResult {
  double wall_hours = 0.0;         ///< total elapsed time to completion
  double useful_hours = 0.0;       ///< == config.work_hours on success
  double checkpoint_hours = 0.0;   ///< time spent writing checkpoints
  double lost_hours = 0.0;         ///< re-done work + restart costs
  double waste_fraction = 0.0;     ///< 1 - useful / wall
  std::size_t failures = 0;
  std::size_t checkpoints = 0;
};

/// Samples the time until the next failure (hours), e.g. exponential(MTBF).
using FailureSampler = std::function<double(Rng&)>;

/// Runs one job to completion.  Errors: non-positive work/interval,
/// negative costs, or a sampler returning non-positive gaps.
Result<CheckpointSimResult> simulate_checkpointed_job(const CheckpointSimConfig& config,
                                                      const FailureSampler& next_failure,
                                                      Rng& rng);

/// Convenience: memoryless failures with the given MTBF, averaged over
/// `replications` runs (fresh failure stream each).  Errors as above.
Result<CheckpointSimResult> simulate_checkpointed_job_exponential(
    const CheckpointSimConfig& config, double mtbf_hours, Rng& rng,
    std::size_t replications = 32);

/// The fixed fork_seed stream of the checkpoint simulator (see the
/// seed-contract note in job_impact.h).
inline constexpr std::uint64_t kCheckpointSimSeedStream = 0xC4B5EED1ULL;

/// Seed-contract overload: draws from Rng(fork_seed(seed,
/// kCheckpointSimSeedStream)), independent of any other stage sharing
/// the same base seed.
Result<CheckpointSimResult> simulate_checkpointed_job_exponential(
    const CheckpointSimConfig& config, double mtbf_hours, std::uint64_t seed,
    std::size_t replications = 32);

}  // namespace tsufail::ops
