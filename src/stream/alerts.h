// AlertEngine: declarative threshold rules with hysteresis over
// HealthSnapshots.
//
// A rule compares one snapshot signal against a threshold.  To keep a
// signal hovering at the threshold from flapping, every rule carries a
// hysteresis band: a raised "below"-type rule clears only once the signal
// recovers above threshold * (1 + band), and a raised "above"-type rule
// only once it drops below threshold * (1 - band).  The engine emits a
// typed Alert exactly at each raise and clear transition.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/machine.h"
#include "stream/health.h"
#include "util/civil_time.h"

namespace tsufail::stream {

/// What a rule watches.
enum class AlertKind {
  kWindowMtbfBelow,  ///< last completed rolling window's MTBF < threshold hours
  kRateAbove,        ///< EWMA failure rate > threshold failures/day
  kMttrP95Above,     ///< P^2 p95 TTR estimate > threshold hours
  kMultiGpuBurst,    ///< multi-GPU events in the burst window >= threshold
  kSlotSkewAbove,    ///< hottest-slot share over uniform > threshold ratio
};

/// "window-mtbf-below" / "rate-above" / ...
const char* to_string(AlertKind kind) noexcept;

enum class Severity { kInfo, kWarning, kCritical };

/// "info" / "warning" / "critical".
const char* to_string(Severity severity) noexcept;

/// One declarative rule.
struct AlertRule {
  std::string name;            ///< unique identifier, shown in alerts
  AlertKind kind = AlertKind::kRateAbove;
  double threshold = 0.0;
  Severity severity = Severity::kWarning;
  /// Relative hysteresis band in [0, 1): a raised alert clears only after
  /// the signal recovers past the band, not merely back to the threshold.
  double hysteresis = 0.1;
  /// Rule stays silent until the monitor has seen this many events
  /// (estimators are noisy early on).
  std::uint64_t min_events = 0;
};

/// One raise or clear transition.
struct Alert {
  std::string rule;
  AlertKind kind = AlertKind::kRateAbove;
  Severity severity = Severity::kWarning;
  bool raised = true;          ///< false = the condition cleared
  TimePoint time;              ///< snapshot time of the transition
  double value = 0.0;          ///< the signal that crossed
  double threshold = 0.0;
  std::string message;         ///< human-readable one-liner
};

/// Formats as "RAISED [warning] low-mtbf: ..." for logs and the CLI.
std::string format_alert(const Alert& alert);

/// Lifetime raise/clear totals for one rule (parallel to rules()).
struct RuleActivity {
  std::uint64_t fired = 0;
  std::uint64_t cleared = 0;
};

class AlertEngine {
 public:
  /// Errors: duplicate rule names, empty name, threshold/hysteresis out
  /// of range.
  static Result<AlertEngine> create(std::vector<AlertRule> rules);

  /// Evaluates every rule against a snapshot; returns the transitions
  /// (empty for the steady state, which is the common case).
  std::vector<Alert> evaluate(const HealthSnapshot& snapshot);

  /// Rules currently in the raised state.
  std::vector<std::string> active() const;

  std::span<const AlertRule> rules() const noexcept { return {rules_.data(), rules_.size()}; }
  /// Per-rule fired/cleared counts, parallel to rules().
  std::span<const RuleActivity> activity() const noexcept {
    return {activity_.data(), activity_.size()};
  }
  std::uint64_t raised_total() const noexcept { return raised_total_; }
  std::uint64_t cleared_total() const noexcept { return cleared_total_; }

 private:
  explicit AlertEngine(std::vector<AlertRule> rules);

  std::vector<AlertRule> rules_;
  std::vector<bool> raised_;       ///< parallel to rules_
  std::vector<RuleActivity> activity_;  ///< parallel to rules_
  std::uint64_t raised_total_ = 0;
  std::uint64_t cleared_total_ = 0;
};

/// Knobs for the shared default rule set.  One definition serves both
/// consumers — `tsufail watch` and the serve layer's per-tenant
/// engines — so the fleet daemon and the one-shot monitor can never
/// drift apart on what "the default alerts" means.
struct RuleSetOptions {
  /// Historical failure count calibrating the MTBF/rate baselines
  /// (e.g. the paper's counts: 897 for Tsubame-2, 338 for Tsubame-3).
  std::size_t expected_failures = 0;
  /// Multi-GPU events inside the burst window that raise the burst rule.
  double burst_threshold = 3.0;
};

/// Paper-informed default rule set for a machine: window MTBF collapsing
/// below a quarter of the spec-wide expectation, EWMA rate above 4x the
/// long-run average, multi-GPU bursts (Figure 8), p95 repair blow-ups,
/// and per-slot skew beyond the paper's Figure 5 imbalance.
std::vector<AlertRule> default_rules(const data::MachineSpec& spec,
                                     const RuleSetOptions& options);

/// Convenience overload with the default burst threshold.
std::vector<AlertRule> default_rules(const data::MachineSpec& spec,
                                     std::size_t expected_failures);

/// The paper's historical failure count for a machine — the default
/// `expected_failures` calibration when the operator gives none.
std::size_t paper_expected_failures(const data::MachineSpec& spec) noexcept;

}  // namespace tsufail::stream
