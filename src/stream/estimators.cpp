#include "stream/estimators.h"

#include <algorithm>
#include <cmath>

#include "stats/regression.h"

namespace tsufail::stream {

// --- P2Quantile -----------------------------------------------------------

Result<P2Quantile> P2Quantile::create(double q) {
  if (!(q > 0.0) || !(q < 1.0) || !std::isfinite(q))
    return Error(ErrorKind::kDomain, "P2Quantile: quantile must be inside (0, 1)");
  P2Quantile estimator(q);
  estimator.desired_[0] = 1.0;
  estimator.desired_[1] = 1.0 + 2.0 * q;
  estimator.desired_[2] = 1.0 + 4.0 * q;
  estimator.desired_[3] = 3.0 + 2.0 * q;
  estimator.desired_[4] = 5.0;
  estimator.increments_[0] = 0.0;
  estimator.increments_[1] = q / 2.0;
  estimator.increments_[2] = q;
  estimator.increments_[3] = (1.0 + q) / 2.0;
  estimator.increments_[4] = 1.0;
  return estimator;
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  // Locate the marker cell containing x, extending the extremes if needed.
  std::size_t k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers toward their desired positions,
  // with parabolic (P^2) interpolation falling back to linear.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double delta = desired_[i] - positions_[i];
    if ((delta >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (delta <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double d = delta >= 0.0 ? 1.0 : -1.0;
      const double np = positions_[i + 1] - positions_[i];
      const double nm = positions_[i] - positions_[i - 1];
      const double parabolic =
          heights_[i] + d / (positions_[i + 1] - positions_[i - 1]) *
                            ((nm + d) * (heights_[i + 1] - heights_[i]) / np +
                             (np - d) * (heights_[i] - heights_[i - 1]) / nm);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const std::size_t j = d > 0.0 ? i + 1 : i - 1;
        heights_[i] += d * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      positions_[i] += d;
    }
  }
  ++count_;
}

double P2Quantile::estimate() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Small-sample exact path: interpolated order statistic of the buffer.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double h = (static_cast<double>(count_) - 1.0) * q_;
    const auto lo = static_cast<std::size_t>(h);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    return sorted[lo] + (h - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

// --- EwmaRate -------------------------------------------------------------

EwmaRate::EwmaRate(double tau_hours) : tau_hours_(tau_hours) {
  TSUFAIL_REQUIRE(tau_hours > 0.0, "EwmaRate: tau must be positive");
}

void EwmaRate::observe(TimePoint t) noexcept {
  if (events_ > 0) {
    const double dt = hours_between(last_, t);
    intensity_ *= std::exp(-std::max(dt, 0.0) / tau_hours_);
  }
  intensity_ += 1.0 / tau_hours_;
  last_ = t;
  ++events_;
}

double EwmaRate::per_hour(TimePoint as_of) const noexcept {
  if (events_ == 0) return 0.0;
  const double dt = std::max(hours_between(last_, as_of), 0.0);
  return intensity_ * std::exp(-dt / tau_hours_);
}

// --- SlidingCounter -------------------------------------------------------

SlidingCounter::SlidingCounter(double window_hours) : window_hours_(window_hours) {
  TSUFAIL_REQUIRE(window_hours > 0.0, "SlidingCounter: window must be positive");
}

void SlidingCounter::observe(TimePoint t) { times_.push_back(t); }

std::size_t SlidingCounter::count(TimePoint as_of) {
  while (!times_.empty() && hours_between(times_.front(), as_of) >= window_hours_)
    times_.pop_front();
  return times_.size();
}

// --- RollingWindowEstimator -----------------------------------------------

Result<RollingWindowEstimator> RollingWindowEstimator::create(double total_hours,
                                                              double window_days,
                                                              double step_days) {
  if (!(window_days > 0.0) || !(step_days > 0.0))
    return Error(ErrorKind::kDomain,
                 "RollingWindowEstimator: window and step must be positive");
  RollingWindowEstimator estimator;
  estimator.total_hours_ = total_hours;
  estimator.window_days_ = window_days;
  estimator.window_hours_ = window_days * 24.0;
  estimator.step_hours_ = step_days * 24.0;
  if (estimator.window_hours_ > total_hours)
    return Error(ErrorKind::kDomain, "RollingWindowEstimator: window exceeds the log span");
  // The grid must accumulate exactly like the batch analyzer's loop so the
  // two paths see bit-identical window bounds.
  for (double start = 0.0; start + estimator.window_hours_ <= total_hours + 1e-9;
       start += estimator.step_hours_)
    estimator.starts_.push_back(start);
  if (estimator.starts_.size() < 3)
    return Error(ErrorKind::kDomain,
                 "RollingWindowEstimator: fewer than 3 windows; shrink window/step");
  estimator.completed_.reserve(estimator.starts_.size());
  return estimator;
}

void RollingWindowEstimator::observe(double hours_since_start, double ttr_hours) {
  TSUFAIL_REQUIRE(!finished_, "RollingWindowEstimator: observe after finish");
  TSUFAIL_REQUIRE(events_.empty() || hours_since_start >= events_.back().hours,
                  "RollingWindowEstimator: events must arrive in time order");
  // Every window whose right edge lies strictly before this event can no
  // longer change; emit it before buffering the event.
  while (next_window_ < starts_.size() &&
         starts_[next_window_] + window_hours_ < hours_since_start)
    finalize_next_window();
  events_.push_back({hours_since_start, ttr_hours});

  const double quarter = total_hours_ / 4.0;
  if (hours_since_start < quarter) ++early_events_;
  if (hours_since_start > total_hours_ - quarter) ++late_events_;
}

void RollingWindowEstimator::finalize_next_window() {
  const double start = starts_[next_window_];
  const double end = start + window_hours_;
  // Events before this window's left edge cannot appear in any later
  // window either (starts are non-decreasing): drop them.
  while (!events_.empty() && events_.front().hours < start) events_.pop_front();

  analysis::RollingWindow window;
  window.center_hours = (start + end) / 2.0;
  double ttr_sum = 0.0;
  for (const Event& event : events_) {
    if (event.hours > end) break;
    ++window.failures;
    ttr_sum += event.ttr;
  }
  window.failures_per_day = static_cast<double>(window.failures) / window_days_;
  if (window.failures > 0) {
    window.mtbf_hours = window_hours_ / static_cast<double>(window.failures);
    window.mttr_hours = ttr_sum / static_cast<double>(window.failures);
  }
  completed_.push_back(window);
  ++next_window_;
}

void RollingWindowEstimator::finish() {
  if (finished_) return;
  while (next_window_ < starts_.size()) finalize_next_window();
  events_.clear();
  finished_ = true;
}

Result<analysis::RollingTrends> RollingWindowEstimator::trends() const {
  TSUFAIL_REQUIRE(finished_, "RollingWindowEstimator: trends before finish");
  analysis::RollingTrends trends;
  trends.window_hours = window_hours_;
  trends.step_hours = step_hours_;
  trends.windows = completed_;

  std::vector<double> centers, rates, mttrs_x, mttrs_y;
  for (const auto& window : trends.windows) {
    centers.push_back(window.center_hours);
    rates.push_back(window.failures_per_day);
    if (window.failures > 0) {
      mttrs_x.push_back(window.center_hours);
      mttrs_y.push_back(window.mttr_hours);
    }
  }
  auto rate_fit = stats::linear_fit(centers, rates);
  if (!rate_fit.ok()) return rate_fit.error().with_context("rate trend");
  trends.rate_trend = rate_fit.value();
  if (auto mttr_fit = stats::linear_fit(mttrs_x, mttrs_y); mttr_fit.ok())
    trends.mttr_trend = mttr_fit.value();

  trends.early_late_rate_ratio =
      late_events_ == 0 ? static_cast<double>(early_events_)
                        : static_cast<double>(early_events_) / static_cast<double>(late_events_);
  return trends;
}

}  // namespace tsufail::stream
