#include "stream/alerts.h"

#include <set>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tsufail::stream {
namespace {

/// Signal extracted from a snapshot for one rule kind; `available` is
/// false while the snapshot cannot speak to the rule yet (e.g. no rolling
/// window completed).
struct Signal {
  double value = 0.0;
  bool available = false;
};

Signal extract(AlertKind kind, const HealthSnapshot& snapshot) {
  switch (kind) {
    case AlertKind::kWindowMtbfBelow:
      // A completed window with zero failures has mtbf_hours == 0 by the
      // batch convention, but means "no failures at all" — never alert.
      if (!snapshot.window.has_value() || snapshot.window->failures == 0) return {};
      return {snapshot.window->mtbf_hours, true};
    case AlertKind::kRateAbove:
      return {snapshot.ewma_failures_per_day, snapshot.events > 0};
    case AlertKind::kMttrP95Above:
      return {snapshot.ttr_p95_hours, snapshot.events > 0};
    case AlertKind::kMultiGpuBurst:
      return {static_cast<double>(snapshot.multi_gpu_burst_size), true};
    case AlertKind::kSlotSkewAbove:
      return {snapshot.slot_skew, snapshot.slot_attributed_events > 0};
  }
  return {};
}

/// Events the rule's min_events gate counts.
std::uint64_t gate_events(AlertKind kind, const HealthSnapshot& snapshot) {
  return kind == AlertKind::kSlotSkewAbove ? snapshot.slot_attributed_events : snapshot.events;
}

std::string describe(const AlertRule& rule, double value) {
  std::ostringstream text;
  text.precision(3);
  switch (rule.kind) {
    case AlertKind::kWindowMtbfBelow:
      text << "rolling-window MTBF " << value << " h vs floor " << rule.threshold << " h";
      break;
    case AlertKind::kRateAbove:
      text << "EWMA failure rate " << value << "/day vs ceiling " << rule.threshold << "/day";
      break;
    case AlertKind::kMttrP95Above:
      text << "p95 repair time " << value << " h vs ceiling " << rule.threshold << " h";
      break;
    case AlertKind::kMultiGpuBurst:
      text << value << " multi-GPU failures in the burst window (threshold "
           << rule.threshold << ")";
      break;
    case AlertKind::kSlotSkewAbove:
      text << "hottest GPU slot at " << value << "x the uniform share (threshold "
           << rule.threshold << "x)";
      break;
  }
  return text.str();
}

}  // namespace

const char* to_string(AlertKind kind) noexcept {
  switch (kind) {
    case AlertKind::kWindowMtbfBelow: return "window-mtbf-below";
    case AlertKind::kRateAbove: return "rate-above";
    case AlertKind::kMttrP95Above: return "mttr-p95-above";
    case AlertKind::kMultiGpuBurst: return "multi-gpu-burst";
    case AlertKind::kSlotSkewAbove: return "slot-skew-above";
  }
  return "?";
}

const char* to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

std::string format_alert(const Alert& alert) {
  std::string line = alert.raised ? "RAISED" : "CLEARED";
  line += " [";
  line += to_string(alert.severity);
  line += "] ";
  line += alert.rule;
  line += ": ";
  line += alert.message;
  line += " at ";
  line += format_time(alert.time);
  return line;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)), raised_(rules_.size(), false), activity_(rules_.size()) {}

Result<AlertEngine> AlertEngine::create(std::vector<AlertRule> rules) {
  std::set<std::string> names;
  for (const auto& rule : rules) {
    if (rule.name.empty())
      return Error(ErrorKind::kValidation, "AlertEngine: rule with an empty name");
    if (!names.insert(rule.name).second)
      return Error(ErrorKind::kValidation, "AlertEngine: duplicate rule name '" + rule.name + "'");
    if (!(rule.threshold > 0.0))
      return Error(ErrorKind::kValidation,
                   "AlertEngine: rule '" + rule.name + "' needs a positive threshold");
    if (!(rule.hysteresis >= 0.0) || rule.hysteresis >= 1.0)
      return Error(ErrorKind::kValidation,
                   "AlertEngine: rule '" + rule.name + "' hysteresis must be in [0, 1)");
  }
  return AlertEngine(std::move(rules));
}

std::vector<Alert> AlertEngine::evaluate(const HealthSnapshot& snapshot) {
  std::vector<Alert> transitions;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    if (gate_events(rule.kind, snapshot) < rule.min_events) continue;
    const Signal signal = extract(rule.kind, snapshot);
    if (!signal.available) continue;

    const bool below = rule.kind == AlertKind::kWindowMtbfBelow;
    // Burst counts are discrete "at least N" conditions; the others are
    // strict threshold crossings.
    const bool breach = below            ? signal.value < rule.threshold
                        : rule.kind == AlertKind::kMultiGpuBurst
                            ? signal.value >= rule.threshold
                            : signal.value > rule.threshold;
    const bool recovered = below ? signal.value >= rule.threshold * (1.0 + rule.hysteresis)
                                 : signal.value <= rule.threshold * (1.0 - rule.hysteresis);

    // Transitions are rare (steady state emits nothing), so registering
    // the per-rule obs counter by name on each one is off the hot path.
    const bool was_raised = raised_[i];
    if (!was_raised && breach) {
      raised_[i] = true;
      ++raised_total_;
      ++activity_[i].fired;
      static obs::Counter fired = obs::counter("alerts.fired");
      fired.add();
      if (obs::enabled()) obs::counter("alerts.fired." + rule.name).add();
      transitions.push_back({rule.name, rule.kind, rule.severity, true, snapshot.as_of,
                             signal.value, rule.threshold, describe(rule, signal.value)});
    } else if (was_raised && recovered) {
      raised_[i] = false;
      ++cleared_total_;
      ++activity_[i].cleared;
      static obs::Counter cleared = obs::counter("alerts.cleared");
      cleared.add();
      if (obs::enabled()) obs::counter("alerts.cleared." + rule.name).add();
      transitions.push_back({rule.name, rule.kind, rule.severity, false, snapshot.as_of,
                             signal.value, rule.threshold, describe(rule, signal.value)});
    }
  }
  return transitions;
}

std::vector<std::string> AlertEngine::active() const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (raised_[i]) names.push_back(rules_[i].name);
  }
  return names;
}

std::vector<AlertRule> default_rules(const data::MachineSpec& spec,
                                     const RuleSetOptions& options) {
  TSUFAIL_REQUIRE(options.expected_failures > 0,
                  "default_rules: expected_failures must be positive");
  TSUFAIL_REQUIRE(options.burst_threshold > 0.0,
                  "default_rules: burst_threshold must be positive");
  const double window_days = spec.window_hours() / 24.0;
  const double baseline_mtbf_hours =
      spec.window_hours() / static_cast<double>(options.expected_failures);
  const double baseline_rate_per_day =
      static_cast<double>(options.expected_failures) / window_days;

  std::vector<AlertRule> rules;
  rules.push_back({"low-window-mtbf", AlertKind::kWindowMtbfBelow, baseline_mtbf_hours / 4.0,
                   Severity::kWarning, 0.1, 10});
  rules.push_back({"rate-surge", AlertKind::kRateAbove, 4.0 * baseline_rate_per_day,
                   Severity::kCritical, 0.1, 10});
  rules.push_back({"repair-blowup", AlertKind::kMttrP95Above, 168.0, Severity::kWarning, 0.1, 20});
  rules.push_back({"multi-gpu-burst", AlertKind::kMultiGpuBurst, options.burst_threshold,
                   Severity::kCritical, 0.1, 0});
  rules.push_back({"slot-skew", AlertKind::kSlotSkewAbove, 2.0, Severity::kWarning, 0.1, 30});
  return rules;
}

std::vector<AlertRule> default_rules(const data::MachineSpec& spec,
                                     std::size_t expected_failures) {
  return default_rules(spec, RuleSetOptions{expected_failures, 3.0});
}

std::size_t paper_expected_failures(const data::MachineSpec& spec) noexcept {
  return spec.machine == data::Machine::kTsubame2 ? 897 : 338;
}

}  // namespace tsufail::stream
