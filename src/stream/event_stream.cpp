#include "stream/event_stream.h"

#include <utility>

#include "obs/metrics.h"

namespace tsufail::stream {
namespace {

// Mirrors of StreamStats as obs counters, so `tsufail watch --metrics`
// exports ingest accounting without threading the stream through the
// exporter.  Counting the same semantic events keeps them jobs-invariant.
obs::Counter& offered_counter() {
  static obs::Counter c = obs::counter("stream.offered");
  return c;
}
obs::Counter& accepted_counter() {
  static obs::Counter c = obs::counter("stream.accepted");
  return c;
}
obs::Counter& released_counter() {
  static obs::Counter c = obs::counter("stream.released");
  return c;
}
obs::Counter& quarantined_invalid_counter() {
  static obs::Counter c = obs::counter("stream.quarantined_invalid");
  return c;
}
obs::Counter& quarantined_late_counter() {
  static obs::Counter c = obs::counter("stream.quarantined_late");
  return c;
}
obs::Counter& duplicates_counter() {
  static obs::Counter c = obs::counter("stream.rejected_duplicates");
  return c;
}
obs::Gauge& pending_gauge() {
  static obs::Gauge g = obs::gauge("stream.pending");
  return g;
}
obs::Gauge& quarantine_gauge() {
  static obs::Gauge g = obs::gauge("stream.quarantine_size");
  return g;
}

}  // namespace

const char* to_string(IngestOutcome outcome) noexcept {
  switch (outcome) {
    case IngestOutcome::kAccepted: return "accepted";
    case IngestOutcome::kQuarantinedInvalid: return "quarantined-invalid";
    case IngestOutcome::kQuarantinedLate: return "quarantined-late";
    case IngestOutcome::kRejectedDuplicate: return "rejected-duplicate";
  }
  return "?";
}

Result<EventStream> EventStream::create(data::MachineSpec spec, StreamConfig config) {
  if (!(config.reorder_horizon_hours >= 0.0))
    return Error(ErrorKind::kDomain, "EventStream: reorder horizon must be >= 0");
  if (!(config.slack_hours >= 0.0))
    return Error(ErrorKind::kDomain, "EventStream: slack must be >= 0");
  if (spec.log_end < spec.log_start)
    return Error(ErrorKind::kDomain, "EventStream: spec window ends before it starts");
  return EventStream(std::move(spec), config);
}

Result<IngestOutcome> EventStream::offer(const data::FailureRecord& record) {
  if (finished_)
    return Error(ErrorKind::kInternal, "EventStream: offer after finish");
  const std::uint64_t index = stats_.offered++;
  offered_counter().add();

  if (auto valid = data::validate_record(record, spec_, config_.slack_hours); !valid.ok()) {
    ++stats_.quarantined_invalid;
    quarantined_invalid_counter().add();
    QuarantinedRecord entry{record, valid.error(), index};
    if (quarantine_.size() >= config_.quarantine_capacity && !quarantine_.empty()) {
      quarantine_.erase(quarantine_.begin());
      ++stats_.quarantine_dropped;
    }
    if (config_.quarantine_capacity > 0) quarantine_.push_back(std::move(entry));
    quarantine_gauge().set(static_cast<double>(quarantine_.size()));
    return IngestOutcome::kQuarantinedInvalid;
  }

  if (watermark_.has_value() && record.time < *watermark_) {
    ++stats_.quarantined_late;
    quarantined_late_counter().add();
    quarantine_record(record,
                      Error(ErrorKind::kValidation,
                            "record at " + format_time(record.time) +
                                " arrived behind the watermark " + format_time(*watermark_) +
                                " (reorder horizon " +
                                std::to_string(config_.reorder_horizon_hours) + " h)"));
    quarantine_gauge().set(static_cast<double>(quarantine_.size()));
    return IngestOutcome::kQuarantinedLate;
  }

  if (config_.detect_duplicates) {
    const auto fingerprint =
        std::make_tuple(record.time.seconds_since_epoch(), record.node, record.category);
    if (!fingerprints_.insert(fingerprint).second) {
      ++stats_.rejected_duplicates;
      duplicates_counter().add();
      return IngestOutcome::kRejectedDuplicate;
    }
  }

  pending_.push(record);
  ++stats_.accepted;
  accepted_counter().add();
  if (stats_.accepted == 1 || record.time > max_time_) max_time_ = record.time;
  watermark_ = max_time_.plus_hours(-config_.reorder_horizon_hours);
  release_ready();
  pending_gauge().set(static_cast<double>(pending_.size()));
  return IngestOutcome::kAccepted;
}

void EventStream::quarantine_record(const data::FailureRecord& record, Error error) {
  if (config_.quarantine_capacity == 0) return;
  if (quarantine_.size() >= config_.quarantine_capacity) {
    quarantine_.erase(quarantine_.begin());
    ++stats_.quarantine_dropped;
  }
  quarantine_.push_back({record, std::move(error), stats_.offered - 1});
}

void EventStream::release_ready() {
  if (!watermark_.has_value()) return;
  while (!pending_.empty() && pending_.top().time <= *watermark_) {
    released_.push_back(pending_.top());
    pending_.pop();
    ++stats_.released;
    released_counter().add();
  }
  // Fingerprints older than the watermark can no longer collide with an
  // acceptable record (anything that old is quarantined as late), so the
  // set stays bounded by the horizon occupancy.
  const std::int64_t cutoff = watermark_->seconds_since_epoch();
  while (!fingerprints_.empty() && std::get<0>(*fingerprints_.begin()) < cutoff)
    fingerprints_.erase(fingerprints_.begin());
}

std::optional<data::FailureRecord> EventStream::poll() {
  if (released_.empty()) return std::nullopt;
  data::FailureRecord record = std::move(released_.front());
  released_.pop_front();
  return record;
}

void EventStream::finish() {
  if (finished_) return;
  finished_ = true;
  while (!pending_.empty()) {
    released_.push_back(pending_.top());
    pending_.pop();
    ++stats_.released;
    released_counter().add();
  }
  fingerprints_.clear();
  pending_gauge().set(0.0);
}

}  // namespace tsufail::stream
