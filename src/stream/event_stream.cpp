#include "stream/event_stream.h"

#include <utility>

namespace tsufail::stream {

const char* to_string(IngestOutcome outcome) noexcept {
  switch (outcome) {
    case IngestOutcome::kAccepted: return "accepted";
    case IngestOutcome::kQuarantinedInvalid: return "quarantined-invalid";
    case IngestOutcome::kQuarantinedLate: return "quarantined-late";
    case IngestOutcome::kRejectedDuplicate: return "rejected-duplicate";
  }
  return "?";
}

Result<EventStream> EventStream::create(data::MachineSpec spec, StreamConfig config) {
  if (!(config.reorder_horizon_hours >= 0.0))
    return Error(ErrorKind::kDomain, "EventStream: reorder horizon must be >= 0");
  if (!(config.slack_hours >= 0.0))
    return Error(ErrorKind::kDomain, "EventStream: slack must be >= 0");
  if (spec.log_end < spec.log_start)
    return Error(ErrorKind::kDomain, "EventStream: spec window ends before it starts");
  return EventStream(std::move(spec), config);
}

Result<IngestOutcome> EventStream::offer(const data::FailureRecord& record) {
  if (finished_)
    return Error(ErrorKind::kInternal, "EventStream: offer after finish");
  const std::uint64_t index = stats_.offered++;

  if (auto valid = data::validate_record(record, spec_, config_.slack_hours); !valid.ok()) {
    ++stats_.quarantined_invalid;
    QuarantinedRecord entry{record, valid.error(), index};
    if (quarantine_.size() >= config_.quarantine_capacity && !quarantine_.empty()) {
      quarantine_.erase(quarantine_.begin());
      ++stats_.quarantine_dropped;
    }
    if (config_.quarantine_capacity > 0) quarantine_.push_back(std::move(entry));
    return IngestOutcome::kQuarantinedInvalid;
  }

  if (watermark_.has_value() && record.time < *watermark_) {
    ++stats_.quarantined_late;
    quarantine_record(record,
                      Error(ErrorKind::kValidation,
                            "record at " + format_time(record.time) +
                                " arrived behind the watermark " + format_time(*watermark_) +
                                " (reorder horizon " +
                                std::to_string(config_.reorder_horizon_hours) + " h)"));
    return IngestOutcome::kQuarantinedLate;
  }

  if (config_.detect_duplicates) {
    const auto fingerprint =
        std::make_tuple(record.time.seconds_since_epoch(), record.node, record.category);
    if (!fingerprints_.insert(fingerprint).second) {
      ++stats_.rejected_duplicates;
      return IngestOutcome::kRejectedDuplicate;
    }
  }

  pending_.push(record);
  ++stats_.accepted;
  if (stats_.accepted == 1 || record.time > max_time_) max_time_ = record.time;
  watermark_ = max_time_.plus_hours(-config_.reorder_horizon_hours);
  release_ready();
  return IngestOutcome::kAccepted;
}

void EventStream::quarantine_record(const data::FailureRecord& record, Error error) {
  if (config_.quarantine_capacity == 0) return;
  if (quarantine_.size() >= config_.quarantine_capacity) {
    quarantine_.erase(quarantine_.begin());
    ++stats_.quarantine_dropped;
  }
  quarantine_.push_back({record, std::move(error), stats_.offered - 1});
}

void EventStream::release_ready() {
  if (!watermark_.has_value()) return;
  while (!pending_.empty() && pending_.top().time <= *watermark_) {
    released_.push_back(pending_.top());
    pending_.pop();
    ++stats_.released;
  }
  // Fingerprints older than the watermark can no longer collide with an
  // acceptable record (anything that old is quarantined as late), so the
  // set stays bounded by the horizon occupancy.
  const std::int64_t cutoff = watermark_->seconds_since_epoch();
  while (!fingerprints_.empty() && std::get<0>(*fingerprints_.begin()) < cutoff)
    fingerprints_.erase(fingerprints_.begin());
}

std::optional<data::FailureRecord> EventStream::poll() {
  if (released_.empty()) return std::nullopt;
  data::FailureRecord record = std::move(released_.front());
  released_.pop_front();
  return record;
}

void EventStream::finish() {
  if (finished_) return;
  finished_ = true;
  while (!pending_.empty()) {
    released_.push_back(pending_.top());
    pending_.pop();
    ++stats_.released;
  }
  fingerprints_.clear();
}

}  // namespace tsufail::stream
