// HealthMonitor: live fleet-health state fed from an EventStream.
//
// One monitor owns every online estimator the alerting layer needs and
// exposes their current values as a HealthSnapshot — a plain value the
// AlertEngine (or a dashboard) evaluates.  All state is bounded: O(1)
// scalars plus the window-occupancy buffers of the sliding estimators.
//
// observe() requires in-time-order records, which is exactly what an
// EventStream's poll()/cursor releases.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "data/machine.h"
#include "data/record.h"
#include "stream/estimators.h"
#include "util/error.h"

namespace tsufail::stream {

/// Monitor tuning.
struct MonitorConfig {
  /// EWMA time constant for the failure-rate estimate.
  double rate_tau_hours = 7.0 * 24.0;
  /// Rolling MTBF/MTTR grid (must match the batch analyzer's arguments
  /// for cross-checking).
  double window_days = 60.0;
  double step_days = 30.0;
  /// Trailing window for multi-GPU burst detection (the paper's Figure 8
  /// clusters resolve within days).
  double burst_window_hours = 72.0;
};

/// Point-in-time health of the monitored fleet.
struct HealthSnapshot {
  TimePoint as_of;                      ///< time of the newest observed record
  std::uint64_t events = 0;
  std::uint64_t hardware_events = 0;
  std::uint64_t software_events = 0;

  double ewma_failures_per_day = 0.0;   ///< EWMA arrival-rate estimate
  double mean_ttr_hours = 0.0;          ///< Welford mean over all TTRs
  double ttr_stddev_hours = 0.0;
  double ttr_p50_hours = 0.0;           ///< P^2 estimates
  double ttr_p95_hours = 0.0;

  /// Most recently completed rolling window (batch-equivalent numbers);
  /// unset until the stream passes the first window's right edge.
  std::optional<analysis::RollingWindow> window;

  /// Multi-GPU failure events inside the trailing burst window.
  std::size_t multi_gpu_burst_size = 0;

  /// Per-slot attribution skew: share of the hottest GPU slot over the
  /// uniform share (1 = perfectly even, gpus_per_node = all on one slot).
  /// 0 until any slot-attributed failure is seen.
  double slot_skew = 0.0;
  std::uint64_t slot_attributed_events = 0;
};

class HealthMonitor {
 public:
  /// Errors: rolling-window grid invalid for the spec's span (see
  /// RollingWindowEstimator::create) or non-positive config values.
  static Result<HealthMonitor> create(const data::MachineSpec& spec, MonitorConfig config = {});

  /// Feeds one record.  Precondition: records arrive in time order.
  void observe(const data::FailureRecord& record);

  /// Current health.  `as_of` defaults to the newest record's time.
  HealthSnapshot snapshot() const;

  /// Ends the stream: finalizes every rolling window still open.
  void finish();

  /// Completed rolling windows so far (all of them after finish()).
  std::span<const analysis::RollingWindow> windows() const noexcept {
    return rolling_.completed();
  }

  /// Batch-equivalent RollingTrends.  Precondition: finish() was called.
  Result<analysis::RollingTrends> trends() const { return rolling_.trends(); }

  const data::MachineSpec& spec() const noexcept { return spec_; }
  const MonitorConfig& config() const noexcept { return config_; }

 private:
  HealthMonitor(data::MachineSpec spec, MonitorConfig config, RollingWindowEstimator rolling,
                P2Quantile ttr_p50, P2Quantile ttr_p95);

  data::MachineSpec spec_;
  MonitorConfig config_;
  RollingWindowEstimator rolling_;
  WelfordStats ttr_stats_;
  P2Quantile ttr_p50_;
  P2Quantile ttr_p95_;
  EwmaRate rate_;
  SlidingCounter multi_gpu_burst_;
  std::vector<std::uint64_t> slot_counts_;
  std::uint64_t slot_attributed_events_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t hardware_events_ = 0;
  std::uint64_t software_events_ = 0;
  TimePoint last_time_;
  std::size_t burst_size_ = 0;  ///< burst count as of last_time_
};

}  // namespace tsufail::stream
