#include "stream/health.h"

#include <algorithm>
#include <utility>

namespace tsufail::stream {

HealthMonitor::HealthMonitor(data::MachineSpec spec, MonitorConfig config,
                             RollingWindowEstimator rolling, P2Quantile ttr_p50,
                             P2Quantile ttr_p95)
    : spec_(std::move(spec)),
      config_(config),
      rolling_(std::move(rolling)),
      ttr_p50_(std::move(ttr_p50)),
      ttr_p95_(std::move(ttr_p95)),
      rate_(config.rate_tau_hours),
      multi_gpu_burst_(config.burst_window_hours),
      slot_counts_(static_cast<std::size_t>(std::max(spec_.gpus_per_node, 0)), 0) {}

Result<HealthMonitor> HealthMonitor::create(const data::MachineSpec& spec,
                                            MonitorConfig config) {
  if (!(config.rate_tau_hours > 0.0))
    return Error(ErrorKind::kDomain, "HealthMonitor: rate tau must be positive");
  if (!(config.burst_window_hours > 0.0))
    return Error(ErrorKind::kDomain, "HealthMonitor: burst window must be positive");
  auto rolling = RollingWindowEstimator::create(spec.window_hours(), config.window_days,
                                                config.step_days);
  if (!rolling.ok()) return rolling.error().with_context("HealthMonitor");
  auto p50 = P2Quantile::create(0.5);
  if (!p50.ok()) return p50.error();
  auto p95 = P2Quantile::create(0.95);
  if (!p95.ok()) return p95.error();
  return HealthMonitor(spec, config, std::move(rolling).value(), std::move(p50).value(),
                       std::move(p95).value());
}

void HealthMonitor::observe(const data::FailureRecord& record) {
  ++events_;
  switch (record.failure_class()) {
    case data::FailureClass::kHardware: ++hardware_events_; break;
    case data::FailureClass::kSoftware: ++software_events_; break;
    case data::FailureClass::kUnknown: break;
  }

  rolling_.observe(hours_between(spec_.log_start, record.time), record.ttr_hours);
  ttr_stats_.add(record.ttr_hours);
  ttr_p50_.add(record.ttr_hours);
  ttr_p95_.add(record.ttr_hours);
  rate_.observe(record.time);

  if (record.multi_gpu()) multi_gpu_burst_.observe(record.time);
  burst_size_ = multi_gpu_burst_.count(record.time);

  for (int slot : record.gpu_slots) {
    if (slot >= 0 && static_cast<std::size_t>(slot) < slot_counts_.size())
      ++slot_counts_[static_cast<std::size_t>(slot)];
  }
  if (!record.gpu_slots.empty()) ++slot_attributed_events_;

  last_time_ = record.time;
}

HealthSnapshot HealthMonitor::snapshot() const {
  HealthSnapshot snapshot;
  snapshot.as_of = last_time_;
  snapshot.events = events_;
  snapshot.hardware_events = hardware_events_;
  snapshot.software_events = software_events_;
  snapshot.ewma_failures_per_day = rate_.per_day(last_time_);
  snapshot.mean_ttr_hours = ttr_stats_.mean();
  snapshot.ttr_stddev_hours = ttr_stats_.stddev();
  snapshot.ttr_p50_hours = ttr_p50_.estimate();
  snapshot.ttr_p95_hours = ttr_p95_.estimate();
  if (const auto* window = rolling_.latest()) snapshot.window = *window;
  snapshot.multi_gpu_burst_size = burst_size_;
  snapshot.slot_attributed_events = slot_attributed_events_;

  std::uint64_t total_slot_hits = 0;
  std::uint64_t max_slot_hits = 0;
  for (std::uint64_t hits : slot_counts_) {
    total_slot_hits += hits;
    max_slot_hits = std::max(max_slot_hits, hits);
  }
  if (total_slot_hits > 0 && !slot_counts_.empty()) {
    const double max_share =
        static_cast<double>(max_slot_hits) / static_cast<double>(total_slot_hits);
    snapshot.slot_skew = max_share * static_cast<double>(slot_counts_.size());
  }
  return snapshot;
}

void HealthMonitor::finish() { rolling_.finish(); }

}  // namespace tsufail::stream
