// EventStream: incremental, validated ingestion of failure records.
//
// The batch library consumes a complete, immutable FailureLog; a live
// fleet produces one record at a time, slightly out of order (operators
// file tickets late, collectors flush on different cadences).  EventStream
// accepts records in near-arrival order, holds them in a bounded reorder
// buffer, and releases them in strict time order once the watermark —
// highest time seen minus the reorder horizon — passes them.
//
// Malformed records (failing data::validate_record) and records arriving
// later than the horizon are quarantined with the error that rejected
// them; exact duplicates still inside the horizon are rejected outright.
// Everything is a value-level outcome — nothing throws on bad input.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "data/machine.h"
#include "data/record.h"
#include "util/error.h"

namespace tsufail::stream {

/// Tuning knobs for one stream.
struct StreamConfig {
  /// Records may arrive up to this many hours behind the newest record
  /// seen and still be merged in order.  0 = strict in-order input.
  double reorder_horizon_hours = 24.0;
  /// Window slack passed through to data::validate_record.
  double slack_hours = 0.0;
  /// Quarantine ring-buffer capacity; the oldest entry is dropped when
  /// full, so a flood of garbage cannot grow memory.
  std::size_t quarantine_capacity = 64;
  /// Reject records identical in (time, node, category) to one already
  /// inside the reorder horizon.
  bool detect_duplicates = true;
};

/// What happened to one offered record.
enum class IngestOutcome {
  kAccepted,           ///< buffered; will be released in time order
  kQuarantinedInvalid, ///< failed validation against the MachineSpec
  kQuarantinedLate,    ///< arrived behind the watermark (outside the horizon)
  kRejectedDuplicate,  ///< (time, node, category) already seen in the horizon
};

/// "accepted" / "quarantined-invalid" / ...
const char* to_string(IngestOutcome outcome) noexcept;

/// A record the stream refused, with why.
struct QuarantinedRecord {
  data::FailureRecord record;
  Error error;
  std::uint64_t offer_index = 0;  ///< 0-based position in the offer sequence
};

/// Ingestion counters.
struct StreamStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t released = 0;
  std::uint64_t quarantined_invalid = 0;
  std::uint64_t quarantined_late = 0;
  std::uint64_t rejected_duplicates = 0;
  std::uint64_t quarantine_dropped = 0;  ///< evicted from the full ring
};

class EventStream {
 public:
  /// Errors: negative horizon/slack or invalid spec window.
  static Result<EventStream> create(data::MachineSpec spec, StreamConfig config = {});

  /// Offers one record.  Errors only on misuse (offer after finish);
  /// per-record problems come back as an IngestOutcome, with detail in
  /// quarantine().
  Result<IngestOutcome> offer(const data::FailureRecord& record);

  /// Next record whose release the watermark has authorized, in strict
  /// time order; nullopt when none is ready yet.
  std::optional<data::FailureRecord> poll();

  /// Declares end-of-stream: flushes the reorder buffer so poll() drains
  /// every accepted record.  Further offer() calls error.
  void finish();

  /// Watermark: the newest instant before which no further record can be
  /// accepted (highest time seen minus the horizon).  nullopt before the
  /// first accepted record.
  std::optional<TimePoint> watermark() const noexcept { return watermark_; }

  const StreamStats& stats() const noexcept { return stats_; }
  const data::MachineSpec& spec() const noexcept { return spec_; }
  const StreamConfig& config() const noexcept { return config_; }

  /// Refused records, oldest first (bounded by quarantine_capacity).
  std::span<const QuarantinedRecord> quarantine() const noexcept {
    return {quarantine_.data(), quarantine_.size()};
  }

  /// Records buffered but not yet released.
  std::size_t pending() const noexcept { return pending_.size(); }
  bool finished() const noexcept { return finished_; }

 private:
  EventStream(data::MachineSpec spec, StreamConfig config)
      : spec_(std::move(spec)), config_(config) {}

  void quarantine_record(const data::FailureRecord& record, Error error);
  void release_ready();

  struct TimeOrder {
    bool operator()(const data::FailureRecord& a, const data::FailureRecord& b) const noexcept {
      return a.time > b.time;  // min-heap on time
    }
  };

  data::MachineSpec spec_;
  StreamConfig config_;
  StreamStats stats_;
  std::priority_queue<data::FailureRecord, std::vector<data::FailureRecord>, TimeOrder> pending_;
  std::deque<data::FailureRecord> released_;
  std::vector<QuarantinedRecord> quarantine_;
  /// Fingerprints of accepted records still inside the horizon.
  std::set<std::tuple<std::int64_t, int, data::Category>> fingerprints_;
  std::optional<TimePoint> watermark_;
  TimePoint max_time_;
  bool finished_ = false;
};

/// Single-consumer pull view over a stream's released records.  Thin by
/// design: the stream owns the buffer; the cursor is the reading idiom
/// (`while (auto record = cursor.next()) ...`).
class StreamCursor {
 public:
  explicit StreamCursor(EventStream& stream) noexcept : stream_(&stream) {}

  /// Next released record, nullopt when the stream has nothing ready.
  std::optional<data::FailureRecord> next() { return stream_->poll(); }

  /// Drains everything currently ready through `fn`; returns the count.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t drained = 0;
    while (auto record = stream_->poll()) {
      fn(*record);
      ++drained;
    }
    return drained;
  }

 private:
  EventStream* stream_;
};

}  // namespace tsufail::stream
