// Bounded-memory online estimators for live failure monitoring.
//
// Every estimator here consumes one observation at a time and holds O(1)
// state — or, for the window-based ones, state bounded by the window
// occupancy — so a monitor can run forever against a live fleet without
// growing.  The batch analyzers remain the reference implementations: the
// rolling-window estimator is property-tested to reproduce
// analysis::analyze_rolling_trends bit-for-bit on in-order input.
//
//   WelfordStats           mean/variance/min/max    O(1)   (= stats::RunningStats)
//   P2Quantile             one quantile, P^2 method O(1)   approximate past 5 samples
//   EwmaRate               exponentially-weighted event rate, O(1)
//   SlidingCounter         events within a trailing window, O(window occupancy)
//   RollingWindowEstimator streaming analyze_rolling_trends, O(window occupancy)
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/rolling.h"
#include "stats/descriptive.h"
#include "util/civil_time.h"
#include "util/error.h"

namespace tsufail::stream {

/// Welford mean/variance accumulator.  The batch library already has a
/// numerically careful single-pass implementation; the streaming layer
/// reuses it rather than duplicating the recurrence.
using WelfordStats = stats::RunningStats;

/// P^2 (Jain & Chlamtac 1985) single-quantile estimator: five markers,
/// O(1) memory, no sample retention.  Exact for the first five samples,
/// approximate after; agreement with the batch quantile tightens as the
/// sample grows.
class P2Quantile {
 public:
  /// Errors: q outside (0, 1).
  static Result<P2Quantile> create(double q);

  void add(double x) noexcept;

  /// Current estimate; 0 before the first sample.  Exact (interpolated
  /// order statistic) while count() < 5.
  double estimate() const noexcept;

  std::size_t count() const noexcept { return count_; }
  double quantile() const noexcept { return q_; }

 private:
  explicit P2Quantile(double q) noexcept : q_(q) {}

  double q_ = 0.5;
  std::size_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};   ///< marker heights
  double positions_[5] = {1, 2, 3, 4, 5}; ///< actual marker positions
  double desired_[5] = {0, 0, 0, 0, 0};   ///< desired marker positions
  double increments_[5] = {0, 0, 0, 0, 0};
};

/// Exponentially-weighted event-rate estimator.  Models the arrival
/// intensity with an exponential kernel of time constant `tau_hours`:
/// each event adds 1/tau, and the whole estimate decays as exp(-dt/tau).
/// The estimate converges to the true rate for stationary arrivals and
/// tracks changes with ~tau lag.
class EwmaRate {
 public:
  /// Precondition: tau_hours > 0 (checked with TSUFAIL_REQUIRE).
  explicit EwmaRate(double tau_hours);

  /// Records one event.  Precondition: non-decreasing event times.
  void observe(TimePoint t) noexcept;

  /// Estimated rate in events/hour, decayed to `as_of`; 0 before any event.
  double per_hour(TimePoint as_of) const noexcept;
  /// Estimated rate in events/day.
  double per_day(TimePoint as_of) const noexcept { return 24.0 * per_hour(as_of); }

  std::uint64_t events() const noexcept { return events_; }

 private:
  double tau_hours_;
  double intensity_ = 0.0;  ///< events/hour at time last_
  TimePoint last_;
  std::uint64_t events_ = 0;
};

/// Count of events inside a trailing window (burst detection).  Memory is
/// bounded by the number of events currently inside the window.
class SlidingCounter {
 public:
  /// Precondition: window_hours > 0 (checked with TSUFAIL_REQUIRE).
  explicit SlidingCounter(double window_hours);

  /// Records one event.  Precondition: non-decreasing event times.
  void observe(TimePoint t);

  /// Events with time in (as_of - window, as_of].  Also evicts expired
  /// entries, so repeated calls stay cheap.
  std::size_t count(TimePoint as_of);

  double window_hours() const noexcept { return window_hours_; }

 private:
  double window_hours_;
  std::deque<TimePoint> times_;
};

/// Streaming twin of analysis::analyze_rolling_trends.  Fed in-order
/// (hours-since-log-start, ttr) pairs, it finalizes each rolling window
/// as soon as the stream passes its right edge and — after finish() —
/// produces a RollingTrends equal to the batch analyzer's (identical
/// window grid, counts, MTBF/MTTR arithmetic, and trend fits).
///
/// Memory: the event buffer holds only events still inside some open
/// window (<= one window span), plus the completed-window list that is
/// the output itself.
class RollingWindowEstimator {
 public:
  /// `total_hours` is the log-window span (spec.window_hours()).
  /// Errors mirror the batch analyzer: non-positive window/step, window
  /// exceeding the span, or a grid of fewer than 3 windows.
  static Result<RollingWindowEstimator> create(double total_hours, double window_days = 60.0,
                                               double step_days = 30.0);

  /// Feeds one failure.  Precondition: `hours_since_start` non-decreasing.
  void observe(double hours_since_start, double ttr_hours);

  /// Finalizes every window still open.  Idempotent; observe() afterwards
  /// is a precondition violation.
  void finish();

  /// Windows finalized so far (all of them after finish()).
  const std::vector<analysis::RollingWindow>& completed() const noexcept { return completed_; }

  /// Most recently finalized window, if any.
  const analysis::RollingWindow* latest() const noexcept {
    return completed_.empty() ? nullptr : &completed_.back();
  }

  /// The full batch-equivalent result.  Precondition: finish() was called.
  /// Errors as the batch analyzer (trend fit failures).
  Result<analysis::RollingTrends> trends() const;

  double window_hours() const noexcept { return window_hours_; }
  double step_hours() const noexcept { return step_hours_; }

 private:
  RollingWindowEstimator() = default;

  void finalize_next_window();

  struct Event {
    double hours = 0.0;
    double ttr = 0.0;
  };

  double total_hours_ = 0.0;
  double window_days_ = 0.0;
  double window_hours_ = 0.0;
  double step_hours_ = 0.0;
  std::vector<double> starts_;            ///< window grid, batch-identical doubles
  std::size_t next_window_ = 0;           ///< first not-yet-finalized window
  std::deque<Event> events_;              ///< events still inside an open window
  std::vector<analysis::RollingWindow> completed_;
  bool finished_ = false;
  // Early/late quarter tallies for RollingTrends::early_late_rate_ratio.
  std::size_t early_events_ = 0;
  std::size_t late_events_ = 0;
};

}  // namespace tsufail::stream
