#include "report/markdown_report.h"

#include "analysis/node_survival.h"
#include "analysis/rack_distribution.h"
#include "analysis/rolling.h"
#include "analysis/tbf.h"
#include "data/log_index.h"
#include "report/table.h"

namespace tsufail::report {
namespace {

std::string md_row(std::initializer_list<std::string> cells) {
  std::string out = "|";
  for (const auto& cell : cells) out += " " + cell + " |";
  return out + "\n";
}

std::string md_rule(std::size_t columns) {
  std::string out = "|";
  for (std::size_t i = 0; i < columns; ++i) out += "---|";
  return out + "\n";
}

}  // namespace

Result<std::string> render_markdown_report(const data::FailureLog& log,
                                           const MarkdownOptions& options) {
  auto study_result = analysis::run_study(log, analysis::StudyOptions{options.jobs});
  if (!study_result.ok()) return study_result.error();
  const auto& s = study_result.value();

  std::string md;
  const std::string title =
      options.title.empty() ? log.spec().name + " reliability report" : options.title;
  md += "# " + title + "\n\n";
  md += "- fleet: " + std::to_string(log.spec().node_count) + " nodes x " +
        std::to_string(log.spec().gpus_per_node) + " GPUs (" +
        std::to_string(log.spec().rack_count()) + " racks)\n";
  md += "- window: " + format_date(log.spec().log_start) + " .. " +
        format_date(log.spec().log_end) + " (" +
        fmt(log.spec().window_hours() / 24.0, 0) + " days)\n";
  md += "- failures: " + std::to_string(log.size()) + "\n\n";

  // --- headline metrics ----------------------------------------------------
  md += "## Headline reliability\n\n";
  md += md_row({"Metric", "Value"});
  md += md_rule(2);
  if (s.tbf.has_value()) {
    auto ci = analysis::mtbf_confidence_interval(log.size(), log.spec().window_hours());
    std::string mtbf = fmt(s.tbf->exposure_mtbf_hours, 1) + " h";
    if (ci.ok()) {
      mtbf += " (95% CI " + fmt(ci.value().low_hours, 1) + "-" +
              fmt(ci.value().high_hours, 1) + " h)";
    }
    md += md_row({"MTBF", mtbf});
    md += md_row({"p75 time between failures", fmt(s.tbf->p75_hours, 1) + " h"});
  }
  md += md_row({"MTTR", fmt(s.ttr.mttr_hours, 1) + " h (median " +
                            fmt(s.ttr.summary.median, 1) + " h)"});
  md += md_row({"FLOP x MTBF",
                fmt(s.perf_error_prop.pflop_hours_per_failure_free_period, 0) +
                    " PFlop-hours per failure-free period"});
  md += md_row({"nodes with repeat failures",
                fmt_percent(s.node_counts.percent_multi_failure, 1) + " of failed nodes"});
  md += "\n";

  // --- categories ------------------------------------------------------------
  md += "## Failure categories\n\n";
  md += md_row({"Category", "Count", "Share", "Class", "MTTR"});
  md += md_rule(5);
  std::size_t shown = 0;
  for (const auto& share : s.categories.categories) {
    if (share.count == 0 || shown++ >= options.top_categories) continue;
    std::string mttr = "-";
    for (const auto& row : s.ttr_by_category) {
      if (row.category == share.category) mttr = fmt(row.mttr_hours, 1) + " h";
    }
    md += md_row({std::string(data::to_string(share.category)), std::to_string(share.count),
                  fmt_percent(share.percent), std::string(data::to_string(
                      data::classify(share.category))), mttr});
  }
  md += "\n";

  // --- software loci ------------------------------------------------------------
  if (s.software_loci.has_value()) {
    md += "## Software root loci\n\n";
    md += fmt_percent(s.software_loci->gpu_driver_percent, 1) +
          " of software failures are GPU-driver-related; " +
          fmt_percent(s.software_loci->unknown_percent, 1) + " have no recorded cause.\n\n";
    md += md_row({"Locus", "Count", "Share"});
    md += md_rule(3);
    std::size_t loci_shown = 0;
    for (const auto& locus : s.software_loci->top) {
      if (loci_shown++ >= options.top_loci) break;
      md += md_row({locus.locus, std::to_string(locus.count), fmt_percent(locus.percent)});
    }
    md += "\n";
  }

  // --- GPU structure -------------------------------------------------------------
  if (s.multi_gpu.has_value() && s.gpu_slots.has_value()) {
    md += "## GPU failure structure\n\n";
    md += md_row({"GPUs involved", "Count", "Share"});
    md += md_rule(3);
    for (const auto& bucket : s.multi_gpu->buckets) {
      md += md_row({std::to_string(bucket.gpus), std::to_string(bucket.count),
                    fmt_percent(bucket.percent)});
    }
    md += "\nslot involvement: ";
    for (const auto& slot : s.gpu_slots->slots) {
      md += "GPU" + std::to_string(slot.slot) + " " + fmt_percent(slot.percent, 1) + "  ";
    }
    md += "(uniformity p = " + fmt(s.gpu_slots->uniformity_p_value, 4) + ")\n\n";
  }

  // --- skipped analyses ----------------------------------------------------------
  if (!s.skipped.empty()) {
    md += "## Skipped analyses\n\n";
    for (const auto& skipped : s.skipped) {
      md += "- " + skipped.analysis + ": " + skipped.error.message() + "\n";
    }
    md += "\n";
  }

  if (!options.include_extensions) return md;

  // --- extensions ------------------------------------------------------------------
  const data::LogIndex index(log);  // shared by the extension analyzers
  if (auto survival = analysis::analyze_node_survival(index); survival.ok()) {
    md += "## Node survival\n\n";
    md += "- " + fmt_percent(100.0 * survival.value().fraction_never_failed, 1) +
          " of nodes never failed inside the window\n";
    if (survival.value().median_refailure_hours.has_value()) {
      md += "- median time from first to second failure: " +
            fmt(*survival.value().median_refailure_hours, 0) + " h\n";
    }
    if (survival.value().repeat_offender_test.has_value()) {
      md += std::string("- repeat-offender log-rank: p = ") +
            fmt(survival.value().repeat_offender_test->p_value, 4) +
            (survival.value().failed_nodes_refail_faster
                 ? " (failed nodes re-fail significantly faster)\n"
                 : " (no significant effect)\n");
    }
    md += "\n";
  }

  if (auto trends = analysis::analyze_rolling_trends(index); trends.ok()) {
    md += "## Lifetime trends\n\n";
    md += "- failure-rate slope p = " + fmt(trends.value().rate_trend.slope_p_value, 3) +
          ", early/late quarter rate ratio " +
          fmt(trends.value().early_late_rate_ratio, 2) + "\n";
    md += "- MTTR slope p = " + fmt(trends.value().mttr_trend.slope_p_value, 3) + "\n\n";
  }

  if (auto racks = analysis::analyze_racks(index); racks.ok()) {
    md += "## Rack distribution\n\n";
    md += "- " + std::to_string(racks.value().racks_with_failures) + " of " +
          std::to_string(racks.value().total_racks) + " racks saw failures; Gini " +
          fmt(racks.value().gini, 2) + "; " +
          std::to_string(racks.value().racks_holding_half) + " racks hold half\n";
    md += "- uniformity chi-square p = " + fmt(racks.value().uniformity_p_value, 4) + "\n\n";
  }
  return md;
}

}  // namespace tsufail::report
