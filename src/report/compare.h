// Paper-vs-measured comparison records.
//
// Every bench reports the paper's number beside the value measured on the
// calibrated synthetic log, with a tolerance verdict.  EXPERIMENTS.md is
// generated from these rows, so the comparison logic lives here, in one
// place, rather than scattered across bench binaries.
#pragma once

#include <string>
#include <vector>

namespace tsufail::report {

struct Comparison {
  std::string metric;
  double paper = 0.0;
  double measured = 0.0;
  /// Relative tolerance for the match verdict.  Interpreted against
  /// max(|paper|, epsilon); a tolerance of 0.15 means within 15%.
  double rel_tolerance = 0.15;
  std::string unit;

  double abs_delta() const noexcept;
  double rel_delta() const noexcept;  ///< |measured - paper| / max(|paper|, 1e-12)
  bool within_tolerance() const noexcept;
};

/// A collection of comparisons for one experiment (one table/figure).
class ComparisonSet {
 public:
  explicit ComparisonSet(std::string experiment_name)
      : name_(std::move(experiment_name)) {}

  void add(std::string metric, double paper, double measured, double rel_tolerance = 0.15,
           std::string unit = "");

  const std::string& name() const noexcept { return name_; }
  const std::vector<Comparison>& rows() const noexcept { return rows_; }

  std::size_t matched() const noexcept;
  bool all_within_tolerance() const noexcept;

  /// Renders as an aligned table with a MATCH/OFF verdict column.
  std::string render() const;

  /// Renders as a markdown table row-block for EXPERIMENTS.md.
  std::string render_markdown() const;

 private:
  std::string name_;
  std::vector<Comparison> rows_;
};

}  // namespace tsufail::report
