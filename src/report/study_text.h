// Plain-text rendering of a StudyReport — the `tsufail analyze` output.
//
// Extracted from the CLI so the fleet service's "study" query serves the
// byte-identical text an operator would get from the one-shot command;
// the serve-smoke CI job diffs the two.
#pragma once

#include <string>

#include "analysis/study.h"
#include "data/log.h"

namespace tsufail::report {

/// Renders the headline study text: banner, category table, MTBF/MTTR
/// lines, node/multi-GPU/clustering summaries, and any skipped analyses.
std::string render_study_text(const data::FailureLog& log, const analysis::StudyReport& study);

}  // namespace tsufail::report
