#include "report/figure_export.h"

#include <filesystem>

#include "util/csv.h"

namespace tsufail::report {

Result<void> export_figure(const FigureData& figure, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec)
    return Error(ErrorKind::kIo, "cannot create figure directory '" + directory +
                                     "': " + ec.message());
  const std::string path = directory + "/" + figure.name + ".csv";
  return write_csv_file(path, figure.columns, figure.rows);
}

std::vector<std::string> row(std::initializer_list<std::string> cells) {
  return std::vector<std::string>(cells);
}

}  // namespace tsufail::report
