// CSV export of figure series, so a user can replot the reproduction with
// any external tool.  Each bench writes one CSV per figure into an output
// directory (default "figures/", created on demand).
#pragma once

#include <string>
#include <vector>

#include "util/error.h"

namespace tsufail::report {

/// A rectangular data set destined for one CSV file.
struct FigureData {
  std::string name;                            ///< file stem, e.g. "fig06_tbf_cdf"
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

/// Writes `figure` as <directory>/<name>.csv, creating the directory.
Result<void> export_figure(const FigureData& figure, const std::string& directory = "figures");

/// Builds a row of already-formatted cells (convenience for benches).
std::vector<std::string> row(std::initializer_list<std::string> cells);

}  // namespace tsufail::report
