// Markdown rendering of a repair-policy comparison sweep.
//
// Shared by `tsufail repairs` and the golden snapshots in
// tests/golden/*_repairs.md: one metrics table per policy variant (mean,
// stddev, bootstrap CI per metric) plus a ranking by mean availability,
// so the scheduling story reads directly off the report.  Numbers are
// fixed-precision, making the rendering byte-stable wherever the sweep
// itself is bit-identical.
#pragma once

#include <string>

#include "ops/repair_sweep.h"

namespace tsufail::report {

/// Renders the comparison.  `base` is the shop configuration shared by
/// the variants (echoed in the header); `options` supplies the
/// replicate/seed/CI context line.
std::string render_repair_comparison(const sim::SweepResult& sweep,
                                     const ops::RepairShopConfig& base,
                                     const sim::SweepOptions& options);

}  // namespace tsufail::report
