#include "report/table.h"

#include <algorithm>
#include <cstdio>

namespace tsufail::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  alignment_.assign(headers_.size(), Align::kLeft);
}

void Table::set_alignment(std::vector<Align> alignment) {
  alignment.resize(headers_.size(), Align::kLeft);
  alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto pad = [&](const std::string& text, std::size_t c) {
    std::string out;
    const std::size_t fill = widths[c] - text.size();
    if (alignment_[c] == Align::kRight) out.append(fill, ' ');
    out += text;
    if (alignment_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out += pad(headers_[c], c);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += "  ";
      out += pad(row[c], c);
    }
    out += '\n';
  }
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_percent(double value, int decimals) { return fmt(value, decimals) + "%"; }

}  // namespace tsufail::report
