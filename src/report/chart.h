// ASCII charts: CDF step plots (Figures 6, 9) and horizontal bar charts
// (Figures 2, 3, 5, 12) rendered as terminal text.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace tsufail::report {

/// One named series of (x, y) points for a line/CDF plot.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Renders step-ish line series on a character grid with axes.  y is
/// assumed to span [0, 1] for CDFs unless the data exceeds it.
/// Multiple series use distinct glyphs ('*', 'o', '+', 'x', ...).
std::string render_cdf_chart(const std::vector<Series>& series, std::size_t width = 72,
                             std::size_t height = 20, const std::string& x_label = "",
                             const std::string& y_label = "");

/// One labelled bar.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Renders a horizontal bar chart scaled to the maximum value, e.g.
///   GPU       44.37 |##############################
///   FAN       10.00 |#######
std::string render_bar_chart(const std::vector<Bar>& bars, std::size_t width = 48,
                             int decimals = 2);

}  // namespace tsufail::report
