#include "report/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tsufail::report {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

}  // namespace

std::string render_cdf_chart(const std::vector<Series>& series, std::size_t width,
                             std::size_t height, const std::string& x_label,
                             const std::string& y_label) {
  if (series.empty()) return "(no series)\n";
  double x_min = 0.0, x_max = 0.0, y_max = 1.0;
  bool first = true;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (first) {
        x_min = x_max = x;
        first = false;
      }
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_max = std::max(y_max, y);
    }
  }
  if (first) return "(empty series)\n";
  if (x_max == x_min) x_max = x_min + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[si].points) {
      const auto col = static_cast<std::size_t>(
          std::round((x - x_min) / (x_max - x_min) * static_cast<double>(width - 1)));
      const auto row_from_bottom =
          static_cast<std::size_t>(std::round(y / y_max * static_cast<double>(height - 1)));
      grid[height - 1 - row_from_bottom][col] = glyph;
    }
  }

  std::string out;
  if (!y_label.empty()) out += y_label + "\n";
  for (std::size_t r = 0; r < height; ++r) {
    char axis[16];
    const double y_val =
        y_max * static_cast<double>(height - 1 - r) / static_cast<double>(height - 1);
    std::snprintf(axis, sizeof(axis), "%5.2f |", y_val);
    out += axis;
    out += grid[r];
    out += '\n';
  }
  out += "      +";
  out.append(width, '-');
  out += '\n';
  char ends[80];
  std::snprintf(ends, sizeof(ends), "       %-12.6g%*s%.6g", x_min,
                static_cast<int>(width) - 18, "", x_max);
  out += ends;
  if (!x_label.empty()) out += "  (" + x_label + ")";
  out += '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += "       ";
    out += kGlyphs[si % sizeof(kGlyphs)];
    out += " = " + series[si].name + "\n";
  }
  return out;
}

std::string render_bar_chart(const std::vector<Bar>& bars, std::size_t width, int decimals) {
  if (bars.empty()) return "(no bars)\n";
  std::size_t label_width = 0;
  double max_value = 0.0;
  for (const auto& bar : bars) {
    label_width = std::max(label_width, bar.label.size());
    max_value = std::max(max_value, bar.value);
  }
  if (max_value <= 0.0) max_value = 1.0;

  std::string out;
  for (const auto& bar : bars) {
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix), "%-*s  %8.*f |", static_cast<int>(label_width),
                  bar.label.c_str(), decimals, bar.value);
    out += prefix;
    const auto filled =
        static_cast<std::size_t>(std::round(bar.value / max_value * static_cast<double>(width)));
    out.append(filled, '#');
    out += '\n';
  }
  return out;
}

}  // namespace tsufail::report
