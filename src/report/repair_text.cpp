#include "report/repair_text.h"

#include <algorithm>
#include <sstream>

#include "report/table.h"

namespace tsufail::report {
namespace {

// Display rows in print order; metrics a variant never emitted are
// skipped (e.g. the sampled baselines when disabled).
constexpr std::pair<const char*, const char*> kRepairHeadlines[] = {
    {"availability", "capacity availability"},
    {"availability_mtbf_mttr", "MTBF/(MTBF+MTTR) availability"},
    {"mttr_effective_hours", "effective MTTR (h)"},
    {"mean_wait_hours", "mean repair wait (h)"},
    {"max_wait_hours", "max repair wait (h)"},
    {"crew_utilization", "crew utilization"},
    {"peak_queue_depth", "peak queue depth"},
    {"stockouts", "spare stockouts"},
    {"unfinished", "unfinished at horizon"},
    {"degraded_node_hours", "degraded node-hours"},
    {"interrupted_fraction", "interrupted job fraction"},
    {"goodput_ckpt", "goodput (ckpt)"},
    {"goodput_no_ckpt", "goodput (no ckpt)"},
    {"goodput_ckpt_sampled", "goodput (ckpt, sampled TTR)"},
    {"goodput_no_ckpt_sampled", "goodput (no ckpt, sampled TTR)"},
};

}  // namespace

std::string render_repair_comparison(const sim::SweepResult& sweep,
                                     const ops::RepairShopConfig& base,
                                     const sim::SweepOptions& options) {
  std::ostringstream out;
  out << "# Repair-policy comparison\n\n";
  out << "Shop: " << ops::describe_repair_config(base) << "\n";
  out << "Sweep: " << options.replicates << " replicates, base seed " << options.base_seed
      << ", " << fmt_percent(100.0 * options.ci_level, 0) << " bootstrap CIs ("
      << options.bootstrap_replicates << " resamples)\n";

  for (const auto& variant : sweep.variants) {
    out << "\n## Policy: " << variant.label << "\n\n";
    Table table({"Metric", "n", "Mean", "Stddev", "CI low", "CI high"});
    table.set_alignment(
        {Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight, Align::kRight});
    for (const auto& [name, display] : kRepairHeadlines) {
      const sim::MetricAggregate* aggregate = variant.find(name);
      if (aggregate == nullptr) continue;
      const int decimals = std::string_view(name).find("availability") != std::string_view::npos ||
                                   std::string_view(name).find("goodput") != std::string_view::npos
                               ? 5
                               : 3;
      table.add_row({display, std::to_string(aggregate->n), fmt(aggregate->mean, decimals),
                     fmt(aggregate->stddev, decimals), fmt(aggregate->mean_ci.low, decimals),
                     fmt(aggregate->mean_ci.high, decimals)});
    }
    out << table.render();
  }

  // Ranking: best mean capacity availability first; ties break by label
  // so the rendering stays deterministic.
  std::vector<const sim::VariantSweep*> ranked;
  ranked.reserve(sweep.variants.size());
  for (const auto& variant : sweep.variants) ranked.push_back(&variant);
  std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
    const double aa = a->mean_of("availability");
    const double bb = b->mean_of("availability");
    if (aa != bb) return aa > bb;
    return a->label < b->label;
  });
  out << "\n## Ranking (mean capacity availability)\n\n";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    out << (i + 1) << ". " << ranked[i]->label << " — " << fmt(ranked[i]->mean_of("availability"), 5)
        << " (goodput ckpt " << fmt(ranked[i]->mean_of("goodput_ckpt"), 5) << ")\n";
  }
  return out.str();
}

}  // namespace tsufail::report
