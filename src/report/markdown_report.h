// Full markdown study report generation.
//
// Renders a StudyReport (everything the paper measures) plus the
// extension analyses as a single self-contained markdown document — the
// artifact an operations team would attach to a quarterly review, and
// the `tsufail report` subcommand's output.
#pragma once

#include <string>

#include "analysis/study.h"
#include "data/log.h"

namespace tsufail::report {

struct MarkdownOptions {
  std::string title;               ///< empty = derived from the machine name
  bool include_extensions = true;  ///< survival / trends / racks sections
  std::size_t top_categories = 20;
  std::size_t top_loci = 10;
  /// Worker threads for the underlying study (analysis::StudyOptions
  /// semantics: 1 = serial, 0 = all hardware threads).
  std::size_t jobs = 1;
};

/// Renders the full study as markdown.  Runs the extension analyzers
/// itself (they need the log, not just the StudyReport).
/// Errors: empty log or a failing core analysis.
Result<std::string> render_markdown_report(const data::FailureLog& log,
                                           const MarkdownOptions& options = {});

}  // namespace tsufail::report
