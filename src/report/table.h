// Plain-text table rendering for bench output and examples.
//
// Benches print the same rows the paper's tables/figures report; this
// renderer keeps them aligned and readable in a terminal without any
// plotting dependency.
#pragma once

#include <string>
#include <vector>

namespace tsufail::report {

enum class Align { kLeft, kRight };

class Table {
 public:
  /// Creates a table with the given column headers (left-aligned by
  /// default; numeric columns typically set Align::kRight).
  explicit Table(std::vector<std::string> headers);

  /// Sets per-column alignment; missing entries default to kLeft.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a row; short rows are padded with empty cells, long rows are
  /// truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, e.g.
  ///   Category   Count  Share
  ///   ---------  -----  ------
  ///   GPU          398  44.37%
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helpers used across benches.
std::string fmt(double value, int decimals = 2);
std::string fmt_percent(double value, int decimals = 2);

}  // namespace tsufail::report
