#include "report/study_text.h"

#include <sstream>

#include "report/table.h"

namespace tsufail::report {

std::string render_study_text(const data::FailureLog& log, const analysis::StudyReport& s) {
  std::ostringstream out;
  out << "== " << log.spec().name << ": " << log.size() << " failures over "
      << fmt(log.spec().window_hours() / 24.0, 0) << " days ==\n\n";

  Table categories({"Category", "Count", "Share", "Class"});
  categories.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kLeft});
  for (const auto& share : s.categories.categories) {
    if (share.count == 0) continue;
    categories.add_row({std::string(data::to_string(share.category)),
                        std::to_string(share.count), fmt_percent(share.percent),
                        std::string(data::to_string(data::classify(share.category)))});
  }
  out << categories.render() << "\n";

  if (s.tbf.has_value()) {
    out << "MTBF: " << fmt(s.tbf->exposure_mtbf_hours, 1) << " h (mean gap "
        << fmt(s.tbf->mtbf_hours, 1) << " h, p75 " << fmt(s.tbf->p75_hours, 1) << " h)\n";
  }
  out << "MTTR: " << fmt(s.ttr.mttr_hours, 1) << " h (median " << fmt(s.ttr.summary.median, 1)
      << " h, p95 " << fmt(s.ttr.summary.p95, 1) << " h)\n";
  out << "failed nodes: " << s.node_counts.failed_nodes << " of " << s.node_counts.total_nodes
      << " (" << fmt_percent(s.node_counts.percent_multi_failure, 1)
      << " with repeat failures)\n";
  if (s.multi_gpu.has_value()) {
    out << "multi-GPU failures: " << fmt_percent(s.multi_gpu->percent_multi, 1) << " of "
        << s.multi_gpu->attributed_failures << " attributed GPU failures\n";
  }
  if (s.software_loci.has_value()) {
    out << "software loci: " << fmt_percent(s.software_loci->gpu_driver_percent, 1)
        << " GPU-driver-related, " << fmt_percent(s.software_loci->unknown_percent, 1)
        << " unknown\n";
  }
  if (s.multi_gpu_clustering.has_value()) {
    out << "multi-GPU temporal clustering: CV " << fmt(s.multi_gpu_clustering->cv, 2)
        << (s.multi_gpu_clustering->clustered ? " (clustered)" : " (not clustered)") << "\n";
  }
  out << "performance-error-proportionality: "
      << fmt(s.perf_error_prop.pflop_hours_per_failure_free_period, 0)
      << " PFlop-hours per failure-free period\n";
  for (const auto& skipped : s.skipped) {
    out << "skipped " << skipped.analysis << ": " << skipped.error.message() << "\n";
  }
  return out.str();
}

}  // namespace tsufail::report
